#!/usr/bin/env python3
"""Validates an OpenMetrics text exposition (as served by /metrics).

Usage:
    check_openmetrics.py [file]        # default: stdin
    curl -s :9464/metrics | check_openmetrics.py

Checks (a practical subset of the OpenMetrics 1.0 spec — enough to
catch every way our writer could regress):

  * document ends with exactly one '# EOF' line, nothing after it
  * every sample belongs to a family declared by a '# TYPE' line
  * '# HELP'/'# TYPE' appear at most once per family, HELP before TYPE
  * counter samples use the '_total' suffix; gauges use the bare name
  * histogram samples are only _bucket/_sum/_count; every series has a
    '+Inf' bucket whose value equals its _count; buckets are cumulative
    (non-decreasing in 'le' order)
  * no duplicate series (same name + label set)
  * label syntax: key="value" with keys matching [a-zA-Z_][a-zA-Z0-9_]*
  * exemplars ('... # {labels} value') appear only on _bucket samples,
    their labels parse, their value satisfies the bucket's 'le' bound,
    and a trace_id exemplar label is exactly 16 lowercase hex digits

Exits 0 when valid, 1 with a line-numbered report when not.
"""

import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
# name{labels} value [timestamp] [# {exemplar-labels} value [timestamp]]
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)(?: (?!#)\S+)?"
    r"(?: # (\{[^}]*\}) (\S+)(?: \S+)?)?$"
)
TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_value(raw):
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def main():
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    errors = []
    types = {}      # family name -> type
    helps = set()
    seen_series = set()
    # histogram series key (family, labels-without-le) -> {le: value}
    buckets = {}
    counts = {}
    eof_at = None

    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines, start=1):
        if eof_at is not None:
            errors.append(f"line {i}: content after # EOF")
            break
        if line == "# EOF":
            eof_at = i
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            if name in helps:
                errors.append(f"line {i}: duplicate HELP for {name}")
            if name in types:
                errors.append(f"line {i}: HELP for {name} after its TYPE")
            helps.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                errors.append(f"line {i}: malformed TYPE line")
                continue
            name, mtype = parts[2], parts[3]
            if name in types:
                errors.append(f"line {i}: duplicate TYPE for {name}")
            if mtype not in ("counter", "gauge", "histogram", "summary",
                            "unknown", "info", "stateset"):
                errors.append(f"line {i}: unknown metric type '{mtype}'")
            types[name] = mtype
            continue
        if line.startswith("#"):
            continue  # comment

        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {i}: unparsable sample: {line!r}")
            continue
        sample_name, label_blob, raw_value, ex_blob, ex_raw = m.groups()
        try:
            value = parse_value(raw_value)
        except ValueError:
            errors.append(f"line {i}: bad value {raw_value!r}")
            continue

        ex_value = None
        if ex_blob is not None:
            if not sample_name.endswith("_bucket"):
                errors.append(
                    f"line {i}: exemplar on non-bucket sample {sample_name!r}")
            try:
                ex_value = parse_value(ex_raw)
            except ValueError:
                errors.append(f"line {i}: bad exemplar value {ex_raw!r}")
            ex_labels = {}
            body = ex_blob[1:-1]
            consumed = 0
            for lm in LABEL_RE.finditer(body):
                ex_labels[lm.group(1)] = lm.group(2)
                consumed += lm.end() - lm.start() + 1
            if body and consumed < len(body):
                errors.append(
                    f"line {i}: malformed exemplar labels {ex_blob!r}")
            trace_id = ex_labels.get("trace_id")
            if trace_id is not None and not TRACE_ID_RE.match(trace_id):
                errors.append(
                    f"line {i}: exemplar trace_id {trace_id!r} is not 16 "
                    "lowercase hex digits")

        labels = {}
        if label_blob:
            body = label_blob[1:-1]
            consumed = 0
            for lm in LABEL_RE.finditer(body):
                if lm.group(1) in labels:
                    errors.append(
                        f"line {i}: duplicate label {lm.group(1)!r}")
                labels[lm.group(1)] = lm.group(2)
                consumed += lm.end() - lm.start() + 1  # +1 for a comma
            if consumed < len(body):
                errors.append(f"line {i}: malformed label set {label_blob!r}")

        # Resolve the family this sample belongs to.
        family, suffix = None, ""
        for declared in types:
            if sample_name == declared:
                family = declared
            for sfx in HISTOGRAM_SUFFIXES + ("_total", "_created"):
                if sample_name == declared + sfx:
                    cand = declared
                    if family is None or len(cand) > len(family):
                        family, suffix = cand, sfx
        if family is None:
            errors.append(
                f"line {i}: sample {sample_name!r} has no # TYPE declaration")
            continue

        series_key = (sample_name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            errors.append(f"line {i}: duplicate series {series_key}")
        seen_series.add(series_key)

        mtype = types[family]
        if mtype == "counter":
            if suffix not in ("_total", "_created"):
                errors.append(
                    f"line {i}: counter {family} sample must use _total")
            elif value < 0:
                errors.append(f"line {i}: negative counter {sample_name}")
        elif mtype == "gauge":
            if suffix != "":
                errors.append(
                    f"line {i}: gauge {family} must use the bare name")
        elif mtype == "histogram":
            if suffix not in HISTOGRAM_SUFFIXES:
                errors.append(
                    f"line {i}: histogram {family} sample {sample_name!r} "
                    "must be _bucket/_sum/_count")
                continue
            base = dict(labels)
            le = base.pop("le", None)
            hkey = (family, tuple(sorted(base.items())))
            if suffix == "_bucket":
                if le is None:
                    errors.append(f"line {i}: _bucket without le label")
                    continue
                buckets.setdefault(hkey, []).append((i, le, value))
                if ex_value is not None:
                    try:
                        bound = parse_value(le)
                    except ValueError:
                        bound = None
                    if bound is not None and ex_value > bound:
                        errors.append(
                            f"line {i}: exemplar value {ex_value} exceeds "
                            f"bucket bound le={le}")
            elif suffix == "_count":
                counts[hkey] = (i, value)

    if eof_at is None:
        errors.append("missing # EOF terminator")

    for hkey, entries in buckets.items():
        prev = None
        inf_value = None
        for (i, le, value) in entries:  # exposition order
            if prev is not None and value < prev:
                errors.append(
                    f"line {i}: histogram {hkey[0]} buckets not cumulative")
            prev = value
            if le == "+Inf":
                inf_value = value
        if inf_value is None:
            errors.append(f"histogram {hkey[0]}{dict(hkey[1])}: no +Inf bucket")
        elif hkey in counts and counts[hkey][1] != inf_value:
            errors.append(
                f"histogram {hkey[0]}{dict(hkey[1])}: +Inf bucket "
                f"({inf_value}) != _count ({counts[hkey][1]})")
        elif hkey not in counts:
            errors.append(f"histogram {hkey[0]}{dict(hkey[1])}: missing _count")

    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"INVALID: {len(errors)} error(s)", file=sys.stderr)
        return 1
    nfam = len(types)
    print(f"OK: {nfam} families, {len(seen_series)} series")
    return 0


if __name__ == "__main__":
    sys.exit(main())
