// rwdt_serve: the classification service as a standalone process.
//
//   rwdt_serve --port=8080 --workers=4
//   curl -d 'SELECT ?s WHERE { ?s <p> <o> }' 'localhost:8080/v1/classify'
//
// Shutdown is always a graceful drain: SIGTERM, SIGINT, and
// GET /quitquitquit all stop admission (429/503 with Retry-After, and
// /readyz flips to 503 so load balancers eject the task), finish every
// request already accepted, then exit 0.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/build_info.h"
#include "common/json.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/serve.h"

namespace {

rwdt::serve::ClassifyServer* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  // Async-signal-safe: just release WaitForQuit; the main thread drains.
  if (g_server != nullptr) g_server->RequestQuit();
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --port=N             listen port (default 8080; 0 = ephemeral)\n"
      "  --bind=ADDR          bind address (default 127.0.0.1)\n"
      "  --workers=N          batch workers (default 2)\n"
      "  --handler-threads=N  concurrent HTTP requests (default 8)\n"
      "  --queue=N            request queue capacity (default 256)\n"
      "  --max-batch=N        jobs per worker wakeup (default 32)\n"
      "  --max-body-mb=N      request body cap in MiB (default 64)\n"
      "  --quota-qps=X        per-tenant sustained QPS (default 0 = off)\n"
      "  --quota-burst=X      per-tenant burst size (default 20)\n"
      "  --trace-sample=X     head-sample rate for fresh traces [0,1]\n"
      "                       (default 0; traceparent'd requests keep\n"
      "                       the caller's sampled flag either way)\n"
      "  --trace-seed=N       head-sampler seed (default 0)\n"
      "  --trace=FILE         install a TraceCollector and write Chrome\n"
      "                       trace JSON to FILE on exit (also enables\n"
      "                       GET /tracez; RWDT_TRACE env works too)\n"
      "  --slow-log=N         slow-query log capacity (default 32;\n"
      "                       0 disables /slowz)\n"
      "  --slow-window=X      slow-query log window, seconds (default\n"
      "                       300; 0 = never expire)\n"
      "  --report=FILE        write a JSON run report (slow queries,\n"
      "                       build info) on exit (RWDT_REPORT env too)\n"
      "  --version            print build provenance and exit\n",
      argv0);
  return 2;
}

/// The final run report: build provenance plus the slow-query log —
/// the same evidence /slowz serves, preserved after the process exits.
void WriteRunReport(const std::string& path,
                    const rwdt::serve::ClassifyServer& server) {
  std::string out;
  rwdt::JsonWriter w(&out);
  w.BeginObject();
  w.RawField("build", rwdt::common::BuildInfo::Get().ToJson());
  w.StringField("service", "rwdt_serve");
  if (server.slow_log() != nullptr) {
    w.RawField("slow_queries", server.slow_log()->ToJson());
  } else {
    w.Key("slow_queries").Null();
  }
  w.EndObject();
  out += '\n';
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "rwdt_serve: cannot write report: %s\n",
                 path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "rwdt_serve: run report written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  rwdt::serve::ServeOptions options;
  options.http.port = 8080;
  options.http.handler_threads = 8;
  options.http.max_body_bytes = 64u << 20;
  options.workers = 2;

  std::string trace_path;
  if (const char* env = std::getenv("RWDT_TRACE")) trace_path = env;
  std::string report_path;
  if (const char* env = std::getenv("RWDT_REPORT")) report_path = env;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", rwdt::common::BuildInfo::Get().ToString().c_str());
      return 0;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      options.http.port = static_cast<uint16_t>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--bind", &v)) {
      options.http.bind_address = v;
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      options.workers = static_cast<unsigned>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--handler-threads", &v)) {
      options.http.handler_threads =
          static_cast<unsigned>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--queue", &v)) {
      options.queue_capacity = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "--max-batch", &v)) {
      options.max_batch = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "--max-body-mb", &v)) {
      options.http.max_body_bytes =
          static_cast<size_t>(std::atoll(v.c_str())) << 20;
    } else if (ParseFlag(argv[i], "--quota-qps", &v)) {
      options.quota_qps = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--quota-burst", &v)) {
      options.quota_burst = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--trace-sample", &v)) {
      options.trace_sample_rate = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--trace-seed", &v)) {
      options.trace_sample_seed =
          static_cast<uint64_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--trace", &v)) {
      trace_path = v;
    } else if (ParseFlag(argv[i], "--slow-log", &v)) {
      const long long n = std::atoll(v.c_str());
      options.enable_slow_log = n > 0;
      if (n > 0) options.slow_log.capacity = static_cast<size_t>(n);
    } else if (ParseFlag(argv[i], "--slow-window", &v)) {
      options.slow_log.window_s = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--report", &v)) {
      report_path = v;
    } else {
      return Usage(argv[0]);
    }
  }

  // RWDT_PROFILE=<path|1> self-profiles the whole serve lifetime (an
  // on-demand window is GET /profilez; the two are mutually exclusive
  // because the profiler is process-global).
  auto self_profile = rwdt::obs::MaybeStartEnvProfile("profile.collapsed");

  // The collector (when requested) outlives the server: spans recorded
  // during the final drain still land in the exported trace.
  std::unique_ptr<rwdt::obs::TraceCollector> collector;
  if (!trace_path.empty()) {
    rwdt::obs::TraceOptions topts;
    topts.process_name = "rwdt_serve";
    collector = std::make_unique<rwdt::obs::TraceCollector>(topts);
  }

  rwdt::serve::ClassifyServer server(std::move(options));
  const rwdt::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "rwdt_serve: start failed: %s\n",
                 status.message().c_str());
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::fprintf(stderr,
               "rwdt_serve: listening on %s:%u (%u workers, queue %zu)\n",
               server.options().http.bind_address.c_str(),
               static_cast<unsigned>(server.port()),
               server.options().workers, server.options().queue_capacity);
  std::fflush(stderr);

  // Park until SIGTERM/SIGINT or GET /quitquitquit, then drain.
  while (!server.WaitForQuit(1000)) {
  }
  std::fprintf(stderr, "rwdt_serve: draining\n");
  server.Stop();
  g_server = nullptr;

  if (!report_path.empty()) WriteRunReport(report_path, server);
  if (collector != nullptr && collector->installed()) {
    const rwdt::Status written = collector->WriteChromeJson(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "rwdt_serve: trace export failed: %s\n",
                   written.message().c_str());
    } else {
      std::fprintf(stderr, "rwdt_serve: trace written to %s\n",
                   trace_path.c_str());
    }
  }
  if (self_profile != nullptr) {
    const rwdt::Status finished = self_profile->Finish();
    if (!finished.ok()) {
      std::fprintf(stderr, "rwdt_serve: profile export failed: %s\n",
                   finished.message().c_str());
    }
  }
  std::fprintf(stderr, "rwdt_serve: drained, exiting\n");
  return 0;
}
