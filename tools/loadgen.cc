// loadgen: open-loop HTTP traffic generator for rwdt_serve.
//
//   rwdt_serve --port=8080 &
//   loadgen --target=127.0.0.1:8080 --profile=burst --qps=50
//           --burst-qps=800 --duration=20 --out=BENCH_serve.json
//
// Open-loop means arrival times are fixed up front (an inhomogeneous
// Poisson process from loggen::GenerateArrivals, deterministic in
// --seed) and never slowed down by server latency — exactly the regime
// where queueing and shedding behavior shows. Senders fire each request
// at its scheduled instant on keep-alive connections; late wakeups are
// recorded but the schedule is never stretched.
//
// The run report (--out) carries achieved vs offered QPS, per-status
// counts, latency percentiles, and the shed rate, keyed by the build.

#include <netdb.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/build_info.h"
#include "common/json.h"
#include "loggen/rate_schedule.h"
#include "loggen/sparql_gen.h"
#include "obs/trace.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  std::string host = "127.0.0.1";
  std::string port = "8080";
  std::string path = "/v1/classify";
  std::string tenant;
  rwdt::loggen::RateScheduleOptions rate;
  double duration_s = 10;
  uint64_t seed = 1;
  unsigned connections = 8;
  /// Send a deterministic W3C traceparent (sampled) on every request,
  /// and report the slowest requests' trace ids — the client half of
  /// the measurement-to-server-span correlation.
  bool trace = false;
  std::string out = "BENCH_serve.json";
};

/// One completed request's identity, kept only when --trace=1: enough
/// to name the slowest requests' server-side traces in the report.
struct RequestRecord {
  double latency_ms = 0;
  uint64_t trace_id = 0;
  int status = 0;
};

struct SenderStats {
  std::map<int, uint64_t> status_counts;  // HTTP status -> count
  uint64_t transport_errors = 0;
  std::vector<double> latencies_ms;       // completed requests only
  std::vector<RequestRecord> records;     // --trace=1 only
};

/// The trace id loadgen assigns to arrival `i`: a pure function of
/// (seed, i), so a re-run of the same schedule names the same traces —
/// server-side /slowz entries and exemplars can be correlated across
/// repeated experiments.
uint64_t ArrivalTraceId(const Config& config, size_t i) {
  const uint64_t id =
      rwdt::obs::MixBits((config.seed << 20) ^ static_cast<uint64_t>(i));
  return id != 0 ? id : 1;
}

int Connect(const Config& config) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (getaddrinfo(config.host.c_str(), config.port.c_str(), &hints,
                  &result) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    close(fd);
    fd = -1;
  }
  freeaddrinfo(result);
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one keep-alive HTTP response; returns the status code, or -1
/// on a transport error. `buf` carries bytes across responses.
int ReadResponse(int fd, std::string* buf) {
  char chunk[4096];
  size_t head_end;
  while ((head_end = buf->find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return -1;
    buf->append(chunk, static_cast<size_t>(n));
  }
  const size_t frame_head = head_end + 4;
  int status = -1;
  if (buf->size() >= 12 && buf->compare(0, 5, "HTTP/") == 0) {
    status = std::atoi(buf->c_str() + 9);
  }
  size_t body_len = 0;
  // Case-insensitive scan is unnecessary: our server emits exactly
  // "Content-Length".
  const size_t cl = buf->find("Content-Length:");
  if (cl != std::string::npos && cl < head_end) {
    body_len = static_cast<size_t>(std::atoll(buf->c_str() + cl + 15));
  }
  while (buf->size() < frame_head + body_len) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return -1;
    buf->append(chunk, static_cast<size_t>(n));
  }
  buf->erase(0, frame_head + body_len);
  return status;
}

std::string BuildRequest(const Config& config, const std::string& query,
                         uint64_t trace_id) {
  std::string req;
  req.reserve(query.size() + 256);
  req += "POST " + config.path + "?lang=sparql HTTP/1.1\r\n";
  req += "Host: " + config.host + "\r\n";
  if (!config.tenant.empty()) req += "X-Tenant: " + config.tenant + "\r\n";
  if (trace_id != 0) {
    // Sampled flag set: the server records this request's spans and
    // exemplars regardless of its own head-sampling rate.
    rwdt::obs::TraceContext ctx;
    ctx.trace_id = trace_id;
    ctx.span_id = rwdt::obs::MixBits(trace_id ^ 0x10adc0de);
    if (ctx.span_id == 0) ctx.span_id = 1;
    ctx.sampled = true;
    req += "traceparent: " + rwdt::obs::FormatTraceparent(ctx) + "\r\n";
  }
  req += "Content-Type: text/plain\r\n";
  req += "Content-Length: " + std::to_string(query.size()) + "\r\n\r\n";
  req += query;
  return req;
}

/// One sender thread: fires its stripe of the arrival schedule at the
/// scheduled instants over a keep-alive connection.
void Sender(const Config& config, const std::vector<double>& arrivals,
            size_t stripe, size_t stripes,
            const std::vector<std::string>& queries, Clock::time_point start,
            SenderStats* stats) {
  int fd = -1;
  std::string buf;
  for (size_t i = stripe; i < arrivals.size(); i += stripes) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrivals[i]));
    std::this_thread::sleep_until(due);
    if (fd < 0) {
      fd = Connect(config);
      buf.clear();
      if (fd < 0) {
        stats->transport_errors++;
        continue;
      }
    }
    const auto sent_at = Clock::now();
    const uint64_t trace_id = config.trace ? ArrivalTraceId(config, i) : 0;
    const std::string request =
        BuildRequest(config, queries[i % queries.size()], trace_id);
    int status = -1;
    if (SendAll(fd, request)) status = ReadResponse(fd, &buf);
    if (status < 0) {
      stats->transport_errors++;
      close(fd);
      fd = -1;
      continue;
    }
    const double latency_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - sent_at)
            .count();
    stats->status_counts[status]++;
    stats->latencies_ms.push_back(latency_ms);
    if (config.trace) {
      stats->records.push_back({latency_ms, trace_id, status});
    }
  }
  if (fd >= 0) close(fd);
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --target=HOST:PORT   server (default 127.0.0.1:8080)\n"
      "  --path=PATH          route to hit (default /v1/classify)\n"
      "  --tenant=NAME        X-Tenant header value (default: none)\n"
      "  --profile=P          constant|diurnal|burst (default constant)\n"
      "  --qps=X              base rate (default 100)\n"
      "  --burst-qps=X        burst profile high rate (default 400)\n"
      "  --period=X           diurnal/burst period seconds (default 60)\n"
      "  --amplitude=X        diurnal swing in [0,1] (default 0.5)\n"
      "  --duty=X             burst duty cycle in (0,1) (default 0.2)\n"
      "  --duration=X         run length seconds (default 10)\n"
      "  --seed=N             arrival-schedule seed (default 1)\n"
      "  --connections=N      sender threads (default 8)\n"
      "  --trace=0|1          send a sampled traceparent per request and\n"
      "                       report the slowest trace ids (default 0)\n"
      "  --out=FILE           JSON report (default BENCH_serve.json)\n"
      "  --version            print build provenance and exit\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", rwdt::common::BuildInfo::Get().ToString().c_str());
      return 0;
    } else if (ParseFlag(argv[i], "--target", &v)) {
      const size_t colon = v.rfind(':');
      if (colon == std::string::npos) return Usage(argv[0]);
      config.host = v.substr(0, colon);
      config.port = v.substr(colon + 1);
    } else if (ParseFlag(argv[i], "--path", &v)) {
      config.path = v;
    } else if (ParseFlag(argv[i], "--tenant", &v)) {
      config.tenant = v;
    } else if (ParseFlag(argv[i], "--profile", &v)) {
      const auto profile = rwdt::loggen::ParseRateProfile(v);
      if (!profile.ok()) return Usage(argv[0]);
      config.rate.profile = profile.value();
    } else if (ParseFlag(argv[i], "--qps", &v)) {
      config.rate.base_qps = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--burst-qps", &v)) {
      config.rate.burst_qps = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--period", &v)) {
      config.rate.period_s = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--amplitude", &v)) {
      config.rate.amplitude = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--duty", &v)) {
      config.rate.burst_duty = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--duration", &v)) {
      config.duration_s = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      config.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--connections", &v)) {
      config.connections = static_cast<unsigned>(std::atoi(v.c_str()));
    } else if (ParseFlag(argv[i], "--trace", &v)) {
      config.trace = std::atoi(v.c_str()) != 0;
    } else if (ParseFlag(argv[i], "--out", &v)) {
      config.out = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (config.connections == 0 || config.duration_s <= 0) {
    return Usage(argv[0]);
  }
  const rwdt::Status valid = config.rate.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", valid.message().c_str());
    return 2;
  }

  // Deterministic workload: the arrival schedule and the query texts
  // both derive from --seed alone.
  const rwdt::loggen::RateSchedule schedule(config.rate);
  const std::vector<double> arrivals =
      rwdt::loggen::GenerateArrivals(schedule, config.duration_s, config.seed);
  std::vector<std::string> queries;
  for (const auto& entry : rwdt::loggen::GenerateLog(
           rwdt::loggen::ExampleProfile(512), config.seed)) {
    if (entry.intended_valid) queries.push_back(entry.text);
  }
  if (queries.empty()) queries.push_back("SELECT ?s WHERE { ?s ?p ?o }");

  std::fprintf(stderr,
               "loadgen: %zu arrivals over %.1fs (offered %.1f qps, profile "
               "%s) -> %s:%s%s\n",
               arrivals.size(), config.duration_s,
               arrivals.size() / config.duration_s,
               rwdt::loggen::RateProfileName(config.rate.profile),
               config.host.c_str(), config.port.c_str(), config.path.c_str());

  std::vector<SenderStats> stats(config.connections);
  std::vector<std::thread> senders;
  // Client-side resource cost of the run: rusage deltas around the send
  // window separate "the server is slow" from "the client is starved".
  rusage usage_before{};
  getrusage(RUSAGE_SELF, &usage_before);
  const auto start = Clock::now();
  for (unsigned t = 0; t < config.connections; ++t) {
    senders.emplace_back(Sender, std::cref(config), std::cref(arrivals), t,
                         config.connections, std::cref(queries), start,
                         &stats[t]);
  }
  for (auto& thread : senders) thread.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  rusage usage_after{};
  getrusage(RUSAGE_SELF, &usage_after);
  const auto tv_s = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) + tv.tv_usec / 1e6;
  };
  const double client_utime_s =
      tv_s(usage_after.ru_utime) - tv_s(usage_before.ru_utime);
  const double client_stime_s =
      tv_s(usage_after.ru_stime) - tv_s(usage_before.ru_stime);

  // Merge per-sender stats.
  std::map<int, uint64_t> status_counts;
  uint64_t transport_errors = 0;
  std::vector<double> latencies;
  std::vector<RequestRecord> records;
  for (const SenderStats& s : stats) {
    transport_errors += s.transport_errors;
    for (const auto& [code, n] : s.status_counts) status_counts[code] += n;
    latencies.insert(latencies.end(), s.latencies_ms.begin(),
                     s.latencies_ms.end());
    records.insert(records.end(), s.records.begin(), s.records.end());
  }
  std::sort(latencies.begin(), latencies.end());
  uint64_t completed = 0, ok200 = 0, shed = 0;
  for (const auto& [code, n] : status_counts) {
    completed += n;
    if (code == 200) ok200 += n;
    if (code == 429 || code == 503) shed += n;
  }

  std::string json;
  rwdt::JsonWriter w(&json);
  w.BeginObject();
  w.RawField("build", rwdt::common::BuildInfo::Get().ToJson());
  w.Key("config").BeginObject();
  w.StringField("target", config.host + ":" + config.port);
  w.StringField("path", config.path);
  w.StringField("profile",
                rwdt::loggen::RateProfileName(config.rate.profile));
  w.DoubleField("base_qps", config.rate.base_qps);
  w.DoubleField("duration_s", config.duration_s);
  w.UIntField("seed", config.seed);
  w.UIntField("connections", config.connections);
  w.EndObject();
  w.UIntField("offered", arrivals.size());
  w.DoubleField("offered_qps", arrivals.size() / config.duration_s);
  w.UIntField("completed", completed);
  w.DoubleField("achieved_qps", completed / wall_s);
  w.UIntField("ok_200", ok200);
  w.UIntField("shed_429_503", shed);
  w.DoubleField("shed_rate", completed > 0
                                 ? static_cast<double>(shed) / completed
                                 : 0.0);
  w.UIntField("transport_errors", transport_errors);
  w.Key("status_counts").BeginObject();
  for (const auto& [code, n] : status_counts) {
    w.UIntField(std::to_string(code), n);
  }
  w.EndObject();
  w.Key("latency_ms").BeginObject();
  w.DoubleField("p50", Percentile(&latencies, 0.50));
  w.DoubleField("p90", Percentile(&latencies, 0.90));
  w.DoubleField("p99", Percentile(&latencies, 0.99));
  w.DoubleField("max", latencies.empty() ? 0 : latencies.back());
  w.EndObject();
  // If the client burns ~wall_s of CPU, the latency percentiles above
  // measure loadgen, not the server — this block makes that visible.
  w.Key("client_rusage").BeginObject();
  w.DoubleField("utime_s", client_utime_s);
  w.DoubleField("stime_s", client_stime_s);
  w.DoubleField("cpu_per_request_us",
                completed > 0 ? 1e6 * (client_utime_s + client_stime_s) /
                                    static_cast<double>(completed)
                              : 0.0);
  w.UIntField("maxrss_kb", static_cast<uint64_t>(usage_after.ru_maxrss));
  w.EndObject();
  if (config.trace) {
    // Client-observed slowest requests, named by trace id: look the
    // same ids up in the server's /slowz, /tracez, and histogram
    // exemplars to see where each one's time actually went.
    const size_t top = std::min<size_t>(records.size(), 5);
    std::partial_sort(records.begin(), records.begin() + top, records.end(),
                      [](const RequestRecord& a, const RequestRecord& b) {
                        return a.latency_ms > b.latency_ms;
                      });
    w.Key("slowest").BeginArray();
    for (size_t i = 0; i < top; ++i) {
      w.BeginObject();
      w.StringField("trace_id", rwdt::obs::TraceIdHex(records[i].trace_id));
      w.DoubleField("latency_ms", records[i].latency_ms);
      w.IntField("status", records[i].status);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();

  std::ofstream out(config.out);
  out << json << "\n";
  out.close();
  std::fprintf(stderr,
               "loadgen: completed %llu/%zu (200s %llu, shed %llu, errors "
               "%llu), p50 %.2fms p99 %.2fms -> %s\n",
               static_cast<unsigned long long>(completed), arrivals.size(),
               static_cast<unsigned long long>(ok200),
               static_cast<unsigned long long>(shed),
               static_cast<unsigned long long>(transport_errors),
               Percentile(&latencies, 0.50), Percentile(&latencies, 0.99),
               config.out.c_str());
  return ok200 > 0 ? 0 : 1;
}
