#!/usr/bin/env python3
"""Unify per-PR bench JSON into one trajectory file, and flag regressions.

Every bench binary writes a BENCH_*.json whose shape is its own business;
the only shared contract is the `provenance` block (git sha, build type,
hw_threads, hostname) emitted by bench/study_util.h. This script flattens
each report's numeric leaves into dotted metric paths, appends one point
per (sha, bench) to BENCH_trajectory.json, and can gate CI by comparing
the newest point against the median of the history.

Usage:
  # Merge this run's reports into the trajectory (creates it if absent):
  bench_trajectory.py merge --trajectory=BENCH_trajectory.json \
      BENCH_log_study.json BENCH_ingest.json [BENCH_exec.json ...]

  # Regression gate: compare the newest point per bench against the
  # median of all earlier points, direction-aware per metric name.
  bench_trajectory.py check --trajectory=BENCH_trajectory.json \
      --tolerance=0.25 [--min-history=3]

  # Prove the detector works without real history:
  bench_trajectory.py selftest

Exit status: 0 ok, 1 regression found (check) or selftest failure,
2 usage / malformed input.

Direction rules (by metric path suffix):
  higher is better:  *_per_sec, *qps, *speedup*, *hit_rate*
  lower is better:   *_ms, *_seconds, *_s, *_bytes, *maxrss*, *dropped*,
                     *errors*, *_us
  everything else:   informational only, never gated.

The check skips metrics with fewer than --min-history points (a fresh
repo should not fail CI) and skips near-zero baselines where relative
comparison is meaningless.
"""

import argparse
import json
import math
import os
import sys

HIGHER_BETTER = ("_per_sec", "qps", "speedup", "hit_rate")
LOWER_BETTER = ("_ms", "_seconds", "_s", "_bytes", "maxrss_kb", "dropped",
                "errors", "_us")

# Leaves that are configuration or identity, not performance: never gated
# and not worth storing as series.
SKIP_SUBSTRINGS = ("provenance", "config.", "seed", "threads", "entries",
                   "scale", "status_counts", "corrupted", "offered",
                   "store_triples", "rows")


def metric_direction(path):
    """'up', 'down', or None (informational) for a dotted metric path."""
    leaf = path.rsplit(".", 1)[-1]
    for suffix in HIGHER_BETTER:
        if leaf.endswith(suffix) or suffix in leaf:
            return "up"
    for suffix in LOWER_BETTER:
        if leaf.endswith(suffix):
            return "down"
    return None


def flatten(obj, prefix=""):
    """Yields (dotted_path, float) for every numeric leaf of a JSON tree.

    Arrays of objects are keyed by a discriminating field when one exists
    (reader/class/threads) so series stay aligned across runs even when
    array order changes; otherwise by index.
    """
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else key
            yield from flatten(value, path)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            key = str(i)
            if isinstance(value, dict):
                for disc in ("reader", "class", "name", "threads"):
                    if disc in value and isinstance(value[disc], (str, int)):
                        key = str(value[disc])
                        break
            yield from flatten(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(obj, bool):
        return  # bools are ints in Python; not metrics
    elif isinstance(obj, (int, float)):
        if math.isfinite(obj):
            yield prefix, float(obj)


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def report_key(report, path):
    """The bench name a report's series are grouped under."""
    name = report.get("bench")
    if isinstance(name, str) and name:
        return name
    return os.path.splitext(os.path.basename(path))[0]


def report_sha(report):
    prov = report.get("provenance")
    if isinstance(prov, dict):
        build = prov.get("build")
        if isinstance(build, dict):
            sha = build.get("git_commit") or build.get("git_sha")
            if isinstance(sha, str) and sha:
                return sha
    # Older reports (pre-provenance) carried a top-level build block.
    build = report.get("build")
    if isinstance(build, dict):
        sha = build.get("git_commit") or build.get("git_sha")
        if isinstance(sha, str) and sha:
            return sha
    return "unknown"


def load_trajectory(path):
    if not os.path.exists(path):
        return {"format": "rwdt-bench-trajectory-v1", "points": []}
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict) or not isinstance(data.get("points"), list):
        raise ValueError(f"{path}: not a trajectory file")
    return data


def cmd_merge(args):
    trajectory = load_trajectory(args.trajectory)
    merged = 0
    for path in args.reports:
        if not os.path.exists(path):
            print(f"bench_trajectory: skipping missing {path}",
                  file=sys.stderr)
            continue
        report = load_report(path)
        bench = report_key(report, path)
        sha = report_sha(report)
        metrics = {
            p: v
            for p, v in flatten(report)
            if not any(s in p for s in SKIP_SUBSTRINGS)
        }
        if not metrics:
            print(f"bench_trajectory: {path} has no numeric metrics",
                  file=sys.stderr)
            continue
        point = {"bench": bench, "sha": sha, "metrics": metrics}
        # One point per (bench, sha): a CI re-run replaces, not appends,
        # so retried builds don't double-weight the median.
        trajectory["points"] = [
            pt for pt in trajectory["points"]
            if not (pt["bench"] == bench and pt["sha"] == sha)
        ] + [point]
        merged += 1
        print(f"bench_trajectory: merged {bench}@{sha[:12]} "
              f"({len(metrics)} metrics) from {path}")
    with open(args.trajectory, "w", encoding="utf-8") as f:
        json.dump(trajectory, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"bench_trajectory: {args.trajectory} now has "
          f"{len(trajectory['points'])} points")
    return 0 if merged > 0 else 2


def series(points, bench):
    """Ordered list of metric dicts for one bench (file order = time)."""
    return [pt["metrics"] for pt in points if pt["bench"] == bench]


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_trajectory(trajectory, tolerance, min_history):
    """Returns a list of regression strings (empty = pass)."""
    regressions = []
    benches = sorted({pt["bench"] for pt in trajectory["points"]})
    for bench in benches:
        runs = series(trajectory["points"], bench)
        if len(runs) < min_history:
            continue
        latest = runs[-1]
        history = runs[:-1]
        for path, value in sorted(latest.items()):
            direction = metric_direction(path)
            if direction is None:
                continue
            prior = [m[path] for m in history if path in m]
            if len(prior) < min_history - 1:
                continue
            base = median(prior)
            if abs(base) < 1e-9:
                continue  # relative change against ~0 is noise
            change = (value - base) / abs(base)
            if direction == "up" and change < -tolerance:
                regressions.append(
                    f"{bench}:{path} fell {-change:.1%} "
                    f"(now {value:.6g}, median {base:.6g})")
            elif direction == "down" and change > tolerance:
                regressions.append(
                    f"{bench}:{path} rose {change:.1%} "
                    f"(now {value:.6g}, median {base:.6g})")
    return regressions


def cmd_check(args):
    trajectory = load_trajectory(args.trajectory)
    regressions = check_trajectory(trajectory, args.tolerance,
                                   args.min_history)
    points = len(trajectory["points"])
    if regressions:
        print(f"bench_trajectory: {len(regressions)} regression(s) "
              f"across {points} points:")
        for r in regressions:
            print(f"  REGRESSION {r}")
        return 1
    print(f"bench_trajectory: no regressions across {points} points "
          f"(tolerance {args.tolerance:.0%}, min history "
          f"{args.min_history})")
    return 0


def cmd_selftest(_args):
    """Synthesizes a history and asserts the detector fires correctly."""

    def point(sha, qps, wall_ms):
        return {
            "bench": "synthetic",
            "sha": sha,
            "metrics": {"queries_per_sec": qps, "wall_ms": wall_ms},
        }

    # Steady history, then a 40% throughput drop + 40% wall regression.
    bad = {
        "format": "rwdt-bench-trajectory-v1",
        "points": [point(f"sha{i}", 1000.0 + i, 50.0) for i in range(4)] +
                  [point("sha_bad", 600.0, 70.0)],
    }
    found = check_trajectory(bad, tolerance=0.25, min_history=3)
    if len(found) != 2:
        print(f"selftest FAIL: expected 2 regressions, got {found}")
        return 1

    # The same drop within tolerance must pass.
    good = {
        "format": "rwdt-bench-trajectory-v1",
        "points": [point(f"sha{i}", 1000.0 + i, 50.0) for i in range(4)] +
                  [point("sha_ok", 950.0, 53.0)],
    }
    found = check_trajectory(good, tolerance=0.25, min_history=3)
    if found:
        print(f"selftest FAIL: false positive {found}")
        return 1

    # Short history must never gate.
    fresh = {
        "format": "rwdt-bench-trajectory-v1",
        "points": [point("sha0", 1000.0, 50.0), point("sha1", 1.0, 9999.0)],
    }
    found = check_trajectory(fresh, tolerance=0.25, min_history=3)
    if found:
        print(f"selftest FAIL: gated with <min_history points: {found}")
        return 1

    # Flatten must key arrays by discriminator and skip bools/config.
    report = {
        "bench": "ingest",
        "provenance": {"build": {"git_commit": "abc"}, "hw_threads": 8},
        "runs": [
            {"reader": "legacy", "wall_ms": 100.0, "used_mmap": False},
            {"reader": "block", "wall_ms": 40.0, "used_mmap": True},
        ],
    }
    flat = dict(flatten(report))
    if flat.get("runs.block.wall_ms") != 40.0:
        print(f"selftest FAIL: discriminator keying broken: {flat}")
        return 1
    if any("used_mmap" in k for k in flat):
        print(f"selftest FAIL: bool leaked into metrics: {flat}")
        return 1
    if report_sha(report) != "abc":
        print(f"selftest FAIL: sha extraction broken")
        return 1

    print("selftest OK: drop detected, tolerance respected, fresh history "
          "skipped, flatten keyed by discriminator")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog="bench_trajectory.py")
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge", help="fold BENCH_*.json into the "
                             "trajectory")
    p_merge.add_argument("--trajectory", default="BENCH_trajectory.json")
    p_merge.add_argument("reports", nargs="+")
    p_merge.set_defaults(func=cmd_merge)

    p_check = sub.add_parser("check", help="gate on the newest point vs "
                             "the median of the history")
    p_check.add_argument("--trajectory", default="BENCH_trajectory.json")
    p_check.add_argument("--tolerance", type=float, default=0.25)
    p_check.add_argument("--min-history", type=int, default=3)
    p_check.set_defaults(func=cmd_check)

    p_self = sub.add_parser("selftest", help="synthesize history and "
                            "assert the detector fires")
    p_self.set_defaults(func=cmd_selftest)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_trajectory: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
