#ifndef RWDT_INGEST_BLOCK_READER_H_
#define RWDT_INGEST_BLOCK_READER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rwdt::ingest {

/// Hands out a log as a sequence of large contiguous byte blocks —
/// the zero-copy half of the block ingest pipeline.
///
/// Two acquisition modes, chosen at construction:
///
///   * **mmap** (`OpenFile` on a regular file): the whole file is mapped
///     read-only and `Next()` slices consecutive `block_bytes` views out
///     of the mapping. No bytes are ever copied, and every view stays
///     valid for the reader's lifetime (`stable_blocks() == true`), so
///     downstream `string_view` records can flow into the engine without
///     owning anything.
///   * **buffered read** (`OpenFile` on a non-regular file, or the
///     `std::istream` constructor for pipes/sockets/in-memory streams):
///     `Next()` refills one owned buffer via read(2)/istream::read. The
///     previous block's memory is recycled by the next `Next()` call
///     (`stable_blocks() == false`), so consumers must finish borrowing
///     before advancing — `LineScanner` exposes a release hook for
///     exactly this.
///
/// Counters (`blocks_read`, `bytes_read`, `used_mmap`) feed the ingest
/// report and the metric registry.
struct BlockReaderOptions {
  /// Block granularity. mmap mode slices the mapping at this size; read
  /// mode allocates one buffer of this size. Tests shrink it to 1 byte
  /// to sweep records across every possible block boundary.
  size_t block_bytes = size_t{1} << 20;  // 1 MiB

  /// Escape hatch: force the read(2) path even for regular files
  /// (differential tests; filesystems where mmap misbehaves).
  bool allow_mmap = true;
};

class BlockReader {
 public:
  using Options = BlockReaderOptions;

  /// Opens `path`, mapping it when it is a regular file and mmap
  /// succeeds, else falling back to plain read(2). kNotFound when the
  /// file cannot be opened.
  static Result<BlockReader> OpenFile(const std::string& path,
                                      const Options& options = {});

  /// Wraps a caller-owned stream (must outlive the reader). Always the
  /// buffered path: generic istreams expose no mappable fd.
  explicit BlockReader(std::istream* in, const Options& options = {});

  ~BlockReader();
  BlockReader(BlockReader&& other) noexcept;
  BlockReader& operator=(BlockReader&& other) noexcept;
  BlockReader(const BlockReader&) = delete;
  BlockReader& operator=(const BlockReader&) = delete;

  /// The next block of up to `block_bytes` bytes; empty exactly at end
  /// of input. In unstable mode this call invalidates the previously
  /// returned block.
  std::string_view Next();

  /// True when every view returned by Next() stays valid until the
  /// reader is destroyed (the mmap path).
  bool stable_blocks() const { return map_ != nullptr; }

  bool used_mmap() const { return map_ != nullptr; }
  uint64_t blocks_read() const { return blocks_read_; }
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  BlockReader() = default;
  void Close();

  size_t block_bytes_ = size_t{1} << 20;

  // mmap mode.
  const char* map_ = nullptr;
  size_t map_size_ = 0;
  size_t map_pos_ = 0;

  // read mode: exactly one of fd_ >= 0 or in_ != nullptr.
  int fd_ = -1;
  std::istream* in_ = nullptr;
  std::vector<char> buffer_;

  uint64_t blocks_read_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace rwdt::ingest

#endif  // RWDT_INGEST_BLOCK_READER_H_
