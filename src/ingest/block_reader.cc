#include "ingest/block_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <utility>

namespace rwdt::ingest {

Result<BlockReader> BlockReader::OpenFile(const std::string& path,
                                          const Options& options) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open log file: " + path + ": " +
                            std::strerror(errno));
  }

  BlockReader reader;
  reader.block_bytes_ = options.block_bytes;

  struct stat st = {};
  if (options.allow_mmap && ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) &&
      st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      // The mapping owns the pages; the fd is only needed for mmap().
      ::close(fd);
#if defined(POSIX_MADV_SEQUENTIAL)
      ::posix_madvise(map, static_cast<size_t>(st.st_size),
                      POSIX_MADV_SEQUENTIAL);
#endif
      reader.map_ = static_cast<const char*>(map);
      reader.map_size_ = static_cast<size_t>(st.st_size);
      return reader;
    }
  }

  // Not a regular file, empty, or mmap refused: plain read(2).
  reader.fd_ = fd;
  reader.buffer_.resize(reader.block_bytes_);
  return reader;
}

BlockReader::BlockReader(std::istream* in, const Options& options)
    : block_bytes_(options.block_bytes), in_(in) {
  buffer_.resize(block_bytes_);
}

BlockReader::~BlockReader() { Close(); }

void BlockReader::Close() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_size_);
    map_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

BlockReader::BlockReader(BlockReader&& other) noexcept { *this = std::move(other); }

BlockReader& BlockReader::operator=(BlockReader&& other) noexcept {
  if (this == &other) return *this;
  Close();
  block_bytes_ = other.block_bytes_;
  map_ = std::exchange(other.map_, nullptr);
  map_size_ = std::exchange(other.map_size_, 0);
  map_pos_ = std::exchange(other.map_pos_, 0);
  fd_ = std::exchange(other.fd_, -1);
  in_ = std::exchange(other.in_, nullptr);
  buffer_ = std::move(other.buffer_);
  blocks_read_ = other.blocks_read_;
  bytes_read_ = other.bytes_read_;
  return *this;
}

std::string_view BlockReader::Next() {
  if (map_ != nullptr) {
    if (map_pos_ >= map_size_) return {};
    const size_t n = std::min(block_bytes_, map_size_ - map_pos_);
    const std::string_view block(map_ + map_pos_, n);
    map_pos_ += n;
    blocks_read_++;
    bytes_read_ += n;
    return block;
  }

  size_t filled = 0;
  if (fd_ >= 0) {
    // read(2) may return short for signals or pipe scheduling; fill the
    // whole block so downstream carry stitches stay one-per-block.
    while (filled < buffer_.size()) {
      const ssize_t n =
          ::read(fd_, buffer_.data() + filled, buffer_.size() - filled);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // surface whatever was read; EOF ends the stream cleanly
      }
      if (n == 0) break;
      filled += static_cast<size_t>(n);
    }
  } else if (in_ != nullptr) {
    in_->read(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    filled = static_cast<size_t>(in_->gcount());
  }
  if (filled == 0) return {};
  blocks_read_++;
  bytes_read_ += filled;
  return {buffer_.data(), filled};
}

}  // namespace rwdt::ingest
