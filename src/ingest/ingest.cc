#include "ingest/ingest.h"

#include <fstream>
#include <istream>
#include <streambuf>
#include <utility>
#include <vector>

#include "loggen/sparql_gen.h"
#include "tree/xml.h"

namespace rwdt::ingest {
namespace {

/// Reads one physical line from `buf` into *line, appending at most
/// `max` bytes; the rest of an over-long line is consumed and dropped,
/// so memory stays bounded no matter what the log contains. Returns
/// false at end of input with nothing read. A trailing '\r' (CRLF logs)
/// is stripped. `*bytes` counts every byte consumed, terminator
/// included.
bool ReadLine(std::streambuf* buf, size_t max, std::string* line,
              bool* overflow, uint64_t* bytes) {
  using Traits = std::streambuf::traits_type;
  line->clear();
  *overflow = false;
  int ch = buf->sbumpc();
  if (Traits::eq_int_type(ch, Traits::eof())) return false;
  while (!Traits::eq_int_type(ch, Traits::eof()) && ch != '\n') {
    ++*bytes;
    if (line->size() < max) {
      line->push_back(static_cast<char>(ch));
    } else {
      *overflow = true;
    }
    ch = buf->sbumpc();
  }
  if (ch == '\n') ++*bytes;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

bool IsBlank(std::string_view s) {
  for (const char c : s) {
    if (c != ' ' && c != '\t') return false;
  }
  return true;
}

Result<IngestReport> Run(std::istream& in, engine::Engine* engine,
                         const IngestOptions& options) {
  RWDT_RETURN_IF_ERROR(options.Validate());

  IngestReport report;
  engine::EngineStream stream =
      engine->OpenStream(options.source_name, options.wikidata_like);

  std::vector<loggen::LogEntry> chunk;
  chunk.reserve(options.chunk_entries);
  auto flush = [&] {
    if (chunk.empty()) return;
    stream.Feed(chunk);
    chunk.clear();
  };

  std::streambuf* buf = in.rdbuf();
  std::string line;
  bool overflow = false;
  while (ReadLine(buf, options.max_line_bytes, &line, &overflow,
                  &report.bytes_read)) {
    report.lines_read++;
    if (options.skip_blank_lines && IsBlank(line)) {
      report.blank_lines++;
      continue;
    }
    // Oversize first: a truncated line's tab or encoding is meaningless.
    if (overflow) {
      stream.Reject(ErrorClass::kResourceExhausted);
      continue;
    }

    std::string_view query = line;
    if (options.format == LogFormat::kTsv) {
      const size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        // Structurally broken record; no source column to attribute.
        stream.Reject(ErrorClass::kParseError);
        continue;
      }
      report.per_source[line.substr(0, tab)]++;
      query = std::string_view(line).substr(tab + 1);
    }

    if (options.validate_utf8 && !tree::IsValidUtf8(query)) {
      stream.Reject(ErrorClass::kEncodingError);
      continue;
    }

    chunk.push_back(loggen::LogEntry{std::string(query), true});
    if (chunk.size() >= options.chunk_entries) flush();
  }
  flush();

  report.study = stream.Finish();
  report.metrics = engine->Snapshot();
  return report;
}

}  // namespace

Status IngestOptions::Validate() const {
  if (chunk_entries == 0) {
    return Status::InvalidArgument("chunk_entries must be > 0");
  }
  if (max_line_bytes == 0) {
    return Status::InvalidArgument("max_line_bytes must be > 0");
  }
  RWDT_RETURN_IF_ERROR(engine.Validate());
  return Status::Ok();
}

Result<IngestReport> IngestStream(std::istream& in,
                                  const IngestOptions& options) {
  RWDT_RETURN_IF_ERROR(options.Validate());
  engine::Engine engine(options.engine);
  return Run(in, &engine, options);
}

Result<IngestReport> IngestStream(std::istream& in, engine::Engine* engine,
                                  const IngestOptions& options) {
  return Run(in, engine, options);
}

Result<IngestReport> IngestFile(const std::string& path,
                                const IngestOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("cannot open log file: " + path);
  }
  return IngestStream(file, options);
}

}  // namespace rwdt::ingest
