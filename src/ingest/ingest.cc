#include "ingest/ingest.h"

#include <fstream>
#include <istream>
#include <memory>
#include <streambuf>
#include <utility>
#include <vector>

#include <array>

#include "common/json.h"
#include "loggen/sparql_gen.h"
#include "obs/log.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tree/xml.h"

namespace rwdt::ingest {
namespace {

/// Reads one physical line from `buf` into *line, appending at most
/// `max` bytes; the rest of an over-long line is consumed and dropped,
/// so memory stays bounded no matter what the log contains. Returns
/// false at end of input with nothing read. A trailing '\r' (CRLF logs)
/// is stripped. `*bytes` counts every byte consumed, terminator
/// included.
bool ReadLine(std::streambuf* buf, size_t max, std::string* line,
              bool* overflow, uint64_t* bytes) {
  using Traits = std::streambuf::traits_type;
  line->clear();
  *overflow = false;
  int ch = buf->sbumpc();
  if (Traits::eq_int_type(ch, Traits::eof())) return false;
  while (!Traits::eq_int_type(ch, Traits::eof()) && ch != '\n') {
    ++*bytes;
    if (line->size() < max) {
      line->push_back(static_cast<char>(ch));
    } else {
      *overflow = true;
    }
    ch = buf->sbumpc();
  }
  if (ch == '\n') ++*bytes;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

bool IsBlank(std::string_view s) {
  for (const char c : s) {
    if (c != ' ' && c != '\t') return false;
  }
  return true;
}

/// Process-wide first-class registry counters for the reader taxonomy
/// (`/metrics` shows ingest health without waiting for the final
/// IngestReport). Instruments are registered once and cached — the
/// per-line cost is one relaxed fetch_add.
struct IngestInstruments {
  obs::Counter* lines;
  obs::Counter* bytes;
  obs::Counter* blank_lines;
  std::array<obs::Counter*, kNumErrorClasses> rejects;

  static const IngestInstruments& Get() {
    static const IngestInstruments* instruments = [] {
      auto* in = new IngestInstruments();
      auto& reg = obs::MetricRegistry::Global();
      in->lines = reg.GetCounter("rwdt_ingest_lines",
                                 "Physical lines read by the raw-log reader.");
      in->bytes = reg.GetCounter("rwdt_ingest_bytes",
                                 "Raw bytes consumed by the reader.");
      in->blank_lines = reg.GetCounter("rwdt_ingest_blank_lines",
                                       "Blank lines skipped by the reader.");
      for (size_t c = 0; c < kNumErrorClasses; ++c) {
        in->rejects[c] = reg.GetCounter(
            "rwdt_ingest_rejects",
            "Reader-level rejects by taxonomy class.",
            {{"class", ErrorClassName(static_cast<ErrorClass>(c))}});
      }
      return in;
    }();
    return *instruments;
  }
};

Result<IngestReport> Run(std::istream& in, engine::Engine* engine,
                         const IngestOptions& options) {
  RWDT_RETURN_IF_ERROR(options.Validate());

  obs::Span ingest_span("ingest");
  IngestReport report;
  engine::EngineStream stream =
      engine->OpenStream(options.source_name, options.wikidata_like);

  // Live reporting for this ingest: snapshots the engine (which may be
  // caller-owned and warm) on a background thread. The final report is
  // rendered in Stop(), after the last Feed.
  std::unique_ptr<obs::ProgressReporter> reporter;
  if (options.progress.enabled()) {
    obs::ProgressOptions popts = options.progress;
    if (popts.label == "run") popts.label = "ingest:" + options.source_name;
    reporter = std::make_unique<obs::ProgressReporter>(
        [engine] { return engine->Snapshot(); }, std::move(popts));
  }

  std::vector<loggen::LogEntry> chunk;
  chunk.reserve(options.chunk_entries);
  auto flush = [&] {
    if (chunk.empty()) return;
    stream.Feed(chunk);
    chunk.clear();
  };

  // Every reader-level reject is a structured log event carrying the
  // error class, physical line number, and the ingest stage that
  // tripped. DEBUG level: per-line events are only composed when the
  // logger is opened up that far, so a 20%-corrupt million-line log
  // costs nothing by default.
  const IngestInstruments& metrics = IngestInstruments::Get();
  auto reject = [&](ErrorClass c, const char* stage) {
    stream.Reject(c);
    metrics.rejects[static_cast<size_t>(c)]->Increment();
    RWDT_LOG(DEBUG) << "ingest reject: class=" << ErrorClassName(c)
                    << " line=" << report.lines_read << " stage=" << stage
                    << " source=" << options.source_name;
  };
  // Byte progress reaches /metrics at chunk granularity (delta at each
  // flush), not per line — one shared-counter touch per chunk.
  uint64_t bytes_reported = 0;
  auto flush_bytes = [&] {
    metrics.bytes->Increment(report.bytes_read - bytes_reported);
    bytes_reported = report.bytes_read;
  };

  std::streambuf* buf = in.rdbuf();
  std::string line;
  bool overflow = false;
  while (ReadLine(buf, options.max_line_bytes, &line, &overflow,
                  &report.bytes_read)) {
    report.lines_read++;
    metrics.lines->Increment();
    if (options.skip_blank_lines && IsBlank(line)) {
      report.blank_lines++;
      metrics.blank_lines->Increment();
      continue;
    }
    // Oversize first: a truncated line's tab or encoding is meaningless.
    if (overflow) {
      reject(ErrorClass::kResourceExhausted, "read");
      continue;
    }

    std::string_view query = line;
    if (options.format == LogFormat::kTsv) {
      const size_t tab = line.find('\t');
      if (tab == std::string::npos) {
        // Structurally broken record; no source column to attribute.
        reject(ErrorClass::kParseError, "split");
        continue;
      }
      report.per_source[line.substr(0, tab)]++;
      query = std::string_view(line).substr(tab + 1);
    }

    if (options.validate_utf8 && !tree::IsValidUtf8(query)) {
      reject(ErrorClass::kEncodingError, "utf8");
      continue;
    }

    chunk.push_back(loggen::LogEntry{std::string(query), true});
    if (chunk.size() >= options.chunk_entries) {
      flush();
      flush_bytes();
    }
  }
  flush();
  flush_bytes();

  report.study = stream.Finish();
  if (reporter != nullptr) reporter->Stop();
  report.metrics = engine->Snapshot();
  RWDT_LOG(INFO) << "ingest " << options.source_name << ": "
                 << report.lines_read << " lines, " << report.study.valid
                 << " valid, " << report.study.unique << " unique, "
                 << (report.study.total - report.study.valid)
                 << " rejected, " << report.blank_lines << " blank";
  return report;
}

}  // namespace

Status IngestOptions::Validate() const {
  if (chunk_entries == 0) {
    return Status::InvalidArgument("chunk_entries must be > 0");
  }
  if (max_line_bytes == 0) {
    return Status::InvalidArgument("max_line_bytes must be > 0");
  }
  RWDT_RETURN_IF_ERROR(engine.Validate());
  RWDT_RETURN_IF_ERROR(progress.Validate());
  return Status::Ok();
}

std::string IngestReport::ToJson() const {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("study").BeginObject();
  w.StringField("name", study.name);
  w.BoolField("wikidata_like", study.wikidata_like);
  w.UIntField("total", study.total);
  w.UIntField("valid", study.valid);
  w.UIntField("unique", study.unique);
  w.Key("errors").BeginObject();
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    w.UIntField(ErrorClassName(static_cast<ErrorClass>(c)), study.errors[c]);
  }
  w.EndObject();  // errors
  w.EndObject();  // study
  w.UIntField("lines_read", lines_read);
  w.UIntField("blank_lines", blank_lines);
  w.UIntField("bytes_read", bytes_read);
  w.Key("per_source").BeginObject();
  for (const auto& [source, count] : per_source) {
    // Raw log bytes: the key must be escaped (JsonWriter always does).
    w.UIntField(source, count);
  }
  w.EndObject();  // per_source
  w.RawField("metrics", metrics.ToJson());
  w.EndObject();
  return out;
}

Result<IngestReport> IngestStream(std::istream& in,
                                  const IngestOptions& options) {
  RWDT_RETURN_IF_ERROR(options.Validate());
  engine::Engine engine(options.engine);
  return Run(in, &engine, options);
}

Result<IngestReport> IngestStream(std::istream& in, engine::Engine* engine,
                                  const IngestOptions& options) {
  return Run(in, engine, options);
}

Result<IngestReport> IngestFile(const std::string& path,
                                const IngestOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("cannot open log file: " + path);
  }
  return IngestStream(file, options);
}

}  // namespace rwdt::ingest
