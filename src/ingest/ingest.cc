#include "ingest/ingest.h"

#include <array>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <span>
#include <streambuf>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/json.h"
#include "common/swar.h"
#include "ingest/block_reader.h"
#include "ingest/line_scanner.h"
#include "loggen/sparql_gen.h"
#include "obs/log.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tree/xml.h"

namespace rwdt::ingest {
namespace {

/// Reads one physical line from `buf` into *line, appending at most
/// `max` bytes; the rest of an over-long line is consumed and dropped,
/// so memory stays bounded no matter what the log contains. Returns
/// false at end of input with nothing read. A trailing '\r' (CRLF logs)
/// is stripped. `*bytes` counts every byte consumed, terminator
/// included.
///
/// This is the kLegacy reader — the byte-at-a-time baseline the block
/// pipeline is differentially tested (and benchmarked) against.
bool ReadLine(std::streambuf* buf, size_t max, std::string* line,
              bool* overflow, uint64_t* bytes) {
  using Traits = std::streambuf::traits_type;
  line->clear();
  *overflow = false;
  int ch = buf->sbumpc();
  if (Traits::eq_int_type(ch, Traits::eof())) return false;
  while (!Traits::eq_int_type(ch, Traits::eof()) && ch != '\n') {
    ++*bytes;
    if (line->size() < max) {
      line->push_back(static_cast<char>(ch));
    } else {
      *overflow = true;
    }
    ch = buf->sbumpc();
  }
  if (ch == '\n') ++*bytes;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

bool IsBlank(std::string_view s) {
  for (const char c : s) {
    if (c != ' ' && c != '\t') return false;
  }
  return true;
}

/// Process-wide first-class registry counters for the reader taxonomy
/// (`/metrics` shows ingest health without waiting for the final
/// IngestReport). Instruments are registered once and cached — the
/// per-line cost is one relaxed fetch_add, and the block counters are
/// folded in at chunk granularity.
struct IngestInstruments {
  obs::Counter* lines;
  obs::Counter* bytes;
  obs::Counter* blank_lines;
  obs::Counter* blocks_mmap;
  obs::Counter* blocks_fallback;
  obs::Counter* carry_stitches;
  std::array<obs::Counter*, 2> runs;  // indexed by ReaderKind
  std::array<obs::Counter*, kNumErrorClasses> rejects;

  static const IngestInstruments& Get() {
    static const IngestInstruments* instruments = [] {
      auto* in = new IngestInstruments();
      auto& reg = obs::MetricRegistry::Global();
      in->lines = reg.GetCounter("rwdt_ingest_lines",
                                 "Physical lines read by the raw-log reader.");
      in->bytes = reg.GetCounter("rwdt_ingest_bytes",
                                 "Raw bytes consumed by the reader.");
      in->blank_lines = reg.GetCounter("rwdt_ingest_blank_lines",
                                       "Blank lines skipped by the reader.");
      in->blocks_mmap =
          reg.GetCounter("rwdt_ingest_blocks",
                         "Blocks handed out by the block reader, by how the "
                         "bytes were acquired.",
                         {{"io", "mmap"}});
      in->blocks_fallback =
          reg.GetCounter("rwdt_ingest_blocks",
                         "Blocks handed out by the block reader, by how the "
                         "bytes were acquired.",
                         {{"io", "read"}});
      in->carry_stitches = reg.GetCounter(
          "rwdt_ingest_carry_stitches",
          "Records straddling a block boundary, re-assembled in the carry "
          "arena.");
      in->runs[static_cast<size_t>(ReaderKind::kBlock)] =
          reg.GetCounter("rwdt_ingest_runs", "Ingest runs by reader kind.",
                         {{"reader", "block"}});
      in->runs[static_cast<size_t>(ReaderKind::kLegacy)] =
          reg.GetCounter("rwdt_ingest_runs", "Ingest runs by reader kind.",
                         {{"reader", "legacy"}});
      for (size_t c = 0; c < kNumErrorClasses; ++c) {
        in->rejects[c] = reg.GetCounter(
            "rwdt_ingest_rejects",
            "Reader-level rejects by taxonomy class.",
            {{"class", ErrorClassName(static_cast<ErrorClass>(c))}});
      }
      return in;
    }();
    return *instruments;
  }
};

/// One ingest run. Exactly one of `in` (stream input) or `path` (file
/// input, eligible for mmap) is non-null. Both readers funnel every
/// line through the same classification body, so the block pipeline
/// cannot drift from the legacy semantics it replaces.
Result<IngestReport> Run(std::istream* in, const std::string* path,
                         engine::Engine* engine,
                         const IngestOptions& options) {
  RWDT_RETURN_IF_ERROR(options.Validate());

  obs::Span ingest_span("ingest");
  IngestReport report;
  report.reader = options.reader;
  engine::EngineStream stream =
      engine->OpenStream(options.source_name, options.wikidata_like);

  // Live reporting for this ingest: snapshots the engine (which may be
  // caller-owned and warm) on a background thread. The final report is
  // rendered in Stop(), after the last Feed.
  std::unique_ptr<obs::ProgressReporter> reporter;
  if (options.progress.enabled()) {
    obs::ProgressOptions popts = options.progress;
    if (popts.label == "run") popts.label = "ingest:" + options.source_name;
    reporter = std::make_unique<obs::ProgressReporter>(
        [engine] { return engine->Snapshot(); }, std::move(popts));
  }

  // The chunk holds borrowed views only. Block reader: views point into
  // the mmapped file / block buffer, or into `chunk_arena` for the one
  // record per block that straddles a boundary. Legacy reader: its line
  // buffer is reused per line, so each line is copied into the arena.
  // Either way the arena is reset once per flush — the per-entry
  // allocation of the old std::string-per-line path, batched into one
  // O(1) clear per chunk.
  std::vector<std::string_view> chunk;
  chunk.reserve(options.chunk_entries);
  Arena chunk_arena;

  const IngestInstruments& metrics = IngestInstruments::Get();
  metrics.runs[static_cast<size_t>(options.reader)]->Increment();

  // Byte/block progress reaches /metrics at chunk granularity (delta at
  // each flush), not per line — one shared-counter touch per chunk.
  uint64_t bytes_reported = 0;
  const BlockReader* active_reader = nullptr;
  const LineScanner* active_scanner = nullptr;
  uint64_t blocks_reported = 0;
  uint64_t stitches_reported = 0;
  auto flush = [&] {
    if (!chunk.empty()) {
      stream.Feed(std::span<const std::string_view>(chunk));
      chunk.clear();
    }
    chunk_arena.Clear();
    metrics.bytes->Increment(report.bytes_read - bytes_reported);
    bytes_reported = report.bytes_read;
    if (active_reader != nullptr) {
      obs::Counter* blocks = active_reader->used_mmap()
                                 ? metrics.blocks_mmap
                                 : metrics.blocks_fallback;
      blocks->Increment(active_reader->blocks_read() - blocks_reported);
      blocks_reported = active_reader->blocks_read();
      metrics.carry_stitches->Increment(active_scanner->carry_stitches() -
                                        stitches_reported);
      stitches_reported = active_scanner->carry_stitches();
    }
  };

  // Every reader-level reject is a structured log event carrying the
  // error class, physical line number, and the ingest stage that
  // tripped. DEBUG level: per-line events are only composed when the
  // logger is opened up that far, so a 20%-corrupt million-line log
  // costs nothing by default.
  auto reject = [&](ErrorClass c, const char* stage) {
    stream.Reject(c);
    metrics.rejects[static_cast<size_t>(c)]->Increment();
    RWDT_LOG(DEBUG) << "ingest reject: class=" << ErrorClassName(c)
                    << " line=" << report.lines_read << " stage=" << stage
                    << " source=" << options.source_name;
  };

  // The shared per-line body. `stable` says the view outlives the chunk
  // (block pipeline); otherwise it is copied into the chunk arena.
  auto process_line = [&](std::string_view line, bool overflow, bool stable) {
    report.lines_read++;
    metrics.lines->Increment();
    if (options.skip_blank_lines && IsBlank(line)) {
      report.blank_lines++;
      metrics.blank_lines->Increment();
      return;
    }
    // Oversize first: a truncated line's tab or encoding is meaningless.
    if (overflow) {
      reject(ErrorClass::kResourceExhausted, "read");
      return;
    }

    std::string_view query = line;
    if (options.format == LogFormat::kTsv) {
      const size_t tab = swar::FindByte(line, '\t');
      if (tab == std::string_view::npos) {
        // Structurally broken record; no source column to attribute.
        reject(ErrorClass::kParseError, "split");
        return;
      }
      report.per_source[std::string(line.substr(0, tab))]++;
      query = line.substr(tab + 1);
    }

    if (options.validate_utf8 && !tree::IsValidUtf8(query)) {
      reject(ErrorClass::kEncodingError, "utf8");
      return;
    }

    chunk.push_back(stable ? query : chunk_arena.Copy(query));
    if (chunk.size() >= options.chunk_entries) flush();
  };

  if (options.reader == ReaderKind::kLegacy) {
    std::streambuf* buf = in->rdbuf();
    std::string line;
    bool overflow = false;
    while (ReadLine(buf, options.max_line_bytes, &line, &overflow,
                    &report.bytes_read)) {
      process_line(line, overflow, /*stable=*/false);
    }
  } else {
    BlockReader::Options bopts;
    bopts.block_bytes = options.block_bytes;
    std::optional<BlockReader> reader;
    if (path != nullptr) {
      RWDT_ASSIGN_OR_RETURN(BlockReader opened,
                            BlockReader::OpenFile(*path, bopts));
      reader.emplace(std::move(opened));
    } else {
      reader.emplace(in, bopts);
    }
    LineScanner scanner(&*reader, options.max_line_bytes, &chunk_arena);
    active_reader = &*reader;
    active_scanner = &scanner;
    // An unstable (non-mmap) reader reuses its block buffer: the chunk's
    // borrowed views must reach the engine before the buffer turns over.
    // mmap blocks are stable for the whole run, so the hook never fires
    // and chunk size alone decides flush timing.
    scanner.set_release_hook(flush);
    LineScanner::Line rec;
    while (scanner.Next(&rec, &report.bytes_read)) {
      process_line(rec.text, rec.overflow, /*stable=*/true);
    }
    report.used_mmap = reader->used_mmap();
    report.blocks_read = reader->blocks_read();
    report.carry_stitches = scanner.carry_stitches();
    flush();
    active_reader = nullptr;
    active_scanner = nullptr;
  }
  flush();

  report.study = stream.Finish();
  if (reporter != nullptr) reporter->Stop();
  report.metrics = engine->Snapshot();
  RWDT_LOG(INFO) << "ingest " << options.source_name << " ("
                 << ReaderKindName(options.reader) << " reader): "
                 << report.lines_read << " lines, " << report.study.valid
                 << " valid, " << report.study.unique << " unique, "
                 << (report.study.total - report.study.valid)
                 << " rejected, " << report.blank_lines << " blank";
  return report;
}

}  // namespace

const char* ReaderKindName(ReaderKind k) {
  return k == ReaderKind::kBlock ? "block" : "legacy";
}

Status IngestOptions::Validate() const {
  if (chunk_entries == 0) {
    return Status::InvalidArgument("chunk_entries must be > 0");
  }
  if (max_line_bytes == 0) {
    return Status::InvalidArgument("max_line_bytes must be > 0");
  }
  if (block_bytes == 0) {
    return Status::InvalidArgument("block_bytes must be > 0");
  }
  RWDT_RETURN_IF_ERROR(engine.Validate());
  RWDT_RETURN_IF_ERROR(progress.Validate());
  return Status::Ok();
}

std::string IngestReport::ToJson() const {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("study").BeginObject();
  w.StringField("name", study.name);
  w.BoolField("wikidata_like", study.wikidata_like);
  w.UIntField("total", study.total);
  w.UIntField("valid", study.valid);
  w.UIntField("unique", study.unique);
  w.Key("errors").BeginObject();
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    w.UIntField(ErrorClassName(static_cast<ErrorClass>(c)), study.errors[c]);
  }
  w.EndObject();  // errors
  w.EndObject();  // study
  w.UIntField("lines_read", lines_read);
  w.UIntField("blank_lines", blank_lines);
  w.UIntField("bytes_read", bytes_read);
  w.StringField("reader", ReaderKindName(reader));
  w.BoolField("used_mmap", used_mmap);
  w.UIntField("blocks_read", blocks_read);
  w.UIntField("carry_stitches", carry_stitches);
  w.Key("per_source").BeginObject();
  for (const auto& [source, count] : per_source) {
    // Raw log bytes: the key must be escaped (JsonWriter always does).
    w.UIntField(source, count);
  }
  w.EndObject();  // per_source
  w.RawField("metrics", metrics.ToJson());
  w.EndObject();
  return out;
}

Result<IngestReport> IngestStream(std::istream& in,
                                  const IngestOptions& options) {
  RWDT_RETURN_IF_ERROR(options.Validate());
  engine::Engine engine(options.engine);
  return Run(&in, nullptr, &engine, options);
}

Result<IngestReport> IngestStream(std::istream& in, engine::Engine* engine,
                                  const IngestOptions& options) {
  return Run(&in, nullptr, engine, options);
}

Result<IngestReport> IngestFile(const std::string& path,
                                const IngestOptions& options) {
  RWDT_RETURN_IF_ERROR(options.Validate());
  engine::Engine engine(options.engine);
  if (options.reader == ReaderKind::kBlock) {
    // The block reader opens the file itself so regular files can be
    // mmapped; existence errors surface as kNotFound exactly as before.
    return Run(nullptr, &path, &engine, options);
  }
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("cannot open log file: " + path);
  }
  return Run(&file, nullptr, &engine, options);
}

}  // namespace rwdt::ingest
