#ifndef RWDT_INGEST_LINE_SCANNER_H_
#define RWDT_INGEST_LINE_SCANNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/arena.h"
#include "ingest/block_reader.h"

namespace rwdt::ingest {

/// Splits a BlockReader's blocks into terminator-free line records
/// without materializing a std::string per line.
///
/// Behavioral contract — byte-for-byte identical to the legacy
/// `istream`/ReadLine reader, proven by the differential tests:
///
///   * Records are separated by '\n'; one trailing '\r' is stripped
///     from the kept bytes (CRLF logs), and a final record without a
///     terminating newline is still emitted.
///   * A record longer than `max_line_bytes` keeps only its first
///     `max_line_bytes` bytes and is flagged `overflow` — the rest is
///     scanned (and counted) but never buffered, so memory stays
///     bounded no matter what the log contains.
///   * `*bytes` accounting counts every byte consumed, terminator and
///     overflowed tail included.
///
/// Zero-copy rule: a record that lies entirely inside one block is
/// returned as a view into that block — no copy. The one record that
/// straddles a block boundary (amortized: one per block) is stitched
/// into `carry_arena` and returned as a view into it
/// (`carry_stitches()` counts these). Views therefore stay valid until
/// (a) the carry arena is reset AND (b), in unstable-block mode, the
/// reader advances. The release hook fires before the scanner fetches
/// a new block from an unstable reader, so a consumer batching views
/// can flush exactly when required and never otherwise.
class LineScanner {
 public:
  struct Line {
    std::string_view text;  // kept bytes, '\r'-stripped, <= max_line_bytes
    bool overflow = false;  // the record exceeded max_line_bytes
  };

  /// `reader` and `carry_arena` are caller-owned and must outlive the
  /// scanner. The caller decides when to reset the arena (the ingest
  /// loop resets it after each engine flush, batching what used to be a
  /// per-entry allocation into one O(1) reset per chunk).
  LineScanner(BlockReader* reader, size_t max_line_bytes, Arena* carry_arena);

  /// Invoked just before the scanner releases the current block of an
  /// unstable reader (whose buffer is about to be overwritten). Never
  /// invoked for a stable (mmap) reader.
  void set_release_hook(std::function<void()> hook) {
    release_hook_ = std::move(hook);
  }

  /// Produces the next record. Returns false exactly at end of input.
  /// `*bytes` is incremented by every byte this record consumed.
  bool Next(Line* out, uint64_t* bytes);

  /// Records that straddled a block boundary and were re-assembled in
  /// the carry arena.
  uint64_t carry_stitches() const { return carry_stitches_; }

 private:
  bool FetchBlock();
  void AppendKept(std::string_view s);
  bool EmitCarry(Line* out, uint64_t* bytes, uint64_t record_len,
                 bool saw_newline);

  BlockReader* reader_;
  size_t max_;
  Arena* arena_;
  std::function<void()> release_hook_;

  std::string_view block_;  // unconsumed remainder of the current block
  std::string carry_;       // kept bytes of the in-progress straddling record
  bool seen_block_ = false;
  uint64_t carry_stitches_ = 0;
};

}  // namespace rwdt::ingest

#endif  // RWDT_INGEST_LINE_SCANNER_H_
