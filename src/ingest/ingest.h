#ifndef RWDT_INGEST_INGEST_H_
#define RWDT_INGEST_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "common/status.h"
#include "core/log_study.h"
#include "engine/engine.h"
#include "obs/progress.h"

namespace rwdt::ingest {

/// How raw log lines are interpreted.
enum class LogFormat {
  /// One query per line; the whole line is the query text.
  kPlain,
  /// Tab-separated "source<TAB>query"; lines without a tab are rejected
  /// as parse errors. The source column feeds IngestReport::per_source.
  kTsv,
};

/// Which reader implementation drives the ingest loop.
enum class ReaderKind {
  /// Zero-copy block pipeline (the default): BlockReader (mmap for
  /// regular files, buffered read otherwise) + SWAR LineScanner, query
  /// text flowing borrower-owned into the engine.
  kBlock,
  /// The historical istream/ReadLine/std::string-per-line reader. Kept
  /// as the differential-testing baseline and for A/B benchmarking;
  /// produces bit-identical reports by contract.
  kLegacy,
};

const char* ReaderKindName(ReaderKind k);

struct IngestOptions {
  LogFormat format = LogFormat::kPlain;

  /// Reader implementation. Results never depend on this; speed does.
  ReaderKind reader = ReaderKind::kBlock;

  /// Block granularity of the kBlock reader. Tests shrink it to a few
  /// bytes to sweep records across every block-boundary alignment.
  size_t block_bytes = size_t{1} << 20;

  /// Entries buffered per EngineStream::Feed call — the memory bound.
  /// Peak resident query text is roughly chunk_entries * mean line
  /// length, independent of the log size.
  size_t chunk_entries = 4096;

  /// Lines longer than this are rejected as kResourceExhausted without
  /// buffering the full line.
  size_t max_line_bytes = 1 << 20;  // 1 MiB

  /// Lines that are not valid UTF-8 are rejected as kEncodingError
  /// before they reach the parser.
  bool validate_utf8 = true;

  /// Skip lines that are empty (or whitespace-only) instead of feeding
  /// them to the parser. They are not counted at all.
  bool skip_blank_lines = true;

  /// Engine configuration: threads, shards, cache, parse limits.
  engine::EngineOptions engine;

  /// Live run reporting for this ingest (independent of
  /// `engine.progress`, which covers engine-level streams): a background
  /// thread logs entries/sec, cache hit rate, and reject counts every
  /// `interval_ms`, and `report_path` receives the final JSON run
  /// report. Disabled by default.
  obs::ProgressOptions progress;

  /// Name recorded on the resulting SourceStudy.
  std::string source_name = "ingest";
  bool wikidata_like = false;

  /// Rejects nonsensical configurations (zero chunk size, zero line
  /// budget, invalid engine options).
  Status Validate() const;
};

/// Everything one ingest run produces.
struct IngestReport {
  /// Total / Valid / Unique aggregates plus per-class error counts.
  /// study.total == study.valid + sum(study.errors).
  core::SourceStudy study;
  /// Engine counters at the end of the run (includes error classes,
  /// cache statistics, stage latencies). Serialize with ToJson/ToText.
  engine::MetricsSnapshot metrics;

  uint64_t lines_read = 0;     // physical lines consumed (incl. skipped)
  uint64_t blank_lines = 0;    // skipped, not counted in study.total
  uint64_t bytes_read = 0;     // payload bytes consumed
  /// kTsv only: entry count per source column value.
  std::map<std::string, uint64_t> per_source;

  /// Reader provenance: which implementation ran and, for kBlock, how
  /// the bytes were acquired and stitched. Zero/false for kLegacy.
  ReaderKind reader = ReaderKind::kLegacy;
  bool used_mmap = false;       // kBlock: file was mapped, not read(2)
  uint64_t blocks_read = 0;     // kBlock: blocks handed out
  uint64_t carry_stitches = 0;  // kBlock: records straddling a boundary

  /// Single JSON object: study counts (total/valid/unique + per-class
  /// errors), reader counters, per-source counts (keys escaped — source
  /// columns of corrupt logs may contain anything), and the full metrics
  /// snapshot.
  std::string ToJson() const;
};

/// Streams a raw query log through the engine in bounded-memory chunks.
///
/// The reader never materializes the log: it buffers at most
/// `chunk_entries` lines (each capped at `max_line_bytes`) before
/// handing them to the engine and releasing them. Malformed lines are
/// classified into the error taxonomy and counted — a corrupt log
/// streams end-to-end without aborting, and the valid subset's
/// aggregates are bit-identical to analyzing only the surviving queries,
/// for any thread count and any chunk size.
Result<IngestReport> IngestStream(std::istream& in,
                                  const IngestOptions& options = {});

/// As above, but runs on a caller-owned engine, sharing its warm
/// memoization cache across logs. `options.engine` is ignored.
Result<IngestReport> IngestStream(std::istream& in, engine::Engine* engine,
                                  const IngestOptions& options);

/// Opens `path` and ingests it. Fails with kNotFound if unreadable.
Result<IngestReport> IngestFile(const std::string& path,
                                const IngestOptions& options = {});

}  // namespace rwdt::ingest

#endif  // RWDT_INGEST_INGEST_H_
