#include "ingest/line_scanner.h"

#include <algorithm>

#include "common/swar.h"

namespace rwdt::ingest {

LineScanner::LineScanner(BlockReader* reader, size_t max_line_bytes,
                         Arena* carry_arena)
    : reader_(reader), max_(max_line_bytes), arena_(carry_arena) {}

bool LineScanner::FetchBlock() {
  // An unstable reader reuses its buffer: give the consumer its one
  // chance to flush views borrowed from the block being released.
  if (seen_block_ && !reader_->stable_blocks() && release_hook_) {
    release_hook_();
  }
  block_ = reader_->Next();
  seen_block_ = seen_block_ || !block_.empty();
  return !block_.empty();
}

void LineScanner::AppendKept(std::string_view s) {
  const size_t kept = std::min(carry_.size(), max_);
  const size_t room = max_ - kept;
  if (room > 0) carry_.append(s.substr(0, std::min(room, s.size())));
}

bool LineScanner::EmitCarry(Line* out, uint64_t* bytes, uint64_t record_len,
                            bool saw_newline) {
  carry_stitches_++;
  // Same order as the legacy reader: truncate to max (AppendKept already
  // did), then strip one trailing '\r' from the kept bytes.
  if (!carry_.empty() && carry_.back() == '\r') carry_.pop_back();
  out->text = arena_->Copy(carry_);
  out->overflow = record_len > max_;
  *bytes += record_len + (saw_newline ? 1 : 0);
  return true;
}

bool LineScanner::Next(Line* out, uint64_t* bytes) {
  uint64_t len = 0;      // total record bytes, kept or not
  bool carried = false;  // record crossed a block boundary
  carry_.clear();
  for (;;) {
    if (block_.empty()) {
      if (!FetchBlock()) {
        if (len == 0) return false;
        return EmitCarry(out, bytes, len, /*saw_newline=*/false);
      }
    }
    const size_t nl = swar::FindByte(block_.data(), block_.size(), '\n');
    if (nl == block_.size()) {
      // No terminator here: the record continues into the next block.
      AppendKept(block_);
      len += block_.size();
      carried = true;
      block_ = {};
      continue;
    }
    if (!carried) {
      // Fast path: the whole record lies in this block — zero copies.
      std::string_view kept = block_.substr(0, std::min(nl, max_));
      len += nl;
      block_.remove_prefix(nl + 1);
      if (!kept.empty() && kept.back() == '\r') kept.remove_suffix(1);
      out->text = kept;
      out->overflow = len > max_;
      *bytes += len + 1;
      return true;
    }
    AppendKept(block_.substr(0, nl));
    len += nl;
    block_.remove_prefix(nl + 1);
    return EmitCarry(out, bytes, len, /*saw_newline=*/true);
  }
}

}  // namespace rwdt::ingest
