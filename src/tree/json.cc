#include "tree/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rwdt::tree {

JsonPtr JsonValue::Null() { return JsonPtr(new JsonValue(Kind::kNull)); }

JsonPtr JsonValue::Bool(bool b) {
  auto v = new JsonValue(Kind::kBool);
  v->bool_ = b;
  return JsonPtr(v);
}

JsonPtr JsonValue::Number(double d) {
  auto v = new JsonValue(Kind::kNumber);
  v->number_ = d;
  return JsonPtr(v);
}

JsonPtr JsonValue::String(std::string s) {
  auto v = new JsonValue(Kind::kString);
  v->string_ = std::move(s);
  return JsonPtr(v);
}

JsonPtr JsonValue::Array(std::vector<JsonPtr> items) {
  auto v = new JsonValue(Kind::kArray);
  v->items_ = std::move(items);
  return JsonPtr(v);
}

JsonPtr JsonValue::Object(
    std::vector<std::pair<std::string, JsonPtr>> members) {
  auto v = new JsonValue(Kind::kObject);
  v->members_ = std::move(members);
  return JsonPtr(v);
}

JsonPtr JsonValue::Get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  return nullptr;
}

std::string JsonValue::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber: {
      char buf[32];
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", number_);
      } else {
        std::snprintf(buf, sizeof(buf), "%g", number_);
      }
      return buf;
    }
    case Kind::kString: {
      std::string out = "\"";
      for (char c : string_) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ",";
        out += items_[i]->ToString();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + members_[i].first + "\":" +
               members_[i].second->ToString();
      }
      return out + "}";
    }
  }
  return "";
}

namespace {

class JsonParser {
 public:
  JsonParser(std::string_view input, Interner* dict)
      : input_(input), dict_(dict) {}

  Result<JsonPtr> Parse() {
    RWDT_ASSIGN_OR_RETURN(JsonPtr v, ParseValue());
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }

  Status Err(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  Result<JsonPtr> ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        RWDT_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (input_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue::Bool(true);
        }
        return Err("bad literal");
      case 'f':
        if (input_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue::Bool(false);
        }
        return Err("bad literal");
      case 'n':
        if (input_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue::Null();
        }
        return Err("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<std::string> ParseString() {
    if (Peek() != '"') return Err("expected string");
    ++pos_;
    std::string out;
    while (pos_ < input_.size() && input_[pos_] != '"') {
      char c = input_[pos_++];
      if (c == '\\') {
        if (pos_ >= input_.size()) return Err("bad escape");
        const char esc = input_[pos_++];
        switch (esc) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > input_.size()) return Err("bad \\u escape");
            // Decode BMP code points to UTF-8.
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = input_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            out += esc;  // '"', '\\', '/'
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= input_.size()) return Err("unterminated string");
    ++pos_;
    return out;
  }

  Result<JsonPtr> ParseNumber() {
    SkipWhitespace();
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E' || input_[pos_] == '+' ||
            input_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    const std::string text(input_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return Err("bad number");
    return JsonValue::Number(value);
  }

  Result<JsonPtr> ParseArray() {
    ++pos_;  // '['
    std::vector<JsonPtr> items;
    if (Peek() == ']') {
      ++pos_;
      return JsonValue::Array(std::move(items));
    }
    for (;;) {
      RWDT_ASSIGN_OR_RETURN(JsonPtr v, ParseValue());
      items.push_back(std::move(v));
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::Array(std::move(items));
      }
      return Err("expected ',' or ']'");
    }
  }

  Result<JsonPtr> ParseObject() {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonPtr>> members;
    if (Peek() == '}') {
      ++pos_;
      return JsonValue::Object(std::move(members));
    }
    for (;;) {
      if (Peek() != '"') return Err("expected member key");
      RWDT_ASSIGN_OR_RETURN(std::string key, ParseString());
      dict_->Intern(key);
      if (Peek() != ':') return Err("expected ':'");
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(JsonPtr v, ParseValue());
      members.emplace_back(std::move(key), std::move(v));
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::Object(std::move(members));
      }
      return Err("expected ',' or '}'");
    }
  }

  std::string_view input_;
  Interner* dict_;
  size_t pos_ = 0;
};

void AttachJson(const JsonPtr& value, Interner* dict,
                const std::string& item_label, Tree* tree, NodeId node) {
  switch (value->kind()) {
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : value->members()) {
        const NodeId child = tree->AddChild(node, dict->Intern(key));
        AttachJson(member, dict, item_label, tree, child);
      }
      break;
    case JsonValue::Kind::kArray:
      for (const auto& item : value->items()) {
        const NodeId child = tree->AddChild(node, dict->Intern(item_label));
        AttachJson(item, dict, item_label, tree, child);
      }
      break;
    default:
      tree->mutable_node(node).text = value->ToString();
      break;
  }
}

}  // namespace

Result<JsonPtr> ParseJson(std::string_view input, Interner* dict) {
  return JsonParser(input, dict).Parse();
}

Tree JsonToTree(const JsonPtr& value, Interner* dict,
                const std::string& root_label,
                const std::string& item_label) {
  Tree tree;
  const NodeId root = tree.AddRoot(dict->Intern(root_label));
  AttachJson(value, dict, item_label, &tree, root);
  return tree;
}

}  // namespace rwdt::tree
