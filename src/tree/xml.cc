#include "tree/xml.h"

#include <cctype>
#include <set>
#include <utility>

#include "common/swar.h"

namespace rwdt::tree {

std::string XmlErrorCategoryName(XmlErrorCategory category) {
  switch (category) {
    case XmlErrorCategory::kNone:
      return "none";
    case XmlErrorCategory::kTagMismatch:
      return "tag-mismatch";
    case XmlErrorCategory::kPrematureEnd:
      return "premature-end";
    case XmlErrorCategory::kBadEncoding:
      return "bad-encoding";
    case XmlErrorCategory::kBadAttribute:
      return "bad-attribute";
    case XmlErrorCategory::kBadEntity:
      return "bad-entity";
    case XmlErrorCategory::kBadComment:
      return "bad-comment";
    case XmlErrorCategory::kMultipleRoots:
      return "multiple-roots";
    case XmlErrorCategory::kStrayContent:
      return "stray-content";
    case XmlErrorCategory::kBadTagName:
      return "bad-tag-name";
    case XmlErrorCategory::kEmptyDocument:
      return "empty-document";
  }
  return "unknown";
}

bool IsValidUtf8(std::string_view input) {
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(input[i]);
    size_t extra = 0;
    if (c < 0x80) {
      // ASCII is the overwhelmingly common case for query logs: skip the
      // whole run 8-16 bytes per step instead of branching per byte.
      i += swar::AsciiPrefix(input.data() + i, n - i);
      continue;
    } else if ((c & 0xe0) == 0xc0) {
      extra = 1;
      if (c < 0xc2) return false;  // overlong
    } else if ((c & 0xf0) == 0xe0) {
      extra = 2;
    } else if ((c & 0xf8) == 0xf0) {
      extra = 3;
      if (c > 0xf4) return false;  // beyond U+10FFFF
    } else {
      return false;
    }
    if (extra > 0 && i + extra >= n) return false;
    for (size_t k = 1; k <= extra; ++k) {
      if ((static_cast<unsigned char>(input[i + k]) & 0xc0) != 0x80) {
        return false;
      }
    }
    i += extra + 1;
  }
  return true;
}

XmlErrorCategory ClassifyXmlError(const Status& status) {
  if (status.ok()) return XmlErrorCategory::kNone;
  const std::string& msg = status.message();
  for (int c = 1; c <= static_cast<int>(XmlErrorCategory::kEmptyDocument);
       ++c) {
    const auto category = static_cast<XmlErrorCategory>(c);
    const std::string prefix = XmlErrorCategoryName(category) + ":";
    if (msg.compare(0, prefix.size(), prefix) == 0) return category;
  }
  return XmlErrorCategory::kNone;
}

namespace {

/// Builds the Status contract documented on ParseXml: encoding failures
/// map onto the ingest taxonomy's kEncodingError, everything else is a
/// parse error, and the category rides in the message prefix.
Status XmlError(XmlErrorCategory category, size_t offset,
                const std::string& detail) {
  std::string msg = XmlErrorCategoryName(category) + ": " + detail +
                    " at offset " + std::to_string(offset);
  if (category == XmlErrorCategory::kBadEncoding) {
    return Status::EncodingError(std::move(msg));
  }
  return Status::ParseError(std::move(msg));
}

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

class XmlParser {
 public:
  XmlParser(std::string_view input, Interner* dict)
      : input_(input), dict_(dict) {}

  Result<XmlDocument> Parse() {
    if (!IsValidUtf8(input_)) {
      return XmlError(XmlErrorCategory::kBadEncoding, 0, "invalid UTF-8");
    }
    RWDT_RETURN_IF_ERROR(SkipMisc());
    if (AtEnd()) {
      return XmlError(XmlErrorCategory::kEmptyDocument, pos_,
                      "no root element");
    }
    RWDT_RETURN_IF_ERROR(ParseElement(kNoNode));
    RWDT_RETURN_IF_ERROR(SkipMisc());
    if (!AtEnd()) {
      if (Peek() == '<') {
        return XmlError(XmlErrorCategory::kMultipleRoots, pos_,
                        "content after root element");
      }
      return XmlError(XmlErrorCategory::kStrayContent, pos_,
                      "text after root element");
    }
    return std::move(doc_);
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  void SkipWhitespace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  /// Skips whitespace, prolog, comments, DOCTYPE between top-level items.
  Status SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Peek() == '<' && PeekAt(1) == '?') {
        const size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return XmlError(XmlErrorCategory::kPrematureEnd, pos_,
                          "unterminated processing instruction");
        }
        pos_ = end + 2;
        continue;
      }
      if (Peek() == '<' && PeekAt(1) == '!' && PeekAt(2) == '-') {
        RWDT_RETURN_IF_ERROR(SkipComment());
        continue;
      }
      if (Peek() == '<' && PeekAt(1) == '!') {  // DOCTYPE
        const size_t end = input_.find('>', pos_);
        if (end == std::string_view::npos) {
          return XmlError(XmlErrorCategory::kPrematureEnd, pos_,
                          "unterminated DOCTYPE");
        }
        pos_ = end + 1;
        continue;
      }
      return Status::Ok();
    }
  }

  Status SkipComment() {
    // At "<!-".
    if (PeekAt(3) != '-') {
      return XmlError(XmlErrorCategory::kBadComment, pos_,
                      "malformed comment open");
    }
    const size_t start = pos_;
    pos_ += 4;
    const size_t end = input_.find("--", pos_);
    if (end == std::string_view::npos) {
      return XmlError(XmlErrorCategory::kBadComment, start,
                      "unterminated comment");
    }
    if (end + 2 >= input_.size() || input_[end + 2] != '>') {
      return XmlError(XmlErrorCategory::kBadComment, end,
                      "'--' inside comment");
    }
    pos_ = end + 3;
    return Status::Ok();
  }

  Result<std::string> ParseName(XmlErrorCategory category) {
    if (AtEnd()) {
      return XmlError(XmlErrorCategory::kPrematureEnd, pos_,
                      "input ends in tag");
    }
    if (!IsNameStart(Peek())) {
      return XmlError(category, pos_, "invalid name start character");
    }
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) name += input_[pos_++];
    return name;
  }

  Status ParseEntity(std::string* out) {
    // At '&'.
    const size_t start = pos_;
    const size_t semi = input_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 12) {
      return XmlError(XmlErrorCategory::kBadEntity, start, "stray '&'");
    }
    const std::string_view name = input_.substr(pos_ + 1, semi - pos_ - 1);
    if (name == "amp") {
      *out += '&';
    } else if (name == "lt") {
      *out += '<';
    } else if (name == "gt") {
      *out += '>';
    } else if (name == "quot") {
      *out += '"';
    } else if (name == "apos") {
      *out += '\'';
    } else if (!name.empty() && name[0] == '#') {
      // Numeric character reference; keep as-is for simplicity.
      *out += '?';
    } else {
      return XmlError(XmlErrorCategory::kBadEntity, start,
                      "unknown entity '" + std::string(name) + "'");
    }
    pos_ = semi + 1;
    return Status::Ok();
  }

  /// Parses one element at '<'. `parent` == kNoNode for the root.
  Status ParseElement(NodeId parent) {
    ++pos_;  // consume '<'
    RWDT_ASSIGN_OR_RETURN(const std::string name,
                          ParseName(XmlErrorCategory::kBadTagName));

    const SymbolId label = dict_->Intern(name);
    const NodeId node = parent == kNoNode
                            ? doc_.tree.AddRoot(label)
                            : doc_.tree.AddChild(parent, label);

    // Attributes.
    std::set<std::string> attr_names;
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) {
        return XmlError(XmlErrorCategory::kPrematureEnd, pos_,
                        "input ends in tag");
      }
      const char c = Peek();
      if (c == '>' || (c == '/' && PeekAt(1) == '>')) break;
      if (c == '<') {
        return XmlError(XmlErrorCategory::kStrayContent, pos_,
                        "'<' inside tag");
      }
      RWDT_ASSIGN_OR_RETURN(const std::string attr,
                            ParseName(XmlErrorCategory::kBadAttribute));
      if (!attr_names.insert(attr).second) {
        return XmlError(XmlErrorCategory::kBadAttribute, pos_,
                        "duplicate attribute '" + attr + "'");
      }
      SkipWhitespace();
      if (Peek() != '=') {
        return XmlError(XmlErrorCategory::kBadAttribute, pos_,
                        "expected '=' after attribute name");
      }
      ++pos_;
      SkipWhitespace();
      const char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return XmlError(XmlErrorCategory::kBadAttribute, pos_,
                        "unquoted attribute value");
      }
      ++pos_;
      std::string value;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '<') {
          return XmlError(XmlErrorCategory::kStrayContent, pos_,
                          "'<' in attribute value");
        }
        if (Peek() == '&') {
          RWDT_RETURN_IF_ERROR(ParseEntity(&value));
          continue;
        }
        value += input_[pos_++];
      }
      if (AtEnd()) {
        return XmlError(XmlErrorCategory::kPrematureEnd, pos_,
                        "unterminated attribute value");
      }
      ++pos_;  // closing quote
      doc_.attributes.push_back({node, attr, value});
    }

    if (Peek() == '/') {  // self-closing
      pos_ += 2;
      return Status::Ok();
    }
    ++pos_;  // '>'

    // Content.
    for (;;) {
      if (AtEnd()) {
        return XmlError(XmlErrorCategory::kPrematureEnd, pos_,
                        "missing closing tag for <" + name + ">");
      }
      const char c = Peek();
      if (c == '<') {
        if (PeekAt(1) == '/') {
          pos_ += 2;
          RWDT_ASSIGN_OR_RETURN(const std::string close,
                                ParseName(XmlErrorCategory::kBadTagName));
          SkipWhitespace();
          if (Peek() != '>') {
            return XmlError(XmlErrorCategory::kPrematureEnd, pos_,
                            "unterminated closing tag");
          }
          ++pos_;
          if (close != name) {
            return XmlError(XmlErrorCategory::kTagMismatch, pos_,
                            "</" + close + "> closes <" + name + ">");
          }
          return Status::Ok();
        }
        if (PeekAt(1) == '!' && PeekAt(2) == '-') {
          RWDT_RETURN_IF_ERROR(SkipComment());
          continue;
        }
        if (input_.substr(pos_, 9) == "<![CDATA[") {
          const size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return XmlError(XmlErrorCategory::kPrematureEnd, pos_,
                            "unterminated CDATA");
          }
          doc_.tree.mutable_node(node).text +=
              std::string(input_.substr(pos_ + 9, end - pos_ - 9));
          pos_ = end + 3;
          continue;
        }
        if (PeekAt(1) == '?') {
          const size_t end = input_.find("?>", pos_);
          if (end == std::string_view::npos) {
            return XmlError(XmlErrorCategory::kPrematureEnd, pos_,
                            "unterminated processing instruction");
          }
          pos_ = end + 2;
          continue;
        }
        RWDT_RETURN_IF_ERROR(ParseElement(node));
        continue;
      }
      if (c == '&') {
        std::string text;
        RWDT_RETURN_IF_ERROR(ParseEntity(&text));
        doc_.tree.mutable_node(node).text += text;
        continue;
      }
      doc_.tree.mutable_node(node).text += input_[pos_++];
    }
  }

  std::string_view input_;
  Interner* dict_;
  size_t pos_ = 0;
  XmlDocument doc_;
};

void RenderNode(const Tree& tree, const Interner& dict, NodeId id,
                std::string* out) {
  const auto& node = tree.node(id);
  const std::string& name = dict.Name(node.label);
  *out += '<' + name;
  if (node.children.empty() && node.text.empty()) {
    *out += "/>";
    return;
  }
  *out += '>';
  *out += node.text;
  for (NodeId c : node.children) RenderNode(tree, dict, c, out);
  *out += "</" + name + '>';
}

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input, Interner* dict) {
  return XmlParser(input, dict).Parse();
}

std::string ToXml(const Tree& tree, const Interner& dict) {
  std::string out;
  if (!tree.empty()) RenderNode(tree, dict, tree.root(), &out);
  return out;
}

}  // namespace rwdt::tree
