#include "tree/xml.h"

#include <cctype>
#include <set>

namespace rwdt::tree {

std::string XmlErrorCategoryName(XmlErrorCategory category) {
  switch (category) {
    case XmlErrorCategory::kNone:
      return "none";
    case XmlErrorCategory::kTagMismatch:
      return "tag-mismatch";
    case XmlErrorCategory::kPrematureEnd:
      return "premature-end";
    case XmlErrorCategory::kBadEncoding:
      return "bad-encoding";
    case XmlErrorCategory::kBadAttribute:
      return "bad-attribute";
    case XmlErrorCategory::kBadEntity:
      return "bad-entity";
    case XmlErrorCategory::kBadComment:
      return "bad-comment";
    case XmlErrorCategory::kMultipleRoots:
      return "multiple-roots";
    case XmlErrorCategory::kStrayContent:
      return "stray-content";
    case XmlErrorCategory::kBadTagName:
      return "bad-tag-name";
    case XmlErrorCategory::kEmptyDocument:
      return "empty-document";
  }
  return "unknown";
}

bool IsValidUtf8(std::string_view input) {
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(input[i]);
    size_t extra = 0;
    if (c < 0x80) {
      extra = 0;
    } else if ((c & 0xe0) == 0xc0) {
      extra = 1;
      if (c < 0xc2) return false;  // overlong
    } else if ((c & 0xf0) == 0xe0) {
      extra = 2;
    } else if ((c & 0xf8) == 0xf0) {
      extra = 3;
      if (c > 0xf4) return false;  // beyond U+10FFFF
    } else {
      return false;
    }
    if (extra > 0 && i + extra >= n) return false;
    for (size_t k = 1; k <= extra; ++k) {
      if ((static_cast<unsigned char>(input[i + k]) & 0xc0) != 0x80) {
        return false;
      }
    }
    i += extra + 1;
  }
  return true;
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

class XmlParser {
 public:
  XmlParser(std::string_view input, Interner* dict)
      : input_(input), dict_(dict) {}

  XmlParseResult Parse() {
    if (!IsValidUtf8(input_)) {
      return Fail(XmlErrorCategory::kBadEncoding, 0, "invalid UTF-8");
    }
    SkipMisc();
    if (AtEnd()) {
      return Fail(XmlErrorCategory::kEmptyDocument, pos_,
                  "no root element");
    }
    if (failed_) return std::move(result_);
    if (!ParseElement(kNoNode)) return std::move(result_);
    SkipMisc();
    if (failed_) return std::move(result_);
    if (!AtEnd()) {
      if (Peek() == '<') {
        return Fail(XmlErrorCategory::kMultipleRoots, pos_,
                    "content after root element");
      }
      return Fail(XmlErrorCategory::kStrayContent, pos_,
                  "text after root element");
    }
    result_.well_formed = true;
    return std::move(result_);
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  XmlParseResult Fail(XmlErrorCategory category, size_t offset,
                      std::string message) {
    failed_ = true;
    result_.well_formed = false;
    result_.error = {category, offset, std::move(message)};
    return std::move(result_);
  }

  void SkipWhitespace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  /// Skips whitespace, prolog, comments, DOCTYPE between top-level items.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Peek() == '<' && PeekAt(1) == '?') {
        const size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          Fail(XmlErrorCategory::kPrematureEnd, pos_,
               "unterminated processing instruction");
          return;
        }
        pos_ = end + 2;
        continue;
      }
      if (Peek() == '<' && PeekAt(1) == '!' && PeekAt(2) == '-') {
        if (!SkipComment()) return;
        continue;
      }
      if (Peek() == '<' && PeekAt(1) == '!') {  // DOCTYPE
        const size_t end = input_.find('>', pos_);
        if (end == std::string_view::npos) {
          Fail(XmlErrorCategory::kPrematureEnd, pos_,
               "unterminated DOCTYPE");
          return;
        }
        pos_ = end + 1;
        continue;
      }
      return;
    }
  }

  bool SkipComment() {
    // At "<!-".
    if (PeekAt(3) != '-') {
      Fail(XmlErrorCategory::kBadComment, pos_, "malformed comment open");
      return false;
    }
    const size_t start = pos_;
    pos_ += 4;
    const size_t end = input_.find("--", pos_);
    if (end == std::string_view::npos) {
      Fail(XmlErrorCategory::kBadComment, start, "unterminated comment");
      return false;
    }
    if (end + 2 >= input_.size() || input_[end + 2] != '>') {
      Fail(XmlErrorCategory::kBadComment, end, "'--' inside comment");
      return false;
    }
    pos_ = end + 3;
    return true;
  }

  /// Parses a name; empty result means failure (error already set).
  std::string ParseName(XmlErrorCategory category) {
    if (AtEnd()) {
      Fail(XmlErrorCategory::kPrematureEnd, pos_, "input ends in tag");
      return "";
    }
    if (!IsNameStart(Peek())) {
      Fail(category, pos_, "invalid name start character");
      return "";
    }
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) name += input_[pos_++];
    return name;
  }

  bool ParseEntity(std::string* out) {
    // At '&'.
    const size_t start = pos_;
    const size_t semi = input_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 12) {
      Fail(XmlErrorCategory::kBadEntity, start, "stray '&'");
      return false;
    }
    const std::string_view name = input_.substr(pos_ + 1, semi - pos_ - 1);
    if (name == "amp") {
      *out += '&';
    } else if (name == "lt") {
      *out += '<';
    } else if (name == "gt") {
      *out += '>';
    } else if (name == "quot") {
      *out += '"';
    } else if (name == "apos") {
      *out += '\'';
    } else if (!name.empty() && name[0] == '#') {
      // Numeric character reference; keep as-is for simplicity.
      *out += '?';
    } else {
      Fail(XmlErrorCategory::kBadEntity, start,
           "unknown entity '" + std::string(name) + "'");
      return false;
    }
    pos_ = semi + 1;
    return true;
  }

  /// Parses one element at '<'. `parent` == kNoNode for the root.
  bool ParseElement(NodeId parent) {
    ++pos_;  // consume '<'
    const size_t name_pos = pos_;
    const std::string name = ParseName(XmlErrorCategory::kBadTagName);
    if (failed_) return false;
    (void)name_pos;

    const SymbolId label = dict_->Intern(name);
    const NodeId node = parent == kNoNode
                            ? result_.tree.AddRoot(label)
                            : result_.tree.AddChild(parent, label);

    // Attributes.
    std::set<std::string> attr_names;
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) {
        Fail(XmlErrorCategory::kPrematureEnd, pos_, "input ends in tag");
        return false;
      }
      const char c = Peek();
      if (c == '>' || (c == '/' && PeekAt(1) == '>')) break;
      if (c == '<') {
        Fail(XmlErrorCategory::kStrayContent, pos_, "'<' inside tag");
        return false;
      }
      const std::string attr = ParseName(XmlErrorCategory::kBadAttribute);
      if (failed_) return false;
      if (!attr_names.insert(attr).second) {
        Fail(XmlErrorCategory::kBadAttribute, pos_,
             "duplicate attribute '" + attr + "'");
        return false;
      }
      SkipWhitespace();
      if (Peek() != '=') {
        Fail(XmlErrorCategory::kBadAttribute, pos_,
             "expected '=' after attribute name");
        return false;
      }
      ++pos_;
      SkipWhitespace();
      const char quote = Peek();
      if (quote != '"' && quote != '\'') {
        Fail(XmlErrorCategory::kBadAttribute, pos_,
             "unquoted attribute value");
        return false;
      }
      ++pos_;
      std::string value;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '<') {
          Fail(XmlErrorCategory::kStrayContent, pos_,
               "'<' in attribute value");
          return false;
        }
        if (Peek() == '&') {
          if (!ParseEntity(&value)) return false;
          continue;
        }
        value += input_[pos_++];
      }
      if (AtEnd()) {
        Fail(XmlErrorCategory::kPrematureEnd, pos_,
             "unterminated attribute value");
        return false;
      }
      ++pos_;  // closing quote
      result_.attributes.push_back({node, attr, value});
    }

    if (Peek() == '/') {  // self-closing
      pos_ += 2;
      return true;
    }
    ++pos_;  // '>'

    // Content.
    for (;;) {
      if (AtEnd()) {
        Fail(XmlErrorCategory::kPrematureEnd, pos_,
             "missing closing tag for <" + name + ">");
        return false;
      }
      const char c = Peek();
      if (c == '<') {
        if (PeekAt(1) == '/') {
          pos_ += 2;
          const std::string close =
              ParseName(XmlErrorCategory::kBadTagName);
          if (failed_) return false;
          SkipWhitespace();
          if (Peek() != '>') {
            Fail(XmlErrorCategory::kPrematureEnd, pos_,
                 "unterminated closing tag");
            return false;
          }
          ++pos_;
          if (close != name) {
            Fail(XmlErrorCategory::kTagMismatch, pos_,
                 "</" + close + "> closes <" + name + ">");
            return false;
          }
          return true;
        }
        if (PeekAt(1) == '!' && PeekAt(2) == '-') {
          if (!SkipComment()) return false;
          continue;
        }
        if (input_.substr(pos_, 9) == "<![CDATA[") {
          const size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            Fail(XmlErrorCategory::kPrematureEnd, pos_,
                 "unterminated CDATA");
            return false;
          }
          result_.tree.mutable_node(node).text +=
              std::string(input_.substr(pos_ + 9, end - pos_ - 9));
          pos_ = end + 3;
          continue;
        }
        if (PeekAt(1) == '?') {
          const size_t end = input_.find("?>", pos_);
          if (end == std::string_view::npos) {
            Fail(XmlErrorCategory::kPrematureEnd, pos_,
                 "unterminated processing instruction");
            return false;
          }
          pos_ = end + 2;
          continue;
        }
        if (!ParseElement(node)) return false;
        continue;
      }
      if (c == '&') {
        std::string text;
        if (!ParseEntity(&text)) return false;
        result_.tree.mutable_node(node).text += text;
        continue;
      }
      result_.tree.mutable_node(node).text += input_[pos_++];
    }
  }

  std::string_view input_;
  Interner* dict_;
  size_t pos_ = 0;
  bool failed_ = false;
  XmlParseResult result_;
};

void RenderNode(const Tree& tree, const Interner& dict, NodeId id,
                std::string* out) {
  const auto& node = tree.node(id);
  const std::string& name = dict.Name(node.label);
  *out += '<' + name;
  if (node.children.empty() && node.text.empty()) {
    *out += "/>";
    return;
  }
  *out += '>';
  *out += node.text;
  for (NodeId c : node.children) RenderNode(tree, dict, c, out);
  *out += "</" + name + '>';
}

}  // namespace

XmlParseResult ParseXml(std::string_view input, Interner* dict) {
  return XmlParser(input, dict).Parse();
}

std::string ToXml(const Tree& tree, const Interner& dict) {
  std::string out;
  if (!tree.empty()) RenderNode(tree, dict, tree.root(), &out);
  return out;
}

}  // namespace rwdt::tree
