#ifndef RWDT_TREE_JSON_H_
#define RWDT_TREE_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "tree/tree.h"

namespace rwdt::tree {

/// A parsed JSON value. Objects preserve key order (JSON objects are
/// unordered per spec, but order matters for reproducible output).
class JsonValue;
using JsonPtr = std::shared_ptr<const JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  static JsonPtr Null();
  static JsonPtr Bool(bool b);
  static JsonPtr Number(double d);
  static JsonPtr String(std::string s);
  static JsonPtr Array(std::vector<JsonPtr> items);
  static JsonPtr Object(std::vector<std::pair<std::string, JsonPtr>> members);

  Kind kind() const { return kind_; }
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonPtr>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonPtr>>& members() const {
    return members_;
  }

  /// Looks up an object member; nullptr when absent or not an object.
  JsonPtr Get(std::string_view key) const;

  std::string ToString() const;

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonPtr> items_;
  std::vector<std::pair<std::string, JsonPtr>> members_;
};

/// Parses a JSON document (full RFC-ish grammar: strings with escapes,
/// numbers, literals, arrays, objects). Object keys are interned into
/// `dict`, so key symbols are shared with JsonToTree and the schema
/// layer. Follows the library-wide parser shape
/// `Parse*(std::string_view, Interner*) -> Result<T>`.
Result<JsonPtr> ParseJson(std::string_view input, Interner* dict);

/// Maps a JSON document onto a labeled ordered tree (paper Figure 1):
/// object members become nodes labeled by their key; array elements
/// become children in order labeled `item_label`; scalars become leaf
/// text. The root is labeled `root_label`.
Tree JsonToTree(const JsonPtr& value, Interner* dict,
                const std::string& root_label = "root",
                const std::string& item_label = "_item");

}  // namespace rwdt::tree

#endif  // RWDT_TREE_JSON_H_
