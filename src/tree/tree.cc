#include "tree/tree.h"

#include <algorithm>

namespace rwdt::tree {

NodeId Tree::AddRoot(SymbolId label) {
  Node node;
  node.label = label;
  nodes_.push_back(std::move(node));
  return 0;
}

NodeId Tree::AddChild(NodeId parent, SymbolId label) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.label = label;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

size_t Tree::Depth() const {
  if (nodes_.empty()) return 0;
  // Iterative DFS carrying depth.
  size_t best = 0;
  std::vector<std::pair<NodeId, size_t>> stack = {{0, 1}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    best = std::max(best, depth);
    for (NodeId c : nodes_[id].children) stack.emplace_back(c, depth + 1);
  }
  return best;
}

std::vector<SymbolId> Tree::ChildLabels(NodeId id) const {
  std::vector<SymbolId> out;
  out.reserve(nodes_[id].children.size());
  for (NodeId c : nodes_[id].children) out.push_back(nodes_[c].label);
  return out;
}

std::vector<NodeId> Tree::PreOrder() const {
  std::vector<NodeId> out;
  if (nodes_.empty()) return out;
  std::vector<NodeId> stack = {0};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const auto& kids = nodes_[id].children;
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

}  // namespace rwdt::tree
