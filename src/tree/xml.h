#ifndef RWDT_TREE_XML_H_
#define RWDT_TREE_XML_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "tree/tree.h"

namespace rwdt::tree {

/// Well-formedness error taxonomy, following the Grijzenhout-Marx study
/// of the XML Web (paper Section 3.1): they found 74 categories of which
/// 9 cover 99% of errors; the top three (tag mismatch, premature end,
/// improper UTF-8) cover 79.9%.
enum class XmlErrorCategory {
  kNone = 0,
  kTagMismatch,       // </b> closing <a>
  kPrematureEnd,      // input ends inside a tag or open element
  kBadEncoding,       // invalid UTF-8 byte sequence
  kBadAttribute,      // unquoted value / missing '=' / duplicate name
  kBadEntity,         // stray '&' or unknown entity reference
  kBadComment,        // '--' inside comment or unterminated comment
  kMultipleRoots,     // more than one top-level element
  kStrayContent,      // markup characters in the wrong place ('<' mid-tag)
  kBadTagName,        // tag name starts with a digit or punctuation
  kEmptyDocument,     // no root element at all
};

/// Name of a category, e.g. "tag-mismatch".
std::string XmlErrorCategoryName(XmlErrorCategory category);

/// An attribute attached to an element node.
struct XmlAttribute {
  NodeId node = kNoNode;
  std::string name;
  std::string value;
};

/// A well-formed document: the element tree plus its attributes.
struct XmlDocument {
  Tree tree;
  std::vector<XmlAttribute> attributes;
};

/// Parses an XML(-subset) document: prolog, comments, CDATA, entities,
/// attributes, nested elements, self-closing tags. DOCTYPE declarations
/// are accepted and skipped. Element names are interned into `dict`.
///
/// On failure the Status carries `Code::kEncodingError` for invalid
/// UTF-8 and `Code::kParseError` otherwise; its message is
/// "<category>: <detail> at offset N" with the category name from
/// XmlErrorCategoryName, recoverable via ClassifyXmlError.
Result<XmlDocument> ParseXml(std::string_view input, Interner* dict);

/// Recovers the well-formedness category from a ParseXml error Status
/// (kNone for an OK status or a status from elsewhere).
XmlErrorCategory ClassifyXmlError(const Status& status);

/// Serializes a tree back to XML text (used by generators and tests).
std::string ToXml(const Tree& tree, const Interner& dict);

/// Validates that `input` is well-formed UTF-8.
bool IsValidUtf8(std::string_view input);

}  // namespace rwdt::tree

#endif  // RWDT_TREE_XML_H_
