#ifndef RWDT_TREE_TREE_H_
#define RWDT_TREE_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"

namespace rwdt::tree {

using NodeId = uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

/// A labeled ordered tree T = (V, E, lab) as in paper Section 3: node 0 is
/// the root; children are ordered. Labels are interned symbols (XML
/// element names, JSON keys, ...).
class Tree {
 public:
  struct Node {
    SymbolId label = kInvalidSymbol;
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    /// Concatenated character data directly under this node (XML text /
    /// JSON scalar); not part of the formal model but kept for examples.
    std::string text;
  };

  Tree() = default;

  /// Creates the root. Must be called first, exactly once.
  NodeId AddRoot(SymbolId label);

  /// Appends a child under `parent`; returns the new node id.
  NodeId AddChild(NodeId parent, SymbolId label);

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& mutable_node(NodeId id) { return nodes_[id]; }

  size_t NumNodes() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  NodeId root() const { return 0; }

  /// Longest root-to-leaf path, counted in nodes (a single node has
  /// depth 1); 0 for the empty tree. DBLP has depth 7, Treebank 37
  /// (paper Section 3.1).
  size_t Depth() const;

  /// Labels of the children of `id`, in order (the word checked against
  /// DTD content models).
  std::vector<SymbolId> ChildLabels(NodeId id) const;

  /// Pre-order traversal ids.
  std::vector<NodeId> PreOrder() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace rwdt::tree

#endif  // RWDT_TREE_TREE_H_
