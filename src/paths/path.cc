#include "paths/path.h"

#include <cctype>
#include <functional>

namespace rwdt::paths {

size_t Path::Size() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->Size();
  return n;
}

bool Path::IsTransitive() const {
  if (op_ == PathOp::kStar || op_ == PathOp::kPlus) return true;
  for (const auto& c : children_) {
    if (c->IsTransitive()) return true;
  }
  return false;
}

bool Path::UsesInverse() const {
  if (op_ == PathOp::kInverse) return true;
  for (const auto& [iri, inverted] : negated_) {
    (void)iri;
    if (inverted) return true;
  }
  for (const auto& c : children_) {
    if (c->UsesInverse()) return true;
  }
  return false;
}

namespace {

int Precedence(PathOp op) {
  switch (op) {
    case PathOp::kAlt:
      return 0;
    case PathOp::kSeq:
      return 1;
    default:
      return 2;
  }
}

}  // namespace

std::string Path::ToString(const Interner& dict) const {
  std::string out;
  std::function<void(const Path&, int)> render = [&](const Path& e,
                                                     int parent) {
    const int prec = Precedence(e.op());
    const bool parens = prec < parent;
    if (parens) out += '(';
    switch (e.op()) {
      case PathOp::kIri:
        out += dict.Name(e.iri());
        break;
      case PathOp::kInverse:
        out += '^';
        render(*e.child(), 2);
        break;
      case PathOp::kSeq: {
        bool first = true;
        for (const auto& c : e.children()) {
          if (!first) out += '/';
          first = false;
          render(*c, 2);
        }
        break;
      }
      case PathOp::kAlt: {
        bool first = true;
        for (const auto& c : e.children()) {
          if (!first) out += '|';
          first = false;
          render(*c, 1);
        }
        break;
      }
      case PathOp::kStar:
        render(*e.child(), 3);
        out += '*';
        break;
      case PathOp::kPlus:
        render(*e.child(), 3);
        out += '+';
        break;
      case PathOp::kOptional:
        render(*e.child(), 3);
        out += '?';
        break;
      case PathOp::kNegated: {
        out += "!(";
        bool first = true;
        for (const auto& [iri, inverted] : e.negated_set()) {
          if (!first) out += '|';
          first = false;
          if (inverted) out += '^';
          out += dict.Name(iri);
        }
        out += ')';
        break;
      }
    }
    if (parens) out += ')';
  };
  render(*this, 0);
  return out;
}

PathPtr Path::Iri(SymbolId iri) {
  return PathPtr(new Path(PathOp::kIri, iri, {}, {}));
}
PathPtr Path::Inverse(PathPtr e) {
  return PathPtr(new Path(PathOp::kInverse, kInvalidSymbol, {std::move(e)},
                          {}));
}
PathPtr Path::Seq(std::vector<PathPtr> parts) {
  if (parts.size() == 1) return parts[0];
  std::vector<PathPtr> flat;
  for (auto& p : parts) {
    if (p->op() == PathOp::kSeq) {
      for (const auto& c : p->children()) flat.push_back(c);
    } else {
      flat.push_back(std::move(p));
    }
  }
  return PathPtr(new Path(PathOp::kSeq, kInvalidSymbol, std::move(flat),
                          {}));
}
PathPtr Path::Alt(std::vector<PathPtr> parts) {
  if (parts.size() == 1) return parts[0];
  std::vector<PathPtr> flat;
  for (auto& p : parts) {
    if (p->op() == PathOp::kAlt) {
      for (const auto& c : p->children()) flat.push_back(c);
    } else {
      flat.push_back(std::move(p));
    }
  }
  return PathPtr(new Path(PathOp::kAlt, kInvalidSymbol, std::move(flat),
                          {}));
}
PathPtr Path::Star(PathPtr e) {
  return PathPtr(new Path(PathOp::kStar, kInvalidSymbol, {std::move(e)},
                          {}));
}
PathPtr Path::Plus(PathPtr e) {
  return PathPtr(new Path(PathOp::kPlus, kInvalidSymbol, {std::move(e)},
                          {}));
}
PathPtr Path::Optional(PathPtr e) {
  return PathPtr(new Path(PathOp::kOptional, kInvalidSymbol,
                          {std::move(e)}, {}));
}
PathPtr Path::Negated(std::vector<std::pair<SymbolId, bool>> forbidden) {
  return PathPtr(new Path(PathOp::kNegated, kInvalidSymbol, {},
                          std::move(forbidden)));
}

namespace {

bool IsIriChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == ':' ||
         c == '_' || c == '.' || c == '-' || c == '#';
}

/// Templated over the dictionary so the engine's hot path can supply an
/// arena-backed FlatInterner while every other caller keeps Interner;
/// both instantiations live in ParsePath below.
template <class Dict>
class PathParser {
 public:
  PathParser(std::string_view input, Dict* dict)
      : input_(input), dict_(dict) {}

  Result<PathPtr> Parse() {
    RWDT_ASSIGN_OR_RETURN(PathPtr e, ParseAlt());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing path characters at offset " +
                                std::to_string(pos_));
    }
    return e;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    SkipSpace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }

  Result<PathPtr> ParseAlt() {
    RWDT_ASSIGN_OR_RETURN(PathPtr first, ParseSeq());
    std::vector<PathPtr> parts = {std::move(first)};
    while (Peek() == '|') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(PathPtr next, ParseSeq());
      parts.push_back(std::move(next));
    }
    return Path::Alt(std::move(parts));
  }

  Result<PathPtr> ParseSeq() {
    RWDT_ASSIGN_OR_RETURN(PathPtr first, ParsePostfix());
    std::vector<PathPtr> parts = {std::move(first)};
    while (Peek() == '/') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(PathPtr next, ParsePostfix());
      parts.push_back(std::move(next));
    }
    return Path::Seq(std::move(parts));
  }

  Result<PathPtr> ParsePostfix() {
    RWDT_ASSIGN_OR_RETURN(PathPtr e, ParseAtom());
    for (;;) {
      const char c = pos_ < input_.size() ? input_[pos_] : '\0';
      if (c == '*') {
        e = Path::Star(e);
        ++pos_;
      } else if (c == '+') {
        e = Path::Plus(e);
        ++pos_;
      } else if (c == '?') {
        e = Path::Optional(e);
        ++pos_;
      } else {
        break;
      }
    }
    return e;
  }

  Result<PathPtr> ParseAtom() {
    const char c = Peek();
    if (c == '(') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(PathPtr inner, ParseAlt());
      if (Peek() != ')') return Status::ParseError("expected ')'");
      ++pos_;
      return inner;
    }
    if (c == '^') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(PathPtr inner, ParsePostfix());
      return Path::Inverse(std::move(inner));
    }
    if (c == '!') {
      ++pos_;
      return ParseNegatedSet();
    }
    return ParseIriAtom();
  }

  Result<PathPtr> ParseNegatedSet() {
    std::vector<std::pair<SymbolId, bool>> forbidden;
    auto one = [&]() -> Status {
      bool inverted = false;
      if (Peek() == '^') {
        ++pos_;
        inverted = true;
      }
      RWDT_ASSIGN_OR_RETURN(const SymbolId iri, ParseIriName());
      forbidden.emplace_back(iri, inverted);
      return Status::Ok();
    };
    if (Peek() == '(') {
      ++pos_;
      RWDT_RETURN_IF_ERROR(one());
      while (Peek() == '|') {
        ++pos_;
        RWDT_RETURN_IF_ERROR(one());
      }
      if (Peek() != ')') return Status::ParseError("expected ')' in !()");
      ++pos_;
    } else {
      RWDT_RETURN_IF_ERROR(one());
    }
    return Path::Negated(std::move(forbidden));
  }

  Result<PathPtr> ParseIriAtom() {
    RWDT_ASSIGN_OR_RETURN(const SymbolId iri, ParseIriName());
    return Path::Iri(iri);
  }

  Result<SymbolId> ParseIriName() {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == '<') {
      const size_t end = input_.find('>', pos_);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated <iri>");
      }
      const std::string name(input_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end + 1;
      return dict_->Intern(name);
    }
    std::string name;
    while (pos_ < input_.size() && IsIriChar(input_[pos_])) {
      name += input_[pos_++];
    }
    if (name.empty()) {
      return Status::ParseError("expected IRI at offset " +
                                std::to_string(pos_));
    }
    return dict_->Intern(name);
  }

  std::string_view input_;
  Dict* dict_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathPtr> ParsePath(std::string_view input, Interner* dict) {
  return PathParser<Interner>(input, dict).Parse();
}

Result<PathPtr> ParsePath(std::string_view input, FlatInterner* dict) {
  return PathParser<FlatInterner>(input, dict).Parse();
}

}  // namespace rwdt::paths
