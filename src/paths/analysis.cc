#include "paths/analysis.h"

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

namespace rwdt::paths {

std::string Table8TypeName(Table8Type type) {
  switch (type) {
    case Table8Type::kAStar:
      return "a*";
    case Table8Type::kABStarOrAPlus:
      return "ab*, a+";
    case Table8Type::kABStarCStar:
      return "ab*c*";
    case Table8Type::kDisjStar:
      return "A*";
    case Table8Type::kABStarC:
      return "ab*c";
    case Table8Type::kAStarBStar:
      return "a*b*";
    case Table8Type::kABCStar:
      return "abc*";
    case Table8Type::kAOptBStar:
      return "a?b*";
    case Table8Type::kDisjPlus:
      return "A+";
    case Table8Type::kDisjBStar:
      return "Ab*";
    case Table8Type::kOtherTransitive:
      return "Other transitive";
    case Table8Type::kWord:
      return "a1...ak";
    case Table8Type::kDisj:
      return "A";
    case Table8Type::kDisjOpt:
      return "A?";
    case Table8Type::kWordOptTail:
      return "a1a2?...ak?";
    case Table8Type::kInverse:
      return "^a";
    case Table8Type::kABCOpt:
      return "abc?";
    case Table8Type::kOtherNonTransitive:
      return "Other non-transitive";
  }
  return "?";
}

namespace {

enum class Mod { kNone, kStar, kPlus, kOpt };

struct Factor {
  bool upper = false;       // disjunction of >= 2 atoms or negated set
  SymbolId atom_key = 0;    // letter grouping key (IRI, inversion erased)
  std::vector<SymbolId> disj_key;  // for uppers
  Mod mod = Mod::kNone;
};

/// An atom: IRI or ^IRI. Returns its IRI key, or nullopt if not an atom.
std::optional<SymbolId> AsAtom(const Path& p) {
  if (p.op() == PathOp::kIri) return p.iri();
  if (p.op() == PathOp::kInverse && p.child()->op() == PathOp::kIri) {
    return p.child()->iri();
  }
  return std::nullopt;
}

/// Decomposes the body (modifier already stripped) of a factor.
std::optional<Factor> AsFactorBody(const Path& p) {
  Factor f;
  if (auto atom = AsAtom(p); atom.has_value()) {
    f.upper = false;
    f.atom_key = *atom;
    return f;
  }
  if (p.op() == PathOp::kNegated) {
    f.upper = true;
    for (const auto& [iri, inv] : p.negated_set()) {
      (void)inv;
      f.disj_key.push_back(iri);
    }
    std::sort(f.disj_key.begin(), f.disj_key.end());
    return f;
  }
  if (p.op() == PathOp::kAlt) {
    for (const auto& c : p.children()) {
      auto atom = AsAtom(*c);
      if (!atom.has_value()) {
        // Nested negated sets inside an alternation still count as a
        // disjunction of atoms.
        if (c->op() == PathOp::kNegated) {
          for (const auto& [iri, inv] : c->negated_set()) {
            (void)inv;
            f.disj_key.push_back(iri);
          }
          continue;
        }
        return std::nullopt;
      }
      f.disj_key.push_back(*atom);
    }
    f.upper = true;
    std::sort(f.disj_key.begin(), f.disj_key.end());
    return f;
  }
  return std::nullopt;
}

std::optional<Factor> AsFactor(const Path& p) {
  Mod mod = Mod::kNone;
  const Path* body = &p;
  switch (p.op()) {
    case PathOp::kStar:
      mod = Mod::kStar;
      body = p.child().get();
      break;
    case PathOp::kPlus:
      mod = Mod::kPlus;
      body = p.child().get();
      break;
    case PathOp::kOptional:
      mod = Mod::kOpt;
      body = p.child().get();
      break;
    default:
      break;
  }
  auto f = AsFactorBody(*body);
  if (!f.has_value()) return std::nullopt;
  f->mod = mod;
  return f;
}

/// Flattens the path into a factor sequence, or nullopt when the path
/// nests beyond the "sequence of (modified) disjunctions" shape.
std::optional<std::vector<Factor>> ToFactors(const Path& p) {
  std::vector<Factor> out;
  if (p.op() == PathOp::kSeq) {
    for (const auto& c : p.children()) {
      auto f = AsFactor(*c);
      if (!f.has_value()) return std::nullopt;
      out.push_back(std::move(*f));
    }
    return out;
  }
  auto f = AsFactor(p);
  if (!f.has_value()) return std::nullopt;
  out.push_back(std::move(*f));
  return out;
}

std::string TypeString(const std::vector<Factor>& factors) {
  std::map<SymbolId, char> lower_letters;
  std::map<std::vector<SymbolId>, char> upper_letters;
  std::string out;
  for (const auto& f : factors) {
    if (f.upper) {
      auto [it, inserted] = upper_letters.emplace(
          f.disj_key, static_cast<char>('A' + upper_letters.size()));
      out += it->second;
    } else {
      auto [it, inserted] = lower_letters.emplace(
          f.atom_key, static_cast<char>('a' + lower_letters.size()));
      out += it->second;
    }
    switch (f.mod) {
      case Mod::kNone:
        break;
      case Mod::kStar:
        out += '*';
        break;
      case Mod::kPlus:
        out += '+';
        break;
      case Mod::kOpt:
        out += '?';
        break;
    }
  }
  return out;
}

/// Classifies an oriented factor sequence; kOtherNonTransitive doubles as
/// "no match" (callers try the reverse orientation before accepting it).
Table8Type ClassifyOriented(const std::vector<Factor>& f) {
  const size_t n = f.size();
  auto is = [&](size_t i, bool upper, Mod mod) {
    return f[i].upper == upper && f[i].mod == mod;
  };
  if (n == 1) {
    if (is(0, false, Mod::kStar)) return Table8Type::kAStar;
    if (is(0, false, Mod::kPlus)) return Table8Type::kABStarOrAPlus;
    if (is(0, true, Mod::kStar)) return Table8Type::kDisjStar;
    if (is(0, true, Mod::kPlus)) return Table8Type::kDisjPlus;
    if (is(0, true, Mod::kNone)) return Table8Type::kDisj;
    if (is(0, true, Mod::kOpt)) return Table8Type::kDisjOpt;
    if (is(0, false, Mod::kNone)) return Table8Type::kWord;
    if (is(0, false, Mod::kOpt)) return Table8Type::kWordOptTail;
  }
  if (n == 2) {
    if (is(0, false, Mod::kNone) && is(1, false, Mod::kStar)) {
      return Table8Type::kABStarOrAPlus;
    }
    if (is(0, false, Mod::kStar) && is(1, false, Mod::kStar)) {
      return Table8Type::kAStarBStar;
    }
    if (is(0, false, Mod::kOpt) && is(1, false, Mod::kStar)) {
      return Table8Type::kAOptBStar;
    }
    if (is(0, true, Mod::kNone) && is(1, false, Mod::kStar)) {
      return Table8Type::kDisjBStar;
    }
  }
  if (n == 3) {
    if (is(0, false, Mod::kNone) && is(1, false, Mod::kStar) &&
        is(2, false, Mod::kStar)) {
      return Table8Type::kABStarCStar;
    }
    if (is(0, false, Mod::kNone) && is(1, false, Mod::kStar) &&
        is(2, false, Mod::kNone)) {
      return Table8Type::kABStarC;
    }
    if (is(0, false, Mod::kNone) && is(1, false, Mod::kNone) &&
        is(2, false, Mod::kStar)) {
      return Table8Type::kABCStar;
    }
    if (is(0, false, Mod::kNone) && is(1, false, Mod::kNone) &&
        is(2, false, Mod::kOpt)) {
      return Table8Type::kABCOpt;
    }
  }
  // a1...ak (all plain lowercase).
  bool all_plain = true;
  for (const auto& factor : f) {
    if (factor.upper || factor.mod != Mod::kNone) all_plain = false;
  }
  if (all_plain && n >= 1) return Table8Type::kWord;
  // a1 a2? ... ak? (plain head, optional lowercase tail).
  if (n >= 2 && !f[0].upper && f[0].mod == Mod::kNone) {
    bool opt_tail = true;
    for (size_t i = 1; i < n; ++i) {
      if (f[i].upper || f[i].mod != Mod::kOpt) opt_tail = false;
    }
    if (opt_tail) return Table8Type::kWordOptTail;
  }
  return Table8Type::kOtherNonTransitive;  // "no match" sentinel
}

bool FactorsTransitive(const std::vector<Factor>& f) {
  for (const auto& factor : f) {
    if (factor.mod == Mod::kStar || factor.mod == Mod::kPlus) return true;
  }
  return false;
}

}  // namespace

namespace {

/// Orders type strings the way the paper displays them: letters before
/// modifier symbols, so "ab*" is preferred over its reverse "a*b".
bool DisplayLess(const std::string& a, const std::string& b) {
  auto rank = [](char c) {
    if (c >= 'a' && c <= 'z') return static_cast<int>(c - 'a');
    if (c >= 'A' && c <= 'Z') return 100 + static_cast<int>(c - 'A');
    return 200 + static_cast<int>(c);
  };
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (rank(a[i]) != rank(b[i])) return rank(a[i]) < rank(b[i]);
  }
  return a.size() < b.size();
}

}  // namespace

std::string CanonicalTypeString(const Path& path) {
  auto factors = ToFactors(path);
  if (!factors.has_value()) return "other";
  std::string fwd = TypeString(*factors);
  std::vector<Factor> reversed(factors->rbegin(), factors->rend());
  std::string bwd = TypeString(reversed);
  return DisplayLess(fwd, bwd) ? fwd : bwd;
}

Table8Type ClassifyTable8(const Path& path) {
  // Exactly ^a: its own row.
  if (path.op() == PathOp::kInverse &&
      path.child()->op() == PathOp::kIri) {
    return Table8Type::kInverse;
  }
  auto factors = ToFactors(path);
  if (!factors.has_value()) {
    return path.IsTransitive() ? Table8Type::kOtherTransitive
                               : Table8Type::kOtherNonTransitive;
  }
  Table8Type t = ClassifyOriented(*factors);
  if (t != Table8Type::kOtherNonTransitive) return t;
  std::vector<Factor> reversed(factors->rbegin(), factors->rend());
  t = ClassifyOriented(reversed);
  if (t != Table8Type::kOtherNonTransitive) return t;
  return FactorsTransitive(*factors) ? Table8Type::kOtherTransitive
                                     : Table8Type::kOtherNonTransitive;
}

bool IsSimpleTransitiveExpression(const Path& path) {
  auto factors = ToFactors(path);
  if (!factors.has_value()) return false;
  size_t transitive = 0;
  for (const auto& f : *factors) {
    if (f.mod == Mod::kStar || f.mod == Mod::kPlus) ++transitive;
  }
  return transitive <= 1;
}

bool CertifiedInCtract(const Path& path) {
  // Finite languages are trivially tractable; STEs are in C_tract
  // (Martens-Trautner / Bagan-Bonifati-Groz).
  if (!path.IsTransitive()) return true;
  return IsSimpleTransitiveExpression(path);
}

bool CertifiedInTtract(const Path& path) {
  if (!path.IsTransitive()) return true;
  return IsSimpleTransitiveExpression(path);
}

}  // namespace rwdt::paths
