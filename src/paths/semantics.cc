#include "paths/semantics.h"

#include <deque>
#include <map>
#include <set>
#include <vector>

namespace rwdt::paths {
namespace {

/// A labeled move over the graph: follow predicate `iri` forward or
/// backward, or any predicate outside a forbidden set.
struct Atom {
  enum class Kind { kForward, kBackward, kNegated };
  Kind kind = Kind::kForward;
  SymbolId iri = kInvalidSymbol;
  std::vector<std::pair<SymbolId, bool>> forbidden;  // for kNegated
};

/// Thompson-style epsilon-NFA over atoms.
struct PathNfa {
  struct Edge {
    uint32_t target;
    int atom = -1;  // -1: epsilon
  };
  std::vector<std::vector<Edge>> states;
  std::vector<Atom> atoms;
  uint32_t start = 0, accept = 0;

  uint32_t AddState() {
    states.emplace_back();
    return static_cast<uint32_t>(states.size() - 1);
  }
  void AddEps(uint32_t from, uint32_t to) {
    states[from].push_back({to, -1});
  }
  void AddAtom(uint32_t from, uint32_t to, Atom atom) {
    atoms.push_back(std::move(atom));
    states[from].push_back({to, static_cast<int>(atoms.size() - 1)});
  }
};

/// Builds (start, accept) fragment for `path`, inverting direction when
/// `inverted` (pushing ^ down through the expression).
std::pair<uint32_t, uint32_t> Build(const Path& path, bool inverted,
                                    PathNfa* nfa) {
  switch (path.op()) {
    case PathOp::kIri: {
      const uint32_t s = nfa->AddState();
      const uint32_t t = nfa->AddState();
      Atom atom;
      atom.kind = inverted ? Atom::Kind::kBackward : Atom::Kind::kForward;
      atom.iri = path.iri();
      nfa->AddAtom(s, t, std::move(atom));
      return {s, t};
    }
    case PathOp::kNegated: {
      const uint32_t s = nfa->AddState();
      const uint32_t t = nfa->AddState();
      Atom atom;
      atom.kind = Atom::Kind::kNegated;
      atom.forbidden = path.negated_set();
      if (inverted) {
        for (auto& [iri, inv] : atom.forbidden) {
          (void)iri;
          inv = !inv;
        }
      }
      nfa->AddAtom(s, t, std::move(atom));
      return {s, t};
    }
    case PathOp::kInverse:
      return Build(*path.child(), !inverted, nfa);
    case PathOp::kSeq: {
      // Inversion reverses the concatenation order.
      std::vector<std::pair<uint32_t, uint32_t>> parts;
      if (!inverted) {
        for (const auto& c : path.children()) {
          parts.push_back(Build(*c, false, nfa));
        }
      } else {
        for (auto it = path.children().rbegin();
             it != path.children().rend(); ++it) {
          parts.push_back(Build(**it, true, nfa));
        }
      }
      for (size_t i = 0; i + 1 < parts.size(); ++i) {
        nfa->AddEps(parts[i].second, parts[i + 1].first);
      }
      return {parts.front().first, parts.back().second};
    }
    case PathOp::kAlt: {
      const uint32_t s = nfa->AddState();
      const uint32_t t = nfa->AddState();
      for (const auto& c : path.children()) {
        auto [cs, ct] = Build(*c, inverted, nfa);
        nfa->AddEps(s, cs);
        nfa->AddEps(ct, t);
      }
      return {s, t};
    }
    case PathOp::kStar:
    case PathOp::kPlus:
    case PathOp::kOptional: {
      const uint32_t s = nfa->AddState();
      const uint32_t t = nfa->AddState();
      auto [cs, ct] = Build(*path.child(), inverted, nfa);
      nfa->AddEps(s, cs);
      nfa->AddEps(ct, t);
      if (path.op() != PathOp::kPlus) nfa->AddEps(s, t);     // skip
      if (path.op() != PathOp::kOptional) nfa->AddEps(ct, cs);  // repeat
      return {s, t};
    }
  }
  return {nfa->AddState(), nfa->AddState()};
}

PathNfa Compile(const Path& path) {
  PathNfa nfa;
  auto [s, t] = Build(path, false, &nfa);
  nfa.start = s;
  nfa.accept = t;
  return nfa;
}

/// Moves available from a graph node under an atom.
void Moves(const graph::TripleStore& store, const Atom& atom, SymbolId node,
           std::vector<std::pair<SymbolId, graph::Triple>>* out) {
  switch (atom.kind) {
    case Atom::Kind::kForward:
      for (const auto& t : store.Match(node, atom.iri, kInvalidSymbol)) {
        out->emplace_back(t.o, t);
      }
      break;
    case Atom::Kind::kBackward:
      for (const auto& t : store.Match(kInvalidSymbol, atom.iri, node)) {
        out->emplace_back(t.s, t);
      }
      break;
    case Atom::Kind::kNegated: {
      std::set<SymbolId> fwd, bwd;
      bool any_fwd = true, any_bwd = false;
      for (const auto& [iri, inv] : atom.forbidden) {
        (inv ? bwd : fwd).insert(iri);
        if (inv) any_bwd = true;
      }
      if (any_fwd) {
        for (const auto& t :
             store.Match(node, kInvalidSymbol, kInvalidSymbol)) {
          if (fwd.count(t.p) == 0) out->emplace_back(t.o, t);
        }
      }
      if (any_bwd) {
        for (const auto& t :
             store.Match(kInvalidSymbol, kInvalidSymbol, node)) {
          if (bwd.count(t.p) == 0) out->emplace_back(t.s, t);
        }
      }
      break;
    }
  }
}

struct EdgeKey {
  graph::Triple triple;
  bool backward;
  bool operator<(const EdgeKey& o) const {
    if (!(triple == o.triple)) return triple < o.triple;
    return backward < o.backward;
  }
};

class Searcher {
 public:
  Searcher(const graph::TripleStore& store, const PathNfa& nfa,
           PathSemantics semantics, uint64_t budget)
      : store_(store), nfa_(nfa), semantics_(semantics), budget_(budget) {}

  PathMatch Run(SymbolId source, SymbolId target) {
    PathMatch result;
    if (semantics_ == PathSemantics::kWalk) {
      result.matched = Bfs(source, target, &result.steps);
      result.decided = true;
      return result;
    }
    std::set<SymbolId> visited_nodes = {source};
    std::set<EdgeKey> visited_edges;
    exhausted_ = false;
    const bool matched =
        Dfs(source, nfa_.start, target, &visited_nodes, &visited_edges,
            &result.steps);
    result.matched = matched;
    result.decided = matched || !exhausted_;
    return result;
  }

 private:
  void EpsClosure(std::set<uint32_t>* states) const {
    std::deque<uint32_t> queue(states->begin(), states->end());
    while (!queue.empty()) {
      const uint32_t q = queue.front();
      queue.pop_front();
      for (const auto& e : nfa_.states[q]) {
        if (e.atom == -1 && states->insert(e.target).second) {
          queue.push_back(e.target);
        }
      }
    }
  }

  bool Bfs(SymbolId source, SymbolId target, uint64_t* steps) const {
    std::set<std::pair<SymbolId, uint32_t>> seen;
    std::deque<std::pair<SymbolId, uint32_t>> queue;
    std::set<uint32_t> init = {nfa_.start};
    EpsClosure(&init);
    for (uint32_t q : init) {
      if (q == nfa_.accept && source == target) return true;
      seen.emplace(source, q);
      queue.emplace_back(source, q);
    }
    while (!queue.empty()) {
      ++*steps;
      auto [node, q] = queue.front();
      queue.pop_front();
      for (const auto& e : nfa_.states[q]) {
        if (e.atom == -1) continue;  // closure handled below
        std::vector<std::pair<SymbolId, graph::Triple>> moves;
        Moves(store_, nfa_.atoms[e.atom], node, &moves);
        for (const auto& [next, triple] : moves) {
          (void)triple;
          std::set<uint32_t> closure = {e.target};
          EpsClosure(&closure);
          for (uint32_t cq : closure) {
            if (cq == nfa_.accept && next == target) return true;
            if (seen.emplace(next, cq).second) {
              queue.emplace_back(next, cq);
            }
          }
        }
      }
      // Epsilon moves from q.
      std::set<uint32_t> closure = {q};
      EpsClosure(&closure);
      for (uint32_t cq : closure) {
        if (cq == nfa_.accept && node == target) return true;
        if (seen.emplace(node, cq).second) queue.emplace_back(node, cq);
      }
    }
    return false;
  }

  bool Dfs(SymbolId node, uint32_t state, SymbolId target,
           std::set<SymbolId>* visited_nodes,
           std::set<EdgeKey>* visited_edges, uint64_t* steps) {
    if (++*steps > budget_) {
      exhausted_ = true;
      return false;
    }
    std::set<uint32_t> closure = {state};
    EpsClosure(&closure);
    if (node == target && closure.count(nfa_.accept) > 0) return true;
    for (uint32_t q : closure) {
      for (const auto& e : nfa_.states[q]) {
        if (e.atom == -1) continue;
        std::vector<std::pair<SymbolId, graph::Triple>> moves;
        Moves(store_, nfa_.atoms[e.atom], node, &moves);
        for (const auto& [next, triple] : moves) {
          if (semantics_ == PathSemantics::kSimplePath) {
            if (!visited_nodes->insert(next).second) continue;
            if (Dfs(next, e.target, target, visited_nodes, visited_edges,
                    steps)) {
              return true;
            }
            visited_nodes->erase(next);
          } else {  // trail
            // A trail may not reuse an edge in either direction.
            const EdgeKey key{triple, false};
            if (!visited_edges->insert(key).second) continue;
            if (Dfs(next, e.target, target, visited_nodes, visited_edges,
                    steps)) {
              return true;
            }
            visited_edges->erase(key);
          }
          if (exhausted_) return false;
        }
      }
    }
    return false;
  }

  const graph::TripleStore& store_;
  const PathNfa& nfa_;
  PathSemantics semantics_;
  uint64_t budget_;
  bool exhausted_ = false;
};

}  // namespace

PathMatch MatchPath(const graph::TripleStore& store, const Path& path,
                    SymbolId source, SymbolId target,
                    PathSemantics semantics, uint64_t budget) {
  const PathNfa nfa = Compile(path);
  Searcher searcher(store, nfa, semantics, budget);
  return searcher.Run(source, target);
}

}  // namespace rwdt::paths
