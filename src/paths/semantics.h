#ifndef RWDT_PATHS_SEMANTICS_H_
#define RWDT_PATHS_SEMANTICS_H_

#include <cstdint>

#include "graph/rdf.h"
#include "paths/path.h"

namespace rwdt::paths {

/// Evaluation semantics for regular path queries (Section 9.6):
/// homomorphism (arbitrary walks, the SPARQL default — PTIME), simple
/// path (node-disjoint — NP-complete in general, tractable on C_tract),
/// and trail (edge-disjoint — tractable on T_tract).
enum class PathSemantics { kWalk, kSimplePath, kTrail };

struct PathMatch {
  bool decided = false;   // false: budget exhausted
  bool matched = false;
  uint64_t steps = 0;     // search steps expended
};

/// Does a path from `source` to `target` matching `path` exist under the
/// given semantics? `budget` caps the number of search steps for the
/// backtracking semantics (walk semantics always decides).
PathMatch MatchPath(const graph::TripleStore& store, const Path& path,
                    SymbolId source, SymbolId target,
                    PathSemantics semantics, uint64_t budget = 1 << 22);

}  // namespace rwdt::paths

#endif  // RWDT_PATHS_SEMANTICS_H_
