#ifndef RWDT_PATHS_PATH_H_
#define RWDT_PATHS_PATH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/flat_interner.h"
#include "common/interner.h"
#include "common/status.h"

namespace rwdt::paths {

/// SPARQL 1.1 property path AST (paper Section 9.2/9.6): SPARQL's version
/// of (two-way) regular path queries. Concatenation is '/', alternation
/// '|', inverse '^', closure '*' '+' '?', negated property sets '!p' /
/// '!(p|^q)'.
enum class PathOp {
  kIri,       // a predicate IRI
  kInverse,   // ^e
  kSeq,       // e1 / e2 / ...
  kAlt,       // e1 | e2 | ...
  kStar,      // e*
  kPlus,      // e+
  kOptional,  // e?
  kNegated,   // !(...) negated property set
};

class Path;
using PathPtr = std::shared_ptr<const Path>;

class Path {
 public:
  PathOp op() const { return op_; }
  SymbolId iri() const { return iri_; }
  const std::vector<PathPtr>& children() const { return children_; }
  const PathPtr& child() const { return children_[0]; }
  /// kNegated: forbidden (iri, inverted) pairs.
  const std::vector<std::pair<SymbolId, bool>>& negated_set() const {
    return negated_;
  }

  size_t Size() const;
  std::string ToString(const Interner& dict) const;

  /// True when the path can match arbitrarily long paths (uses * or +) —
  /// "transitive" in the Table 8 taxonomy.
  bool IsTransitive() const;

  /// True when the path uses the inverse operator '^' somewhere.
  bool UsesInverse() const;

  static PathPtr Iri(SymbolId iri);
  static PathPtr Inverse(PathPtr e);
  static PathPtr Seq(std::vector<PathPtr> parts);
  static PathPtr Alt(std::vector<PathPtr> parts);
  static PathPtr Star(PathPtr e);
  static PathPtr Plus(PathPtr e);
  static PathPtr Optional(PathPtr e);
  static PathPtr Negated(std::vector<std::pair<SymbolId, bool>> forbidden);

 private:
  Path(PathOp op, SymbolId iri, std::vector<PathPtr> children,
       std::vector<std::pair<SymbolId, bool>> negated)
      : op_(op),
        iri_(iri),
        children_(std::move(children)),
        negated_(std::move(negated)) {}

  PathOp op_;
  SymbolId iri_ = kInvalidSymbol;
  std::vector<PathPtr> children_;
  std::vector<std::pair<SymbolId, bool>> negated_;
};

/// Parses SPARQL property path syntax over IRIs written either as
/// prefixed names (wdt:P31), <angle-bracket> IRIs, or bare identifiers.
/// The FlatInterner overload is the engine's allocation-free hot path;
/// both produce identical ASTs for identical inputs (same SymbolId
/// contract).
Result<PathPtr> ParsePath(std::string_view input, Interner* dict);
Result<PathPtr> ParsePath(std::string_view input, FlatInterner* dict);

}  // namespace rwdt::paths

#endif  // RWDT_PATHS_PATH_H_
