#ifndef RWDT_PATHS_ANALYSIS_H_
#define RWDT_PATHS_ANALYSIS_H_

#include <string>

#include "paths/path.h"

namespace rwdt::paths {

/// The aggregated property-path type buckets of Table 8 (robotic Wikidata
/// queries). Following the paper: variables/IRIs are replaced by letters
/// in order of first occurrence; each type is aggregated with its
/// reverse; '^a' inside larger expressions counts as a plain letter;
/// disjunctions of >= 2 symbols (including negated sets and !a) become
/// capital letters.
enum class Table8Type {
  kAStar,            // a*
  kABStarOrAPlus,    // ab*, a+ (and reverses)
  kABStarCStar,      // ab*c*
  kDisjStar,         // A*
  kABStarC,          // ab*c
  kAStarBStar,       // a*b*
  kABCStar,          // abc*
  kAOptBStar,        // a?b*
  kDisjPlus,         // A+
  kDisjBStar,        // Ab*
  kOtherTransitive,  // remaining transitive types
  kWord,             // a1...ak (concatenation of plain letters)
  kDisj,             // A
  kDisjOpt,          // A?
  kWordOptTail,      // a1 a2? ... ak? (plain prefix, optional tail)
  kInverse,          // ^a (a single inverse step)
  kABCOpt,           // abc?
  kOtherNonTransitive,
};

std::string Table8TypeName(Table8Type type);

/// Classifies a property path into its Table 8 bucket.
Table8Type ClassifyTable8(const Path& path);

/// The canonical type string (e.g. "a*b*" for wdt:P31*/wdt:P279*), before
/// bucket aggregation. Reverse aggregation picks the lexicographically
/// smaller of the type and its reverse.
std::string CanonicalTypeString(const Path& path);

/// Simple transitive expressions (Martens-Trautner, Section 9.6): at most
/// one transitive factor, which must be a Kleene-starred/plussed
/// disjunction of atoms (an atom is an IRI, an inverted IRI, or a negated
/// set), and all other factors are atoms or optional disjunctions of
/// atoms, concatenated. Covers > 99% of the property paths in the
/// DBpedia-BritM logs and ~98% of Wikidata's. The canonical non-member
/// is a*b* (two transitive factors).
bool IsSimpleTransitiveExpression(const Path& path);

/// Sufficient syntactic conditions for membership in Bagan-Bonifati-Groz
/// C_tract (tractable data complexity under simple-path semantics) and
/// the trail-semantics analogue T_tract of Martens-Niewerth-Trautner.
/// Both classes contain all finite languages and all simple transitive
/// expressions; the full characterizations are semantic and out of scope,
/// so a `false` here means "not certified", not "provably hard".
bool CertifiedInCtract(const Path& path);
bool CertifiedInTtract(const Path& path);

}  // namespace rwdt::paths

#endif  // RWDT_PATHS_ANALYSIS_H_
