#include "graph/treewidth.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <map>

namespace rwdt::graph {

size_t SimpleGraph::NumEdges() const {
  size_t twice = 0;
  for (const auto& nbrs : adj_) twice += nbrs.size();
  return twice / 2;
}

uint32_t SimpleGraph::AddVertex() {
  adj_.emplace_back();
  return static_cast<uint32_t>(adj_.size() - 1);
}

void SimpleGraph::AddEdge(uint32_t u, uint32_t v) {
  if (u == v) return;
  adj_[u].insert(v);
  adj_[v].insert(u);
}

bool SimpleGraph::HasEdge(uint32_t u, uint32_t v) const {
  return adj_[u].count(v) > 0;
}

std::vector<std::vector<uint32_t>> SimpleGraph::Components() const {
  std::vector<std::vector<uint32_t>> out;
  std::vector<bool> seen(NumVertices(), false);
  for (uint32_t root = 0; root < NumVertices(); ++root) {
    if (seen[root]) continue;
    std::vector<uint32_t> comp;
    std::deque<uint32_t> queue = {root};
    seen[root] = true;
    while (!queue.empty()) {
      const uint32_t v = queue.front();
      queue.pop_front();
      comp.push_back(v);
      for (uint32_t u : adj_[v]) {
        if (!seen[u]) {
          seen[u] = true;
          queue.push_back(u);
        }
      }
    }
    out.push_back(std::move(comp));
  }
  return out;
}

namespace {

using Adj = std::vector<std::set<uint32_t>>;

Adj CopyAdjacency(const SimpleGraph& g) {
  Adj adj(g.NumVertices());
  for (uint32_t v = 0; v < g.NumVertices(); ++v) adj[v] = g.Neighbors(v);
  return adj;
}

/// Eliminates `v`: connects its neighbors into a clique, removes v.
void Eliminate(Adj* adj, std::vector<bool>* gone, uint32_t v) {
  const std::set<uint32_t> nbrs = (*adj)[v];
  for (uint32_t u : nbrs) (*adj)[u].erase(v);
  for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
    auto jt = it;
    for (++jt; jt != nbrs.end(); ++jt) {
      (*adj)[*it].insert(*jt);
      (*adj)[*jt].insert(*it);
    }
  }
  (*adj)[v].clear();
  (*gone)[v] = true;
}

size_t FillCount(const Adj& adj, uint32_t v) {
  size_t missing = 0;
  const auto& nbrs = adj[v];
  for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
    auto jt = it;
    for (++jt; jt != nbrs.end(); ++jt) {
      if (adj[*it].count(*jt) == 0) ++missing;
    }
  }
  return missing;
}

size_t EliminationUpperBound(const SimpleGraph& g, bool min_fill) {
  Adj adj = CopyAdjacency(g);
  std::vector<bool> gone(g.NumVertices(), false);
  size_t width = 0;
  for (size_t step = 0; step < g.NumVertices(); ++step) {
    uint32_t best = 0;
    size_t best_score = std::numeric_limits<size_t>::max();
    for (uint32_t v = 0; v < g.NumVertices(); ++v) {
      if (gone[v]) continue;
      // Cheap pre-filter: degree-based score first.
      const size_t degree = adj[v].size();
      size_t score;
      if (min_fill) {
        // Degree<=1 vertices never add fill; skip the quadratic count.
        score = degree <= 1 ? 0 : FillCount(adj, v);
      } else {
        score = degree;
      }
      if (score < best_score) {
        best_score = score;
        best = v;
        if (score == 0 && !min_fill) break;
        if (score == 0 && min_fill) break;
      }
    }
    width = std::max(width, adj[best].size());
    Eliminate(&adj, &gone, best);
  }
  return width;
}

}  // namespace

size_t TreewidthUpperBoundMinFill(const SimpleGraph& g) {
  return EliminationUpperBound(g, /*min_fill=*/true);
}

size_t TreewidthUpperBoundMinDegree(const SimpleGraph& g) {
  return EliminationUpperBound(g, /*min_fill=*/false);
}

size_t TreewidthLowerBoundDegeneracy(const SimpleGraph& g) {
  Adj adj = CopyAdjacency(g);
  std::vector<bool> gone(g.NumVertices(), false);
  size_t best = 0;
  for (size_t step = 0; step < g.NumVertices(); ++step) {
    uint32_t argmin = 0;
    size_t min_degree = std::numeric_limits<size_t>::max();
    for (uint32_t v = 0; v < g.NumVertices(); ++v) {
      if (!gone[v] && adj[v].size() < min_degree) {
        min_degree = adj[v].size();
        argmin = v;
      }
    }
    best = std::max(best, min_degree);
    for (uint32_t u : adj[argmin]) adj[u].erase(argmin);
    adj[argmin].clear();
    gone[argmin] = true;
  }
  return best;
}

size_t TreewidthLowerBoundMmdPlus(const SimpleGraph& g) {
  Adj adj = CopyAdjacency(g);
  std::vector<bool> gone(g.NumVertices(), false);
  size_t best = 0;
  size_t remaining = g.NumVertices();
  while (remaining > 1) {
    uint32_t argmin = 0;
    size_t min_degree = std::numeric_limits<size_t>::max();
    for (uint32_t v = 0; v < g.NumVertices(); ++v) {
      if (!gone[v] && adj[v].size() < min_degree) {
        min_degree = adj[v].size();
        argmin = v;
      }
    }
    best = std::max(best, min_degree);
    if (adj[argmin].empty()) {
      gone[argmin] = true;
      --remaining;
      continue;
    }
    // Contract argmin into its least-degree neighbor.
    uint32_t target = *adj[argmin].begin();
    for (uint32_t u : adj[argmin]) {
      if (adj[u].size() < adj[target].size()) target = u;
    }
    for (uint32_t u : adj[argmin]) {
      adj[u].erase(argmin);
      if (u != target) {
        adj[u].insert(target);
        adj[target].insert(u);
      }
    }
    adj[argmin].clear();
    gone[argmin] = true;
    --remaining;
  }
  return best;
}

bool IsForest(const SimpleGraph& g) {
  // Union-find cycle detection.
  std::vector<uint32_t> parent(g.NumVertices());
  for (uint32_t v = 0; v < g.NumVertices(); ++v) parent[v] = v;
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (uint32_t v = 0; v < g.NumVertices(); ++v) {
    for (uint32_t u : g.Neighbors(v)) {
      if (u <= v) continue;
      const uint32_t ru = find(u), rv = find(v);
      if (ru == rv) return false;
      parent[ru] = rv;
    }
  }
  return true;
}

namespace {

/// Branch-and-bound exact treewidth on a component of <= 64 vertices
/// (bitmask state), with memoization.
class ExactSolver {
 public:
  explicit ExactSolver(const std::vector<std::vector<uint32_t>>& adj)
      : n_(adj.size()) {
    masks_.resize(n_);
    for (size_t v = 0; v < n_; ++v) {
      for (uint32_t u : adj[v]) masks_[v] |= 1ull << u;
    }
  }

  size_t Solve(size_t upper) {
    best_ = upper;
    Search(0, 0);
    return best_;
  }

 private:
  /// Degree of v in the graph where `eliminated` has been eliminated
  /// (with fill): neighbors of v among remaining vertices, plus remaining
  /// vertices reachable from v through eliminated vertices.
  size_t EliminatedDegree(uint64_t eliminated, uint32_t v) const {
    uint64_t reached = 1ull << v;
    uint64_t frontier = masks_[v] & eliminated;
    uint64_t result = masks_[v] & ~eliminated;
    while (frontier != 0) {
      const int u = __builtin_ctzll(frontier);
      frontier &= frontier - 1;
      if (reached & (1ull << u)) continue;
      reached |= 1ull << u;
      result |= masks_[u] & ~eliminated;
      frontier |= masks_[u] & eliminated & ~reached;
    }
    result &= ~(1ull << v);
    return static_cast<size_t>(__builtin_popcountll(result));
  }

  void Search(uint64_t eliminated, size_t width) {
    if (width >= best_) return;
    const size_t remaining = n_ - __builtin_popcountll(eliminated);
    if (remaining <= 1) {
      best_ = std::min(best_, width);
      return;
    }
    auto memo = memo_.find(eliminated);
    if (memo != memo_.end() && memo->second <= width) return;
    memo_[eliminated] = width;

    // If some vertex's eliminated-degree >= remaining-1, eliminating it
    // last is free; standard "simplicial vertex first" speed-ups:
    // eliminate a vertex whose remaining neighborhood is a clique
    // immediately (it never hurts).
    std::vector<std::pair<size_t, uint32_t>> candidates;
    for (uint32_t v = 0; v < n_; ++v) {
      if (eliminated & (1ull << v)) continue;
      const size_t d = EliminatedDegree(eliminated, v);
      if (d <= 1) {
        // Always safe to eliminate degree-<=1 vertices first.
        Search(eliminated | (1ull << v), std::max(width, d));
        return;
      }
      candidates.emplace_back(d, v);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [d, v] : candidates) {
      if (d >= best_) break;  // sorted: the rest are no better
      Search(eliminated | (1ull << v), std::max(width, d));
    }
  }

  size_t n_;
  std::vector<uint64_t> masks_;
  std::map<uint64_t, size_t> memo_;
  size_t best_ = 0;
};

}  // namespace

std::optional<size_t> TreewidthExact(const SimpleGraph& g,
                                     size_t max_component) {
  size_t width = 0;
  for (const auto& comp : g.Components()) {
    if (comp.size() > max_component || comp.size() > 64) {
      return std::nullopt;
    }
    if (comp.size() == 1) continue;
    // Re-index the component.
    std::map<uint32_t, uint32_t> index;
    for (uint32_t v : comp) {
      index.emplace(v, static_cast<uint32_t>(index.size()));
    }
    std::vector<std::vector<uint32_t>> adj(comp.size());
    SimpleGraph sub(comp.size());
    for (uint32_t v : comp) {
      for (uint32_t u : g.Neighbors(v)) {
        adj[index[v]].push_back(index[u]);
        if (index[u] > index[v]) sub.AddEdge(index[v], index[u]);
      }
    }
    const size_t upper = TreewidthUpperBoundMinFill(sub);
    ExactSolver solver(adj);
    width = std::max(width, solver.Solve(upper));
  }
  return width;
}

std::optional<bool> TreewidthAtMost(const SimpleGraph& g, size_t k,
                                    size_t max_component) {
  if (k == 0) return g.NumEdges() == 0;
  if (k == 1) return IsForest(g);
  if (k == 2) {
    // Complete reduction: a graph has treewidth <= 2 iff it reduces to
    // the empty graph by repeatedly eliminating vertices of degree <= 2
    // (series-parallel reduction).
    Adj adj = CopyAdjacency(g);
    std::vector<bool> gone(g.NumVertices(), false);
    std::deque<uint32_t> queue;
    for (uint32_t v = 0; v < g.NumVertices(); ++v) {
      if (adj[v].size() <= 2) queue.push_back(v);
    }
    size_t removed = 0;
    std::vector<bool> queued(g.NumVertices(), false);
    while (!queue.empty()) {
      const uint32_t v = queue.front();
      queue.pop_front();
      queued[v] = false;
      if (gone[v] || adj[v].size() > 2) continue;
      const std::set<uint32_t> nbrs = adj[v];
      Eliminate(&adj, &gone, v);
      ++removed;
      for (uint32_t u : nbrs) {
        if (!gone[u] && adj[u].size() <= 2 && !queued[u]) {
          queue.push_back(u);
          queued[u] = true;
        }
      }
    }
    return removed == g.NumVertices();
  }
  auto exact = TreewidthExact(g, max_component);
  if (!exact.has_value()) return std::nullopt;
  return *exact <= k;
}

}  // namespace rwdt::graph
