#ifndef RWDT_GRAPH_RDF_H_
#define RWDT_GRAPH_RDF_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"

namespace rwdt::graph {

/// An RDF triple (s, p, o) over dictionary-encoded terms (paper
/// Section 7). The abstraction is an edge-labeled directed graph: an edge
/// from s to o with label p.
struct Triple {
  SymbolId s = kInvalidSymbol;
  SymbolId p = kInvalidSymbol;
  SymbolId o = kInvalidSymbol;

  bool operator<(const Triple& other) const {
    if (s != other.s) return s < other.s;
    if (p != other.p) return p < other.p;
    return o < other.o;
  }
  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

/// A set-semantics triple store with SPO / POS / OSP orderings for
/// pattern lookups. Terms are interned in a caller-owned dictionary.
class TripleStore {
 public:
  /// Inserts a triple; duplicates are ignored. Invalidates iterators.
  void Add(SymbolId s, SymbolId p, SymbolId o);
  void Add(const Triple& t) { Add(t.s, t.p, t.o); }

  size_t size() const { return EnsureSorted().size(); }

  /// All triples matching a pattern; kInvalidSymbol is a wildcard.
  std::vector<Triple> Match(SymbolId s, SymbolId p, SymbolId o) const;

  /// |Match(s, p, o)| without materializing the matches. Prefix-bound
  /// patterns (s / s,p / p / p,o / o / o,s / all / none) are answered by
  /// binary search on the right index; the one non-prefix shape (s,o)
  /// scans the subject's range. The planner's cardinality estimates
  /// lean on this.
  size_t CountMatch(SymbolId s, SymbolId p, SymbolId o) const;

  /// Objects o with (s, p, o); the hot path of query evaluation.
  std::vector<SymbolId> Objects(SymbolId s, SymbolId p) const;
  /// Subjects s with (s, p, o).
  std::vector<SymbolId> Subjects(SymbolId p, SymbolId o) const;

  /// Non-materializing range lookups: a contiguous [first, last) view
  /// into the matching index, valid until the next Add. The zero-copy
  /// counterparts of Objects / Subjects / Match for tight loops
  /// (exec::EvalPathNfa steps through these per product-BFS node).
  using TripleRange = std::pair<const Triple*, const Triple*>;
  /// (s, p, *) in SPO order.
  TripleRange RangeSP(SymbolId s, SymbolId p) const;
  /// (*, p, o) in POS order.
  TripleRange RangePO(SymbolId p, SymbolId o) const;
  /// (s, *, *) in SPO order.
  TripleRange RangeS(SymbolId s) const;
  /// (*, *, o) in OSP order.
  TripleRange RangeO(SymbolId o) const;

  bool Contains(SymbolId s, SymbolId p, SymbolId o) const;

  const std::vector<Triple>& triples() const { return EnsureSorted(); }

  std::set<SymbolId> SubjectSet() const;
  std::set<SymbolId> PredicateSet() const;
  std::set<SymbolId> ObjectSet() const;

 private:
  const std::vector<Triple>& EnsureSorted() const;

  mutable std::vector<Triple> spo_;   // sorted (s,p,o)
  mutable std::vector<Triple> pos_;   // sorted by (p,o,s)
  mutable std::vector<Triple> osp_;   // sorted by (o,s,p)
  mutable bool dirty_ = false;
};

/// Structure metrics from the practical studies of Section 7.1
/// (Ding-Finin, Bachlechner-Strang, Fernandez et al.).
struct RdfStructureStats {
  size_t num_triples = 0;
  size_t num_subjects = 0;
  size_t num_predicates = 0;
  size_t num_objects = 0;

  /// |P ∩ S| / |P ∪ S| and |P ∩ O| / |P ∪ O| — near zero in practice,
  /// justifying the edge-labeled-graph abstraction (Fernandez et al.).
  double predicate_subject_overlap = 0;
  double predicate_object_overlap = 0;

  /// Out-degree (triples per subject) and in-degree (triples per object).
  double out_degree_mean = 0, out_degree_max = 0;
  double in_degree_mean = 0, in_degree_max = 0;
  /// Power-law MLE exponents of the degree distributions.
  double out_degree_alpha = 0, in_degree_alpha = 0;

  /// Predicate lists L_s (Section 7.1.2): distinct predicate sets over
  /// subjects; the ratio is near 0.01 in practice ("subjects almost
  /// always have the same set of labels").
  size_t distinct_predicate_lists = 0;
  double predicate_list_ratio = 0;  // distinct lists / subjects

  /// Mean objects per (s,p) pair and subjects per (p,o) pair; both are
  /// close to 1 in real data, the latter with high variance.
  double objects_per_sp = 0;
  double subjects_per_po = 0;
  double subjects_per_po_stddev = 0;
  /// Mean predicates per object (close to 1 in the wild).
  double predicates_per_object = 0;
};

RdfStructureStats AnalyzeRdfStructure(const TripleStore& store);

}  // namespace rwdt::graph

#endif  // RWDT_GRAPH_RDF_H_
