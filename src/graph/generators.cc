#include "graph/generators.h"

#include <algorithm>
#include <map>
#include <set>

namespace rwdt::graph {

SimpleGraph MakeRoadNetwork(size_t width, size_t height, double p_diagonal,
                            double p_remove, Rng& rng) {
  SimpleGraph g(width * height);
  auto id = [&](size_t x, size_t y) {
    return static_cast<uint32_t>(y * width + x);
  };
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      if (x + 1 < width && !rng.NextBool(p_remove)) {
        g.AddEdge(id(x, y), id(x + 1, y));
      }
      if (y + 1 < height && !rng.NextBool(p_remove)) {
        g.AddEdge(id(x, y), id(x, y + 1));
      }
      if (x + 1 < width && y + 1 < height && rng.NextBool(p_diagonal)) {
        g.AddEdge(id(x, y), id(x + 1, y + 1));
      }
    }
  }
  return g;
}

SimpleGraph MakePreferentialAttachment(size_t n, size_t edges_per_node,
                                       Rng& rng) {
  SimpleGraph g(n);
  // Repeated-endpoint list: sampling uniformly from it is proportional
  // to degree.
  std::vector<uint32_t> endpoints;
  const size_t seed_size = std::max<size_t>(edges_per_node + 1, 2);
  for (uint32_t v = 0; v < seed_size && v + 1 < n; ++v) {
    g.AddEdge(v, v + 1);
    endpoints.push_back(v);
    endpoints.push_back(v + 1);
  }
  for (uint32_t v = static_cast<uint32_t>(seed_size + 1); v < n; ++v) {
    std::set<uint32_t> targets;
    while (targets.size() < edges_per_node && targets.size() < v) {
      const uint32_t t = endpoints[rng.NextBelow(endpoints.size())];
      if (t != v) targets.insert(t);
    }
    for (uint32_t t : targets) {
      g.AddEdge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

SimpleGraph MakeRandomGraph(size_t n, size_t m, Rng& rng) {
  SimpleGraph g(n);
  size_t added = 0;
  size_t guard = 0;
  while (added < m && guard < m * 20) {
    ++guard;
    const uint32_t u = static_cast<uint32_t>(rng.NextBelow(n));
    const uint32_t v = static_cast<uint32_t>(rng.NextBelow(n));
    if (u == v || g.HasEdge(u, v)) continue;
    g.AddEdge(u, v);
    ++added;
  }
  return g;
}

SimpleGraph MakeGenealogy(size_t n, double p_marriage, Rng& rng) {
  SimpleGraph g(n);
  // Ancestry forest: each person (except roots) attaches to a parent
  // among the previous individuals, biased toward recent ones.
  for (uint32_t v = 1; v < n; ++v) {
    const uint32_t lo = v > 12 ? v - 12 : 0;
    const uint32_t parent =
        static_cast<uint32_t>(rng.NextInt(lo, static_cast<int64_t>(v) - 1));
    g.AddEdge(v, parent);
    if (rng.NextBool(p_marriage) && v >= 2) {
      const uint32_t spouse = static_cast<uint32_t>(rng.NextBelow(v));
      g.AddEdge(v, spouse);
    }
  }
  return g;
}

TripleStore MakeRdfDataset(size_t num_entities, size_t num_classes,
                           size_t predicates_per_class, Interner* dict,
                           Rng& rng) {
  TripleStore store;
  // Class predicate lists.
  std::vector<std::vector<SymbolId>> class_predicates(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    for (size_t p = 0; p < predicates_per_class; ++p) {
      class_predicates[c].push_back(dict->Intern(
          "pred:c" + std::to_string(c) + "_" + std::to_string(p)));
    }
  }
  // Zipf-popular objects (shared values: tags, countries, years...).
  const size_t num_values = std::max<size_t>(num_entities / 4, 8);
  ZipfSampler zipf(num_values, 1.8);
  std::vector<SymbolId> values;
  values.reserve(num_values);
  for (size_t i = 0; i < num_values; ++i) {
    values.push_back(dict->Intern("val:" + std::to_string(i)));
  }
  std::vector<SymbolId> entities;
  entities.reserve(num_entities);
  for (size_t i = 0; i < num_entities; ++i) {
    entities.push_back(dict->Intern("ent:" + std::to_string(i)));
  }
  const SymbolId knows = dict->Intern("pred:links_to");
  for (size_t i = 0; i < num_entities; ++i) {
    const size_t cls = i % num_classes;
    for (SymbolId p : class_predicates[cls]) {
      // Each (s, p) relates to a single object almost always
      // (Fernandez et al.: objects per (s,p) close to 1).
      store.Add(entities[i], p, values[zipf.Sample(rng)]);
      if (rng.NextBool(0.03)) {
        store.Add(entities[i], p, values[zipf.Sample(rng)]);
      }
    }
    // Entity-to-entity links for graph structure.
    const size_t links = 1 + rng.NextBelow(3);
    for (size_t l = 0; l < links; ++l) {
      store.Add(entities[i], knows,
                entities[rng.NextBelow(num_entities)]);
    }
  }
  return store;
}

SimpleGraph ToSimpleGraph(const TripleStore& store,
                          std::vector<SymbolId>* node_terms) {
  std::map<SymbolId, uint32_t> index;
  std::vector<SymbolId> terms;
  auto intern = [&](SymbolId term) {
    auto [it, inserted] =
        index.emplace(term, static_cast<uint32_t>(terms.size()));
    if (inserted) terms.push_back(term);
    return it->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (const Triple& t : store.triples()) {
    edges.emplace_back(intern(t.s), intern(t.o));
  }
  SimpleGraph g(terms.size());
  for (const auto& [u, v] : edges) g.AddEdge(u, v);
  if (node_terms != nullptr) *node_terms = std::move(terms);
  return g;
}

}  // namespace rwdt::graph
