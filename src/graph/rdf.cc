#include "graph/rdf.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace rwdt::graph {

void TripleStore::Add(SymbolId s, SymbolId p, SymbolId o) {
  spo_.push_back({s, p, o});
  dirty_ = true;
}

const std::vector<Triple>& TripleStore::EnsureSorted() const {
  if (dirty_) {
    std::sort(spo_.begin(), spo_.end());
    spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
    pos_ = spo_;
    std::sort(pos_.begin(), pos_.end(), [](const Triple& a, const Triple& b) {
      if (a.p != b.p) return a.p < b.p;
      if (a.o != b.o) return a.o < b.o;
      return a.s < b.s;
    });
    osp_ = spo_;
    std::sort(osp_.begin(), osp_.end(), [](const Triple& a, const Triple& b) {
      if (a.o != b.o) return a.o < b.o;
      if (a.s != b.s) return a.s < b.s;
      return a.p < b.p;
    });
    dirty_ = false;
  }
  return spo_;
}

std::vector<Triple> TripleStore::Match(SymbolId s, SymbolId p,
                                       SymbolId o) const {
  EnsureSorted();
  std::vector<Triple> out;
  auto scan = [&](const std::vector<Triple>& index, auto lo_key,
                  auto in_range) {
    auto it = std::lower_bound(index.begin(), index.end(), Triple{},
                               lo_key);
    for (; it != index.end() && in_range(*it); ++it) {
      if ((s == kInvalidSymbol || it->s == s) &&
          (p == kInvalidSymbol || it->p == p) &&
          (o == kInvalidSymbol || it->o == o)) {
        out.push_back(*it);
      }
    }
  };
  if (s != kInvalidSymbol) {
    scan(
        spo_,
        [&](const Triple& a, const Triple&) { return a.s < s; },
        [&](const Triple& t) { return t.s == s; });
  } else if (p != kInvalidSymbol) {
    scan(
        pos_,
        [&](const Triple& a, const Triple&) { return a.p < p; },
        [&](const Triple& t) { return t.p == p; });
  } else if (o != kInvalidSymbol) {
    scan(
        osp_,
        [&](const Triple& a, const Triple&) { return a.o < o; },
        [&](const Triple& t) { return t.o == o; });
  } else {
    out = spo_;
  }
  return out;
}

size_t TripleStore::CountMatch(SymbolId s, SymbolId p, SymbolId o) const {
  EnsureSorted();
  const bool sb = s != kInvalidSymbol;
  const bool pb = p != kInvalidSymbol;
  const bool ob = o != kInvalidSymbol;
  if (sb && pb && ob) return Contains(s, p, o) ? 1 : 0;
  if (!sb && !pb && !ob) return spo_.size();

  if (sb && pb) {
    auto [lo, hi] = std::equal_range(
        spo_.begin(), spo_.end(), Triple{s, p, 0},
        [](const Triple& a, const Triple& b) {
          if (a.s != b.s) return a.s < b.s;
          return a.p < b.p;
        });
    return static_cast<size_t>(hi - lo);
  }
  if (pb && ob) {
    auto [lo, hi] = std::equal_range(
        pos_.begin(), pos_.end(), Triple{0, p, o},
        [](const Triple& a, const Triple& b) {
          if (a.p != b.p) return a.p < b.p;
          return a.o < b.o;
        });
    return static_cast<size_t>(hi - lo);
  }
  if (sb && ob) {
    // (s, ?, o): scan the subject's SPO range.
    auto [lo, hi] = std::equal_range(
        spo_.begin(), spo_.end(), Triple{s, 0, 0},
        [](const Triple& a, const Triple& b) { return a.s < b.s; });
    size_t n = 0;
    for (auto it = lo; it != hi; ++it) n += it->o == o ? 1 : 0;
    return n;
  }
  if (sb) {
    auto [lo, hi] = std::equal_range(
        spo_.begin(), spo_.end(), Triple{s, 0, 0},
        [](const Triple& a, const Triple& b) { return a.s < b.s; });
    return static_cast<size_t>(hi - lo);
  }
  if (pb) {
    auto [lo, hi] = std::equal_range(
        pos_.begin(), pos_.end(), Triple{0, p, 0},
        [](const Triple& a, const Triple& b) { return a.p < b.p; });
    return static_cast<size_t>(hi - lo);
  }
  auto [lo, hi] = std::equal_range(
      osp_.begin(), osp_.end(), Triple{0, 0, o},
      [](const Triple& a, const Triple& b) { return a.o < b.o; });
  return static_cast<size_t>(hi - lo);
}

TripleStore::TripleRange TripleStore::RangeSP(SymbolId s, SymbolId p) const {
  EnsureSorted();
  auto [lo, hi] = std::equal_range(spo_.begin(), spo_.end(), Triple{s, p, 0},
                                   [](const Triple& a, const Triple& b) {
                                     if (a.s != b.s) return a.s < b.s;
                                     return a.p < b.p;
                                   });
  return {spo_.data() + (lo - spo_.begin()), spo_.data() + (hi - spo_.begin())};
}

TripleStore::TripleRange TripleStore::RangePO(SymbolId p, SymbolId o) const {
  EnsureSorted();
  auto [lo, hi] = std::equal_range(pos_.begin(), pos_.end(), Triple{0, p, o},
                                   [](const Triple& a, const Triple& b) {
                                     if (a.p != b.p) return a.p < b.p;
                                     return a.o < b.o;
                                   });
  return {pos_.data() + (lo - pos_.begin()), pos_.data() + (hi - pos_.begin())};
}

TripleStore::TripleRange TripleStore::RangeS(SymbolId s) const {
  EnsureSorted();
  auto [lo, hi] = std::equal_range(
      spo_.begin(), spo_.end(), Triple{s, 0, 0},
      [](const Triple& a, const Triple& b) { return a.s < b.s; });
  return {spo_.data() + (lo - spo_.begin()), spo_.data() + (hi - spo_.begin())};
}

TripleStore::TripleRange TripleStore::RangeO(SymbolId o) const {
  EnsureSorted();
  auto [lo, hi] = std::equal_range(
      osp_.begin(), osp_.end(), Triple{0, 0, o},
      [](const Triple& a, const Triple& b) { return a.o < b.o; });
  return {osp_.data() + (lo - osp_.begin()), osp_.data() + (hi - osp_.begin())};
}

std::vector<SymbolId> TripleStore::Objects(SymbolId s, SymbolId p) const {
  std::vector<SymbolId> out;
  for (const Triple& t : Match(s, p, kInvalidSymbol)) out.push_back(t.o);
  return out;
}

std::vector<SymbolId> TripleStore::Subjects(SymbolId p, SymbolId o) const {
  std::vector<SymbolId> out;
  for (const Triple& t : Match(kInvalidSymbol, p, o)) out.push_back(t.s);
  return out;
}

bool TripleStore::Contains(SymbolId s, SymbolId p, SymbolId o) const {
  EnsureSorted();
  return std::binary_search(spo_.begin(), spo_.end(), Triple{s, p, o});
}

std::set<SymbolId> TripleStore::SubjectSet() const {
  std::set<SymbolId> out;
  for (const Triple& t : EnsureSorted()) out.insert(t.s);
  return out;
}

std::set<SymbolId> TripleStore::PredicateSet() const {
  std::set<SymbolId> out;
  for (const Triple& t : EnsureSorted()) out.insert(t.p);
  return out;
}

std::set<SymbolId> TripleStore::ObjectSet() const {
  std::set<SymbolId> out;
  for (const Triple& t : EnsureSorted()) out.insert(t.o);
  return out;
}

RdfStructureStats AnalyzeRdfStructure(const TripleStore& store) {
  RdfStructureStats stats;
  const auto& triples = store.triples();
  stats.num_triples = triples.size();

  const auto subjects = store.SubjectSet();
  const auto predicates = store.PredicateSet();
  const auto objects = store.ObjectSet();
  stats.num_subjects = subjects.size();
  stats.num_predicates = predicates.size();
  stats.num_objects = objects.size();

  auto jaccard = [](const std::set<SymbolId>& a,
                    const std::set<SymbolId>& b) {
    size_t inter = 0;
    for (SymbolId x : a) inter += b.count(x);
    const size_t uni = a.size() + b.size() - inter;
    return uni == 0 ? 0.0
                    : static_cast<double>(inter) / static_cast<double>(uni);
  };
  stats.predicate_subject_overlap = jaccard(predicates, subjects);
  stats.predicate_object_overlap = jaccard(predicates, objects);

  // Degrees.
  std::map<SymbolId, uint64_t> out_degree, in_degree;
  std::map<SymbolId, std::set<SymbolId>> predicate_list;
  std::map<std::pair<SymbolId, SymbolId>, uint64_t> sp_count, po_count;
  std::map<SymbolId, std::set<SymbolId>> predicates_of_object;
  for (const Triple& t : triples) {
    out_degree[t.s]++;
    in_degree[t.o]++;
    predicate_list[t.s].insert(t.p);
    sp_count[{t.s, t.p}]++;
    po_count[{t.p, t.o}]++;
    predicates_of_object[t.o].insert(t.p);
  }
  auto degree_stats = [](const std::map<SymbolId, uint64_t>& degrees,
                         double* mean, double* max, double* alpha) {
    std::vector<uint64_t> values;
    values.reserve(degrees.size());
    for (const auto& [node, d] : degrees) {
      (void)node;
      values.push_back(d);
    }
    const Summary s = Summarize(values);
    *mean = s.mean;
    *max = static_cast<double>(s.max);
    *alpha = PowerLawAlpha(values, 2);
  };
  degree_stats(out_degree, &stats.out_degree_mean, &stats.out_degree_max,
               &stats.out_degree_alpha);
  degree_stats(in_degree, &stats.in_degree_mean, &stats.in_degree_max,
               &stats.in_degree_alpha);

  std::set<std::set<SymbolId>> distinct_lists;
  for (const auto& [s, list] : predicate_list) {
    (void)s;
    distinct_lists.insert(list);
  }
  stats.distinct_predicate_lists = distinct_lists.size();
  stats.predicate_list_ratio =
      stats.num_subjects == 0
          ? 0
          : static_cast<double>(distinct_lists.size()) /
                static_cast<double>(stats.num_subjects);

  auto mean_of = [](const std::map<std::pair<SymbolId, SymbolId>, uint64_t>&
                        counts) {
    if (counts.empty()) return 0.0;
    double sum = 0;
    for (const auto& [k, v] : counts) {
      (void)k;
      sum += static_cast<double>(v);
    }
    return sum / static_cast<double>(counts.size());
  };
  stats.objects_per_sp = mean_of(sp_count);
  stats.subjects_per_po = mean_of(po_count);
  {
    double var = 0;
    for (const auto& [k, v] : po_count) {
      (void)k;
      const double d = static_cast<double>(v) - stats.subjects_per_po;
      var += d * d;
    }
    stats.subjects_per_po_stddev =
        po_count.empty() ? 0
                         : std::sqrt(var / static_cast<double>(
                                               po_count.size()));
  }
  if (!predicates_of_object.empty()) {
    double sum = 0;
    for (const auto& [o, preds] : predicates_of_object) {
      (void)o;
      sum += static_cast<double>(preds.size());
    }
    stats.predicates_per_object =
        sum / static_cast<double>(predicates_of_object.size());
  }
  return stats;
}

}  // namespace rwdt::graph
