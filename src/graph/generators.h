#ifndef RWDT_GRAPH_GENERATORS_H_
#define RWDT_GRAPH_GENERATORS_H_

#include "common/interner.h"
#include "common/rng.h"
#include "graph/rdf.h"
#include "graph/treewidth.h"

namespace rwdt::graph {

/// Structural analogues of the real-world datasets in the Maniu et al.
/// treewidth study (Table 1). The generators reproduce the *class* of
/// each dataset: road networks are near-planar with bounded degree;
/// web-like networks follow preferential attachment; communication
/// networks are sparse random graphs; genealogies are trees with a few
/// marriage cross-links.

/// Road network: a w x h grid with a fraction of diagonal shortcuts and a
/// fraction of removed edges (dead ends). Treewidth ~ O(min(w, h)).
SimpleGraph MakeRoadNetwork(size_t width, size_t height, double p_diagonal,
                            double p_remove, Rng& rng);

/// Web-like network: Barabasi-Albert preferential attachment with
/// `edges_per_node` links per arriving node. Heavy-tailed degrees; huge
/// treewidth relative to size.
SimpleGraph MakePreferentialAttachment(size_t n, size_t edges_per_node,
                                       Rng& rng);

/// Communication network (Gnutella-like): Erdos-Renyi G(n, m) sparse
/// random graph.
SimpleGraph MakeRandomGraph(size_t n, size_t m, Rng& rng);

/// Genealogy ("Royal"): a forest of ancestry trees plus a few
/// intermarriage edges. Treewidth stays tiny.
SimpleGraph MakeGenealogy(size_t n, double p_marriage, Rng& rng);

/// Synthetic RDF dataset exercising the Section 7.1 structure analyses:
/// entities belong to `num_classes` classes; each class has a fixed
/// predicate list (matching the observation that subjects almost always
/// share their predicate set); object popularity is Zipf-distributed so
/// in-degrees follow a power law.
TripleStore MakeRdfDataset(size_t num_entities, size_t num_classes,
                           size_t predicates_per_class, Interner* dict,
                           Rng& rng);

/// Undirected view of a triple store (nodes = subjects and objects,
/// one edge per triple), the input shape of the treewidth study.
SimpleGraph ToSimpleGraph(const TripleStore& store,
                          std::vector<SymbolId>* node_terms = nullptr);

}  // namespace rwdt::graph

#endif  // RWDT_GRAPH_GENERATORS_H_
