#ifndef RWDT_GRAPH_TREEWIDTH_H_
#define RWDT_GRAPH_TREEWIDTH_H_

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

namespace rwdt::graph {

/// A simple undirected graph on vertices 0..n-1 (no self-loops, no
/// multi-edges). Used by the treewidth algorithms of the Maniu et al.
/// reproduction (Table 1) and the query shape analysis (Table 7).
class SimpleGraph {
 public:
  explicit SimpleGraph(size_t n = 0) : adj_(n) {}

  size_t NumVertices() const { return adj_.size(); }
  size_t NumEdges() const;

  uint32_t AddVertex();
  void AddEdge(uint32_t u, uint32_t v);
  bool HasEdge(uint32_t u, uint32_t v) const;
  const std::set<uint32_t>& Neighbors(uint32_t v) const { return adj_[v]; }

  /// Connected components as vertex lists.
  std::vector<std::vector<uint32_t>> Components() const;

 private:
  std::vector<std::set<uint32_t>> adj_;
};

/// Treewidth upper bound via the min-fill elimination heuristic (the
/// workhorse heuristic in the Maniu et al. study).
size_t TreewidthUpperBoundMinFill(const SimpleGraph& g);

/// Treewidth upper bound via min-degree elimination.
size_t TreewidthUpperBoundMinDegree(const SimpleGraph& g);

/// Treewidth lower bound: graph degeneracy (MMD — maximum over the
/// peeling process of the minimum degree).
size_t TreewidthLowerBoundDegeneracy(const SimpleGraph& g);

/// Stronger lower bound MMD+ : like MMD but the minimum-degree vertex is
/// contracted into its least-degree neighbor instead of deleted
/// (minor-monotone, so still a treewidth lower bound).
size_t TreewidthLowerBoundMmdPlus(const SimpleGraph& g);

/// Exact treewidth via branch-and-bound over elimination orders with
/// memoization. Practical to ~25 vertices per connected component
/// (query-sized graphs); returns nullopt when a component exceeds
/// `max_component` vertices.
std::optional<size_t> TreewidthExact(const SimpleGraph& g,
                                     size_t max_component = 25);

/// Decides treewidth <= k. k=0,1 and 2 use linear reductions (isolated /
/// leaf deletion; degree-<=2 elimination, complete for k<=2); larger k
/// falls back to TreewidthExact. Returns nullopt only when the exact
/// fallback gives up (component too large).
std::optional<bool> TreewidthAtMost(const SimpleGraph& g, size_t k,
                                    size_t max_component = 25);

/// True iff g is a forest (treewidth <= 1 with at least one edge, or
/// edgeless).
bool IsForest(const SimpleGraph& g);

}  // namespace rwdt::graph

#endif  // RWDT_GRAPH_TREEWIDTH_H_
