#include "core/query_analysis.h"

#include <algorithm>
#include <chrono>

namespace rwdt::core {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

QueryAnalysis AnalyzeQuery(const sparql::Query& q,
                           const LogStudyOptions& options,
                           StageTimings* timings) {
  QueryAnalysis a;
  const uint64_t t_features = timings != nullptr ? NowNs() : 0;
  a.is_describe = q.form == sparql::QueryForm::kDescribe;
  a.triples = q.pattern != nullptr ? q.pattern->NumTriplePatterns() : 0;
  a.features = sparql::ExtractFeatures(q);
  a.ops = sparql::ExtractOperatorSet(q);
  a.afo_only = sparql::UsesOnlyAndFilterOptional(q);
  a.well_designed = a.afo_only && sparql::IsWellDesigned(q);
  a.safe_filters = sparql::HasOnlySafeFilters(q);
  a.simple_filters = sparql::HasOnlySimpleFilters(q);
  const uint64_t t_hypergraph = timings != nullptr ? NowNs() : 0;
  if (timings != nullptr) timings->feature_ns = t_hypergraph - t_features;

  if (a.ops.IsCqF() && q.pattern != nullptr &&
      a.triples <= options.max_triples_for_htw) {
    // Free variables: the projected ones (all for SELECT *).
    auto analyze_hg = [&](bool include_filters, bool* fca, bool* h1,
                          bool* h2, bool* h3) {
      std::vector<SymbolId> vertex_vars;
      hypergraph::Hypergraph h = hypergraph::BuildCanonicalHypergraph(
          q, include_filters, &vertex_vars);
      std::vector<uint32_t> free_vertices;
      if (q.select_star) {
        for (uint32_t v = 0; v < vertex_vars.size(); ++v) {
          free_vertices.push_back(v);
        }
      } else {
        std::set<SymbolId> projected;
        for (const auto& item : q.projection) {
          if (item.var.ActsAsVar()) projected.insert(item.var.id);
        }
        for (uint32_t v = 0; v < vertex_vars.size(); ++v) {
          if (projected.count(vertex_vars[v]) > 0) {
            free_vertices.push_back(v);
          }
        }
      }
      const bool acyclic = hypergraph::IsAcyclic(h);
      *fca = acyclic &&
             hypergraph::IsFreeConnexAcyclic(h, free_vertices);
      *h1 = acyclic;
      *h2 = acyclic ||
            hypergraph::HypertreeWidthAtMost(h, 2).value_or(false);
      *h3 = *h2 ||
            hypergraph::HypertreeWidthAtMost(h, 3).value_or(false);
    };
    if (a.ops.IsCq()) {
      analyze_hg(false, &a.cq_fca, &a.cq_htw1, &a.cq_htw2, &a.cq_htw3);
    }
    analyze_hg(true, &a.cqf_fca, &a.cqf_htw1, &a.cqf_htw2, &a.cqf_htw3);

    a.graph_cqf = sparql::IsGraphCqF(q);
    if (a.graph_cqf) {
      a.shape_with = hypergraph::ClassifyShape(
          hypergraph::BuildCanonicalGraph(q, /*include_constants=*/true));
      a.shape_without = hypergraph::ClassifyShape(
          hypergraph::BuildCanonicalGraph(q, /*include_constants=*/false));
    }
  }
  const uint64_t t_paths = timings != nullptr ? NowNs() : 0;
  if (timings != nullptr) timings->hypergraph_ns = t_paths - t_hypergraph;

  if (q.pattern != nullptr) {
    std::vector<const sparql::PathTriple*> path_triples;
    q.pattern->CollectPathTriples(&path_triples);
    for (const auto* pt : path_triples) {
      a.path_types.push_back(paths::ClassifyTable8(*pt->path));
      if (paths::IsSimpleTransitiveExpression(*pt->path)) a.ste++;
      if (paths::CertifiedInCtract(*pt->path)) a.ctract++;
      if (paths::CertifiedInTtract(*pt->path)) a.ttract++;
    }
  }
  if (timings != nullptr) timings->path_ns = NowNs() - t_paths;
  return a;
}

void AddToAggregates(const QueryAnalysis& a, uint64_t weight,
                     LogAggregates* agg) {
  agg->queries += weight;
  if (a.is_describe) {
    agg->describe += weight;
    return;  // the paper excludes Describe from the feature tables
  }
  agg->select_ask_construct += weight;
  agg->triple_histogram[std::min<size_t>(a.triples, 11)] += weight;
  for (sparql::Feature f : a.features) agg->feature_counts[f] += weight;

  const sparql::OperatorSet& ops = a.ops;
  if (!ops.uses_other) {
    const int combo = (ops.uses_and ? 1 : 0) + (ops.uses_filter ? 2 : 0) +
                      (ops.uses_path ? 4 : 0);
    switch (combo) {
      case 0:
        agg->ops_none += weight;
        break;
      case 1:
        agg->ops_and += weight;
        break;
      case 2:
        agg->ops_filter += weight;
        break;
      case 3:
        agg->ops_and_filter += weight;
        break;
      case 4:
        agg->ops_rpq += weight;
        break;
      case 5:
        agg->ops_and_rpq += weight;
        break;
      case 6:
        agg->ops_filter_rpq += weight;
        break;
      case 7:
        agg->ops_and_filter_rpq += weight;
        break;
    }
  }
  if (ops.IsCq()) agg->cq += weight;
  if (ops.IsCqF()) agg->cq_f += weight;
  if (ops.IsC2RpqF()) agg->c2rpq_f += weight;

  if (a.afo_only) agg->afo_only += weight;
  if (a.well_designed) agg->well_designed += weight;
  if (a.safe_filters) agg->safe_filters_only += weight;
  if (a.simple_filters) agg->simple_filters_only += weight;

  if (ops.IsCq()) {
    if (a.cq_fca) agg->cq_fca += weight;
    if (a.cq_htw1) agg->cq_htw1 += weight;
    if (a.cq_htw2) agg->cq_htw2 += weight;
    if (a.cq_htw3) agg->cq_htw3 += weight;
  }
  if (ops.IsCqF()) {
    if (a.cqf_fca) agg->cqf_fca += weight;
    if (a.cqf_htw1) agg->cqf_htw1 += weight;
    if (a.cqf_htw2) agg->cqf_htw2 += weight;
    if (a.cqf_htw3) agg->cqf_htw3 += weight;
  }
  if (a.graph_cqf) {
    agg->graph_cqf += weight;
    agg->shapes_with_constants[a.shape_with] += weight;
    agg->shapes_without_constants[a.shape_without] += weight;
  }
  for (paths::Table8Type t : a.path_types) {
    agg->path_types[t] += weight;
    agg->property_paths += weight;
  }
  agg->path_ste += a.ste * weight;
  agg->path_ctract += a.ctract * weight;
  agg->path_ttract += a.ttract * weight;
}

}  // namespace rwdt::core
