#include "core/verdict.h"

namespace rwdt::core {

const char* QueryVerdict::FormName() const {
  switch (form) {
    case sparql::QueryForm::kSelect:
      return "select";
    case sparql::QueryForm::kAsk:
      return "ask";
    case sparql::QueryForm::kConstruct:
      return "construct";
    case sparql::QueryForm::kDescribe:
      return "describe";
  }
  return "unknown";
}

const char* QueryVerdict::FragmentName() const {
  if (analysis.ops.IsCq()) return "cq";
  if (analysis.ops.IsCqF()) return "cq_f";
  if (analysis.ops.IsC2RpqF()) return "c2rpq_f";
  return "other";
}

uint64_t QueryVerdict::HtwLe() const {
  if (analysis.cqf_htw1) return 1;
  if (analysis.cqf_htw2) return 2;
  if (analysis.cqf_htw3) return 3;
  return 0;
}

QueryVerdict Classify(const sparql::Query& q, const LogStudyOptions& options,
                      StageTimings* timings) {
  QueryVerdict v;
  v.form = q.form;
  v.analysis = AnalyzeQuery(q, options, timings);
  return v;
}

}  // namespace rwdt::core
