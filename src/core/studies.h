#ifndef RWDT_CORE_STUDIES_H_
#define RWDT_CORE_STUDIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/interner.h"
#include "graph/treewidth.h"
#include "loggen/corpus_gen.h"
#include "tree/xml.h"

namespace rwdt::core {

/// DTD corpus study (Sections 4.1-4.2.3): the Choi / Bex et al.
/// statistics, recomputed by the library's classifiers over a corpus.
struct DtdStudyResult {
  size_t num_dtds = 0;
  size_t num_expressions = 0;
  size_t chain_expressions = 0;          // sequential (Definition 4.3)
  size_t sores = 0;                      // single-occurrence
  size_t kore2 = 0;                      // 2-OREs (includes SOREs)
  size_t deterministic = 0;              // one-unambiguous
  size_t recursive_dtds = 0;
  size_t max_parse_depth = 0;            // Choi: 1..9 in his corpus
  std::vector<size_t> nonrecursive_depths;  // Choi: up to 20
  std::map<std::string, size_t> fragment_histogram;  // RE(...) signatures
};

DtdStudyResult RunDtdStudy(const std::vector<schema::Dtd>& corpus,
                           const Interner& dict);

/// XML quality study (Grijzenhout-Marx, Section 3.1).
struct XmlQualityResult {
  size_t documents = 0;
  size_t well_formed = 0;
  std::map<tree::XmlErrorCategory, size_t> error_histogram;
};

XmlQualityResult RunXmlQualityStudy(
    const std::vector<loggen::XmlCorpusDocument>& corpus);

/// XPath corpus study (Baelde et al. / Pasqua, Section 5).
struct XPathStudyResult {
  size_t queries = 0;
  size_t parsed = 0;
  std::map<std::string, size_t> axis_counts;  // by axis name
  size_t uses_any_axis = 0;  // queries with an explicit non-child step
  size_t positive = 0;
  size_t core1 = 0;
  size_t downward = 0;
  size_t tree_patterns = 0;
  std::vector<uint64_t> sizes;
};

XPathStudyResult RunXPathStudy(const std::vector<std::string>& corpus,
                               Interner* dict);

/// Treewidth study (Maniu et al., Table 1): bounds per dataset.
struct TreewidthRow {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  size_t lower = 0;  // max(degeneracy, MMD+)
  size_t upper = 0;  // min(min-fill, min-degree)
};

TreewidthRow MeasureTreewidth(const std::string& name,
                              const graph::SimpleGraph& g,
                              bool use_min_fill);

}  // namespace rwdt::core

#endif  // RWDT_CORE_STUDIES_H_
