#ifndef RWDT_CORE_LOG_STUDY_H_
#define RWDT_CORE_LOG_STUDY_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "hypergraph/hypergraph.h"
#include "loggen/sparql_gen.h"
#include "paths/analysis.h"
#include "sparql/analysis.h"

namespace rwdt::core {

/// Aggregated per-corpus statistics — the quantities behind the paper's
/// Tables 2-8 and Figure 3. The same aggregate is kept twice per source:
/// over the *Valid* multiset (duplicates weighted) and over the *Unique*
/// set, exactly as the paper reports "X (Y)".
struct LogAggregates {
  uint64_t queries = 0;

  /// Figure 3: triple-pattern count buckets 0..10 and "11+".
  std::vector<uint64_t> triple_histogram = std::vector<uint64_t>(12, 0);

  /// Table 3: per-feature usage counts. Only Select/Ask/Construct
  /// queries are counted (Describe is excluded, as in the paper).
  std::map<sparql::Feature, uint64_t> feature_counts;
  uint64_t select_ask_construct = 0;
  uint64_t describe = 0;

  /// Tables 4/5: operator-set fragments.
  uint64_t ops_none = 0, ops_and = 0, ops_filter = 0, ops_and_filter = 0;
  uint64_t ops_rpq = 0, ops_and_rpq = 0, ops_filter_rpq = 0,
           ops_and_filter_rpq = 0;
  uint64_t cq = 0, cq_f = 0, c2rpq_f = 0;

  /// Section 9.4: only And/Filter/Optional; well-designed subset.
  uint64_t afo_only = 0, well_designed = 0;

  /// Section 9.5 filters.
  uint64_t safe_filters_only = 0, simple_filters_only = 0;

  /// Table 6: CQ and CQ+F hypergraph analysis (cumulative).
  uint64_t cq_fca = 0, cq_htw1 = 0, cq_htw2 = 0, cq_htw3 = 0;
  uint64_t cqf_fca = 0, cqf_htw1 = 0, cqf_htw2 = 0, cqf_htw3 = 0;

  /// Table 7: shape classes of graph-CQ+F queries, with and without
  /// constant nodes (non-cumulative class counts).
  uint64_t graph_cqf = 0;
  std::map<hypergraph::GraphShape, uint64_t> shapes_with_constants;
  std::map<hypergraph::GraphShape, uint64_t> shapes_without_constants;

  /// Table 8 + Section 9.6: property-path types and class coverage.
  uint64_t property_paths = 0;  // total path occurrences
  std::map<paths::Table8Type, uint64_t> path_types;
  uint64_t path_ste = 0, path_ctract = 0, path_ttract = 0;

  /// Field-wise (bit-identical) equality; the engine's determinism
  /// guarantee is stated in terms of this comparison.
  bool operator==(const LogAggregates&) const = default;
};

/// Results for one log source.
struct SourceStudy {
  std::string name;
  bool wikidata_like = false;
  uint64_t total = 0;    // all log entries, including ingest rejects
  uint64_t valid = 0;    // parsed successfully
  uint64_t unique = 0;   // distinct query strings among the valid ones
  /// Per-entry reject counts by taxonomy class (duplicates of an invalid
  /// query each count; ingest-level rejects included). Invariant:
  /// total == valid + sum(errors).
  std::array<uint64_t, kNumErrorClasses> errors{};
  LogAggregates valid_agg;
  LogAggregates unique_agg;

  bool operator==(const SourceStudy&) const = default;
};

/// Options controlling per-query analysis cost.
struct LogStudyOptions {
  /// Skip hypertree-width checks beyond this many triple patterns
  /// (real logs cap out around 230; the check is exponential in k only).
  size_t max_triples_for_htw = 64;
};

/// Runs the full per-query analysis pipeline (the paper's "~120
/// analytical tests") over a generated log.
///
/// This is the single-threaded convenience entry point: it delegates to
/// `engine::Engine` with `threads = 1`. Use the engine directly for
/// parallel sharding, cross-log memoization, and metrics.
SourceStudy AnalyzeLog(const loggen::SourceProfile& profile, uint64_t seed,
                       const LogStudyOptions& options = {});

/// Merges aggregates (for DBpedia-BritM vs Wikidata groupings).
void Merge(const LogAggregates& from, LogAggregates* into);
void MergeSource(const SourceStudy& from, SourceStudy* into);

}  // namespace rwdt::core

#endif  // RWDT_CORE_LOG_STUDY_H_
