#include "core/studies.h"

#include <algorithm>

#include "regex/fragments.h"
#include "regex/glushkov.h"
#include "xpath/xpath.h"

namespace rwdt::core {

DtdStudyResult RunDtdStudy(const std::vector<schema::Dtd>& corpus,
                           const Interner& dict) {
  (void)dict;
  DtdStudyResult result;
  result.num_dtds = corpus.size();
  for (const auto& dtd : corpus) {
    if (schema::IsRecursive(dtd)) {
      result.recursive_dtds++;
    } else if (auto depth = schema::MaxDocumentDepth(dtd);
               depth.has_value()) {
      result.nonrecursive_depths.push_back(*depth);
    }
    for (const auto& [label, content] : dtd.rules) {
      (void)label;
      result.num_expressions++;
      result.max_parse_depth =
          std::max(result.max_parse_depth, content->Depth());
      auto chain = regex::ToChainRegex(content);
      if (chain.has_value()) {
        result.chain_expressions++;
        // Fragment signature, e.g. "RE(a, a?, (+a)*)".
        std::string sig = "RE(";
        bool first = true;
        for (regex::FactorType t : chain->Signature()) {
          if (!first) sig += ", ";
          first = false;
          sig += regex::FactorTypeName(t);
        }
        sig += ")";
        result.fragment_histogram[sig]++;
      }
      if (regex::IsSore(content)) result.sores++;
      if (regex::IsKore(content, 2)) result.kore2++;
      if (regex::IsDeterministic(content)) result.deterministic++;
    }
  }
  return result;
}

XmlQualityResult RunXmlQualityStudy(
    const std::vector<loggen::XmlCorpusDocument>& corpus) {
  XmlQualityResult result;
  result.documents = corpus.size();
  Interner dict;
  for (const auto& doc : corpus) {
    auto parse = tree::ParseXml(doc.text, &dict);
    if (parse.ok()) {
      result.well_formed++;
    } else {
      result.error_histogram[tree::ClassifyXmlError(parse.status())]++;
    }
  }
  return result;
}

XPathStudyResult RunXPathStudy(const std::vector<std::string>& corpus,
                               Interner* dict) {
  XPathStudyResult result;
  result.queries = corpus.size();
  for (const auto& text : corpus) {
    auto parsed = xpath::ParseXPath(text, dict);
    if (!parsed.ok()) continue;
    result.parsed++;
    const xpath::Query& q = parsed.value();
    const auto axes = q.AxesUsed();
    bool non_child = false;
    for (xpath::Axis a : axes) {
      result.axis_counts[xpath::AxisName(a)]++;
      if (a != xpath::Axis::kChild) non_child = true;
    }
    if (non_child) result.uses_any_axis++;
    if (xpath::IsPositiveXPath(q)) result.positive++;
    if (xpath::IsCoreXPath1(q)) result.core1++;
    if (xpath::IsDownwardXPath(q)) result.downward++;
    if (xpath::IsTreePattern(q)) result.tree_patterns++;
    result.sizes.push_back(q.Size());
  }
  return result;
}

TreewidthRow MeasureTreewidth(const std::string& name,
                              const graph::SimpleGraph& g,
                              bool use_min_fill) {
  TreewidthRow row;
  row.name = name;
  row.nodes = g.NumVertices();
  row.edges = g.NumEdges();
  const size_t degeneracy = graph::TreewidthLowerBoundDegeneracy(g);
  const size_t mmd = graph::TreewidthLowerBoundMmdPlus(g);
  row.lower = std::max(degeneracy, mmd);
  row.upper = use_min_fill ? graph::TreewidthUpperBoundMinFill(g)
                           : graph::TreewidthUpperBoundMinDegree(g);
  row.upper = std::max(row.upper, row.lower);
  return row;
}

}  // namespace rwdt::core
