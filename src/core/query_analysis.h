#ifndef RWDT_CORE_QUERY_ANALYSIS_H_
#define RWDT_CORE_QUERY_ANALYSIS_H_

#include <cstdint>
#include <set>
#include <vector>

#include "core/log_study.h"
#include "hypergraph/hypergraph.h"
#include "paths/analysis.h"
#include "sparql/analysis.h"

namespace rwdt::core {

/// The result of running the paper's "~120 analytical tests" on a single
/// parsed query. A `QueryAnalysis` is a pure function of the query text:
/// it can be computed once and added to aggregates any number of times
/// with any weight, which is what makes memoization across duplicate log
/// entries sound (paper Table 2: Valid ≫ Unique).
struct QueryAnalysis {
  bool is_describe = false;
  size_t triples = 0;
  std::set<sparql::Feature> features;
  sparql::OperatorSet ops;
  bool afo_only = false, well_designed = false;
  bool safe_filters = false, simple_filters = false;
  bool cq_fca = false, cq_htw1 = false, cq_htw2 = false, cq_htw3 = false;
  bool cqf_fca = false, cqf_htw1 = false, cqf_htw2 = false,
       cqf_htw3 = false;
  bool graph_cqf = false;
  hypergraph::GraphShape shape_with = hypergraph::GraphShape::kOther;
  hypergraph::GraphShape shape_without = hypergraph::GraphShape::kOther;
  std::vector<paths::Table8Type> path_types;
  uint64_t ste = 0, ctract = 0, ttract = 0;
};

/// Wall-time spent in the expensive sub-stages of `AnalyzeQuery`, in
/// nanoseconds. Filled only when a non-null pointer is passed (the
/// clock calls are skipped entirely otherwise).
struct StageTimings {
  uint64_t feature_ns = 0;     // feature / operator-set / filter classes
  uint64_t hypergraph_ns = 0;  // acyclicity, htw <= k, shape classes
  uint64_t path_ns = 0;        // property-path type classification
};

/// Runs the full per-query classifier battery behind Tables 3-8 and
/// Figure 3. Deterministic in the query alone; never touches shared
/// state, so it is safe to call concurrently from many threads.
QueryAnalysis AnalyzeQuery(const sparql::Query& q,
                           const LogStudyOptions& options,
                           StageTimings* timings = nullptr);

/// Adds one analyzed query to `agg` with multiplicity `weight`.
void AddToAggregates(const QueryAnalysis& a, uint64_t weight,
                     LogAggregates* agg);

}  // namespace rwdt::core

#endif  // RWDT_CORE_QUERY_ANALYSIS_H_
