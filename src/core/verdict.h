#ifndef RWDT_CORE_VERDICT_H_
#define RWDT_CORE_VERDICT_H_

#include <cstdint>

#include "core/log_study.h"
#include "core/query_analysis.h"
#include "sparql/algebra.h"
#include "sparql/analysis.h"

namespace rwdt::core {

/// The single shared classification verdict for one parsed SPARQL query.
///
/// This is the one source of truth for "which tractable fragment does
/// this query live in": the executor's planner dispatches on it, the
/// engine's aggregate counters consume it, and the serving layer renders
/// it as the /v1/classify JSON. The raw per-test booleans live in
/// `analysis`; the methods below are the derived views that used to be
/// re-computed ad hoc at each consumer.
struct QueryVerdict {
  sparql::QueryForm form = sparql::QueryForm::kSelect;
  QueryAnalysis analysis;

  /// "select" / "ask" / "construct" / "describe".
  const char* FormName() const;

  /// "cq" ⊂ "cq_f" ⊂ "c2rpq_f" per Tables 4/5; everything else (Union,
  /// Optional, Graph, ...) is "other".
  const char* FragmentName() const;

  /// Certified hypertree-width bound of the CQ+F canonical hypergraph:
  /// 1..3, or 0 when not certified <= 3 (or not CQ+F at all).
  uint64_t HtwLe() const;

  // --- Planner dispatch predicates (most specific first) -------------

  /// Acyclic conjunctive query: the Yannakakis semijoin program applies.
  bool IsAcyclicCq() const {
    return analysis.ops.IsCq() && analysis.cq_htw1;
  }

  /// CQ(+F) certified htw <= 3 but not acyclic: a decomposition-guided
  /// join order still bounds intermediate results.
  bool IsLowWidthCqF() const {
    return analysis.ops.IsCqF() &&
           (analysis.cqf_htw1 || analysis.cqf_htw2 || analysis.cqf_htw3);
  }

  /// Every property path in the query is a simple transitive expression
  /// (Martens-Trautner), so NFA-product reachability applies to all of
  /// them. False when the query has no paths.
  bool AllPathsSimpleTransitive() const {
    return !analysis.path_types.empty() &&
           analysis.ste == analysis.path_types.size();
  }

  /// Well-designed AND/FILTER/OPTIONAL query that actually uses
  /// OPTIONAL: pattern-tree evaluation applies.
  bool IsWellDesignedOptional() const {
    return analysis.well_designed &&
           analysis.features.count(sparql::Feature::kOptional) > 0;
  }
};

/// Runs the full per-query classifier battery (`AnalyzeQuery`) and wraps
/// it into the shared verdict. Deterministic in the query alone; never
/// touches shared state, so it is safe to call concurrently.
QueryVerdict Classify(const sparql::Query& q, const LogStudyOptions& options,
                      StageTimings* timings = nullptr);

}  // namespace rwdt::core

#endif  // RWDT_CORE_VERDICT_H_
