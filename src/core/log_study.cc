#include "core/log_study.h"

#include "engine/engine.h"

namespace rwdt::core {

SourceStudy AnalyzeLog(const loggen::SourceProfile& profile, uint64_t seed,
                       const LogStudyOptions& options) {
  // The historical single-threaded path is the engine's threads=1 case:
  // one shard, entries processed in log order, no worker threads.
  engine::EngineOptions eopts;
  eopts.threads = 1;
  eopts.collect_stage_timings = false;
  eopts.study = options;
  engine::Engine eng(eopts);
  return eng.AnalyzeLog(profile, seed);
}

void Merge(const LogAggregates& from, LogAggregates* into) {
  into->queries += from.queries;
  for (size_t i = 0; i < from.triple_histogram.size(); ++i) {
    into->triple_histogram[i] += from.triple_histogram[i];
  }
  for (const auto& [f, c] : from.feature_counts) {
    into->feature_counts[f] += c;
  }
  into->select_ask_construct += from.select_ask_construct;
  into->describe += from.describe;
  into->ops_none += from.ops_none;
  into->ops_and += from.ops_and;
  into->ops_filter += from.ops_filter;
  into->ops_and_filter += from.ops_and_filter;
  into->ops_rpq += from.ops_rpq;
  into->ops_and_rpq += from.ops_and_rpq;
  into->ops_filter_rpq += from.ops_filter_rpq;
  into->ops_and_filter_rpq += from.ops_and_filter_rpq;
  into->cq += from.cq;
  into->cq_f += from.cq_f;
  into->c2rpq_f += from.c2rpq_f;
  into->afo_only += from.afo_only;
  into->well_designed += from.well_designed;
  into->safe_filters_only += from.safe_filters_only;
  into->simple_filters_only += from.simple_filters_only;
  into->cq_fca += from.cq_fca;
  into->cq_htw1 += from.cq_htw1;
  into->cq_htw2 += from.cq_htw2;
  into->cq_htw3 += from.cq_htw3;
  into->cqf_fca += from.cqf_fca;
  into->cqf_htw1 += from.cqf_htw1;
  into->cqf_htw2 += from.cqf_htw2;
  into->cqf_htw3 += from.cqf_htw3;
  into->graph_cqf += from.graph_cqf;
  for (const auto& [s, c] : from.shapes_with_constants) {
    into->shapes_with_constants[s] += c;
  }
  for (const auto& [s, c] : from.shapes_without_constants) {
    into->shapes_without_constants[s] += c;
  }
  into->property_paths += from.property_paths;
  for (const auto& [t, c] : from.path_types) {
    into->path_types[t] += c;
  }
  into->path_ste += from.path_ste;
  into->path_ctract += from.path_ctract;
  into->path_ttract += from.path_ttract;
}

void MergeSource(const SourceStudy& from, SourceStudy* into) {
  into->total += from.total;
  into->valid += from.valid;
  into->unique += from.unique;
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    into->errors[c] += from.errors[c];
  }
  Merge(from.valid_agg, &into->valid_agg);
  Merge(from.unique_agg, &into->unique_agg);
}

}  // namespace rwdt::core
