#include "core/log_study.h"

#include <algorithm>

#include "sparql/parser.h"

namespace rwdt::core {
namespace {

/// Per-unique-query analysis record; added to aggregates with a weight.
struct QueryAnalysis {
  bool is_describe = false;
  size_t triples = 0;
  std::set<sparql::Feature> features;
  sparql::OperatorSet ops;
  bool afo_only = false, well_designed = false;
  bool safe_filters = false, simple_filters = false;
  bool cq_fca = false, cq_htw1 = false, cq_htw2 = false, cq_htw3 = false;
  bool cqf_fca = false, cqf_htw1 = false, cqf_htw2 = false,
       cqf_htw3 = false;
  bool graph_cqf = false;
  hypergraph::GraphShape shape_with =
      hypergraph::GraphShape::kOther;
  hypergraph::GraphShape shape_without =
      hypergraph::GraphShape::kOther;
  std::vector<paths::Table8Type> path_types;
  uint64_t ste = 0, ctract = 0, ttract = 0;
};

QueryAnalysis Analyze(const sparql::Query& q,
                      const LogStudyOptions& options) {
  QueryAnalysis a;
  a.is_describe = q.form == sparql::QueryForm::kDescribe;
  a.triples =
      q.pattern != nullptr ? q.pattern->NumTriplePatterns() : 0;
  a.features = sparql::ExtractFeatures(q);
  a.ops = sparql::ExtractOperatorSet(q);
  a.afo_only = sparql::UsesOnlyAndFilterOptional(q);
  a.well_designed = a.afo_only && sparql::IsWellDesigned(q);
  a.safe_filters = sparql::HasOnlySafeFilters(q);
  a.simple_filters = sparql::HasOnlySimpleFilters(q);

  if (a.ops.IsCqF() && q.pattern != nullptr &&
      a.triples <= options.max_triples_for_htw) {
    // Free variables: the projected ones (all for SELECT *).
    auto analyze_hg = [&](bool include_filters, bool* fca, bool* h1,
                          bool* h2, bool* h3) {
      std::vector<SymbolId> vertex_vars;
      hypergraph::Hypergraph h = hypergraph::BuildCanonicalHypergraph(
          q, include_filters, &vertex_vars);
      std::vector<uint32_t> free_vertices;
      if (q.select_star) {
        for (uint32_t v = 0; v < vertex_vars.size(); ++v) {
          free_vertices.push_back(v);
        }
      } else {
        std::set<SymbolId> projected;
        for (const auto& item : q.projection) {
          if (item.var.ActsAsVar()) projected.insert(item.var.id);
        }
        for (uint32_t v = 0; v < vertex_vars.size(); ++v) {
          if (projected.count(vertex_vars[v]) > 0) {
            free_vertices.push_back(v);
          }
        }
      }
      const bool acyclic = hypergraph::IsAcyclic(h);
      *fca = acyclic &&
             hypergraph::IsFreeConnexAcyclic(h, free_vertices);
      *h1 = acyclic;
      *h2 = acyclic ||
            hypergraph::HypertreeWidthAtMost(h, 2).value_or(false);
      *h3 = *h2 ||
            hypergraph::HypertreeWidthAtMost(h, 3).value_or(false);
    };
    if (a.ops.IsCq()) {
      analyze_hg(false, &a.cq_fca, &a.cq_htw1, &a.cq_htw2, &a.cq_htw3);
    }
    analyze_hg(true, &a.cqf_fca, &a.cqf_htw1, &a.cqf_htw2, &a.cqf_htw3);

    a.graph_cqf = sparql::IsGraphCqF(q);
    if (a.graph_cqf) {
      a.shape_with = hypergraph::ClassifyShape(
          hypergraph::BuildCanonicalGraph(q, /*include_constants=*/true));
      a.shape_without = hypergraph::ClassifyShape(
          hypergraph::BuildCanonicalGraph(q, /*include_constants=*/false));
    }
  }

  if (q.pattern != nullptr) {
    std::vector<const sparql::PathTriple*> path_triples;
    q.pattern->CollectPathTriples(&path_triples);
    for (const auto* pt : path_triples) {
      a.path_types.push_back(paths::ClassifyTable8(*pt->path));
      if (paths::IsSimpleTransitiveExpression(*pt->path)) a.ste++;
      if (paths::CertifiedInCtract(*pt->path)) a.ctract++;
      if (paths::CertifiedInTtract(*pt->path)) a.ttract++;
    }
  }
  return a;
}

void AddToAggregates(const QueryAnalysis& a, uint64_t weight,
                     LogAggregates* agg) {
  agg->queries += weight;
  if (a.is_describe) {
    agg->describe += weight;
    return;  // the paper excludes Describe from the feature tables
  }
  agg->select_ask_construct += weight;
  agg->triple_histogram[std::min<size_t>(a.triples, 11)] += weight;
  for (sparql::Feature f : a.features) agg->feature_counts[f] += weight;

  const sparql::OperatorSet& ops = a.ops;
  if (!ops.uses_other) {
    const int combo = (ops.uses_and ? 1 : 0) + (ops.uses_filter ? 2 : 0) +
                      (ops.uses_path ? 4 : 0);
    switch (combo) {
      case 0:
        agg->ops_none += weight;
        break;
      case 1:
        agg->ops_and += weight;
        break;
      case 2:
        agg->ops_filter += weight;
        break;
      case 3:
        agg->ops_and_filter += weight;
        break;
      case 4:
        agg->ops_rpq += weight;
        break;
      case 5:
        agg->ops_and_rpq += weight;
        break;
      case 6:
        agg->ops_filter_rpq += weight;
        break;
      case 7:
        agg->ops_and_filter_rpq += weight;
        break;
    }
  }
  if (ops.IsCq()) agg->cq += weight;
  if (ops.IsCqF()) agg->cq_f += weight;
  if (ops.IsC2RpqF()) agg->c2rpq_f += weight;

  if (a.afo_only) agg->afo_only += weight;
  if (a.well_designed) agg->well_designed += weight;
  if (a.safe_filters) agg->safe_filters_only += weight;
  if (a.simple_filters) agg->simple_filters_only += weight;

  if (ops.IsCq()) {
    if (a.cq_fca) agg->cq_fca += weight;
    if (a.cq_htw1) agg->cq_htw1 += weight;
    if (a.cq_htw2) agg->cq_htw2 += weight;
    if (a.cq_htw3) agg->cq_htw3 += weight;
  }
  if (ops.IsCqF()) {
    if (a.cqf_fca) agg->cqf_fca += weight;
    if (a.cqf_htw1) agg->cqf_htw1 += weight;
    if (a.cqf_htw2) agg->cqf_htw2 += weight;
    if (a.cqf_htw3) agg->cqf_htw3 += weight;
  }
  if (a.graph_cqf) {
    agg->graph_cqf += weight;
    agg->shapes_with_constants[a.shape_with] += weight;
    agg->shapes_without_constants[a.shape_without] += weight;
  }
  for (paths::Table8Type t : a.path_types) {
    agg->path_types[t] += weight;
    agg->property_paths += weight;
  }
  agg->path_ste += a.ste * weight;
  agg->path_ctract += a.ctract * weight;
  agg->path_ttract += a.ttract * weight;
}

}  // namespace

SourceStudy AnalyzeLog(const loggen::SourceProfile& profile, uint64_t seed,
                       const LogStudyOptions& options) {
  SourceStudy study;
  study.name = profile.name;
  study.wikidata_like = profile.wikidata_like;

  const auto entries = loggen::GenerateLog(profile, seed);
  study.total = entries.size();

  // Deduplicate valid query texts; keep multiplicities.
  std::map<std::string, uint64_t> multiplicity;
  Interner dict;
  std::map<std::string, sparql::Query> parsed;
  for (const auto& entry : entries) {
    auto it = multiplicity.find(entry.text);
    if (it != multiplicity.end()) {
      it->second++;
      study.valid++;
      continue;
    }
    auto query = sparql::ParseSparql(entry.text, &dict);
    if (!query.ok()) continue;
    study.valid++;
    multiplicity[entry.text] = 1;
    parsed.emplace(entry.text, std::move(query).value());
  }
  study.unique = multiplicity.size();

  for (const auto& [text, count] : multiplicity) {
    const QueryAnalysis analysis = Analyze(parsed.at(text), options);
    AddToAggregates(analysis, count, &study.valid_agg);
    AddToAggregates(analysis, 1, &study.unique_agg);
  }
  return study;
}

void Merge(const LogAggregates& from, LogAggregates* into) {
  into->queries += from.queries;
  for (size_t i = 0; i < from.triple_histogram.size(); ++i) {
    into->triple_histogram[i] += from.triple_histogram[i];
  }
  for (const auto& [f, c] : from.feature_counts) {
    into->feature_counts[f] += c;
  }
  into->select_ask_construct += from.select_ask_construct;
  into->describe += from.describe;
  into->ops_none += from.ops_none;
  into->ops_and += from.ops_and;
  into->ops_filter += from.ops_filter;
  into->ops_and_filter += from.ops_and_filter;
  into->ops_rpq += from.ops_rpq;
  into->ops_and_rpq += from.ops_and_rpq;
  into->ops_filter_rpq += from.ops_filter_rpq;
  into->ops_and_filter_rpq += from.ops_and_filter_rpq;
  into->cq += from.cq;
  into->cq_f += from.cq_f;
  into->c2rpq_f += from.c2rpq_f;
  into->afo_only += from.afo_only;
  into->well_designed += from.well_designed;
  into->safe_filters_only += from.safe_filters_only;
  into->simple_filters_only += from.simple_filters_only;
  into->cq_fca += from.cq_fca;
  into->cq_htw1 += from.cq_htw1;
  into->cq_htw2 += from.cq_htw2;
  into->cq_htw3 += from.cq_htw3;
  into->cqf_fca += from.cqf_fca;
  into->cqf_htw1 += from.cqf_htw1;
  into->cqf_htw2 += from.cqf_htw2;
  into->cqf_htw3 += from.cqf_htw3;
  into->graph_cqf += from.graph_cqf;
  for (const auto& [s, c] : from.shapes_with_constants) {
    into->shapes_with_constants[s] += c;
  }
  for (const auto& [s, c] : from.shapes_without_constants) {
    into->shapes_without_constants[s] += c;
  }
  into->property_paths += from.property_paths;
  for (const auto& [t, c] : from.path_types) {
    into->path_types[t] += c;
  }
  into->path_ste += from.path_ste;
  into->path_ctract += from.path_ctract;
  into->path_ttract += from.path_ttract;
}

void MergeSource(const SourceStudy& from, SourceStudy* into) {
  into->total += from.total;
  into->valid += from.valid;
  into->unique += from.unique;
  Merge(from.valid_agg, &into->valid_agg);
  Merge(from.unique_agg, &into->unique_agg);
}

}  // namespace rwdt::core
