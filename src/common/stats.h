#ifndef RWDT_COMMON_STATS_H_
#define RWDT_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rwdt {

/// Summary statistics for a sample of non-negative values.
struct Summary {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t median = 0;
};

/// Computes count/mean/stddev/min/max/median. Sorts a copy of `values`.
Summary Summarize(std::vector<uint64_t> values);

/// Maximum-likelihood estimate of the exponent alpha of a discrete power
/// law P(x) ~ x^-alpha fitted to `values >= xmin` (Clauset-Shalizi-Newman
/// approximation alpha = 1 + n / sum(ln(x_i / (xmin - 0.5)))).
///
/// Returns 0 when fewer than 2 values are >= xmin. Used to verify that the
/// degree distributions of generated RDF data are power-law-like, matching
/// the observations of Ding-Finin and Fernandez et al. (paper Section 7.1).
double PowerLawAlpha(const std::vector<uint64_t>& values, uint64_t xmin = 1);

/// Histogram over buckets 0..max_bucket, with values above max_bucket
/// clamped into the last bucket (the paper's "11+" style bucketing).
std::vector<uint64_t> ClampedHistogram(const std::vector<uint64_t>& values,
                                       size_t max_bucket);

}  // namespace rwdt

#endif  // RWDT_COMMON_STATS_H_
