#ifndef RWDT_COMMON_INTERNER_H_
#define RWDT_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rwdt {

/// Dense integer id for an interned string. Ids start at 0 and are assigned
/// in first-seen order, so they are stable for a fixed insertion sequence.
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol = 0xffffffffu;

/// Bidirectional string <-> dense-id dictionary.
///
/// Used as the label dictionary for trees, the IRI/literal dictionary for
/// RDF stores, and the alphabet for regular expressions. Interning makes all
/// downstream algorithms operate on small integers.
class Interner {
 public:
  Interner() = default;

  /// Returns the id for `s`, interning it if new.
  SymbolId Intern(std::string_view s);

  /// Returns the id for `s`, or kInvalidSymbol when absent.
  SymbolId Lookup(std::string_view s) const;

  /// Returns the string for an id. Requires `id < size()`.
  const std::string& Name(SymbolId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
};

}  // namespace rwdt

#endif  // RWDT_COMMON_INTERNER_H_
