#ifndef RWDT_COMMON_SWAR_H_
#define RWDT_COMMON_SWAR_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

// Wide scanning primitives for the ingest hot path: find a delimiter
// byte (newline, tab) or the end of an ASCII run without touching bytes
// one at a time. Three tiers, best available picked at compile time:
//
//   * SSE2 (x86-64 baseline): 16 bytes per compare via _mm_cmpeq_epi8 +
//     movemask.
//   * NEON (aarch64 baseline): 16 bytes per compare via vceqq_u8 and a
//     64-bit narrowing fold.
//   * SWAR fallback (any 64-bit target): 8 bytes per step with the
//     broadcast-XOR zero-byte trick — portable C++, no intrinsics.
//
// Define RWDT_SWAR_FORCE_GENERIC to compile the SWAR tier everywhere
// (the test suite does this to differentially test the tiers against
// each other and against naive scans).
//
// All loads go through std::memcpy, so unaligned input is fine on every
// target. Match positions are derived with countr_zero, which assumes
// little-endian byte order — same assumption common/hash.h already
// bakes in.

#if !defined(RWDT_SWAR_FORCE_GENERIC)
#if defined(__SSE2__)
#define RWDT_SWAR_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define RWDT_SWAR_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace rwdt::swar {

inline constexpr uint64_t kLowBits = 0x0101010101010101ull;
inline constexpr uint64_t kHighBits = 0x8080808080808080ull;

inline uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

/// A word whose high bit is set in exactly the bytes of `w` that are
/// zero. The `& ~w` term removes the classic trick's false positives,
/// so the mask is exact for every input.
inline uint64_t ZeroByteMask(uint64_t w) {
  return (w - kLowBits) & ~w & kHighBits;
}

/// High bit set in exactly the bytes of `w` equal to `b`.
inline uint64_t ByteEqMask(uint64_t w, char b) {
  const uint64_t pattern = kLowBits * static_cast<uint8_t>(b);
  return ZeroByteMask(w ^ pattern);
}

/// Offset of the first occurrence of `b` in [p, p+n), or `n` if absent.
/// Pure SWAR tier; FindByte below picks the best available tier.
inline size_t FindByteGeneric(const char* p, size_t n, char b) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint64_t mask = ByteEqMask(LoadWord(p + i), b);
    if (mask != 0) {
      return i + static_cast<size_t>(std::countr_zero(mask)) / 8;
    }
  }
  for (; i < n; ++i) {
    if (p[i] == b) return i;
  }
  return n;
}

/// Length of the leading pure-ASCII run of [p, p+n) (bytes < 0x80),
/// measured 8 bytes at a time. UTF-8 validation uses this to skip the
/// overwhelmingly common case without per-byte branching.
inline size_t AsciiPrefixGeneric(const char* p, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint64_t mask = LoadWord(p + i) & kHighBits;
    if (mask != 0) {
      return i + static_cast<size_t>(std::countr_zero(mask)) / 8;
    }
  }
  for (; i < n; ++i) {
    if (static_cast<unsigned char>(p[i]) >= 0x80) return i;
  }
  return n;
}

#if defined(RWDT_SWAR_SSE2)

inline size_t FindByte(const char* p, size_t n, char b) {
  const __m128i pattern = _mm_set1_epi8(b);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i chunk;
    std::memcpy(&chunk, p + i, sizeof(chunk));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, pattern));
    if (mask != 0) {
      return i + static_cast<size_t>(
                     std::countr_zero(static_cast<unsigned>(mask)));
    }
  }
  return i + FindByteGeneric(p + i, n - i, b);
}

inline size_t AsciiPrefix(const char* p, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i chunk;
    std::memcpy(&chunk, p + i, sizeof(chunk));
    const int mask = _mm_movemask_epi8(chunk);  // high bit of each byte
    if (mask != 0) {
      return i + static_cast<size_t>(
                     std::countr_zero(static_cast<unsigned>(mask)));
    }
  }
  return i + AsciiPrefixGeneric(p + i, n - i);
}

#elif defined(RWDT_SWAR_NEON)

/// Folds a 16-byte compare result into a 64-bit word with 4 bits per
/// lane (the vshrn-by-4 trick), so countr_zero / 4 yields the lane.
inline uint64_t NeonMask(uint8x16_t eq) {
  const uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline size_t FindByte(const char* p, size_t n, char b) {
  const uint8x16_t pattern = vdupq_n_u8(static_cast<uint8_t>(b));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t chunk;
    std::memcpy(&chunk, p + i, sizeof(chunk));
    const uint64_t mask = NeonMask(vceqq_u8(chunk, pattern));
    if (mask != 0) {
      return i + static_cast<size_t>(std::countr_zero(mask)) / 4;
    }
  }
  return i + FindByteGeneric(p + i, n - i, b);
}

inline size_t AsciiPrefix(const char* p, size_t n) {
  const uint8x16_t high = vdupq_n_u8(0x80);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t chunk;
    std::memcpy(&chunk, p + i, sizeof(chunk));
    const uint64_t mask = NeonMask(vtstq_u8(chunk, high));
    if (mask != 0) {
      return i + static_cast<size_t>(std::countr_zero(mask)) / 4;
    }
  }
  return i + AsciiPrefixGeneric(p + i, n - i);
}

#else

inline size_t FindByte(const char* p, size_t n, char b) {
  return FindByteGeneric(p, n, b);
}

inline size_t AsciiPrefix(const char* p, size_t n) {
  return AsciiPrefixGeneric(p, n);
}

#endif

/// string_view conveniences, mirroring find(): npos when absent.
inline size_t FindByte(std::string_view s, char b) {
  const size_t i = FindByte(s.data(), s.size(), b);
  return i == s.size() ? std::string_view::npos : i;
}

}  // namespace rwdt::swar

#endif  // RWDT_COMMON_SWAR_H_
