#ifndef RWDT_COMMON_ARENA_H_
#define RWDT_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace rwdt {

/// Bump allocator for byte blobs with O(1) wholesale reuse.
///
/// Built for the engine's allocation-free steady state: a worker interns
/// every symbol of a query into an arena-backed FlatInterner, then
/// `Clear()` recycles the memory for the next query without returning it
/// to the heap. Blocks are retained across Clear(), so after warm-up the
/// parse hot path performs no allocations at all.
///
/// Not thread-safe; each worker owns its own arena.
class Arena {
 public:
  /// `block_bytes` is the granularity of heap requests; blobs larger
  /// than a block get a dedicated block of their exact size.
  explicit Arena(size_t block_bytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `n` bytes (unaligned; intended for character data).
  /// Pointers stay valid until Clear().
  char* Alloc(size_t n);

  /// Copies `s` into the arena and returns a view of the copy.
  std::string_view Copy(std::string_view s) {
    if (s.empty()) return {};
    char* dst = Alloc(s.size());
    std::char_traits<char>::copy(dst, s.data(), s.size());
    return {dst, s.size()};
  }

  /// Forgets every blob but keeps all blocks for reuse. Invalidates all
  /// pointers previously returned by Alloc/Copy.
  void Clear() {
    cur_ = 0;
    used_ = 0;
  }

  /// Heap bytes held (reserved, not necessarily in use).
  size_t bytes_reserved() const;

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t cur_ = 0;   // index of the block being bumped
  size_t used_ = 0;  // bytes used in blocks_[cur_]
};

}  // namespace rwdt

#endif  // RWDT_COMMON_ARENA_H_
