#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace rwdt {

Summary Summarize(std::vector<uint64_t> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.median = values[values.size() / 2];
  double sum = 0;
  for (uint64_t v : values) sum += static_cast<double>(v);
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (uint64_t v : values) {
    const double d = static_cast<double>(v) - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

double PowerLawAlpha(const std::vector<uint64_t>& values, uint64_t xmin) {
  double log_sum = 0;
  size_t n = 0;
  for (uint64_t v : values) {
    if (v < xmin || v == 0) continue;
    log_sum += std::log(static_cast<double>(v) /
                        (static_cast<double>(xmin) - 0.5));
    ++n;
  }
  if (n < 2 || log_sum <= 0) return 0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

std::vector<uint64_t> ClampedHistogram(const std::vector<uint64_t>& values,
                                       size_t max_bucket) {
  std::vector<uint64_t> hist(max_bucket + 1, 0);
  for (uint64_t v : values) {
    hist[std::min<uint64_t>(v, max_bucket)]++;
  }
  return hist;
}

}  // namespace rwdt
