#ifndef RWDT_COMMON_JSON_H_
#define RWDT_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rwdt {

/// Appends `s` to `*out` as the body of a JSON string literal (without
/// the surrounding quotes): `"`, `\`, and all control characters are
/// escaped, and bytes that are not valid UTF-8 are replaced by U+FFFD so
/// the output is always a valid JSON string. Every hand-rolled JSON
/// emitter in the repo (metrics, ingest report, trace export, bench
/// writers) must route user-influenced text through this.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Returns the escaped body, e.g. JsonEscape("a\"b\n") == "a\\\"b\\n".
std::string JsonEscape(std::string_view s);

/// Appends `"key":"value"` (both escaped) plus an optional trailing
/// comma — the common shape of the string fields in our JSON emitters.
void AppendJsonStringField(std::string_view key, std::string_view value,
                           std::string* out, bool trailing_comma = true);

/// A streaming JSON writer appending to a caller-owned string. It owns
/// all comma and brace bookkeeping — the historical source of bugs in
/// the hand-rolled emitters — so call sites read as the document shape:
///
///   JsonWriter w(&out);
///   w.BeginObject();
///   w.StringField("name", study.name);
///   w.Key("errors").BeginObject();
///   for (...) w.UIntField(ErrorClassName(c), count);
///   w.EndObject();
///   w.Key("per_source").BeginArray();
///   for (...) w.String(source);
///   w.EndArray();
///   w.EndObject();
///
/// All string keys and values are escaped via AppendJsonEscaped, so the
/// output is always a valid JSON document provided Begin/End calls
/// balance (unbalanced scopes are a programming error; the writer keeps
/// emitting rather than crashing, matching the registry's
/// dummy-on-misuse discipline).
class JsonWriter {
 public:
  explicit JsonWriter(std::string* out) : out_(out) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the member key (escaped); the next value call supplies the
  /// member value. Only meaningful directly inside an object scope.
  JsonWriter& Key(std::string_view key);

  // Values: as array elements, after Key() as member values, or bare at
  // the top level.
  JsonWriter& String(std::string_view value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Int(int64_t value);
  /// %.10g; NaN/Inf (not representable in JSON) are emitted as null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices pre-rendered JSON (e.g. another component's ToJson())
  /// verbatim as one value.
  JsonWriter& Raw(std::string_view json);

  // Key + value in one call — the dominant shape in our emitters.
  JsonWriter& StringField(std::string_view key, std::string_view value);
  JsonWriter& UIntField(std::string_view key, uint64_t value);
  JsonWriter& IntField(std::string_view key, int64_t value);
  JsonWriter& DoubleField(std::string_view key, double value);
  JsonWriter& BoolField(std::string_view key, bool value);
  JsonWriter& RawField(std::string_view key, std::string_view json);

 private:
  void BeforeValue();

  std::string* out_;
  /// One frame per open scope: true = object, false = array.
  std::vector<bool> scopes_;
  /// Whether the current scope already holds an element (comma needed).
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace rwdt

#endif  // RWDT_COMMON_JSON_H_
