#ifndef RWDT_COMMON_JSON_H_
#define RWDT_COMMON_JSON_H_

#include <string>
#include <string_view>

namespace rwdt {

/// Appends `s` to `*out` as the body of a JSON string literal (without
/// the surrounding quotes): `"`, `\`, and all control characters are
/// escaped, and bytes that are not valid UTF-8 are replaced by U+FFFD so
/// the output is always a valid JSON string. Every hand-rolled JSON
/// emitter in the repo (metrics, ingest report, trace export, bench
/// writers) must route user-influenced text through this.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Returns the escaped body, e.g. JsonEscape("a\"b\n") == "a\\\"b\\n".
std::string JsonEscape(std::string_view s);

/// Appends `"key":"value"` (both escaped) plus an optional trailing
/// comma — the common shape of the string fields in our JSON emitters.
void AppendJsonStringField(std::string_view key, std::string_view value,
                           std::string* out, bool trailing_comma = true);

}  // namespace rwdt

#endif  // RWDT_COMMON_JSON_H_
