#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace rwdt {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::AddSeparator() { rows_.emplace_back(); }

std::string AsciiTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    line += "\n";
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& row, bool left_all) {
    std::string line = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      const size_t pad = widths[i] - cell.size();
      // First column left-aligned; the rest right-aligned (numeric).
      if (i == 0 || left_all) {
        line += " " + cell + std::string(pad, ' ') + " |";
      } else {
        line += " " + std::string(pad, ' ') + cell + " |";
      }
    }
    line += "\n";
    return line;
  };

  std::string out = rule();
  out += render_row(header_, /*left_all=*/true);
  out += rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += rule();
    } else {
      out += render_row(row, /*left_all=*/false);
    }
  }
  out += rule();
  return out;
}

std::string WithThousands(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string Percent(uint64_t num, uint64_t denom, bool blank_zero) {
  if (denom == 0) return blank_zero ? "" : "0.00%";
  const double pct = 100.0 * static_cast<double>(num) / denom;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", pct);
  if (blank_zero && std::string(buf) == "0.00%") return "";
  return buf;
}

std::string Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace rwdt
