#include "common/json.h"

#include <cstdio>

namespace rwdt {
namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if the
/// bytes there are not well-formed (overlong forms, surrogates, and
/// out-of-range code points rejected, mirroring tree::IsValidUtf8).
size_t Utf8SequenceLength(std::string_view s, size_t i) {
  const unsigned char b0 = static_cast<unsigned char>(s[i]);
  if (b0 < 0x80) return 1;
  size_t len;
  unsigned min_cp;
  unsigned cp;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    min_cp = 0x80;
    cp = b0 & 0x1F;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    min_cp = 0x800;
    cp = b0 & 0x0F;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    min_cp = 0x10000;
    cp = b0 & 0x07;
  } else {
    return 0;
  }
  if (i + len > s.size()) return 0;
  for (size_t k = 1; k < len; ++k) {
    const unsigned char b = static_cast<unsigned char>(s[i + k]);
    if ((b & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (b & 0x3F);
  }
  if (cp < min_cp || cp > 0x10FFFF) return 0;
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;  // surrogate
  return len;
}

}  // namespace

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (size_t i = 0; i < s.size();) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        *out += "\\\"";
        ++i;
        continue;
      case '\\':
        *out += "\\\\";
        ++i;
        continue;
      case '\b':
        *out += "\\b";
        ++i;
        continue;
      case '\f':
        *out += "\\f";
        ++i;
        continue;
      case '\n':
        *out += "\\n";
        ++i;
        continue;
      case '\r':
        *out += "\\r";
        ++i;
        continue;
      case '\t':
        *out += "\\t";
        ++i;
        continue;
      default:
        break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
      ++i;
      continue;
    }
    if (c < 0x80) {
      out->push_back(static_cast<char>(c));
      ++i;
      continue;
    }
    const size_t len = Utf8SequenceLength(s, i);
    if (len == 0) {
      // Invalid byte: substitute U+FFFD so the emitted JSON stays valid
      // UTF-8 even when the input (e.g. a corrupt log's source column)
      // is not.
      *out += "\xEF\xBF\xBD";
      ++i;
    } else {
      out->append(s.substr(i, len));
      i += len;
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(s, &out);
  return out;
}

void AppendJsonStringField(std::string_view key, std::string_view value,
                           std::string* out, bool trailing_comma) {
  out->push_back('"');
  AppendJsonEscaped(key, out);
  *out += "\":\"";
  AppendJsonEscaped(value, out);
  out->push_back('"');
  if (trailing_comma) out->push_back(',');
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_->push_back(',');
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_->push_back('{');
  scopes_.push_back(true);
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_->push_back('}');
  if (!scopes_.empty()) {
    scopes_.pop_back();
    has_element_.pop_back();
  }
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_->push_back('[');
  scopes_.push_back(false);
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_->push_back(']');
  if (!scopes_.empty()) {
    scopes_.pop_back();
    has_element_.pop_back();
  }
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_->push_back(',');
    has_element_.back() = true;
  }
  out_->push_back('"');
  AppendJsonEscaped(key, out_);
  *out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_->push_back('"');
  AppendJsonEscaped(value, out_);
  out_->push_back('"');
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  *out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  *out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (value != value || value == __builtin_inf() ||
      value == -__builtin_inf()) {
    *out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  *out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  *out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  *out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_->append(json);
  return *this;
}

JsonWriter& JsonWriter::StringField(std::string_view key,
                                    std::string_view value) {
  return Key(key).String(value);
}

JsonWriter& JsonWriter::UIntField(std::string_view key, uint64_t value) {
  return Key(key).UInt(value);
}

JsonWriter& JsonWriter::IntField(std::string_view key, int64_t value) {
  return Key(key).Int(value);
}

JsonWriter& JsonWriter::DoubleField(std::string_view key, double value) {
  return Key(key).Double(value);
}

JsonWriter& JsonWriter::BoolField(std::string_view key, bool value) {
  return Key(key).Bool(value);
}

JsonWriter& JsonWriter::RawField(std::string_view key,
                                 std::string_view json) {
  return Key(key).Raw(json);
}

}  // namespace rwdt
