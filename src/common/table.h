#ifndef RWDT_COMMON_TABLE_H_
#define RWDT_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rwdt {

/// Renders aligned ASCII tables in the style of the paper's tables:
/// a header row, left-aligned first column, right-aligned numeric columns.
///
/// Used by every benchmark binary so the reproduced tables are directly
/// comparable with the published ones.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Inserts a horizontal separator before the next row.
  void AddSeparator();

  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Formats `n` with thousands separators, e.g. 28651075 -> "28,651,075".
std::string WithThousands(uint64_t n);

/// Formats `num/denom` as a percentage with two decimals, e.g. "29.83%".
/// Returns "" when the value rounds to 0.00% (matching the paper's blank
/// cells) if `blank_zero` is set.
std::string Percent(uint64_t num, uint64_t denom, bool blank_zero = false);

/// Formats a double with `digits` decimal places.
std::string Fixed(double v, int digits);

}  // namespace rwdt

#endif  // RWDT_COMMON_TABLE_H_
