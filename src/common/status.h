#ifndef RWDT_COMMON_STATUS_H_
#define RWDT_COMMON_STATUS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <variant>

namespace rwdt {

/// Error codes used across the library. Fallible operations never throw;
/// they return a `Status` or a `Result<T>` (RocksDB-style).
enum class Code {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kUnsupported,
  kResourceExhausted,
  kInternal,
  kLexError,       // malformed token before any grammar rule applies
  kEncodingError,  // byte-level breakage (invalid UTF-8 etc.)
};

/// A lightweight success/error value. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status LexError(std::string msg) {
    return Status(Code::kLexError, std::move(msg));
  }
  static Status EncodingError(std::string msg) {
    return Status(Code::kEncodingError, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  explicit operator bool() const { return ok(); }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }
  /// Alias for `message()`, mirroring `Result<T>::error_message()` so
  /// generic code can report either uniformly.
  const std::string& error_message() const { return message_; }

  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing `value()`
/// on an error result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps call sites terse
  /// (`return expr;`), mirroring absl::StatusOr.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Returns the error status, or OK when this holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  /// The error message, or "" when this holds a value.
  std::string error_message() const {
    return ok() ? std::string() : std::get<Status>(data_).message();
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(data_) : fallback;
  }

 private:
  std::variant<T, Status> data_;
};

// --- Error taxonomy ---------------------------------------------------------

/// The ingest pipeline's failure taxonomy: every rejected raw query is
/// assigned exactly one class, counted per-class in `engine::Metrics`
/// (the paper's query-log tables are defined over the *Valid* subset
/// precisely because real logs carry all of these).
enum class ErrorClass : size_t {
  kLexError = 0,        // bad token / character before grammar kicks in
  kParseError,          // grammatically malformed
  kUnsupportedFeature,  // recognized but outside the supported fragment
  kResourceExhausted,   // over byte / AST-node / step budgets
  kEncodingError,       // invalid UTF-8 or other byte-level breakage
};
inline constexpr size_t kNumErrorClasses = 5;

/// Stable snake_case name, e.g. "parse_error" (used as a JSON key).
const char* ErrorClassName(ErrorClass c);

/// Maps a non-OK Status onto the taxonomy. Codes without a dedicated
/// class (kInvalidArgument, kInternal, ...) classify as kParseError.
ErrorClass ClassifyStatus(const Status& status);

// --- Control-flow macros ----------------------------------------------------

namespace internal {
inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
Status AsStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Evaluates an expression yielding a `Status` or `Result<T>`; on error,
/// returns the error status from the enclosing function (which may itself
/// return either `Status` or any `Result<U>`).
#define RWDT_RETURN_IF_ERROR(expr)                                       \
  do {                                                                   \
    if (auto _rwdt_status = ::rwdt::internal::AsStatus((expr));          \
        !_rwdt_status.ok()) {                                            \
      return _rwdt_status;                                               \
    }                                                                    \
  } while (0)

#define RWDT_MACRO_CONCAT_INNER_(x, y) x##y
#define RWDT_MACRO_CONCAT_(x, y) RWDT_MACRO_CONCAT_INNER_(x, y)

/// `RWDT_ASSIGN_OR_RETURN(auto v, ParseThing(...));` — unwraps a
/// `Result<T>` into `v`, or returns the error status from the enclosing
/// function. `lhs` may be a declaration or an existing lvalue.
#define RWDT_ASSIGN_OR_RETURN(lhs, rexpr) \
  RWDT_ASSIGN_OR_RETURN_IMPL_(            \
      RWDT_MACRO_CONCAT_(_rwdt_result_, __COUNTER__), lhs, rexpr)

#define RWDT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace rwdt

#endif  // RWDT_COMMON_STATUS_H_
