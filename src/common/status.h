#ifndef RWDT_COMMON_STATUS_H_
#define RWDT_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace rwdt {

/// Error codes used across the library. Fallible operations never throw;
/// they return a `Status` or a `Result<T>` (RocksDB-style).
enum class Code {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kUnsupported,
  kResourceExhausted,
  kInternal,
};

/// A lightweight success/error value. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing `value()`
/// on an error result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value keeps call sites terse
  /// (`return expr;`), mirroring absl::StatusOr.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Returns the error status, or OK when this holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(data_) : fallback;
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace rwdt

#endif  // RWDT_COMMON_STATUS_H_
