#include "common/arena.h"

#include <algorithm>

namespace rwdt {

Arena::Arena(size_t block_bytes)
    : block_bytes_(std::max<size_t>(1, block_bytes)) {}

char* Arena::Alloc(size_t n) {
  if (n == 0) n = 1;  // distinct non-null pointers for empty blobs
  // Advance through retained blocks until one fits; most Clear/reuse
  // cycles stay inside blocks_[0] and never enter this loop.
  while (cur_ < blocks_.size()) {
    Block& b = blocks_[cur_];
    if (b.size - used_ >= n) {
      char* out = b.data.get() + used_;
      used_ += n;
      return out;
    }
    ++cur_;
    used_ = 0;
  }
  const size_t size = std::max(block_bytes_, n);
  blocks_.push_back(Block{std::make_unique<char[]>(size), size});
  cur_ = blocks_.size() - 1;
  used_ = n;
  return blocks_[cur_].data.get();
}

size_t Arena::bytes_reserved() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace rwdt
