#include "common/flat_interner.h"

namespace rwdt {

SymbolId FlatInterner::InternWithHash(uint64_t hash, std::string_view s) {
  if (slots_.empty()) Grow();
  uint64_t i = hash & mask_;
  while (true) {
    Slot& slot = slots_[i];
    if (slot.id == kInvalidSymbol) {
      const SymbolId id = static_cast<SymbolId>(names_.size());
      names_.push_back(arena_.Copy(s));
      slot.hash = hash;
      slot.id = id;
      if (2 * names_.size() > slots_.size()) Grow();
      return id;
    }
    if (slot.hash == hash && names_[slot.id] == s) return slot.id;
    i = (i + 1) & mask_;
  }
}

SymbolId FlatInterner::LookupWithHash(uint64_t hash, std::string_view s) const {
  if (slots_.empty()) return kInvalidSymbol;
  uint64_t i = hash & mask_;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.id == kInvalidSymbol) return kInvalidSymbol;
    if (slot.hash == hash && names_[slot.id] == s) return slot.id;
    i = (i + 1) & mask_;
  }
}

void FlatInterner::Grow() {
  const size_t new_size = slots_.empty() ? 64 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_size, Slot{});
  mask_ = new_size - 1;
  // Reinsert from the stored hashes; the texts are untouched, so ids and
  // names_ stay exactly as assigned.
  for (const Slot& slot : old) {
    if (slot.id == kInvalidSymbol) continue;
    uint64_t i = slot.hash & mask_;
    while (slots_[i].id != kInvalidSymbol) i = (i + 1) & mask_;
    slots_[i] = slot;
  }
}

void FlatInterner::Clear() {
  for (Slot& slot : slots_) slot = Slot{};
  names_.clear();
  arena_.Clear();
}

}  // namespace rwdt
