#include "common/status.h"

namespace rwdt {
namespace {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kParseError:
      return "ParseError";
    case Code::kNotFound:
      return "NotFound";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kUnsupported:
      return "Unsupported";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rwdt
