#include "common/status.h"

namespace rwdt {
namespace {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kParseError:
      return "ParseError";
    case Code::kNotFound:
      return "NotFound";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kUnsupported:
      return "Unsupported";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kInternal:
      return "Internal";
    case Code::kLexError:
      return "LexError";
    case Code::kEncodingError:
      return "EncodingError";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

const char* ErrorClassName(ErrorClass c) {
  switch (c) {
    case ErrorClass::kLexError:
      return "lex_error";
    case ErrorClass::kParseError:
      return "parse_error";
    case ErrorClass::kUnsupportedFeature:
      return "unsupported_feature";
    case ErrorClass::kResourceExhausted:
      return "resource_exhausted";
    case ErrorClass::kEncodingError:
      return "encoding_error";
  }
  return "?";
}

ErrorClass ClassifyStatus(const Status& status) {
  switch (status.code()) {
    case Code::kLexError:
      return ErrorClass::kLexError;
    case Code::kUnsupported:
      return ErrorClass::kUnsupportedFeature;
    case Code::kResourceExhausted:
      return ErrorClass::kResourceExhausted;
    case Code::kEncodingError:
      return ErrorClass::kEncodingError;
    default:
      return ErrorClass::kParseError;
  }
}

}  // namespace rwdt
