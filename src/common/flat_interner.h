#ifndef RWDT_COMMON_FLAT_INTERNER_H_
#define RWDT_COMMON_FLAT_INTERNER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/interner.h"

namespace rwdt {

/// Open-addressing string interner backed by a bump arena.
///
/// Same SymbolId contract as `Interner` — dense ids assigned in
/// first-seen order — but built for the engine's parallel hot path:
///
///  * **Hash-once.** `InternWithHash` accepts a precomputed
///    `common::Hash64`, so the engine hashes each query text exactly once
///    (in Feed routing) and threads the hash through dedup and the query
///    cache instead of re-hashing per structure.
///  * **Allocation-free steady state.** Strings are copied into an
///    `Arena`; `Clear()` recycles both the slot table and the arena
///    blocks, so a worker reusing one interner per query stops touching
///    the heap once warmed up (the `unordered_map<string, SymbolId>` in
///    `Interner` pays one node + one string allocation per insert and a
///    temporary string per lookup).
///  * **Flat probing.** Linear probing over a power-of-two slot array of
///    (hash, id) pairs: one cache line per probe, no pointer chasing.
///
/// Not thread-safe; each engine shard/worker owns its own instance.
class FlatInterner {
 public:
  FlatInterner() = default;

  /// Returns the id for `s`, interning it if new.
  SymbolId Intern(std::string_view s) { return InternWithHash(Hash64(s), s); }

  /// Same, with the caller-provided `Hash64(s)` (hash-once fast path).
  /// `hash` must equal `Hash64(s)` with the default seed.
  SymbolId InternWithHash(uint64_t hash, std::string_view s);

  /// Returns the id for `s`, or kInvalidSymbol when absent.
  SymbolId Lookup(std::string_view s) const {
    return LookupWithHash(Hash64(s), s);
  }
  SymbolId LookupWithHash(uint64_t hash, std::string_view s) const;

  /// Returns the string for an id. Requires `id < size()`. The view is
  /// invalidated by Clear().
  std::string_view Name(SymbolId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

  /// Bytes reserved by the slot table, the arena blocks, and the name
  /// index — the interner's resident footprint. Clear() keeps reserved
  /// memory, so this is a high-water mark, which is exactly what the
  /// occupancy gauges on /metrics want to show.
  size_t bytes_reserved() const {
    return slots_.capacity() * sizeof(Slot) + arena_.bytes_reserved() +
           names_.capacity() * sizeof(std::string_view);
  }

  /// Forgets all symbols but keeps the slot table and arena blocks, so
  /// the next fill cycle allocates nothing (resize-across-clear: a table
  /// grown by one query stays grown for the next).
  void Clear();

 private:
  struct Slot {
    uint64_t hash = 0;
    SymbolId id = kInvalidSymbol;  // kInvalidSymbol == empty slot
  };

  void Grow();

  /// Max load factor 1/2: slots_.size() >= 2 * size() + 1.
  std::vector<Slot> slots_;  // power-of-two sized; empty until first use
  uint64_t mask_ = 0;        // slots_.size() - 1
  Arena arena_;
  std::vector<std::string_view> names_;  // id -> arena-backed text
};

}  // namespace rwdt

#endif  // RWDT_COMMON_FLAT_INTERNER_H_
