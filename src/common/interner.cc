#include "common/interner.h"

namespace rwdt {

SymbolId Interner::Intern(std::string_view s) {
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId Interner::Lookup(std::string_view s) const {
  auto it = ids_.find(std::string(s));
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

}  // namespace rwdt
