#ifndef RWDT_COMMON_RNG_H_
#define RWDT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rwdt {

/// Deterministic 64-bit PRNG (splitmix64 seeded xoshiro256**).
///
/// All corpus generators in the library take an explicit seed and draw only
/// from this generator, so every benchmark and test is reproducible
/// bit-for-bit across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Samples an index according to (unnormalized, non-negative) weights.
  /// Returns 0 when all weights are zero or the vector is empty... callers
  /// must pass at least one weight.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Derives an independent child generator; convenient for fanning a single
  /// seed out across corpus sources without correlated streams.
  Rng Fork();

 private:
  uint64_t state_[4];
};

/// Samples from a (bounded) Zipf distribution over {0, 1, ..., n-1} with
/// exponent `s`: P(k) proportional to 1/(k+1)^s. Precomputes the CDF.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace rwdt

#endif  // RWDT_COMMON_RNG_H_
