#include "common/rng.h"

#include <cmath>

namespace rwdt {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias; bias is negligible for the
  // bounds used here but rejection keeps the generator exactly uniform.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return 0;
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double r = rng.NextDouble();
  // Binary search for the first CDF entry >= r.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rwdt
