#ifndef RWDT_COMMON_HASH_H_
#define RWDT_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace rwdt {

/// Seed for all engine-internal hashing. Fixed (not randomized per
/// process) so shard routing, and therefore the order-insensitive
/// reduction, is reproducible run to run.
inline constexpr uint64_t kHashSeed = 0x2545f4914f6cdd1dull;

namespace hash_internal {

/// 128-bit multiply folded to 64 bits: the wyhash-style mixing step.
/// Both halves of the product feed the result, so single-bit input
/// differences avalanche through all 64 output bits.
inline uint64_t Mix(uint64_t a, uint64_t b) {
  const unsigned __int128 p =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  return static_cast<uint64_t>(p) ^ static_cast<uint64_t>(p >> 64);
}

inline uint64_t Load64(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

}  // namespace hash_internal

/// 64-bit string hash, computed once per query text and threaded through
/// shard routing, per-shard dedup, and the query cache (hash-once
/// pipeline). Word-at-a-time wyhash-style multiply-mix: ~8 bytes per
/// cycle on the texts the paper's logs contain (tens to hundreds of
/// bytes), an order of magnitude faster than byte-at-a-time FNV.
///
/// Deterministic for a fixed seed and platform; NOT a portable fingerprint
/// (little/big endian differ) and NOT for persistence.
inline uint64_t Hash64(std::string_view s, uint64_t seed = kHashSeed) {
  using hash_internal::Load64;
  using hash_internal::Mix;
  constexpr uint64_t k1 = 0x9e3779b97f4a7c15ull;
  constexpr uint64_t k2 = 0xbf58476d1ce4e5b9ull;
  constexpr uint64_t k3 = 0x94d049bb133111ebull;

  const char* p = s.data();
  size_t n = s.size();
  uint64_t h = Mix(seed ^ k1, n + 1);
  while (n >= 8) {
    h = Mix(h ^ Load64(p), k2);
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  for (size_t i = 0; i < n; ++i) {
    tail |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return Mix(h ^ tail, k3);
}

}  // namespace rwdt

#endif  // RWDT_COMMON_HASH_H_
