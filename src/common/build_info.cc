#include "common/build_info.h"

#include "common/json.h"
#include "rwdt_build_info_gen.h"

namespace rwdt::common {

const BuildInfo& BuildInfo::Get() {
  static const BuildInfo info{
      RWDT_BUILD_GIT_DESCRIBE, RWDT_BUILD_GIT_COMMIT, RWDT_BUILD_COMPILER,
      RWDT_BUILD_TYPE,         RWDT_BUILD_CXX_STANDARD,
  };
  return info;
}

std::string BuildInfo::ToString() const {
  std::string out = "rwdt ";
  out += git_describe;
  out += " (";
  out += build_type;
  out += ", ";
  out += compiler;
  out += ", C++";
  out += cxx_standard;
  out += ")";
  return out;
}

std::string BuildInfo::ToJson() const {
  std::string out = "{";
  AppendJsonStringField("git_describe", git_describe, &out);
  AppendJsonStringField("git_commit", git_commit, &out);
  AppendJsonStringField("compiler", compiler, &out);
  AppendJsonStringField("build_type", build_type, &out);
  AppendJsonStringField("cxx_standard", cxx_standard, &out,
                        /*trailing_comma=*/false);
  out += "}";
  return out;
}

}  // namespace rwdt::common
