#ifndef RWDT_COMMON_BUILD_INFO_H_
#define RWDT_COMMON_BUILD_INFO_H_

#include <string>

namespace rwdt::common {

/// Build provenance, injected at CMake configure time (git describe and
/// commit via `execute_process`, compiler and build type from the CMake
/// cache) through the generated header `rwdt_build_info_gen.h`. Shown by
/// `--version` in every example binary, in the admin server's /statusz,
/// and in the header of every bench JSON so perf numbers are always
/// attributable to an exact build.
struct BuildInfo {
  const char* git_describe;  // `git describe --always --dirty --tags`
  const char* git_commit;    // full HEAD sha, "unknown" outside a checkout
  const char* compiler;      // e.g. "GNU 13.2.0"
  const char* build_type;    // e.g. "RelWithDebInfo"
  const char* cxx_standard;  // e.g. "20"

  static const BuildInfo& Get();

  /// One line for --version: `rwdt <describe> (<type>, <compiler>, C++<std>)`.
  std::string ToString() const;

  /// JSON object with snake_case keys matching the field names.
  std::string ToJson() const;
};

}  // namespace rwdt::common

#endif  // RWDT_COMMON_BUILD_INFO_H_
