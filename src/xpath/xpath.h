#ifndef RWDT_XPATH_XPATH_H_
#define RWDT_XPATH_XPATH_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "tree/tree.h"

namespace rwdt::xpath {

/// The XPath axes (paper Section 5). Baelde et al. report usage child
/// 31.1%, attribute 17.1%, descendant(-or-self) 3.6%,
/// ancestor(-or-self) 3.6% in their 21.1k-query corpus.
enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kSelf,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
  kAttribute,
};

std::string AxisName(Axis axis);

struct Predicate;

/// A location step: axis::nodetest[predicates].
struct Step {
  Axis axis = Axis::kChild;
  /// kInvalidSymbol == wildcard '*'.
  SymbolId label = kInvalidSymbol;
  bool wildcard = false;
  std::vector<Predicate> predicates;
};

/// A location path; absolute paths start at the root.
struct Path {
  bool absolute = false;
  std::vector<Step> steps;
};

/// Predicate expression: existence of relative paths combined with
/// and/or/not (Core XPath 1.0 style qualifiers).
struct Predicate {
  enum class Kind { kPath, kAnd, kOr, kNot };
  Kind kind = Kind::kPath;
  Path path;                          // kPath
  std::vector<Predicate> children;    // kAnd / kOr / kNot
};

/// A query: union of location paths (XPath '|').
struct Query {
  std::vector<Path> branches;

  /// Number of syntax-tree nodes (Baelde et al.'s size metric).
  size_t Size() const;

  /// Set of axes used anywhere in the query.
  std::set<Axis> AxesUsed() const;
};

/// Parses the navigational XPath subset:
///   /a//b/*[c and not(.//d)]/@id | //e/parent::f
/// Axis shorthands: '/' child, '//' descendant-or-self step, '@'
/// attribute, '..' parent, '.' self; explicit "axis::test" syntax is also
/// accepted for every axis.
Result<Query> ParseXPath(std::string_view input, Interner* dict);

// --- Fragments (Section 5) ------------------------------------------------

/// Positive XPath: no 'not' in predicates.
bool IsPositiveXPath(const Query& q);

/// Core XPath 1.0: navigational XPath — all axes, boolean predicates
/// (which is everything this AST can express; the classifier exists so
/// corpus statistics can count queries that also use attribute-value
/// comparisons once extended).
bool IsCoreXPath1(const Query& q);

/// Downward XPath: only child / descendant(-or-self) / self axes.
bool IsDownwardXPath(const Query& q);

/// Tree patterns (twig queries): a single downward branch-free-at-top
/// path, positive conjunctive predicates only (no 'or'/'not'), no
/// wildcards required... wildcards allowed per Miklau-Suciu (//, *, []).
bool IsTreePattern(const Query& q);

// --- Evaluation ------------------------------------------------------------

/// Evaluates the query on a tree, returning the matched nodes in
/// document order. Attribute steps match when the supplied attribute
/// name set contains the label (attributes are modeled as present/absent
/// per node via `attributes`: pairs of (node, attribute name)).
std::vector<tree::NodeId> Evaluate(
    const Query& q, const tree::Tree& t, const Interner& dict,
    const std::vector<std::pair<tree::NodeId, std::string>>& attributes = {});

}  // namespace rwdt::xpath

#endif  // RWDT_XPATH_XPATH_H_
