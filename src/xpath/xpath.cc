#include "xpath/xpath.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <functional>

namespace rwdt::xpath {

std::string AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kAttribute:
      return "attribute";
  }
  return "?";
}

namespace {

size_t PredicateSize(const Predicate& p);

size_t PathSize(const Path& p) {
  size_t n = 0;
  for (const auto& step : p.steps) {
    n += 1;
    for (const auto& pred : step.predicates) n += PredicateSize(pred);
  }
  return n;
}

size_t PredicateSize(const Predicate& p) {
  switch (p.kind) {
    case Predicate::Kind::kPath:
      return 1 + PathSize(p.path);
    default: {
      size_t n = 1;
      for (const auto& c : p.children) n += PredicateSize(c);
      return n;
    }
  }
}

void PredicateAxes(const Predicate& p, std::set<Axis>* out);

void PathAxes(const Path& p, std::set<Axis>* out) {
  for (const auto& step : p.steps) {
    out->insert(step.axis);
    for (const auto& pred : step.predicates) PredicateAxes(pred, out);
  }
}

void PredicateAxes(const Predicate& p, std::set<Axis>* out) {
  if (p.kind == Predicate::Kind::kPath) {
    PathAxes(p.path, out);
  } else {
    for (const auto& c : p.children) PredicateAxes(c, out);
  }
}

bool PredicateHasKind(const Predicate& p, Predicate::Kind kind) {
  if (p.kind == kind) return true;
  if (p.kind == Predicate::Kind::kPath) {
    for (const auto& step : p.path.steps) {
      for (const auto& pred : step.predicates) {
        if (PredicateHasKind(pred, kind)) return true;
      }
    }
    return false;
  }
  for (const auto& c : p.children) {
    if (PredicateHasKind(c, kind)) return true;
  }
  return false;
}

bool QueryHasKind(const Query& q, Predicate::Kind kind) {
  for (const auto& path : q.branches) {
    for (const auto& step : path.steps) {
      for (const auto& pred : step.predicates) {
        if (PredicateHasKind(pred, kind)) return true;
      }
    }
  }
  return false;
}

}  // namespace

size_t Query::Size() const {
  size_t n = 0;
  for (const auto& b : branches) n += PathSize(b);
  return n;
}

std::set<Axis> Query::AxesUsed() const {
  std::set<Axis> out;
  for (const auto& b : branches) PathAxes(b, &out);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view input, Interner* dict)
      : input_(input), dict_(dict) {}

  Result<Query> Parse() {
    Query q;
    RWDT_ASSIGN_OR_RETURN(Path first, ParsePath());
    q.branches.push_back(std::move(first));
    while (Peek() == '|') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(Path next, ParsePath());
      q.branches.push_back(std::move(next));
    }
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return q;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    SkipSpace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }
  bool Lit(std::string_view s) {
    SkipSpace();
    if (input_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  Result<Path> ParsePath() {
    Path path;
    Axis pending = Axis::kChild;
    if (Lit("//")) {
      path.absolute = true;
      pending = Axis::kDescendantOrSelf;
    } else if (Lit("/")) {
      path.absolute = true;
    }
    for (;;) {
      RWDT_ASSIGN_OR_RETURN(Step step, ParseStep(pending));
      path.steps.push_back(std::move(step));
      if (Lit("//")) {
        pending = Axis::kDescendantOrSelf;
      } else if (Lit("/")) {
        pending = Axis::kChild;
      } else {
        break;
      }
    }
    return path;
  }

  Result<Step> ParseStep(Axis default_axis) {
    Step step;
    step.axis = default_axis;
    // '//' before a named test is modeled as a descendant step directly
    // (descendant::t == descendant-or-self::*/child::t).
    if (step.axis == Axis::kDescendantOrSelf) step.axis = Axis::kDescendant;
    SkipSpace();
    if (Lit("..")) {
      step.axis = Axis::kParent;
      step.wildcard = true;
      return FinishStep(std::move(step));
    }
    if (Peek() == '.') {
      ++pos_;
      step.axis = Axis::kSelf;
      step.wildcard = true;
      return FinishStep(std::move(step));
    }
    if (Peek() == '@') {
      ++pos_;
      step.axis = Axis::kAttribute;
    } else {
      // Explicit axis?
      const size_t mark = pos_;
      std::string word = ParseNameToken();
      if (!word.empty() && Lit("::")) {
        auto axis = AxisFromName(word);
        if (!axis.has_value()) {
          return Status::ParseError("unknown axis '" + word + "'");
        }
        step.axis = *axis;
      } else {
        pos_ = mark;  // plain node test
      }
    }
    if (Peek() == '*') {
      ++pos_;
      step.wildcard = true;
      return FinishStep(std::move(step));
    }
    const std::string name = ParseNameToken();
    if (name.empty()) {
      return Status::ParseError("expected node test at offset " +
                                std::to_string(pos_));
    }
    step.label = dict_->Intern(name);
    return FinishStep(std::move(step));
  }

  Result<Step> FinishStep(Step step) {
    while (Peek() == '[') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(Predicate pred, ParseOr());
      if (Peek() != ']') return Status::ParseError("expected ']'");
      ++pos_;
      step.predicates.push_back(std::move(pred));
    }
    return step;
  }

  Result<Predicate> ParseOr() {
    RWDT_ASSIGN_OR_RETURN(Predicate first, ParseAnd());
    std::vector<Predicate> parts = {std::move(first)};
    while (LitWord("or")) {
      RWDT_ASSIGN_OR_RETURN(Predicate next, ParseAnd());
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return parts[0];
    Predicate p;
    p.kind = Predicate::Kind::kOr;
    p.children = std::move(parts);
    return p;
  }

  Result<Predicate> ParseAnd() {
    RWDT_ASSIGN_OR_RETURN(Predicate first, ParseUnary());
    std::vector<Predicate> parts = {std::move(first)};
    while (LitWord("and")) {
      RWDT_ASSIGN_OR_RETURN(Predicate next, ParseUnary());
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return parts[0];
    Predicate p;
    p.kind = Predicate::Kind::kAnd;
    p.children = std::move(parts);
    return p;
  }

  Result<Predicate> ParseUnary() {
    if (LitWord("not")) {
      if (Peek() != '(') return Status::ParseError("expected '(' after not");
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(Predicate inner, ParseOr());
      if (Peek() != ')') return Status::ParseError("expected ')'");
      ++pos_;
      Predicate p;
      p.kind = Predicate::Kind::kNot;
      p.children.push_back(std::move(inner));
      return p;
    }
    if (Peek() == '(') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(Predicate inner, ParseOr());
      if (Peek() != ')') return Status::ParseError("expected ')'");
      ++pos_;
      return inner;
    }
    RWDT_ASSIGN_OR_RETURN(Path path, ParsePath());
    Predicate p;
    p.kind = Predicate::Kind::kPath;
    p.path = std::move(path);
    return p;
  }

  /// Matches a keyword not followed by a name character (so "order" is a
  /// node test, not "or" + "der").
  bool LitWord(std::string_view word) {
    SkipSpace();
    if (input_.substr(pos_, word.size()) != word) return false;
    const size_t after = pos_ + word.size();
    if (after < input_.size()) {
      const char c = input_[after];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-') {
        return false;
      }
    }
    pos_ = after;
    return true;
  }

  std::string ParseNameToken() {
    SkipSpace();
    std::string name;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == ':') {
        // Stop before '::' axis separator.
        if (c == ':' && pos_ + 1 < input_.size() &&
            input_[pos_ + 1] == ':') {
          break;
        }
        name += c;
        ++pos_;
      } else {
        break;
      }
    }
    return name;
  }

  static std::optional<Axis> AxisFromName(const std::string& name) {
    static const std::pair<const char*, Axis> kAxes[] = {
        {"child", Axis::kChild},
        {"descendant", Axis::kDescendant},
        {"descendant-or-self", Axis::kDescendantOrSelf},
        {"parent", Axis::kParent},
        {"ancestor", Axis::kAncestor},
        {"ancestor-or-self", Axis::kAncestorOrSelf},
        {"self", Axis::kSelf},
        {"following-sibling", Axis::kFollowingSibling},
        {"preceding-sibling", Axis::kPrecedingSibling},
        {"following", Axis::kFollowing},
        {"preceding", Axis::kPreceding},
        {"attribute", Axis::kAttribute},
    };
    for (const auto& [n, a] : kAxes) {
      if (name == n) return a;
    }
    return std::nullopt;
  }

  std::string_view input_;
  Interner* dict_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseXPath(std::string_view input, Interner* dict) {
  return Parser(input, dict).Parse();
}

bool IsPositiveXPath(const Query& q) {
  return !QueryHasKind(q, Predicate::Kind::kNot);
}

bool IsCoreXPath1(const Query& q) {
  // Navigational core: no attribute steps (data access); all other axes
  // and boolean qualifiers are part of Core XPath 1.0.
  return q.AxesUsed().count(Axis::kAttribute) == 0;
}

bool IsDownwardXPath(const Query& q) {
  for (Axis a : q.AxesUsed()) {
    if (a != Axis::kChild && a != Axis::kDescendant &&
        a != Axis::kDescendantOrSelf && a != Axis::kSelf) {
      return false;
    }
  }
  return true;
}

namespace {

bool PredicateIsConjunctivePath(const Predicate& p) {
  switch (p.kind) {
    case Predicate::Kind::kPath:
      for (const auto& step : p.path.steps) {
        if (p.path.absolute) return false;  // twigs branch downward only
        for (const auto& pred : step.predicates) {
          if (!PredicateIsConjunctivePath(pred)) return false;
        }
      }
      return true;
    case Predicate::Kind::kAnd:
      for (const auto& c : p.children) {
        if (!PredicateIsConjunctivePath(c)) return false;
      }
      return true;
    default:
      return false;
  }
}

}  // namespace

bool IsTreePattern(const Query& q) {
  if (q.branches.size() != 1) return false;
  if (!IsDownwardXPath(q)) return false;
  for (const auto& step : q.branches[0].steps) {
    for (const auto& pred : step.predicates) {
      if (!PredicateIsConjunctivePath(pred)) return false;
    }
  }
  return true;
}

namespace {

/// Node-set evaluator.
class Evaluator {
 public:
  Evaluator(const tree::Tree& t, const Interner& dict,
            const std::vector<std::pair<tree::NodeId, std::string>>& attrs)
      : tree_(t), dict_(dict), attrs_(attrs) {
    // Document order index = pre-order position.
    const auto order = t.PreOrder();
    doc_order_.resize(t.NumNodes());
    for (size_t i = 0; i < order.size(); ++i) doc_order_[order[i]] = i;
  }

  std::vector<tree::NodeId> EvalQuery(const Query& q) {
    std::set<tree::NodeId> out;
    for (const auto& path : q.branches) {
      for (tree::NodeId n : EvalPath(path, kVirtualRoot)) out.insert(n);
    }
    std::vector<tree::NodeId> sorted(out.begin(), out.end());
    std::sort(sorted.begin(), sorted.end(), [&](tree::NodeId a,
                                                tree::NodeId b) {
      return doc_order_[a] < doc_order_[b];
    });
    return sorted;
  }

 private:
  /// Sentinel context for the virtual document root (parent of the tree
  /// root), used for absolute paths.
  static constexpr tree::NodeId kVirtualRoot = tree::kNoNode;

  std::vector<tree::NodeId> EvalPath(const Path& path,
                                     tree::NodeId context) {
    std::set<tree::NodeId> current;
    if (path.absolute) {
      current.insert(kVirtualRoot);
    } else {
      current.insert(context);
    }
    for (const auto& step : path.steps) {
      std::set<tree::NodeId> next;
      for (tree::NodeId n : current) {
        for (tree::NodeId m : ApplyAxis(step, n)) {
          if (!MatchesTest(step, m)) continue;
          bool ok = true;
          for (const auto& pred : step.predicates) {
            if (!EvalPredicate(pred, m)) {
              ok = false;
              break;
            }
          }
          if (ok) next.insert(m);
        }
      }
      current = std::move(next);
      if (current.empty()) break;
    }
    return {current.begin(), current.end()};
  }

  bool EvalPredicate(const Predicate& p, tree::NodeId context) {
    switch (p.kind) {
      case Predicate::Kind::kPath:
        return !EvalPath(p.path, context).empty();
      case Predicate::Kind::kAnd:
        for (const auto& c : p.children) {
          if (!EvalPredicate(c, context)) return false;
        }
        return true;
      case Predicate::Kind::kOr:
        for (const auto& c : p.children) {
          if (EvalPredicate(c, context)) return true;
        }
        return false;
      case Predicate::Kind::kNot:
        return !EvalPredicate(p.children[0], context);
    }
    return false;
  }

  bool MatchesTest(const Step& step, tree::NodeId n) {
    if (step.axis == Axis::kAttribute) return true;  // checked in axis
    if (step.wildcard) return true;
    return tree_.node(n).label == step.label;
  }

  std::vector<tree::NodeId> ApplyAxis(const Step& step, tree::NodeId n) {
    std::vector<tree::NodeId> out;
    switch (step.axis) {
      case Axis::kChild:
        if (n == kVirtualRoot) {
          if (!tree_.empty()) out.push_back(tree_.root());
        } else {
          out = tree_.node(n).children;
        }
        break;
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        if (step.axis == Axis::kDescendantOrSelf && n != kVirtualRoot) {
          out.push_back(n);
        }
        std::vector<tree::NodeId> stack;
        if (n == kVirtualRoot) {
          if (!tree_.empty()) stack.push_back(tree_.root());
          if (step.axis == Axis::kDescendantOrSelf) {
            // virtual root itself is not a real node
          }
          // For the virtual root, descendants == all nodes incl. root.
          if (!tree_.empty()) out.push_back(tree_.root());
        } else {
          stack = tree_.node(n).children;
        }
        while (!stack.empty()) {
          const tree::NodeId m = stack.back();
          stack.pop_back();
          if (m != n && (n != kVirtualRoot || m != tree_.root())) {
            out.push_back(m);
          }
          for (tree::NodeId c : tree_.node(m).children) stack.push_back(c);
        }
        break;
      }
      case Axis::kParent:
        if (n != kVirtualRoot && tree_.node(n).parent != tree::kNoNode) {
          out.push_back(tree_.node(n).parent);
        }
        break;
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        if (n == kVirtualRoot) break;
        if (step.axis == Axis::kAncestorOrSelf) out.push_back(n);
        tree::NodeId cur = tree_.node(n).parent;
        while (cur != tree::kNoNode) {
          out.push_back(cur);
          cur = tree_.node(cur).parent;
        }
        break;
      }
      case Axis::kSelf:
        if (n != kVirtualRoot) out.push_back(n);
        break;
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling: {
        if (n == kVirtualRoot) break;
        const tree::NodeId parent = tree_.node(n).parent;
        if (parent == tree::kNoNode) break;
        const auto& sibs = tree_.node(parent).children;
        const auto it = std::find(sibs.begin(), sibs.end(), n);
        if (step.axis == Axis::kFollowingSibling) {
          out.assign(it + 1, sibs.end());
        } else {
          out.assign(sibs.begin(), it);
        }
        break;
      }
      case Axis::kFollowing:
      case Axis::kPreceding: {
        if (n == kVirtualRoot) break;
        // Document-order comparison, excluding ancestors/descendants.
        for (tree::NodeId m = 0; m < tree_.NumNodes(); ++m) {
          if (m == n) continue;
          const bool after = doc_order_[m] > doc_order_[n];
          if (step.axis == Axis::kFollowing && after &&
              !IsAncestorOf(n, m)) {
            out.push_back(m);
          }
          if (step.axis == Axis::kPreceding && !after &&
              !IsAncestorOf(m, n)) {
            out.push_back(m);
          }
        }
        break;
      }
      case Axis::kAttribute: {
        if (n == kVirtualRoot) break;
        // Attribute steps keep the owning element when a matching
        // attribute exists (simplification: attributes are not nodes).
        for (const auto& [node, name] : attrs_) {
          if (node != n) continue;
          if (step.wildcard || name == dict_.Name(step.label)) {
            out.push_back(n);
            break;
          }
        }
        break;
      }
    }
    return out;
  }

  bool IsAncestorOf(tree::NodeId a, tree::NodeId b) {
    tree::NodeId cur = tree_.node(b).parent;
    while (cur != tree::kNoNode) {
      if (cur == a) return true;
      cur = tree_.node(cur).parent;
    }
    return false;
  }

  const tree::Tree& tree_;
  const Interner& dict_;
  const std::vector<std::pair<tree::NodeId, std::string>>& attrs_;
  std::vector<size_t> doc_order_;
};

}  // namespace

std::vector<tree::NodeId> Evaluate(
    const Query& q, const tree::Tree& t, const Interner& dict,
    const std::vector<std::pair<tree::NodeId, std::string>>& attributes) {
  Evaluator eval(t, dict, attributes);
  return eval.EvalQuery(q);
}

}  // namespace rwdt::xpath
