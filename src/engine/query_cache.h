#ifndef RWDT_ENGINE_QUERY_CACHE_H_
#define RWDT_ENGINE_QUERY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/verdict.h"

namespace rwdt::engine {

/// Memoized outcome of parsing + classifying one query text. Negative
/// results (parse failures) are cached too, so repeated malformed log
/// entries skip the parser as well.
struct CachedQuery {
  bool parse_ok = false;
  /// Taxonomy class of the failure; meaningful only when !parse_ok.
  ErrorClass error = ErrorClass::kParseError;
  core::QueryVerdict verdict;  // meaningful only when parse_ok
};

/// A sharded LRU cache from query text to its analysis.
///
/// `AnalyzeQuery` is a pure function of the text (each parse uses a fresh
/// symbol interner), so entries can be shared freely across worker
/// threads and across logs. Sharding by key hash keeps lock contention
/// negligible: with the engine's default of one cache shard per worker,
/// two threads collide only when duplicate texts straddle work shards.
///
/// Hash-once contract: the engine computes `common::Hash64(text)` exactly
/// once per entry (during shard routing) and passes it to
/// `GetWithHash`/`PutWithHash`; the cache never re-hashes the text — the
/// internal index is keyed by the precomputed (hash, text) pair, with
/// text equality resolving 64-bit collisions exactly. A miss followed by
/// a Put therefore costs zero additional hash computations.
///
/// Hit/miss/eviction counters are plain per-shard integers mutated under
/// the shard mutex the operation already holds, not shared atomics — a
/// shared counter cache line bouncing between workers on every lookup is
/// exactly the contention this cache exists to avoid. Accessors sum over
/// shards.
///
/// Values are `shared_ptr<const CachedQuery>` so an entry evicted while
/// another thread still holds it stays alive until released.
class ShardedQueryCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `shards` (both clamped to at least 1).
  ShardedQueryCache(size_t capacity, size_t shards);

  /// Returns the cached analysis for `text` and marks it most recently
  /// used, or nullptr on a miss. `hash` must be `common::Hash64(text)`
  /// with the default seed.
  std::shared_ptr<const CachedQuery> GetWithHash(uint64_t hash,
                                                 std::string_view text);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry of the same shard when over budget.
  void PutWithHash(uint64_t hash, std::string_view text,
                   std::shared_ptr<const CachedQuery> value);

  /// Convenience wrappers that compute Hash64(text) themselves; prefer
  /// the WithHash forms anywhere the hash already exists.
  std::shared_ptr<const CachedQuery> Get(std::string_view text);
  void Put(std::string_view text, std::shared_ptr<const CachedQuery> value);

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;
  size_t size() const;
  size_t capacity() const { return shards_.size() * per_shard_capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    uint64_t hash;
    std::shared_ptr<const CachedQuery> value;
  };
  /// Index key: the precomputed hash plus a view into Entry::key (list
  /// nodes are stable, so the view survives splices and inserts).
  struct Key {
    uint64_t hash;
    std::string_view text;
    bool operator==(const Key& o) const {
      return hash == o.hash && text == o.text;
    }
  };
  /// The map never hashes the text again: the 64-bit Hash64 value IS the
  /// bucket hash.
  struct KeyHasher {
    size_t operator()(const Key& k) const { return static_cast<size_t>(k.hash); }
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> index;
    // Guarded by mu (updated while the op already holds it).
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(uint64_t hash) {
    // The low bits pick the engine's work shard, so use the high half to
    // avoid systematically mapping each worker onto one cache shard.
    return *shards_[(hash >> 32) % shards_.size()];
  }

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rwdt::engine

#endif  // RWDT_ENGINE_QUERY_CACHE_H_
