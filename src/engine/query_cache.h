#ifndef RWDT_ENGINE_QUERY_CACHE_H_
#define RWDT_ENGINE_QUERY_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/query_analysis.h"

namespace rwdt::engine {

/// Memoized outcome of parsing + analyzing one query text. Negative
/// results (parse failures) are cached too, so repeated malformed log
/// entries skip the parser as well.
struct CachedQuery {
  bool parse_ok = false;
  /// Taxonomy class of the failure; meaningful only when !parse_ok.
  ErrorClass error = ErrorClass::kParseError;
  core::QueryAnalysis analysis;  // meaningful only when parse_ok
};

/// A sharded LRU cache from query text to its analysis.
///
/// `AnalyzeQuery` is a pure function of the text (each parse uses a fresh
/// symbol interner), so entries can be shared freely across worker
/// threads and across logs. Sharding by key hash keeps lock contention
/// negligible: with the engine's default of one cache shard per worker,
/// two threads collide only when duplicate texts straddle work shards.
///
/// Values are `shared_ptr<const CachedQuery>` so an entry evicted while
/// another thread still holds it stays alive until released.
class ShardedQueryCache {
 public:
  /// `capacity` is the total entry budget, split evenly across
  /// `shards` (both clamped to at least 1).
  ShardedQueryCache(size_t capacity, size_t shards);

  /// Returns the cached analysis for `text` and marks it most recently
  /// used, or nullptr on a miss.
  std::shared_ptr<const CachedQuery> Get(std::string_view text);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry of the same shard when over budget.
  void Put(std::string_view text, std::shared_ptr<const CachedQuery> value);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t size() const;
  size_t capacity() const { return shards_.size() * per_shard_capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedQuery> value;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(std::string_view text);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace rwdt::engine

#endif  // RWDT_ENGINE_QUERY_CACHE_H_
