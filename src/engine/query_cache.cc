#include "engine/query_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace rwdt::engine {

ShardedQueryCache::ShardedQueryCache(size_t capacity, size_t shards) {
  const size_t n = std::max<size_t>(1, shards);
  per_shard_capacity_ = std::max<size_t>(1, (std::max<size_t>(1, capacity) + n - 1) / n);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedQueryCache::Shard& ShardedQueryCache::ShardFor(std::string_view text) {
  // hash>>16: the low bits also pick the engine's work shard, so mixing
  // avoids systematically mapping each worker onto one cache shard.
  const size_t h = std::hash<std::string_view>{}(text);
  return *shards_[(h >> 16 | h << 16) % shards_.size()];
}

std::shared_ptr<const CachedQuery> ShardedQueryCache::Get(
    std::string_view text) {
  Shard& shard = ShardFor(text);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.index.find(text);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Move to MRU position; list splice keeps nodes (and the string_view
  // keys pointing into them) stable.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void ShardedQueryCache::Put(std::string_view text,
                            std::shared_ptr<const CachedQuery> value) {
  Shard& shard = ShardFor(text);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.index.find(text);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{std::string(text), std::move(value)});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(std::string_view(shard.lru.back().key));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

size_t ShardedQueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace rwdt::engine
