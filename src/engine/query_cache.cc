#include "engine/query_cache.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"

namespace rwdt::engine {

ShardedQueryCache::ShardedQueryCache(size_t capacity, size_t shards) {
  const size_t n = std::max<size_t>(1, shards);
  per_shard_capacity_ =
      std::max<size_t>(1, (std::max<size_t>(1, capacity) + n - 1) / n);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const CachedQuery> ShardedQueryCache::GetWithHash(
    uint64_t hash, std::string_view text) {
  Shard& shard = ShardFor(hash);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.index.find(Key{hash, text});
  if (it == shard.index.end()) {
    shard.misses++;
    return nullptr;
  }
  // Move to MRU position; list splice keeps nodes (and the string_view
  // keys pointing into them) stable.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  shard.hits++;
  return it->second->value;
}

void ShardedQueryCache::PutWithHash(uint64_t hash, std::string_view text,
                                    std::shared_ptr<const CachedQuery> value) {
  Shard& shard = ShardFor(hash);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.index.find(Key{hash, text});
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{std::string(text), hash, std::move(value)});
  shard.index.emplace(Key{hash, std::string_view(shard.lru.front().key)},
                      shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(Key{victim.hash, std::string_view(victim.key)});
    shard.lru.pop_back();
    shard.evictions++;
  }
}

std::shared_ptr<const CachedQuery> ShardedQueryCache::Get(
    std::string_view text) {
  return GetWithHash(Hash64(text), text);
}

void ShardedQueryCache::Put(std::string_view text,
                            std::shared_ptr<const CachedQuery> value) {
  PutWithHash(Hash64(text), text, std::move(value));
}

uint64_t ShardedQueryCache::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

uint64_t ShardedQueryCache::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

uint64_t ShardedQueryCache::evictions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    total += shard->evictions;
  }
  return total;
}

size_t ShardedQueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace rwdt::engine
