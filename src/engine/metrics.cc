#include "engine/metrics.h"

#include <bit>
#include <cstdio>

#include "common/json.h"
#include "common/table.h"

namespace rwdt::engine {
namespace {

/// Geometric midpoint of bucket b (values in [2^(b-1), 2^b)).
uint64_t BucketMid(size_t b) {
  if (b == 0) return 0;
  const double lo = static_cast<double>(uint64_t{1} << (b - 1));
  return static_cast<uint64_t>(lo * 1.41421356237);
}

/// Value at quantile q in [0,1] of a bucketed histogram with n samples.
uint64_t Quantile(const std::array<uint64_t, 64>& buckets, uint64_t n,
                  double q) {
  if (n == 0) return 0;
  const uint64_t rank = static_cast<uint64_t>(q * (n - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen > rank) return BucketMid(b);
  }
  return BucketMid(buckets.size() - 1);
}

std::string NsHuman(double ns) {
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

void AppendJsonField(std::string* out, const char* key, double v,
                     bool trailing_comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key, v);
  *out += buf;
  if (trailing_comma) *out += ',';
}

}  // namespace

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kGenerate:
      return "generate";
    case Stage::kParse:
      return "parse";
    case Stage::kFeatures:
      return "features";
    case Stage::kHypergraph:
      return "hypergraph";
    case Stage::kPaths:
      return "paths";
    case Stage::kAggregate:
      return "aggregate";
  }
  return "?";
}

Metrics::Metrics() { Reset(); }

void LocalMetrics::Record(Stage stage, uint64_t ns) {
  const size_t s = static_cast<size_t>(stage);
  const size_t b = std::bit_width(ns);  // 0 -> bucket 0, else floor(log2)+1
  histogram[s][b < kLatencyBuckets ? b : kLatencyBuckets - 1]++;
  stage_total_ns[s] += ns;
  if (ns > stage_max_ns[s]) stage_max_ns[s] = ns;
}

void Metrics::Merge(const LocalMetrics& local) {
  if (local.analyzed != 0) analyzed_.fetch_add(local.analyzed, kRelaxed);
  if (local.parse_failures != 0) {
    parse_failures_.fetch_add(local.parse_failures, kRelaxed);
  }
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    if (local.errors[c] != 0) errors_[c].fetch_add(local.errors[c], kRelaxed);
  }
  for (size_t s = 0; s < kNumStages; ++s) {
    if (local.stage_total_ns[s] != 0) {
      stage_total_ns_[s].fetch_add(local.stage_total_ns[s], kRelaxed);
    }
    const uint64_t local_max = local.stage_max_ns[s];
    if (local_max != 0) {
      uint64_t cur = stage_max_ns_[s].load(kRelaxed);
      while (local_max > cur && !stage_max_ns_[s].compare_exchange_weak(
                                    cur, local_max, kRelaxed)) {
      }
    }
    for (size_t b = 0; b < kBuckets; ++b) {
      if (local.histogram[s][b] != 0) {
        histogram_[s][b].fetch_add(local.histogram[s][b], kRelaxed);
      }
    }
  }
}

void Metrics::Record(Stage stage, uint64_t ns) {
  const size_t s = static_cast<size_t>(stage);
  const size_t b = std::bit_width(ns);  // 0 -> bucket 0, else floor(log2)+1
  histogram_[s][b < kBuckets ? b : kBuckets - 1].fetch_add(1, kRelaxed);
  stage_total_ns_[s].fetch_add(ns, kRelaxed);
  // CAS-max: the snapshot's max_ns is the exact observed maximum, not
  // the upper edge of a histogram bucket.
  uint64_t cur = stage_max_ns_[s].load(kRelaxed);
  while (ns > cur &&
         !stage_max_ns_[s].compare_exchange_weak(cur, ns, kRelaxed)) {
  }
}

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot snap;
  snap.entries_processed = entries_.load(kRelaxed);
  snap.queries_analyzed = analyzed_.load(kRelaxed);
  snap.parse_failures = parse_failures_.load(kRelaxed);
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    snap.errors[c] = errors_[c].load(kRelaxed);
  }
  snap.cache_hits = hits_.load(kRelaxed);
  snap.cache_misses = misses_.load(kRelaxed);
  snap.wall_ns = wall_ns_.load(kRelaxed);
  for (size_t s = 0; s < kNumStages; ++s) {
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t count = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      buckets[b] = histogram_[s][b].load(kRelaxed);
      count += buckets[b];
    }
    StageStats& st = snap.stages[s];
    st.count = count;
    st.total_ns = stage_total_ns_[s].load(kRelaxed);
    st.mean_ns = count == 0 ? 0.0 : static_cast<double>(st.total_ns) / count;
    st.p50_ns = Quantile(buckets, count, 0.50);
    st.p90_ns = Quantile(buckets, count, 0.90);
    st.p99_ns = Quantile(buckets, count, 0.99);
    st.max_ns = stage_max_ns_[s].load(kRelaxed);
    st.buckets = buckets;
  }
  return snap;
}

void Metrics::Reset() {
  entries_.store(0, kRelaxed);
  analyzed_.store(0, kRelaxed);
  parse_failures_.store(0, kRelaxed);
  for (auto& e : errors_) e.store(0, kRelaxed);
  hits_.store(0, kRelaxed);
  misses_.store(0, kRelaxed);
  wall_ns_.store(0, kRelaxed);
  for (auto& stage : histogram_) {
    for (auto& bucket : stage) bucket.store(0, kRelaxed);
  }
  for (auto& total : stage_total_ns_) total.store(0, kRelaxed);
  for (auto& mx : stage_max_ns_) mx.store(0, kRelaxed);
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "engine metrics: %s entries, %s analyzed, %s parse errors, "
                "%u thread(s)\n",
                WithThousands(entries_processed).c_str(),
                WithThousands(queries_analyzed).c_str(),
                WithThousands(parse_failures).c_str(), threads);
  out += line;
  std::snprintf(line, sizeof(line),
                "  throughput: %.0f queries/sec over %s wall\n",
                QueriesPerSec(), NsHuman(static_cast<double>(wall_ns)).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "  cache: %.1f%% hit rate (%s hits / %s misses), "
                "%s resident, %s evicted\n",
                100.0 * CacheHitRate(), WithThousands(cache_hits).c_str(),
                WithThousands(cache_misses).c_str(),
                WithThousands(cache_size).c_str(),
                WithThousands(cache_evictions).c_str());
  out += line;
  if (TotalErrors() > 0) {
    // Total vs Valid, the paper's Table 2 shape: every rejected entry is
    // attributed to exactly one taxonomy class.
    std::snprintf(line, sizeof(line),
                  "  rejected: %s of %s entries (%s valid) by class:\n",
                  WithThousands(TotalErrors()).c_str(),
                  WithThousands(entries_processed).c_str(),
                  WithThousands(entries_processed - TotalErrors()).c_str());
    out += line;
    for (size_t c = 0; c < kNumErrorClasses; ++c) {
      if (errors[c] == 0) continue;
      std::snprintf(line, sizeof(line), "    %-20s %s\n",
                    ErrorClassName(static_cast<ErrorClass>(c)),
                    WithThousands(errors[c]).c_str());
      out += line;
    }
  }

  AsciiTable table(
      {"Stage", "Count", "Total", "Mean", "p50", "p90", "p99", "Max"});
  for (size_t s = 0; s < kNumStages; ++s) {
    const StageStats& st = stages[s];
    if (st.count == 0) continue;
    table.AddRow({StageName(static_cast<Stage>(s)), WithThousands(st.count),
                  NsHuman(static_cast<double>(st.total_ns)),
                  NsHuman(st.mean_ns),
                  NsHuman(static_cast<double>(st.p50_ns)),
                  NsHuman(static_cast<double>(st.p90_ns)),
                  NsHuman(static_cast<double>(st.p99_ns)),
                  NsHuman(static_cast<double>(st.max_ns))});
  }
  out += table.Render();
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  AppendJsonField(&out, "entries_processed",
                  static_cast<double>(entries_processed));
  AppendJsonField(&out, "queries_analyzed",
                  static_cast<double>(queries_analyzed));
  AppendJsonField(&out, "parse_failures", static_cast<double>(parse_failures));
  AppendJsonField(&out, "cache_hits", static_cast<double>(cache_hits));
  AppendJsonField(&out, "cache_misses", static_cast<double>(cache_misses));
  AppendJsonField(&out, "cache_evictions",
                  static_cast<double>(cache_evictions));
  AppendJsonField(&out, "cache_size", static_cast<double>(cache_size));
  AppendJsonField(&out, "cache_hit_rate", CacheHitRate());
  AppendJsonField(&out, "queries_per_sec", QueriesPerSec());
  AppendJsonField(&out, "wall_ms", wall_ns / 1e6);
  AppendJsonField(&out, "threads", static_cast<double>(threads));
  AppendJsonField(&out, "interner_bytes", static_cast<double>(interner_bytes));
  AppendJsonField(&out, "dedup_entries", static_cast<double>(dedup_entries));
  AppendJsonField(&out, "entries_valid",
                  static_cast<double>(entries_processed - TotalErrors()));
  AppendJsonField(&out, "entries_rejected",
                  static_cast<double>(TotalErrors()));
  out += "\"errors\":{";
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    AppendJsonField(&out,
                    JsonEscape(ErrorClassName(static_cast<ErrorClass>(c)))
                        .c_str(),
                    static_cast<double>(errors[c]),
                    /*trailing_comma=*/c + 1 < kNumErrorClasses);
  }
  out += "},";
  out += "\"stages\":{";
  bool first = true;
  for (size_t s = 0; s < kNumStages; ++s) {
    const StageStats& st = stages[s];
    if (st.count == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(StageName(static_cast<Stage>(s)), &out);
    out += "\":{";
    AppendJsonField(&out, "count", static_cast<double>(st.count));
    AppendJsonField(&out, "total_ms", st.total_ns / 1e6);
    AppendJsonField(&out, "mean_us", st.mean_ns / 1e3);
    AppendJsonField(&out, "p50_us", st.p50_ns / 1e3);
    AppendJsonField(&out, "p90_us", st.p90_ns / 1e3);
    AppendJsonField(&out, "p99_us", st.p99_ns / 1e3);
    AppendJsonField(&out, "max_us", st.max_ns / 1e3, false);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace rwdt::engine
