#ifndef RWDT_ENGINE_THREAD_POOL_H_
#define RWDT_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rwdt::engine {

/// Fixed-size worker pool with a single FIFO task queue.
///
/// The engine submits one task per shard, so tasks are long-lived and the
/// queue never becomes a bottleneck; a plain mutex-protected deque keeps
/// the implementation obviously correct. `Wait()` blocks until every
/// submitted task has *finished* (not merely been dequeued), so callers
/// can reduce shard results immediately after it returns.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Blocks until all tasks submitted so far have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet finished (queued + running) — the
  /// admin server's `rwdt_engine_queue_depth` gauge. Point-in-time by
  /// nature; taken under the queue mutex, off the worker hot path.
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // dequeued but not yet finished
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rwdt::engine

#endif  // RWDT_ENGINE_THREAD_POOL_H_
