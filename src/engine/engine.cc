#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "common/interner.h"
#include "core/query_analysis.h"
#include "sparql/parser.h"

namespace rwdt::engine {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

unsigned ResolveThreads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

/// Per-shard accumulator. Shards never share mutable state, so workers
/// run lock-free except for cache-shard mutexes.
struct Engine::ShardResult {
  uint64_t valid = 0;
  uint64_t unique = 0;
  core::LogAggregates valid_agg;
  core::LogAggregates unique_agg;
};

Engine::Engine(const EngineOptions& options)
    : options_(options),
      threads_(ResolveThreads(options.threads)),
      num_shards_(options.num_shards > 0 ? options.num_shards : threads_),
      cache_(options.cache_capacity,
             options.cache_shards > 0 ? options.cache_shards
                                      : std::max<size_t>(threads_, 8)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

Engine::~Engine() = default;

core::SourceStudy Engine::AnalyzeLog(const loggen::SourceProfile& profile,
                                     uint64_t seed) {
  const uint64_t t0 = NowNs();
  const auto entries = loggen::GenerateLog(profile, seed);
  metrics_.Record(Stage::kGenerate, NowNs() - t0);
  return AnalyzeEntries(profile.name, profile.wikidata_like, entries);
}

core::SourceStudy Engine::AnalyzeEntries(
    const std::string& name, bool wikidata_like,
    const std::vector<loggen::LogEntry>& entries) {
  const uint64_t t_start = NowNs();

  // Route entries to shards by text hash: every duplicate of a query
  // lands in the same shard, making per-shard dedup globally exact.
  std::vector<std::vector<const loggen::LogEntry*>> shards(num_shards_);
  if (num_shards_ == 1) {
    shards[0].reserve(entries.size());
    for (const auto& e : entries) shards[0].push_back(&e);
  } else {
    for (const auto& e : entries) {
      const size_t h = std::hash<std::string_view>{}(e.text);
      shards[h % num_shards_].push_back(&e);
    }
  }

  std::vector<ShardResult> results(num_shards_);
  if (pool_ == nullptr) {
    for (size_t s = 0; s < num_shards_; ++s) {
      ProcessShard(shards[s], &results[s]);
    }
  } else {
    for (size_t s = 0; s < num_shards_; ++s) {
      pool_->Submit([this, &shards, &results, s] {
        ProcessShard(shards[s], &results[s]);
      });
    }
    pool_->Wait();
  }

  // Reduce in shard order. All aggregate fields are unsigned sums, so
  // the result is independent of the shard partition itself.
  core::SourceStudy study;
  study.name = name;
  study.wikidata_like = wikidata_like;
  study.total = entries.size();
  for (const ShardResult& r : results) {
    study.valid += r.valid;
    study.unique += r.unique;
    core::Merge(r.valid_agg, &study.valid_agg);
    core::Merge(r.unique_agg, &study.unique_agg);
  }

  metrics_.AddEntries(entries.size());
  metrics_.AddWallNs(NowNs() - t_start);
  return study;
}

void Engine::ProcessShard(
    const std::vector<const loggen::LogEntry*>& entries,
    ShardResult* result) {
  const bool timed = options_.collect_stage_timings;

  // Exact first-occurrence tracking for this log: the interner assigns
  // dense ids to query texts in stream order; `parse_ok[id]` remembers
  // validity so repeated entries never hit the parser. The bounded LRU
  // cache is only an accelerator — evictions cause recomputation, never
  // wrong counts.
  Interner seen;
  std::vector<uint8_t> parse_ok;

  auto compute = [&](const std::string& text)
      -> std::shared_ptr<const CachedQuery> {
    auto fresh = std::make_shared<CachedQuery>();
    // A fresh symbol interner per parse makes the analysis a pure
    // function of the text — cache entries are shareable across shards,
    // threads, and logs.
    Interner dict;
    const uint64_t t0 = timed ? NowNs() : 0;
    auto parsed = sparql::ParseSparql(text, &dict);
    const uint64_t t1 = timed ? NowNs() : 0;
    if (timed) metrics_.Record(Stage::kParse, t1 - t0);
    if (parsed.ok()) {
      core::StageTimings st;
      fresh->parse_ok = true;
      fresh->analysis = core::AnalyzeQuery(parsed.value(), options_.study,
                                           timed ? &st : nullptr);
      if (timed) {
        metrics_.Record(Stage::kFeatures, st.feature_ns);
        metrics_.Record(Stage::kHypergraph, st.hypergraph_ns);
        metrics_.Record(Stage::kPaths, st.path_ns);
      }
      metrics_.AddAnalyzed(1);
    } else {
      metrics_.AddParseFailures(1);
    }
    cache_.Put(text, fresh);
    return fresh;
  };

  auto aggregate = [&](const core::QueryAnalysis& a, core::LogAggregates* agg) {
    const uint64_t t0 = timed ? NowNs() : 0;
    core::AddToAggregates(a, 1, agg);
    if (timed) metrics_.Record(Stage::kAggregate, NowNs() - t0);
  };

  for (const loggen::LogEntry* entry : entries) {
    const SymbolId prior = static_cast<SymbolId>(seen.size());
    const SymbolId id = seen.Intern(entry->text);
    const bool first_occurrence = id == prior;

    if (!first_occurrence) {
      if (parse_ok[id] == 0) continue;  // known-invalid duplicate
      result->valid++;
      auto cached = cache_.Get(entry->text);
      if (cached == nullptr) cached = compute(entry->text);  // evicted
      aggregate(cached->analysis, &result->valid_agg);
      continue;
    }

    // First sight in this log; the shared cache may still be warm from
    // an earlier log analyzed by this engine.
    auto cached = cache_.Get(entry->text);
    if (cached == nullptr) cached = compute(entry->text);
    parse_ok.push_back(cached->parse_ok ? 1 : 0);
    if (!cached->parse_ok) continue;
    result->valid++;
    result->unique++;
    aggregate(cached->analysis, &result->valid_agg);
    aggregate(cached->analysis, &result->unique_agg);
  }
}

MetricsSnapshot Engine::Snapshot() const {
  MetricsSnapshot snap = metrics_.Snapshot();
  snap.threads = threads_;
  snap.cache_hits = cache_.hits();
  snap.cache_misses = cache_.misses();
  snap.cache_evictions = cache_.evictions();
  snap.cache_size = cache_.size();
  return snap;
}

void Engine::ResetMetrics() { metrics_.Reset(); }

}  // namespace rwdt::engine
