#include "engine/engine.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <thread>
#include <utility>

#include "common/build_info.h"
#include "common/flat_interner.h"
#include "common/hash.h"
#include "common/json.h"
#include "core/verdict.h"
#include "obs/engine_bridge.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "sparql/parser.h"

namespace rwdt::engine {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

unsigned ResolveThreads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Process-wide engine ordinal for the registry's `engine="<n>"` label,
/// so several live engines expose disjoint series instead of clobbering
/// each other's families.
std::atomic<uint64_t> g_engine_ordinal{0};

}  // namespace

Status EngineOptions::Validate() const {
  constexpr unsigned kMaxThreads = 4096;
  constexpr size_t kMaxShards = size_t{1} << 20;
  if (threads > kMaxThreads) {
    return Status::InvalidArgument("threads must be <= 4096");
  }
  if (num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards must be <= 2^20");
  }
  if (cache_shards > kMaxShards) {
    return Status::InvalidArgument("cache_shards must be <= 2^20");
  }
  if (cache_capacity > 0 && cache_shards > cache_capacity) {
    return Status::InvalidArgument(
        "cache_shards exceeds cache_capacity (shards would be empty)");
  }
  if (admin_port > kAdminPortAuto) {
    return Status::InvalidArgument(
        "admin_port must be 0 (off), a TCP port, or kAdminPortAuto");
  }
  if (admin_port != 0 && admin_bind.empty()) {
    return Status::InvalidArgument("admin_bind must be set when admin is on");
  }
  if (!profile_path.empty() && (profile_hz < 1.0 || profile_hz > 1000.0)) {
    return Status::InvalidArgument("profile_hz must be in [1, 1000]");
  }
  RWDT_RETURN_IF_ERROR(parse_limits.Validate());
  RWDT_RETURN_IF_ERROR(progress.Validate());
  return Status::Ok();
}

std::string EngineOptions::ToJson() const {
  std::string out = "{";
  out += "\"threads\":" + std::to_string(threads);
  out += ",\"num_shards\":" + std::to_string(num_shards);
  out += ",\"cache_capacity\":" + std::to_string(cache_capacity);
  out += ",\"cache_shards\":" + std::to_string(cache_shards);
  out += ",\"collect_stage_timings\":";
  out += collect_stage_timings ? "true" : "false";
  out += ",\"admin_port\":" + std::to_string(admin_port);
  out += ",";
  AppendJsonStringField("profile_path", profile_path, &out);
  out += "\"profile_hz\":" + std::to_string(profile_hz);
  out += ",";
  AppendJsonStringField("admin_bind", admin_bind, &out,
                        /*trailing_comma=*/false);
  out += "}";
  return out;
}

/// Per-shard accumulator and dedup state. Shards never share mutable
/// state, so workers run lock-free except for cache-shard mutexes. The
/// state persists across EngineStream::Feed calls: the interner assigns
/// dense ids to query texts in stream order and `verdict[id]` remembers
/// the outcome (0 = valid, else 1 + ErrorClass), so chunk boundaries are
/// invisible to dedup and to error attribution.
///
/// Layout constraint: alignas(64) — shard states live contiguously in
/// the `shards` vector and are mutated concurrently by different
/// workers, so a state must never straddle a cache line shared with its
/// neighbor (false sharing on `valid`/`unique` would serialize the
/// whole sweep).
struct alignas(64) Engine::ShardState {
  /// Dedup dictionary: text -> dense first-seen id, looked up with the
  /// hash precomputed during routing.
  FlatInterner seen;
  /// Per-parse symbol dictionary, Clear()ed before every parse so the
  /// analysis stays a pure function of the query text while the arena
  /// and slot table are reused allocation-free across queries.
  FlatInterner dict;
  std::vector<uint8_t> verdict;
  /// Analysis of each distinct text, parallel to `verdict` (null for
  /// invalid texts), pinned for the stream's lifetime. Duplicates
  /// aggregate from here instead of re-consulting the bounded LRU cache,
  /// so a log with more distinct queries than the cache holds never
  /// re-parses on eviction: each distinct text is computed exactly once
  /// per stream. Memory is O(distinct texts) — the same class as the
  /// `seen` interner, which already pins every distinct text itself.
  std::vector<std::shared_ptr<const CachedQuery>> by_id;
  /// Deferred duplicate weight, parallel to `by_id`: valid duplicates
  /// only bump this counter on the hot path; Finish() folds each
  /// distinct analysis into valid_agg once with its total multiplicity.
  /// AddToAggregates is weight-linear in every field (unsigned sums), so
  /// one weighted call is bit-identical to per-occurrence calls.
  std::vector<uint64_t> dup_extra;
  uint64_t valid = 0;
  uint64_t unique = 0;
  std::array<uint64_t, kNumErrorClasses> errors{};
  core::LogAggregates valid_agg;
  core::LogAggregates unique_agg;
};

/// Stream state: the per-shard states plus the study skeleton that
/// accumulates totals and ingest-level rejects.
struct EngineStream::Impl {
  Engine* engine = nullptr;
  core::SourceStudy study;
  std::vector<Engine::ShardState> shards;
  /// Shard routing buffers, cleared and refilled per Feed call instead
  /// of reallocated per chunk (steady-state feeds allocate nothing).
  std::vector<std::vector<RoutedEntry>> parts;
  /// Live reporting for the stream's lifetime (null unless enabled).
  std::unique_ptr<obs::ProgressReporter> reporter;
};

Engine::Engine(const EngineOptions& options)
    : options_(options),
      threads_(ResolveThreads(options.threads)),
      num_shards_(options.num_shards > 0 ? options.num_shards : threads_),
      cache_(options.cache_capacity,
             options.cache_shards > 0 ? options.cache_shards
                                      : std::max<size_t>(threads_, 8)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
  start_ns_ = NowNs();
  ready_ = std::make_shared<std::atomic<bool>>(false);
  const uint64_t ordinal =
      g_engine_ordinal.fetch_add(1, std::memory_order_relaxed);
  registry_collector_ = obs::RegisterEngineMetrics(
      &obs::MetricRegistry::Global(), this,
      {{"engine", std::to_string(ordinal)}});
  StartAdminServer();
  if (!options_.profile_path.empty()) {
    obs::ProfileOptions popts;
    popts.hz = options_.profile_hz;
    self_profile_ = std::make_unique<obs::ScopedSelfProfile>(
        options_.profile_path, popts);
  }
  ready_->store(true, std::memory_order_release);
}

Engine::~Engine() {
  if (ready_ != nullptr) ready_->store(false, std::memory_order_release);
  // Order matters: the admin server's handlers and the registry bridge
  // both read engine state, so they must be torn down before the engine
  // members they touch. Stop the server (drains in-flight /metrics
  // scrapes), then unhook the global-registry collector.
  // Stop the self-profile before teardown starts so the final capture
  // covers only the engine's working lifetime.
  self_profile_.reset();
  admin_.reset();
  proc_stats_.reset();
  registry_collector_.Reset();
}

void Engine::StartAdminServer() {
  if (options_.admin_port == 0) return;
  obs::AdminServer::Options sopts;
  sopts.bind_address = options_.admin_bind;
  sopts.port = options_.admin_port == EngineOptions::kAdminPortAuto
                   ? 0
                   : static_cast<uint16_t>(options_.admin_port);
  auto server = std::make_unique<obs::AdminServer>(sopts);

  server->Handle("/metrics", "OpenMetrics exposition of every registry family",
                 [](const obs::HttpRequest&) {
                   obs::HttpResponse resp;
                   resp.content_type =
                       "application/openmetrics-text; version=1.0.0; "
                       "charset=utf-8";
                   resp.body = obs::MetricRegistry::Global().RenderOpenMetrics();
                   return resp;
                 });
  server->Handle("/healthz", "liveness: 200 while the process runs",
                 [](const obs::HttpRequest&) {
                   obs::HttpResponse resp;
                   resp.body = "ok\n";
                   return resp;
                 });
  // The ready flag is shared (not `this->ready_`) so a handler draining
  // during destruction never dereferences a dead engine.
  server->Handle("/readyz", "readiness: 200 once the engine accepts work",
                 [ready = ready_](const obs::HttpRequest&) {
                   obs::HttpResponse resp;
                   if (ready->load(std::memory_order_acquire)) {
                     resp.body = "ready\n";
                   } else {
                     resp.status = 503;
                     resp.body = "not ready\n";
                   }
                   return resp;
                 });
  server->Handle(
      "/statusz", "JSON: build info, uptime, options, metrics snapshot",
      [this](const obs::HttpRequest&) {
        obs::HttpResponse resp;
        resp.content_type = "application/json; charset=utf-8";
        std::string body = "{\"build\":";
        body += common::BuildInfo::Get().ToJson();
        body += ",\"uptime_seconds\":";
        body += std::to_string(
            static_cast<double>(NowNs() - start_ns_) / 1e9);
        body += ",\"options\":" + options_.ToJson();
        body += ",\"metrics\":" + Snapshot().ToJson();
        body += "}";
        resp.body = std::move(body);
        return resp;
      });
  server->Handle("/tracez",
                 "drains the active TraceCollector as Chrome trace JSON; "
                 "?limit=N caps rendered events (default 5000, 0 = all)",
                 [](const obs::HttpRequest& request) {
                   obs::HttpResponse resp;
                   // Default cap keeps a scrape of a large multi-thread
                   // ring from rendering multi-MB; limit=0 disables it.
                   size_t limit = 5000;
                   const std::string param =
                       serve::QueryParam(request.query, "limit");
                   if (!param.empty()) {
                     limit = std::strtoull(param.c_str(), nullptr, 10);
                   }
                   std::string json;
                   // A trace drain is a point-in-time snapshot; caching
                   // one would hide every later scrape.
                   resp.extra_headers.push_back(
                       {"Cache-Control", "no-store"});
                   if (obs::DrainActiveTraceJson(&json, limit)) {
                     resp.content_type = "application/json; charset=utf-8";
                     resp.body = std::move(json);
                   } else {
                     resp.status = 503;
                     resp.body =
                         "no active trace collector (set RWDT_TRACE or "
                         "install one)\n";
                   }
                   return resp;
                 });
  server->Handle("/profilez",
                 "timed sampling CPU profile; ?seconds=N&hz=F"
                 "&format=collapsed|json (blocks for the capture)",
                 [](const obs::HttpRequest& request) {
                   return obs::HandleProfilez(request);
                 });

  Status started = server->Start();
  if (!started.ok()) {
    // Never fatal: an engine must not die because a port was taken.
    RWDT_LOG(ERROR) << "admin server disabled: " << started.ToString();
    return;
  }
  RWDT_LOG(INFO) << "admin server listening on " << options_.admin_bind << ":"
                  << server->port();
  // Process-footprint gauges ride along whenever this engine serves
  // /metrics (inert if another subsystem already installed them).
  proc_stats_ = std::make_unique<obs::ProcStatsCollector>();
  admin_ = std::move(server);
}

size_t Engine::queue_depth() const {
  return pool_ != nullptr ? pool_->QueueDepth() : 0;
}

core::SourceStudy Engine::AnalyzeLog(const loggen::SourceProfile& profile,
                                     uint64_t seed) {
  const uint64_t t0 = NowNs();
  const auto entries = loggen::GenerateLog(profile, seed);
  metrics_.Record(Stage::kGenerate, NowNs() - t0);
  return AnalyzeEntries(profile.name, profile.wikidata_like, entries);
}

core::SourceStudy Engine::AnalyzeEntries(
    const std::string& name, bool wikidata_like,
    const std::vector<loggen::LogEntry>& entries) {
  EngineStream stream = OpenStream(name, wikidata_like);
  stream.Feed(entries);
  return stream.Finish();
}

EngineStream Engine::OpenStream(std::string name, bool wikidata_like) {
  auto impl = std::make_unique<EngineStream::Impl>();
  impl->engine = this;
  impl->study.name = std::move(name);
  impl->study.wikidata_like = wikidata_like;
  impl->shards = std::vector<ShardState>(num_shards_);
  impl->parts.resize(num_shards_);
  if (options_.progress.enabled()) {
    obs::ProgressOptions popts = options_.progress;
    if (popts.label == "run") popts.label = impl->study.name;
    impl->reporter = std::make_unique<obs::ProgressReporter>(
        [this] { return Snapshot(); }, std::move(popts));
  }
  return EngineStream(std::move(impl));
}

EngineStream::EngineStream(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
EngineStream::EngineStream(EngineStream&&) noexcept = default;
EngineStream& EngineStream::operator=(EngineStream&&) noexcept = default;
EngineStream::~EngineStream() = default;

void EngineStream::Feed(const std::vector<loggen::LogEntry>& chunk) {
  FeedImpl(chunk.size(), [&chunk](auto&& route) {
    for (const auto& e : chunk) route(std::string_view(e.text));
  });
}

void EngineStream::Feed(std::span<const std::string_view> chunk) {
  FeedImpl(chunk.size(), [&chunk](auto&& route) {
    for (const std::string_view text : chunk) route(text);
  });
}

template <typename ForEachText>
void EngineStream::FeedImpl(size_t count, ForEachText&& for_each_text) {
  Impl& im = *impl_;
  Engine& eng = *im.engine;
  obs::Span feed_span("feed");
  const uint64_t t_start = NowNs();

  // Hash-once routing: each entry's text is hashed exactly once, here,
  // and the hash travels with the entry through shard routing, per-shard
  // dedup, and the query cache. Every duplicate of a query lands in the
  // same shard, making per-shard dedup globally exact. The partition
  // buffers live in Impl and are recycled across Feed calls.
  const size_t num_shards = eng.num_shards_;
  auto& parts = im.parts;
  for (auto& part : parts) part.clear();
  if (num_shards == 1) {
    parts[0].reserve(count);
    for_each_text([&parts](std::string_view text) {
      parts[0].push_back({text, Hash64(text)});
    });
  } else {
    for_each_text([&parts, num_shards](std::string_view text) {
      const uint64_t h = Hash64(text);
      parts[h % num_shards].push_back({text, h});
    });
  }

  if (eng.pool_ == nullptr) {
    for (size_t s = 0; s < num_shards; ++s) {
      eng.ProcessShard(parts[s], &im.shards[s]);
    }
  } else {
    // Propagate the feeding thread's trace context (captured after
    // feed_span opened, so it names the feed span) into each pool task:
    // shard/stage spans recorded on pool threads nest under this Feed,
    // and a serve worker's request trace crosses the pool handoff.
    const obs::TraceContext ctx = obs::CurrentTraceContext();
    for (size_t s = 0; s < num_shards; ++s) {
      eng.pool_->Submit([&eng, &im, ctx, s] {
        obs::ScopedTraceContext scoped(ctx);
        eng.ProcessShard(im.parts[s], &im.shards[s]);
      });
    }
    eng.pool_->Wait();
  }

  im.study.total += count;
  eng.metrics_.AddEntries(count);
  eng.metrics_.AddWallNs(NowNs() - t_start);

  // Occupancy telemetry at chunk granularity: one pass over the shard
  // states after the workers quiesced, never on the per-query path.
  uint64_t interner_bytes = 0;
  uint64_t dedup_entries = 0;
  for (const Engine::ShardState& s : im.shards) {
    interner_bytes += s.seen.bytes_reserved() + s.dict.bytes_reserved();
    dedup_entries += s.seen.size();
  }
  eng.interner_bytes_.store(interner_bytes, std::memory_order_relaxed);
  eng.dedup_entries_.store(dedup_entries, std::memory_order_relaxed);
}

void EngineStream::Reject(ErrorClass c, uint64_t n) {
  Impl& im = *impl_;
  im.study.total += n;
  im.study.errors[static_cast<size_t>(c)] += n;
  im.engine->metrics_.AddEntries(n);
  im.engine->metrics_.AddError(c, n);
}

core::SourceStudy EngineStream::Finish() {
  Impl& im = *impl_;

  // Reduce in shard order. All aggregate fields are unsigned sums, so
  // the result is independent of the shard partition itself.
  core::SourceStudy study;
  {
    obs::Span finish_span("finish");
    study = std::move(im.study);
    for (const Engine::ShardState& s : im.shards) {
      study.valid += s.valid;
      study.unique += s.unique;
      for (size_t c = 0; c < kNumErrorClasses; ++c) {
        study.errors[c] += s.errors[c];
      }
      core::Merge(s.valid_agg, &study.valid_agg);
      core::Merge(s.unique_agg, &study.unique_agg);
      // Fold the deferred duplicate weight: one weighted AddToAggregates
      // per distinct text that recurred, replacing what used to be one
      // call per occurrence on the hot path. Unsigned sums, so folding
      // into the merged study instead of s.valid_agg changes nothing.
      for (size_t id = 0; id < s.dup_extra.size(); ++id) {
        if (s.dup_extra[id] == 0) continue;
        core::AddToAggregates(s.by_id[id]->verdict.analysis,
                              s.dup_extra[id], &study.valid_agg);
      }
    }
    im.shards.clear();
    im.engine->interner_bytes_.store(0, std::memory_order_relaxed);
    im.engine->dedup_entries_.store(0, std::memory_order_relaxed);
  }
  // Stop after the reduce so the final report's counters are the run's
  // complete totals.
  if (im.reporter != nullptr) {
    im.reporter->Stop();
    im.reporter.reset();
  }
  return study;
}

void Engine::ProcessShard(const std::vector<RoutedEntry>& entries,
                          ShardState* state) {
  const bool timed = options_.collect_stage_timings;
  obs::Span shard_span("shard");
  // Worker-private metric slab (stack-resident, cache-hot): the per-query
  // path below touches no shared counter; everything folds into the
  // shared Metrics in one Merge when this task ends, i.e. before the
  // enclosing Feed returns.
  LocalMetrics local;

  auto compute = [&](std::string_view text, uint64_t hash)
      -> std::shared_ptr<const CachedQuery> {
    auto fresh = std::make_shared<CachedQuery>();
    // Clear()ing the reusable per-shard dictionary restarts ids at 0, so
    // each parse is still a pure function of the text — cache entries
    // stay shareable across shards, threads, and logs — but the arena
    // and slot table are recycled instead of rebuilding an
    // unordered_map (and its per-node allocations) for every parse.
    state->dict.Clear();
    const uint64_t t0 = timed ? NowNs() : 0;
    auto parsed =
        sparql::ParseSparql(text, &state->dict, options_.parse_limits);
    const uint64_t t1 = timed ? NowNs() : 0;
    if (timed) {
      local.Record(Stage::kParse, t1 - t0);
      obs::EmitSpan("parse", t0, t1 - t0);
    }
    if (parsed.ok()) {
      core::StageTimings st;
      fresh->parse_ok = true;
      fresh->verdict = core::Classify(parsed.value(), options_.study,
                                      timed ? &st : nullptr);
      if (timed) {
        local.Record(Stage::kFeatures, st.feature_ns);
        local.Record(Stage::kHypergraph, st.hypergraph_ns);
        local.Record(Stage::kPaths, st.path_ns);
        // AnalyzeQuery runs its stages back-to-back starting right after
        // the parse, so their spans chain from t1 using the durations it
        // reported (start offsets are exact up to its internal overhead).
        obs::EmitSpan("features", t1, st.feature_ns);
        obs::EmitSpan("hypergraph", t1 + st.feature_ns, st.hypergraph_ns);
        obs::EmitSpan("paths", t1 + st.feature_ns + st.hypergraph_ns,
                      st.path_ns);
      }
      local.analyzed++;
    } else {
      fresh->error = ClassifyStatus(parsed.status());
      local.parse_failures++;
    }
    // The routing hash doubles as the cache key hash, so the miss path
    // costs zero extra hash computations (Get and Put share it).
    cache_.PutWithHash(hash, text, fresh);
    return fresh;
  };

  auto aggregate = [&](const core::QueryAnalysis& a, core::LogAggregates* agg) {
    const uint64_t t0 = timed ? NowNs() : 0;
    core::AddToAggregates(a, 1, agg);
    if (timed) {
      const uint64_t dur = NowNs() - t0;
      local.Record(Stage::kAggregate, dur);
      obs::EmitSpan("aggregate", t0, dur);
    }
  };

  // Every rejected entry is attributed to exactly one taxonomy class,
  // duplicates included, so total == valid + sum(errors) holds per shard.
  auto reject = [&](ErrorClass c) {
    state->errors[static_cast<size_t>(c)]++;
    local.AddError(c);
  };

  // Exact first-occurrence tracking: `verdict[id]` remembers the outcome
  // of each distinct text and `by_id[id]` pins its analysis, so repeated
  // entries never hit the parser, the cache mutexes, or — when the log
  // holds more distinct texts than the cache does — the eviction
  // recompute path. The bounded LRU cache serves cross-log warm starts;
  // within one stream, each distinct text is computed exactly once.
  for (const RoutedEntry& routed : entries) {
    const std::string_view text = routed.text;
    const SymbolId prior = static_cast<SymbolId>(state->seen.size());
    const SymbolId id = state->seen.InternWithHash(routed.hash, text);
    const bool first_occurrence = id == prior;

    if (!first_occurrence) {
      const uint8_t v = state->verdict[id];
      if (v != 0) {  // known-invalid duplicate
        reject(static_cast<ErrorClass>(v - 1));
        continue;
      }
      // Valid duplicate: two counter bumps and done. The aggregate fold
      // happens once per distinct text at Finish, weighted by this count.
      state->valid++;
      state->dup_extra[id]++;
      continue;
    }

    // First sight in this log; the shared cache may still be warm from
    // an earlier log analyzed by this engine.
    auto cached = cache_.GetWithHash(routed.hash, text);
    if (cached == nullptr) cached = compute(text, routed.hash);
    if (!cached->parse_ok) {
      state->verdict.push_back(
          static_cast<uint8_t>(1 + static_cast<size_t>(cached->error)));
      state->by_id.push_back(nullptr);
      state->dup_extra.push_back(0);
      reject(cached->error);
      continue;
    }
    state->verdict.push_back(0);
    state->valid++;
    state->unique++;
    aggregate(cached->verdict.analysis, &state->valid_agg);
    aggregate(cached->verdict.analysis, &state->unique_agg);
    state->by_id.push_back(std::move(cached));
    state->dup_extra.push_back(0);
  }

  metrics_.Merge(local);
}

MetricsSnapshot Engine::Snapshot() const {
  MetricsSnapshot snap = metrics_.Snapshot();
  snap.threads = threads_;
  snap.cache_hits = cache_.hits();
  snap.cache_misses = cache_.misses();
  snap.cache_evictions = cache_.evictions();
  snap.cache_size = cache_.size();
  snap.interner_bytes = interner_bytes_.load(std::memory_order_relaxed);
  snap.dedup_entries = dedup_entries_.load(std::memory_order_relaxed);
  return snap;
}

void Engine::ResetMetrics() { metrics_.Reset(); }

}  // namespace rwdt::engine
