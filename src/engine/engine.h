#ifndef RWDT_ENGINE_ENGINE_H_
#define RWDT_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include <atomic>

#include "common/flat_interner.h"
#include "common/status.h"
#include "core/log_study.h"
#include "engine/metrics.h"
#include "engine/query_cache.h"
#include "engine/thread_pool.h"
#include "loggen/sparql_gen.h"
#include "obs/admin_server.h"
#include "obs/proc_stats.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "sparql/parser.h"

namespace rwdt::engine {

struct EngineOptions {
  /// Worker threads. 0 = one per hardware thread. 1 = run inline on the
  /// calling thread (the historical single-threaded path).
  unsigned threads = 0;

  /// Work shards. Entries are routed to shards by query-text hash, so
  /// all duplicates of a text land in one shard and per-shard dedup is
  /// exact. 0 = one shard per thread.
  size_t num_shards = 0;

  /// Total memoization-cache entries across all cache shards.
  size_t cache_capacity = 1 << 16;

  /// Cache shards (lock granularity). 0 = max(threads, 8).
  size_t cache_shards = 0;

  /// Record per-stage latency histograms (two steady_clock reads per
  /// stage per analyzed query; disable for maximum throughput). Per-stage
  /// trace spans (obs::TraceCollector) also piggyback on these readings,
  /// so tracing a run requires this to stay on.
  bool collect_stage_timings = true;

  /// Embedded admin server (GET /metrics, /healthz, /readyz, /statusz,
  /// /tracez). 0 (the default) = no server: no thread, no socket, and —
  /// because the registry bridge is pull-only — zero added work on the
  /// analysis hot path. 1-65535 = that TCP port; kAdminPortAuto = let
  /// the kernel pick a free port (tests; read it back via
  /// `admin_server()->port()`). Examples and benches populate this from
  /// the RWDT_ADMIN_PORT environment variable.
  uint32_t admin_port = 0;

  /// Admin bind address. Defaults to loopback: the admin endpoints
  /// expose engine internals and must be tunneled, not exposed.
  std::string admin_bind = "127.0.0.1";

  /// Sentinel for `admin_port`: bind an ephemeral kernel-assigned port.
  static constexpr uint32_t kAdminPortAuto = 65536;

  /// Live run reporting: while a stream is open (AnalyzeLog,
  /// AnalyzeEntries, OpenStream..Finish), a background thread snapshots
  /// Metrics every `progress.interval_ms` and logs a one-line summary;
  /// on Finish a JSON run report goes to `progress.report_path` if set.
  /// Disabled by default (interval 0, empty path).
  obs::ProgressOptions progress;

  /// Self-profiling: when non-empty, the engine starts a sampling CPU
  /// profile (obs::StartProfiling) at construction and writes
  /// flamegraph.pl collapsed stacks to this path at destruction.
  /// Profiling is process-global; if another capture is already running
  /// the engine logs and continues unprofiled. Tools populate this from
  /// the RWDT_PROFILE environment variable. Empty (default) = off: no
  /// timer, no handler, zero overhead.
  std::string profile_path;

  /// Sampling frequency for `profile_path` captures, in Hz of process
  /// CPU time. Must be in [1, 1000].
  double profile_hz = 99;

  /// Per-query analysis knobs, forwarded to core::AnalyzeQuery.
  core::LogStudyOptions study;

  /// Per-query resource guards, forwarded to sparql::ParseSparql.
  /// Violations are classified as `ErrorClass::kResourceExhausted`.
  sparql::ParseLimits parse_limits;

  /// Rejects nonsensical configurations (zero parse limits, degenerate
  /// shard/thread counts) before any work is scheduled. The ingest layer
  /// calls this up front so misconfiguration fails fast, not mid-stream.
  Status Validate() const;

  /// JSON object of the serving-relevant knobs — the "options" block of
  /// the admin server's /statusz.
  std::string ToJson() const;
};

class Engine;

/// One log entry routed to a shard, carrying the `common::Hash64` of its
/// text. The hash is computed exactly once (in EngineStream::Feed) and
/// reused for shard routing, per-shard dedup, and query-cache lookups —
/// the hash-once pipeline. The text is borrowed, never owned: it may
/// point into a caller's LogEntry, an mmapped log file, or a chunk
/// arena, and only needs to stay valid for the duration of the Feed
/// call that routed it (everything downstream copies on retention).
struct RoutedEntry {
  std::string_view text;
  uint64_t hash;
};

/// An incremental feed into the engine: per-shard dedup state persists
/// across `Feed` calls, so a log streamed in bounded-memory chunks
/// yields exactly the same SourceStudy as a single materialized vector.
///
/// Obtained from `Engine::OpenStream`. Feed/Reject/Finish must be called
/// from one thread (the engine parallelizes internally); Finish
/// invalidates the stream. Only one stream per engine may be open at a
/// time, and AnalyzeLog/AnalyzeEntries must not run while one is open.
class EngineStream {
 public:
  EngineStream(EngineStream&&) noexcept;
  EngineStream& operator=(EngineStream&&) noexcept;
  ~EngineStream();

  EngineStream(const EngineStream&) = delete;
  EngineStream& operator=(const EngineStream&) = delete;

  /// Routes one chunk of entries through the shard pipeline. Chunk
  /// boundaries never affect results.
  void Feed(const std::vector<loggen::LogEntry>& chunk);

  /// Zero-copy variant: the views are borrowed for the duration of the
  /// call only (the block ingest path feeds views straight out of an
  /// mmapped log). Produces bit-identical results to the LogEntry
  /// overload for the same texts in the same order.
  void Feed(std::span<const std::string_view> chunk);

  /// Counts `n` entries rejected before parsing (oversized lines,
  /// invalid UTF-8, ...). Rejects appear in `total` and in the per-class
  /// error counters, never in valid/unique.
  void Reject(ErrorClass c, uint64_t n = 1);

  /// Reduces shard state into the final study. Invariant on the result:
  /// total == valid + sum(errors).
  core::SourceStudy Finish();

 private:
  friend class Engine;
  struct Impl;
  explicit EngineStream(std::unique_ptr<Impl> impl);
  /// Shared routing pipeline: `for_each_text` invokes its callback once
  /// per entry text, in order. Both Feed overloads funnel through here
  /// so they cannot diverge.
  template <typename ForEachText>
  void FeedImpl(size_t count, ForEachText&& for_each_text);
  std::unique_ptr<Impl> impl_;
};

/// A parallel, cache-aware streaming log-analysis engine.
///
/// The engine runs the paper's per-query classifier battery (Tables 3-8,
/// Figure 3) over query logs with three production-minded properties the
/// plain `core::AnalyzeLog` loop lacked:
///
///  1. **Sharded parallelism.** Entries are partitioned by query-text
///     hash across `num_shards` shards executed on a fixed thread pool.
///     Aggregates are pure uint64 sums reduced through `core::Merge` in
///     shard order, so results are bit-identical for a given seed
///     regardless of thread or shard count.
///  2. **Memoization.** A sharded LRU cache keyed on the query text
///     skips parse + analysis for duplicate queries — the Valid/Unique
///     gap of the paper's Table 2 (duplication factors of 2-10x) turns
///     directly into cache hits. The cache persists across logs, so
///     repeated studies warm-start.
///  3. **Observability.** Atomic counters and per-stage latency
///     histograms, exported as a `MetricsSnapshot` (text or JSON).
///
/// Thread-safe for metrics reads; `AnalyzeLog`/`AnalyzeEntries` must not
/// be called concurrently on the same engine.
class Engine {
 public:
  explicit Engine(const EngineOptions& options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Generates the log for `profile` at `seed` and streams it through
  /// the pipeline. Equivalent to core::AnalyzeLog for any thread count.
  core::SourceStudy AnalyzeLog(const loggen::SourceProfile& profile,
                               uint64_t seed);

  /// Streams an already-materialized log through the pipeline.
  /// Implemented as OpenStream + one Feed + Finish.
  core::SourceStudy AnalyzeEntries(const std::string& name,
                                   bool wikidata_like,
                                   const std::vector<loggen::LogEntry>& entries);

  /// Opens an incremental stream for a log too large to materialize.
  /// See EngineStream for the contract.
  EngineStream OpenStream(std::string name, bool wikidata_like);

  /// Cumulative counters since construction (or the last ResetMetrics),
  /// including cache statistics.
  MetricsSnapshot Snapshot() const;
  void ResetMetrics();

  unsigned threads() const { return threads_; }
  size_t num_shards() const { return num_shards_; }
  const EngineOptions& options() const { return options_; }

  /// Shard tasks queued or running on the pool (0 when single-threaded).
  size_t queue_depth() const;

  /// The embedded admin server, or null when `admin_port == 0` or the
  /// bind failed (failure is logged, never fatal — an engine must not
  /// die because a port was taken).
  obs::AdminServer* admin_server() const { return admin_.get(); }

 private:
  friend class EngineStream;
  struct ShardState;
  void ProcessShard(const std::vector<RoutedEntry>& entries,
                    ShardState* state);
  void StartAdminServer();

  EngineOptions options_;
  unsigned threads_;
  size_t num_shards_;
  ShardedQueryCache cache_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads_ == 1
  Metrics metrics_;

  uint64_t start_ns_ = 0;  // construction time, for /statusz uptime
  /// Occupancy of the open stream's dedup state, updated by FeedImpl
  /// (chunk granularity, off the per-query hot path) and read by
  /// Snapshot — the arena/interner gauges on /metrics.
  std::atomic<uint64_t> interner_bytes_{0};
  std::atomic<uint64_t> dedup_entries_{0};
  /// /readyz: true once the constructor completes (the engine accepts
  /// Feed), false again the moment destruction begins.
  std::shared_ptr<std::atomic<bool>> ready_;
  obs::ScopedCollector registry_collector_;  // global-registry bridge
  /// Process-footprint gauges (rwdt_proc_*) on /metrics while this
  /// engine's admin server is up; inert if another collector (e.g. a
  /// serve front end) already installed one.
  std::unique_ptr<obs::ProcStatsCollector> proc_stats_;
  std::unique_ptr<obs::AdminServer> admin_;
  /// RWDT_PROFILE / EngineOptions::profile_path self-profile: started
  /// at construction, collapsed stacks written at destruction.
  std::unique_ptr<obs::ScopedSelfProfile> self_profile_;
};

}  // namespace rwdt::engine

#endif  // RWDT_ENGINE_ENGINE_H_
