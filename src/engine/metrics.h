#ifndef RWDT_ENGINE_METRICS_H_
#define RWDT_ENGINE_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace rwdt::engine {

/// Pipeline stages the engine instruments. `kGenerate` is the synthetic
/// log generator; the rest are the per-query analysis stages of the
/// paper's study pipeline.
enum class Stage : size_t {
  kGenerate = 0,   // loggen::GenerateLog (one sample per log)
  kParse,          // SPARQL text -> algebra
  kFeatures,       // Table 3/4/5 feature + operator-set extraction
  kHypergraph,     // Table 6/7 acyclicity, htw <= k, shape classes
  kPaths,          // Table 8 property-path classification
  kAggregate,      // folding one analysis into LogAggregates
};
inline constexpr size_t kNumStages = 6;

/// Latency histogram buckets: bucket b counts samples in [2^(b-1), 2^b) ns.
inline constexpr size_t kLatencyBuckets = 64;

const char* StageName(Stage s);

/// Per-worker metric slab for the engine's contention-free hot path.
///
/// Plain (non-atomic) counters owned by exactly one worker at a time and
/// folded into the shared `Metrics` via `Metrics::Merge` when the worker
/// finishes its shard task — i.e. before `EngineStream::Feed` returns.
/// On the per-query path workers therefore touch no shared cache line at
/// all; the ~20 shared atomic RMWs per analyzed query this replaces were
/// the single largest scaling bottleneck in the engine (parse stage
/// totals inflated 4x at 4 threads purely from counter ping-pong).
///
/// Layout constraint: alignas(64) so a slab never shares a cache line
/// with a neighbor when slabs are stored contiguously (false sharing
/// would silently reintroduce the contention this type exists to kill).
struct alignas(64) LocalMetrics {
  uint64_t analyzed = 0;
  uint64_t parse_failures = 0;
  std::array<uint64_t, kNumErrorClasses> errors{};
  std::array<uint64_t, kNumStages> stage_total_ns{};
  std::array<uint64_t, kNumStages> stage_max_ns{};
  std::array<std::array<uint64_t, kLatencyBuckets>, kNumStages> histogram{};

  /// Records one latency sample for a stage (same bucketing as Metrics).
  void Record(Stage stage, uint64_t ns);
  void AddError(ErrorClass c, uint64_t n = 1) {
    errors[static_cast<size_t>(c)] += n;
  }
};

/// Summary of one stage's latency histogram. Percentiles are
/// reconstructed from power-of-two buckets (geometric bucket midpoint),
/// so they are exact to within a factor of sqrt(2).
struct StageStats {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  double mean_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  /// Exact observed maximum (tracked by an atomic CAS-max per sample,
  /// not reconstructed from the histogram buckets).
  uint64_t max_ns = 0;
  /// Raw (non-cumulative) bucket counts: bucket b holds samples with
  /// ns in [2^(b-1), 2^b). Carried so the OpenMetrics bridge can expose
  /// real histogram series; ToText/ToJson ignore it (formats unchanged).
  std::array<uint64_t, kLatencyBuckets> buckets{};
};

/// A point-in-time copy of all engine counters, safe to read, print, and
/// serialize with no further synchronization.
struct MetricsSnapshot {
  uint64_t entries_processed = 0;  // log entries streamed through
  uint64_t queries_analyzed = 0;   // full parse+analyze executions
  uint64_t parse_failures = 0;     // distinct failing texts computed
  /// Rejected entries per taxonomy class (duplicates and ingest-level
  /// rejects included) — the Total-vs-Valid gap of the paper's Table 2,
  /// broken down by cause.
  std::array<uint64_t, kNumErrorClasses> errors{};
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_size = 0;
  uint64_t wall_ns = 0;  // cumulative wall time inside AnalyzeEntries
  unsigned threads = 1;
  /// Occupancy of the currently-open stream's per-shard dedup state
  /// (interner + parse-dictionary bytes reserved, distinct texts
  /// pinned). Updated once per Feed chunk, zeroed at Finish — a gauge,
  /// not a counter.
  uint64_t interner_bytes = 0;
  uint64_t dedup_entries = 0;

  double CacheHitRate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache_hits) / lookups;
  }
  /// Total rejected entries across all error classes.
  uint64_t TotalErrors() const {
    uint64_t sum = 0;
    for (const uint64_t e : errors) sum += e;
    return sum;
  }
  double QueriesPerSec() const {
    return wall_ns == 0 ? 0.0 : entries_processed * 1e9 / wall_ns;
  }

  std::array<StageStats, kNumStages> stages{};

  /// Human-readable multi-line report (ASCII table).
  std::string ToText() const;
  /// Machine-readable single JSON object.
  std::string ToJson() const;
};

/// Thread-safe metric registry: lock-free relaxed atomics throughout, so
/// workers on the hot path pay one uncontended cache-line RMW per event.
/// Latencies go into per-stage power-of-two bucket histograms.
class Metrics {
 public:
  Metrics();

  void AddEntries(uint64_t n) { entries_.fetch_add(n, kRelaxed); }
  void AddAnalyzed(uint64_t n) { analyzed_.fetch_add(n, kRelaxed); }
  void AddParseFailures(uint64_t n) { parse_failures_.fetch_add(n, kRelaxed); }
  /// Counts one rejected entry under its taxonomy class.
  void AddError(ErrorClass c, uint64_t n = 1) {
    errors_[static_cast<size_t>(c)].fetch_add(n, kRelaxed);
  }
  void AddHits(uint64_t n) { hits_.fetch_add(n, kRelaxed); }
  void AddMisses(uint64_t n) { misses_.fetch_add(n, kRelaxed); }
  void AddWallNs(uint64_t ns) { wall_ns_.fetch_add(ns, kRelaxed); }

  /// Records one latency sample for a stage.
  void Record(Stage stage, uint64_t ns);

  /// Folds one worker's LocalMetrics slab into the shared counters.
  /// Called off the per-query path (once per shard task), so the atomic
  /// cost is amortized over the whole chunk. Zero histogram buckets are
  /// skipped — a merge is ~tens of RMWs, not kNumStages*kLatencyBuckets.
  void Merge(const LocalMetrics& local);

  /// Copies counters into a snapshot (cache fields are left zero; the
  /// engine overlays its cache's counters).
  MetricsSnapshot Snapshot() const;

  void Reset();

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;
  static constexpr size_t kBuckets = kLatencyBuckets;

  std::atomic<uint64_t> entries_;
  std::atomic<uint64_t> analyzed_;
  std::atomic<uint64_t> parse_failures_;
  std::array<std::atomic<uint64_t>, kNumErrorClasses> errors_;
  std::atomic<uint64_t> hits_;
  std::atomic<uint64_t> misses_;
  std::atomic<uint64_t> wall_ns_;
  std::array<std::array<std::atomic<uint64_t>, kBuckets>, kNumStages>
      histogram_;
  std::array<std::atomic<uint64_t>, kNumStages> stage_total_ns_;
  std::array<std::atomic<uint64_t>, kNumStages> stage_max_ns_;
};

}  // namespace rwdt::engine

#endif  // RWDT_ENGINE_METRICS_H_
