#include "engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace rwdt::engine {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace rwdt::engine
