#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <map>

namespace rwdt::hypergraph {

void Hypergraph::AddEdge(std::vector<uint32_t> edge) {
  std::sort(edge.begin(), edge.end());
  edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
  for (uint32_t v : edge) {
    num_vertices = std::max<size_t>(num_vertices, v + 1);
  }
  edges.push_back(std::move(edge));
}

Hypergraph BuildCanonicalHypergraph(const sparql::Query& query,
                                    bool include_filters,
                                    std::vector<SymbolId>* var_of_vertex) {
  Hypergraph h;
  std::map<SymbolId, uint32_t> index;
  std::vector<SymbolId> vars;
  auto intern = [&](SymbolId var) {
    auto [it, inserted] =
        index.emplace(var, static_cast<uint32_t>(vars.size()));
    if (inserted) vars.push_back(var);
    return it->second;
  };
  if (query.pattern != nullptr) {
    std::vector<const sparql::TriplePattern*> triples;
    query.pattern->CollectTriples(&triples);
    for (const auto* t : triples) {
      std::vector<uint32_t> edge;
      for (const sparql::Term* term : {&t->s, &t->p, &t->o}) {
        if (term->ActsAsVar()) edge.push_back(intern(term->id));
      }
      if (!edge.empty()) h.AddEdge(std::move(edge));
    }
    // Property paths contribute their endpoint variables.
    std::vector<const sparql::PathTriple*> paths;
    query.pattern->CollectPathTriples(&paths);
    for (const auto* p : paths) {
      std::vector<uint32_t> edge;
      if (p->s.ActsAsVar()) edge.push_back(intern(p->s.id));
      if (p->o.ActsAsVar()) edge.push_back(intern(p->o.id));
      if (!edge.empty()) h.AddEdge(std::move(edge));
    }
    if (include_filters) {
      std::vector<sparql::FilterPtr> filters;
      query.pattern->CollectFilters(&filters);
      for (const auto& f : filters) {
        std::set<SymbolId> fvars;
        f->CollectVars(&fvars);
        if (fvars.empty()) continue;
        std::vector<uint32_t> edge;
        for (SymbolId v : fvars) edge.push_back(intern(v));
        h.AddEdge(std::move(edge));
      }
    }
  }
  h.num_vertices = vars.size();
  if (var_of_vertex != nullptr) *var_of_vertex = vars;
  return h;
}

bool IsAcyclic(const Hypergraph& h) {
  // GYO reduction: repeatedly remove vertices occurring in exactly one
  // edge and edges contained in other edges.
  std::vector<std::vector<uint32_t>> edges;
  for (const auto& e : h.edges) {
    if (!e.empty()) edges.push_back(e);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    // Vertex occurrence counts.
    std::map<uint32_t, int> count;
    for (const auto& e : edges) {
      for (uint32_t v : e) count[v]++;
    }
    for (auto& e : edges) {
      const size_t before = e.size();
      e.erase(std::remove_if(e.begin(), e.end(),
                             [&](uint32_t v) { return count[v] == 1; }),
              e.end());
      if (e.size() != before) changed = true;
    }
    // Remove empty edges and edges contained in another edge.
    std::vector<std::vector<uint32_t>> kept;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].empty()) {
        changed = true;
        continue;
      }
      bool contained = false;
      for (size_t j = 0; j < edges.size() && !contained; ++j) {
        if (i == j) continue;
        if (edges[i].size() > edges[j].size()) continue;
        if (edges[i] == edges[j] && i > j) {
          contained = true;  // drop duplicate, keep the first
          break;
        }
        if (edges[i] != edges[j] &&
            std::includes(edges[j].begin(), edges[j].end(),
                          edges[i].begin(), edges[i].end())) {
          contained = true;
        }
      }
      if (contained) {
        changed = true;
      } else {
        kept.push_back(edges[i]);
      }
    }
    edges = std::move(kept);
  }
  return edges.size() <= 1;
}

bool IsFreeConnexAcyclic(const Hypergraph& h,
                         const std::vector<uint32_t>& free_vertices) {
  if (!IsAcyclic(h)) return false;
  Hypergraph extended = h;
  if (!free_vertices.empty()) {
    extended.AddEdge(free_vertices);
  }
  return IsAcyclic(extended);
}

namespace {

using VertexSet = std::vector<uint32_t>;  // sorted

VertexSet Union(const VertexSet& a, const VertexSet& b) {
  VertexSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

VertexSet Intersect(const VertexSet& a, const VertexSet& b) {
  VertexSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

bool Subset(const VertexSet& a, const VertexSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

class GhwSolver {
 public:
  GhwSolver(const Hypergraph& h, size_t k, size_t max_states)
      : h_(h), k_(k), max_states_(max_states) {}

  std::optional<bool> Solve() {
    VertexSet all;
    for (const auto& e : h_.edges) all = Union(all, e);
    auto r = Decompose(all, {});
    return r;
  }

 private:
  std::optional<bool> Decompose(const VertexSet& component,
                                const VertexSet& boundary) {
    if (component.empty()) return true;
    const auto key = std::make_pair(component, boundary);
    auto memo = memo_.find(key);
    if (memo != memo_.end()) return memo->second;
    if (memo_.size() > max_states_) return std::nullopt;
    memo_[key] = false;  // assume failure while in progress (cycle guard)

    // Candidate bag edges: those touching the component or boundary.
    std::vector<size_t> candidates;
    const VertexSet scope = Union(component, boundary);
    for (size_t i = 0; i < h_.edges.size(); ++i) {
      if (!Intersect(h_.edges[i], scope).empty()) candidates.push_back(i);
    }

    // Enumerate subsets of <= k candidate edges.
    std::vector<size_t> chosen;
    const std::optional<bool> found =
        EnumerateBags(candidates, 0, &chosen, component, boundary);
    if (found.has_value()) memo_[key] = *found;
    return found;
  }

  std::optional<bool> EnumerateBags(const std::vector<size_t>& candidates,
                                    size_t from, std::vector<size_t>* chosen,
                                    const VertexSet& component,
                                    const VertexSet& boundary) {
    if (!chosen->empty()) {
      VertexSet bag;
      for (size_t i : *chosen) bag = Union(bag, h_.edges[i]);
      auto r = TryBag(bag, component, boundary);
      if (!r.has_value()) return std::nullopt;  // resource limit
      if (*r) return true;
    }
    if (chosen->size() == k_) return false;
    for (size_t i = from; i < candidates.size(); ++i) {
      chosen->push_back(candidates[i]);
      auto r = EnumerateBags(candidates, i + 1, chosen, component,
                             boundary);
      chosen->pop_back();
      if (!r.has_value()) return std::nullopt;
      if (*r) return true;
    }
    return false;
  }

  std::optional<bool> TryBag(const VertexSet& bag,
                             const VertexSet& component,
                             const VertexSet& boundary) {
    if (!Subset(boundary, bag)) return false;
    // Split component \ bag into connected [component]-subcomponents.
    VertexSet rest;
    std::set_difference(component.begin(), component.end(), bag.begin(),
                        bag.end(), std::back_inserter(rest));
    if (rest.empty()) return true;
    // Union-find over rest vertices via edges.
    std::map<uint32_t, uint32_t> parent;
    for (uint32_t v : rest) parent[v] = v;
    std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    for (const auto& e : h_.edges) {
      const VertexSet in_rest = Intersect(e, rest);
      for (size_t i = 1; i < in_rest.size(); ++i) {
        parent[find(in_rest[i])] = find(in_rest[0]);
      }
    }
    std::map<uint32_t, VertexSet> comps;
    for (uint32_t v : rest) comps[find(v)].push_back(v);
    for (auto& [root, comp] : comps) {
      (void)root;
      // New boundary: bag vertices adjacent to the component.
      VertexSet new_boundary;
      for (const auto& e : h_.edges) {
        if (Intersect(e, comp).empty()) continue;
        new_boundary = Union(new_boundary, Intersect(e, bag));
      }
      const VertexSet sub = Union(comp, new_boundary);
      auto r = Decompose(sub, new_boundary);
      if (!r.has_value()) return std::nullopt;
      if (!*r) return false;
    }
    return true;
  }

  const Hypergraph& h_;
  size_t k_;
  size_t max_states_;
  std::map<std::pair<VertexSet, VertexSet>, bool> memo_;
};

}  // namespace

std::optional<bool> HypertreeWidthAtMost(const Hypergraph& h, size_t k,
                                         size_t max_states) {
  if (k == 0) return h.edges.empty();
  GhwSolver solver(h, k, max_states);
  return solver.Solve();
}

std::string GraphShapeName(GraphShape shape) {
  switch (shape) {
    case GraphShape::kNoEdge:
      return "no edge";
    case GraphShape::kSingleEdge:
      return "<= 1 edge";
    case GraphShape::kChain:
      return "chain";
    case GraphShape::kStar:
      return "star";
    case GraphShape::kTree:
      return "tree";
    case GraphShape::kForest:
      return "forest";
    case GraphShape::kTreewidth2:
      return "tw <= 2";
    case GraphShape::kTreewidth3:
      return "tw <= 3";
    case GraphShape::kOther:
      return "other";
  }
  return "?";
}

GraphShape ClassifyShape(const graph::SimpleGraph& g) {
  const size_t m = g.NumEdges();
  if (m == 0) return GraphShape::kNoEdge;
  if (m == 1) return GraphShape::kSingleEdge;
  const auto components = g.Components();
  const bool connected = components.size() <= 1;
  const bool forest = graph::IsForest(g);
  if (connected && forest) {
    size_t high_degree = 0;
    bool all_low = true;
    for (uint32_t v = 0; v < g.NumVertices(); ++v) {
      const size_t d = g.Neighbors(v).size();
      if (d > 2) {
        ++high_degree;
        all_low = false;
      }
    }
    if (all_low) return GraphShape::kChain;
    if (high_degree <= 1) return GraphShape::kStar;
    return GraphShape::kTree;
  }
  if (forest) return GraphShape::kForest;
  if (graph::TreewidthAtMost(g, 2).value_or(false)) {
    return GraphShape::kTreewidth2;
  }
  if (graph::TreewidthAtMost(g, 3).value_or(false)) {
    return GraphShape::kTreewidth3;
  }
  return GraphShape::kOther;
}

graph::SimpleGraph BuildCanonicalGraph(const sparql::Query& query,
                                       bool include_constants) {
  // Collect endpoint terms of triple edges and binary-filter edges.
  struct TermKey {
    sparql::Term term;
    bool operator<(const TermKey& o) const { return term < o.term; }
  };
  std::vector<std::pair<sparql::Term, sparql::Term>> edge_list;
  if (query.pattern != nullptr) {
    std::vector<const sparql::TriplePattern*> triples;
    query.pattern->CollectTriples(&triples);
    for (const auto* t : triples) {
      edge_list.emplace_back(t->s, t->o);
    }
    std::vector<const sparql::PathTriple*> paths;
    query.pattern->CollectPathTriples(&paths);
    for (const auto* p : paths) {
      edge_list.emplace_back(p->s, p->o);
    }
    std::vector<sparql::FilterPtr> filters;
    query.pattern->CollectFilters(&filters);
    for (const auto& f : filters) {
      std::set<SymbolId> fvars;
      f->CollectVars(&fvars);
      if (fvars.size() == 2) {
        sparql::Term a, b;
        a.kind = sparql::Term::Kind::kVar;
        a.id = *fvars.begin();
        b.kind = sparql::Term::Kind::kVar;
        b.id = *std::next(fvars.begin());
        edge_list.emplace_back(a, b);
      }
    }
  }
  if (!include_constants) {
    std::vector<std::pair<sparql::Term, sparql::Term>> kept;
    for (const auto& [a, b] : edge_list) {
      if (a.ActsAsVar() && b.ActsAsVar()) kept.emplace_back(a, b);
    }
    edge_list = std::move(kept);
  }
  std::map<sparql::Term, uint32_t> index;
  for (const auto& [a, b] : edge_list) {
    if (a == b) continue;  // self-loops are not edges
    index.emplace(a, static_cast<uint32_t>(index.size()));
    index.emplace(b, static_cast<uint32_t>(index.size()));
  }
  // std::map::emplace with a stale size... rebuild indices densely.
  uint32_t next = 0;
  for (auto& [term, id] : index) {
    (void)term;
    id = next++;
  }
  graph::SimpleGraph g(index.size());
  for (const auto& [a, b] : edge_list) {
    if (a == b) continue;
    g.AddEdge(index[a], index[b]);
  }
  return g;
}

}  // namespace rwdt::hypergraph
