#ifndef RWDT_HYPERGRAPH_HYPERGRAPH_H_
#define RWDT_HYPERGRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "graph/treewidth.h"
#include "sparql/algebra.h"

namespace rwdt::hypergraph {

/// A hypergraph H = (V, E) with V = {0..num_vertices-1} and hyperedges as
/// sorted vertex sets (paper Section 9.5).
struct Hypergraph {
  size_t num_vertices = 0;
  std::vector<std::vector<uint32_t>> edges;

  void AddEdge(std::vector<uint32_t> edge);
};

/// The *triple hypergraph* of a CQ+F query: one hyperedge per triple
/// pattern holding its variables/blanks; the *canonical hypergraph* adds
/// one hyperedge per filter over the filter's variables (Section 9.5).
/// Variables are densely re-indexed; `var_of_vertex` maps back.
Hypergraph BuildCanonicalHypergraph(const sparql::Query& query,
                                    bool include_filters,
                                    std::vector<SymbolId>* var_of_vertex
                                    = nullptr);

/// GYO reduction: true iff the hypergraph is alpha-acyclic.
bool IsAcyclic(const Hypergraph& h);

/// Free-connex acyclicity (Bagan-Durand-Grandjean): the query is acyclic
/// AND the hypergraph extended with a hyperedge over the free (projected)
/// variables is acyclic. For SELECT * queries all variables are free.
bool IsFreeConnexAcyclic(const Hypergraph& h,
                         const std::vector<uint32_t>& free_vertices);

/// Decides (generalized) hypertree width <= k by recursive separator
/// search with memoization — the library's stand-in for det-k-decomp.
/// For the acyclic case this agrees with GYO (ghw = 1 iff acyclic);
/// queries in logs are small, so exact search is practical. Returns
/// nullopt when the search exceeds `max_states`.
std::optional<bool> HypertreeWidthAtMost(const Hypergraph& h, size_t k,
                                         size_t max_states = 1u << 20);

/// The undirected shape classes of Table 7, most specific first.
enum class GraphShape {
  kNoEdge,
  kSingleEdge,  // <= 1 edge
  kChain,
  kStar,
  kTree,
  kForest,
  kTreewidth2,
  kTreewidth3,
  kOther,
};

std::string GraphShapeName(GraphShape shape);

/// Classifies an undirected graph into its most specific shape class.
GraphShape ClassifyShape(const graph::SimpleGraph& g);

/// The *canonical graph* of a graph-CQ+F query (Section 9.5): one node
/// per subject/object term, an edge per triple pattern, plus an edge per
/// binary filter; with `include_constants` false, nodes for IRIs/literals
/// and their incident edges are removed.
graph::SimpleGraph BuildCanonicalGraph(const sparql::Query& query,
                                       bool include_constants);

}  // namespace rwdt::hypergraph

#endif  // RWDT_HYPERGRAPH_HYPERGRAPH_H_
