#ifndef RWDT_SPARQL_ANALYSIS_H_
#define RWDT_SPARQL_ANALYSIS_H_

#include <set>
#include <string>
#include <vector>

#include "sparql/algebra.h"

namespace rwdt::sparql {

/// Per-query feature flags, the row dimensions of the paper's Table 3.
enum class Feature {
  kDistinct,
  kLimit,
  kOffset,
  kOrderBy,
  kFilter,
  kAnd,
  kOptional,
  kUnion,
  kGraph,
  kValues,
  kNotExists,
  kMinus,
  kExists,
  kGroupBy,
  kCount,
  kHaving,
  kAvg,
  kMin,
  kMax,
  kSum,
  kService,
  kPropertyPaths,
  kBind,
  kSubquery,
};

std::string FeatureName(Feature f);

/// All Table 3 features, in the paper's row order.
const std::vector<Feature>& AllFeatures();

/// Extracts the set of features a query uses.
std::set<Feature> ExtractFeatures(const Query& q);

/// Pattern-operator sets for Tables 4 and 5: which of And / Filter /
/// property-path (2RPQ) / "other" operators the pattern uses.
struct OperatorSet {
  bool uses_and = false;
  bool uses_filter = false;
  bool uses_path = false;   // 2RPQ
  bool uses_other = false;  // Union/Optional/Graph/Values/...: leaves
                            // the CQ+F / C2RPQ+F fragments

  /// CQ per Section 9.4: the pattern only uses And (or nothing).
  bool IsCq() const { return !uses_filter && !uses_path && !uses_other; }
  /// CQ+F: only And and Filter.
  bool IsCqF() const { return !uses_path && !uses_other; }
  /// C2RPQ+F: only And, Filter, and property paths.
  bool IsC2RpqF() const { return !uses_other; }
};

OperatorSet ExtractOperatorSet(const Query& q);

/// Well-designedness (Perez et al., Section 9.1): the query may use only
/// And, Filter, and Optional, and for every OPTIONAL subpattern
/// (P1 OPT P2), every variable of P2 that occurs elsewhere in the query
/// outside the subpattern also occurs in P1. Returns false when the
/// query uses other operators (callers should first check
/// UsesOnlyAndFilterOptional).
bool UsesOnlyAndFilterOptional(const Query& q);
bool IsWellDesigned(const Query& q);

/// CQ+F queries "suitable for graph analysis" (Section 9.5): every
/// triple pattern's predicate is an IRI or a variable not shared with
/// other triple positions, and all filters are simple (<= 2 variables).
bool IsGraphCqF(const Query& q);

/// Safe filters only (unary or ?x = ?y), keeping the query conjunctive.
bool HasOnlySafeFilters(const Query& q);
bool HasOnlySimpleFilters(const Query& q);

}  // namespace rwdt::sparql

#endif  // RWDT_SPARQL_ANALYSIS_H_
