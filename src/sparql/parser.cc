#include "sparql/parser.h"

#include <algorithm>
#include <cctype>

namespace rwdt::sparql {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '.' || c == '-' || c == '#';
}

/// Characters that turn a predicate expression into a property path.
bool IsPathOperatorChar(char c) {
  return c == '/' || c == '|' || c == '^' || c == '*' || c == '+' ||
         c == '?' || c == '!' || c == '(';
}

/// Templated over the dictionary type: the engine's hot path parses into
/// a reusable arena-backed FlatInterner (allocation-free steady state),
/// everything else keeps Interner. Both instantiations are emitted via
/// the ParseSparql overloads at the bottom of this file and produce
/// identical ASTs (the two dictionaries share the SymbolId contract).
template <class Dict>
class SparqlParser {
 public:
  /// `steps` is the shared step budget, decremented across subquery
  /// parsers so nesting cannot multiply the budget.
  SparqlParser(std::string_view input, Dict* dict,
               const ParseLimits& limits, size_t* steps)
      : input_(input), dict_(dict), limits_(limits), steps_(steps) {}

  Result<Query> Parse() {
    if (input_.size() > limits_.max_query_bytes) {
      return Status::ResourceExhausted(
          "query of " + std::to_string(input_.size()) +
          " bytes exceeds max_query_bytes=" +
          std::to_string(limits_.max_query_bytes));
    }
    Query query;
    if (!SkipHeaders()) return Error("bad PREFIX/BASE header");

    if (LitWord("SELECT")) {
      query.form = QueryForm::kSelect;
      RWDT_RETURN_IF_ERROR(ParseSelectClause(&query));
      LitWord("WHERE");
      RWDT_ASSIGN_OR_RETURN(query.pattern, ParseGroupGraphPattern());
    } else if (LitWord("ASK")) {
      query.form = QueryForm::kAsk;
      LitWord("WHERE");
      RWDT_ASSIGN_OR_RETURN(query.pattern, ParseGroupGraphPattern());
    } else if (LitWord("CONSTRUCT")) {
      query.form = QueryForm::kConstruct;
      RWDT_RETURN_IF_ERROR(ParseConstructTemplate(&query));
      LitWord("WHERE");
      RWDT_ASSIGN_OR_RETURN(query.pattern, ParseGroupGraphPattern());
    } else if (LitWord("DESCRIBE")) {
      query.form = QueryForm::kDescribe;
      // DESCRIBE terms, optional WHERE pattern.
      for (;;) {
        SkipSpace();
        if (pos_ >= input_.size() || Peek() == '{') break;
        const size_t mark = pos_;
        auto t = ParseTerm();
        if (!t.ok()) {
          if (t.status().code() == Code::kResourceExhausted) {
            return t.status();
          }
          pos_ = mark;
          break;
        }
        query.describe_terms.push_back(t.value());
        if (LitWord("WHERE") || Peek() == '{') break;
      }
      if (LitWord("WHERE") || Peek() == '{') {
        RWDT_ASSIGN_OR_RETURN(query.pattern, ParseGroupGraphPattern());
      }
    } else {
      return Error("expected SELECT/ASK/CONSTRUCT/DESCRIBE");
    }

    RWDT_RETURN_IF_ERROR(ParseSolutionModifiers(&query.modifiers));
    SkipSpace();
    if (pos_ != input_.size()) {
      return Error("trailing characters");
    }
    return query;
  }

 private:
  Status Error(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  /// Token-level breakage (bad characters, unterminated tokens) — a
  /// distinct taxonomy class from grammar-level parse errors.
  Status LexErr(const std::string& what) {
    return Status::LexError(what + " at offset " + std::to_string(pos_));
  }

  /// Consumes one unit of the shared step budget (~one token/AST node).
  Status ConsumeStep() {
    if (*steps_ == 0) {
      return Status::ResourceExhausted(
          "query exceeds max_parser_steps=" +
          std::to_string(limits_.max_parser_steps));
    }
    --*steps_;
    return Status::Ok();
  }

  void SkipSpace() {
    for (;;) {
      while (pos_ < input_.size() &&
             std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      if (pos_ < input_.size() && input_[pos_] == '#') {
        // Line comment.
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  char Peek() {
    SkipSpace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }

  bool Lit(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Case-insensitive keyword match (not followed by a name character).
  bool LitWord(std::string_view word) {
    SkipSpace();
    if (pos_ + word.size() > input_.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(input_[pos_ + i])) !=
          std::toupper(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    const size_t after = pos_ + word.size();
    if (after < input_.size() && IsNameChar(input_[after]) &&
        input_[after] != ':') {
      return false;
    }
    pos_ = after;
    return true;
  }

  bool SkipHeaders() {
    for (;;) {
      if (LitWord("PREFIX")) {
        // prefix name ':' '<iri>'
        SkipSpace();
        while (pos_ < input_.size() && input_[pos_] != '<') ++pos_;
        if (!Lit('<')) return false;
        while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
        if (pos_ >= input_.size()) return false;
        ++pos_;
        continue;
      }
      if (LitWord("BASE")) {
        SkipSpace();
        if (!Lit('<')) return false;
        while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
        if (pos_ >= input_.size()) return false;
        ++pos_;
        continue;
      }
      return true;
    }
  }

  Status ParseSelectClause(Query* query) {
    if (LitWord("DISTINCT")) query->modifiers.distinct = true;
    if (LitWord("REDUCED")) query->modifiers.reduced = true;
    if (Lit('*')) {
      query->select_star = true;
      return Status::Ok();
    }
    for (;;) {
      SkipSpace();
      const char c = Peek();
      if (c == '?' || c == '$') {
        SelectItem item;
        RWDT_ASSIGN_OR_RETURN(item.var, ParseTerm());
        query->projection.push_back(item);
        continue;
      }
      if (c == '(') {
        ++pos_;
        RWDT_ASSIGN_OR_RETURN(SelectItem item, ParseAggregateItem());
        if (!Lit(')')) return Error("expected ')' in select item");
        query->projection.push_back(item);
        continue;
      }
      break;
    }
    if (query->projection.empty()) {
      return Error("SELECT needs projection or *");
    }
    return Status::Ok();
  }

  Result<SelectItem> ParseAggregateItem() {
    SelectItem item;
    static const std::pair<const char*, Aggregate> kAggs[] = {
        {"COUNT", Aggregate::kCount}, {"SUM", Aggregate::kSum},
        {"AVG", Aggregate::kAvg},     {"MIN", Aggregate::kMin},
        {"MAX", Aggregate::kMax},
    };
    bool found = false;
    for (const auto& [name, agg] : kAggs) {
      if (LitWord(name)) {
        item.aggregate = agg;
        found = true;
        break;
      }
    }
    if (!found) return Error("expected aggregate function");
    if (!Lit('(')) return Error("expected '(' after aggregate");
    LitWord("DISTINCT");
    if (Lit('*')) {
      item.aggregate_arg = Term{};  // COUNT(*)
    } else {
      RWDT_ASSIGN_OR_RETURN(item.aggregate_arg, ParseTerm());
    }
    if (!Lit(')')) return Error("expected ')' after aggregate arg");
    if (!LitWord("AS")) return Error("expected AS");
    RWDT_ASSIGN_OR_RETURN(item.var, ParseTerm());
    return item;
  }

  Status ParseConstructTemplate(Query* query) {
    if (!Lit('{')) return Error("expected '{' after CONSTRUCT");
    while (Peek() != '}') {
      RWDT_ASSIGN_OR_RETURN(Term s, ParseTerm());
      RWDT_ASSIGN_OR_RETURN(Term p, ParseTerm());
      RWDT_ASSIGN_OR_RETURN(Term o, ParseTerm());
      query->construct_template.push_back({s, p, o});
      Lit('.');
      if (Peek() == '\0') return Error("unterminated CONSTRUCT template");
    }
    ++pos_;  // '}'
    return Status::Ok();
  }

  // --- Terms ---------------------------------------------------------

  Result<Term> ParseTerm() {
    RWDT_RETURN_IF_ERROR(ConsumeStep());
    SkipSpace();
    if (pos_ >= input_.size()) return Error("expected term");
    const char c = input_[pos_];
    Term term;
    if (c == '?' || c == '$') {
      ++pos_;
      std::string name = "?";
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        name += input_[pos_++];
      }
      if (name.size() == 1) return LexErr("empty variable name");
      term.kind = Term::Kind::kVar;
      term.id = dict_->Intern(name);
      return term;
    }
    if (c == '<') {
      const size_t end = input_.find('>', pos_);
      if (end == std::string_view::npos) return LexErr("unterminated IRI");
      term.kind = Term::Kind::kIri;
      term.id = dict_->Intern(input_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end + 1;
      return term;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos_;
      std::string text;
      while (pos_ < input_.size() && input_[pos_] != quote) {
        if (input_[pos_] == '\\' && pos_ + 1 < input_.size()) ++pos_;
        text += input_[pos_++];
      }
      if (pos_ >= input_.size()) return LexErr("unterminated literal");
      ++pos_;
      // Language tag / datatype.
      if (pos_ < input_.size() && input_[pos_] == '@') {
        ++pos_;
        text += "@";
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '-')) {
          text += input_[pos_++];
        }
      } else if (input_.substr(pos_, 2) == "^^") {
        pos_ += 2;
        RWDT_ASSIGN_OR_RETURN(const Term type, ParseTerm());
        text += "^^";
        text += dict_->Name(type.id);
      }
      term.kind = Term::Kind::kLiteral;
      term.id = dict_->Intern("\"" + text + "\"");
      return term;
    }
    if (c == '_' && pos_ + 1 < input_.size() && input_[pos_ + 1] == ':') {
      pos_ += 2;
      std::string name = "_:";
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        name += input_[pos_++];
      }
      term.kind = Term::Kind::kBlank;
      term.id = dict_->Intern(name);
      return term;
    }
    if (c == '[') {
      ++pos_;
      SkipSpace();
      if (pos_ < input_.size() && input_[pos_] == ']') {
        ++pos_;
        term.kind = Term::Kind::kBlank;
        term.id = dict_->Intern("_:anon" + std::to_string(blank_counter_++));
        return term;
      }
      return Status::Unsupported(
          "non-empty blank node property lists are unsupported at offset " +
          std::to_string(pos_));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      std::string num;
      num += input_[pos_++];
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.' || input_[pos_] == 'e' ||
              input_[pos_] == 'E')) {
        num += input_[pos_++];
      }
      term.kind = Term::Kind::kLiteral;
      term.id = dict_->Intern("\"" + num + "\"");
      return term;
    }
    if (LitWord("true") || LitWord("false")) {
      term.kind = Term::Kind::kLiteral;
      term.id = dict_->Intern(
          std::string("\"") +
          (input_[pos_ - 1] == 'e' && input_[pos_ - 2] == 'u' ? "true"
                                                              : "false") +
          "\"");
      return term;
    }
    // Prefixed or bare name (IRI). The bare keyword 'a' is rdf:type.
    if (IsNameChar(c)) {
      std::string name;
      while (pos_ < input_.size() && IsNameChar(input_[pos_])) {
        name += input_[pos_++];
      }
      if (name == "a") name = "rdf:type";
      term.kind = Term::Kind::kIri;
      term.id = dict_->Intern(name);
      return term;
    }
    return LexErr(std::string("unexpected character '") + c + "'");
  }

  // --- Patterns ------------------------------------------------------

  Result<PatternPtr> ParseGroupGraphPattern() {
    if (!Lit('{')) return Error("expected '{'");
    std::vector<PatternPtr> conjuncts;
    std::vector<FilterPtr> filters;

    auto current = [&]() -> PatternPtr {
      if (conjuncts.empty()) {
        // Empty pattern: a unit VALUES with one empty row.
        auto unit = std::make_shared<Pattern>();
        unit->op = Pattern::Op::kValues;
        unit->values_rows.push_back({});
        return unit;
      }
      if (conjuncts.size() == 1) return conjuncts[0];
      auto node = std::make_shared<Pattern>();
      node->op = Pattern::Op::kAnd;
      node->children = conjuncts;
      return node;
    };

    while (Peek() != '}') {
      if (Peek() == '\0') return Error("unterminated group pattern");
      RWDT_RETURN_IF_ERROR(ConsumeStep());

      if (LitWord("FILTER")) {
        RWDT_ASSIGN_OR_RETURN(FilterPtr f, ParseConstraint());
        filters.push_back(std::move(f));
        Lit('.');
        continue;
      }
      if (LitWord("OPTIONAL")) {
        RWDT_ASSIGN_OR_RETURN(PatternPtr rhs, ParseGroupGraphPattern());
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kOptional;
        node->children = {current(), std::move(rhs)};
        conjuncts = {node};
        Lit('.');
        continue;
      }
      if (LitWord("MINUS")) {
        RWDT_ASSIGN_OR_RETURN(PatternPtr rhs, ParseGroupGraphPattern());
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kMinus;
        node->children = {current(), std::move(rhs)};
        conjuncts = {node};
        Lit('.');
        continue;
      }
      if (LitWord("GRAPH")) {
        RWDT_ASSIGN_OR_RETURN(Term name, ParseTerm());
        RWDT_ASSIGN_OR_RETURN(PatternPtr inner, ParseGroupGraphPattern());
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kGraph;
        node->graph_name = name;
        node->children = {std::move(inner)};
        conjuncts.push_back(node);
        Lit('.');
        continue;
      }
      if (LitWord("SERVICE")) {
        LitWord("SILENT");
        RWDT_ASSIGN_OR_RETURN(Term name, ParseTerm());
        RWDT_ASSIGN_OR_RETURN(PatternPtr inner, ParseGroupGraphPattern());
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kService;
        node->graph_name = name;
        node->children = {std::move(inner)};
        conjuncts.push_back(node);
        Lit('.');
        continue;
      }
      if (LitWord("BIND")) {
        if (!Lit('(')) return Error("expected '(' after BIND");
        RWDT_ASSIGN_OR_RETURN(Term src, ParseBindSource());
        if (!LitWord("AS")) return Error("expected AS in BIND");
        RWDT_ASSIGN_OR_RETURN(Term var, ParseTerm());
        if (!Lit(')')) return Error("expected ')' after BIND");
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kBind;
        node->bind_source = src;
        node->bind_var = var;
        node->children = {current()};
        conjuncts = {node};
        Lit('.');
        continue;
      }
      if (LitWord("VALUES")) {
        RWDT_ASSIGN_OR_RETURN(PatternPtr v, ParseValues());
        conjuncts.push_back(std::move(v));
        Lit('.');
        continue;
      }
      if (Peek() == '{') {
        // Subselect or group-or-union.
        const size_t mark = pos_;
        ++pos_;
        if (LitWord("SELECT")) {
          pos_ = mark;
          RWDT_ASSIGN_OR_RETURN(PatternPtr sub, ParseSubSelect());
          conjuncts.push_back(std::move(sub));
          Lit('.');
          continue;
        }
        pos_ = mark;
        RWDT_ASSIGN_OR_RETURN(PatternPtr acc, ParseGroupGraphPattern());
        while (LitWord("UNION")) {
          RWDT_ASSIGN_OR_RETURN(PatternPtr next, ParseGroupGraphPattern());
          auto node = std::make_shared<Pattern>();
          node->op = Pattern::Op::kUnion;
          node->children = {acc, std::move(next)};
          acc = node;
        }
        conjuncts.push_back(acc);
        Lit('.');
        continue;
      }
      // Triples block entry.
      RWDT_ASSIGN_OR_RETURN(auto triples, ParseTriplesSameSubject());
      for (auto& t : triples) conjuncts.push_back(std::move(t));
      if (!Lit('.')) {
        // A triple block must be followed by '.' or '}' or a keyword.
        SkipSpace();
      }
    }
    ++pos_;  // '}'

    PatternPtr result = current();
    for (const auto& f : filters) {
      auto node = std::make_shared<Pattern>();
      node->op = Pattern::Op::kFilter;
      node->children = {result};
      node->filter = f;
      result = node;
    }
    return result;
  }

  Result<PatternPtr> ParseSubSelect() {
    if (!Lit('{')) return Error("expected '{'");
    // Re-parse a full query from here until the matching '}'.
    // Find the matching close brace.
    size_t depth = 1;
    size_t end = pos_;
    while (end < input_.size() && depth > 0) {
      if (input_[end] == '{') ++depth;
      if (input_[end] == '}') --depth;
      ++end;
    }
    if (depth != 0) return Error("unterminated subquery");
    const std::string_view body = input_.substr(pos_, end - 1 - pos_);
    // The subparser draws from the same step budget, so nesting cannot
    // multiply the resource guard.
    SparqlParser sub(body, dict_, limits_, steps_);
    RWDT_ASSIGN_OR_RETURN(Query q, sub.Parse());
    pos_ = end;
    auto node = std::make_shared<Pattern>();
    node->op = Pattern::Op::kSubquery;
    node->subquery = std::make_shared<Query>(std::move(q));
    return node;
  }

  Result<PatternPtr> ParseValues() {
    auto node = std::make_shared<Pattern>();
    node->op = Pattern::Op::kValues;
    if (Lit('(')) {
      while (Peek() != ')') {
        RWDT_ASSIGN_OR_RETURN(Term v, ParseTerm());
        node->values_vars.push_back(v);
      }
      ++pos_;
      if (!Lit('{')) return Error("expected '{' in VALUES");
      while (Peek() != '}') {
        if (!Lit('(')) return Error("expected '(' in VALUES row");
        std::vector<Term> row;
        while (Peek() != ')') {
          if (LitWord("UNDEF")) {
            row.push_back(Term{});
            continue;
          }
          RWDT_ASSIGN_OR_RETURN(Term v, ParseTerm());
          row.push_back(v);
        }
        ++pos_;
        node->values_rows.push_back(std::move(row));
      }
      ++pos_;
    } else {
      RWDT_ASSIGN_OR_RETURN(Term var, ParseTerm());
      node->values_vars.push_back(var);
      if (!Lit('{')) return Error("expected '{' in VALUES");
      while (Peek() != '}') {
        if (LitWord("UNDEF")) {
          node->values_rows.push_back({Term{}});
          continue;
        }
        RWDT_ASSIGN_OR_RETURN(Term v, ParseTerm());
        node->values_rows.push_back({v});
      }
      ++pos_;
    }
    return node;
  }

  Result<Term> ParseBindSource() {
    // Either a term or a function call whose first term argument we keep.
    SkipSpace();
    const size_t mark = pos_;
    auto t = ParseTerm();
    if (t.ok()) {
      SkipSpace();
      if (pos_ < input_.size() && input_[pos_] == '(') {
        // It was a function name; scan its arguments for a term.
        pos_ = mark;
        return ParseCallFirstArg();
      }
      return t;
    }
    pos_ = mark;
    return ParseCallFirstArg();
  }

  Result<Term> ParseCallFirstArg() {
    // name '(' args ')': return the first variable inside, or a none term.
    while (pos_ < input_.size() && input_[pos_] != '(') ++pos_;
    if (pos_ >= input_.size()) return Error("expected function call");
    size_t depth = 0;
    Term found;
    do {
      if (input_[pos_] == '(') ++depth;
      if (input_[pos_] == ')') --depth;
      if (input_[pos_] == '?' || input_[pos_] == '$') {
        if (found.kind == Term::Kind::kNone) {
          auto v = ParseTerm();
          if (v.ok()) found = v.value();
          continue;
        }
      }
      ++pos_;
    } while (pos_ < input_.size() && depth > 0);
    return found;
  }

  /// Parses "subject predicateObjectList" with ';' and ',' sugar.
  Result<std::vector<PatternPtr>> ParseTriplesSameSubject() {
    RWDT_ASSIGN_OR_RETURN(Term subject, ParseTerm());
    std::vector<PatternPtr> out;
    for (;;) {
      // Verb: variable or property path (a bare IRI is a trivial path).
      RWDT_ASSIGN_OR_RETURN(auto verb, ParseVerb());
      for (;;) {
        RWDT_ASSIGN_OR_RETURN(Term object, ParseTerm());
        auto node = std::make_shared<Pattern>();
        if (verb.first.kind != Term::Kind::kNone) {
          node->op = Pattern::Op::kTriple;
          node->triple = {subject, verb.first, object};
        } else {
          node->op = Pattern::Op::kPath;
          node->path = {subject, verb.second, object};
        }
        out.push_back(std::move(node));
        if (!Lit(',')) break;
      }
      if (!Lit(';')) break;
      SkipSpace();
      if (Peek() == '.' || Peek() == '}') break;  // dangling ';'
    }
    return out;
  }

  /// Returns (term, null) for plain predicates (IRI or variable), or
  /// (none, path) for property paths.
  Result<std::pair<Term, paths::PathPtr>> ParseVerb() {
    SkipSpace();
    const char c = Peek();
    if (c == '?' || c == '$') {
      RWDT_ASSIGN_OR_RETURN(Term v, ParseTerm());
      return std::make_pair(v, paths::PathPtr());
    }
    // Scan ahead to the end of the verb token sequence to decide whether
    // it is a path: collect until whitespace that precedes a term, being
    // careful with parentheses.
    const size_t start = pos_;
    size_t end = pos_;
    size_t depth = 0;
    bool is_path = (c == '^' || c == '!' || c == '(');
    while (end < input_.size()) {
      const char ch = input_[end];
      if (ch == '(') {
        ++depth;
        is_path = true;
      } else if (ch == ')') {
        if (depth == 0) break;
        --depth;
      } else if (ch == '<') {
        const size_t close = input_.find('>', end);
        if (close == std::string_view::npos) break;
        end = close;
      } else if (depth == 0 &&
                 (std::isspace(static_cast<unsigned char>(ch)))) {
        break;
      } else if (IsPathOperatorChar(ch)) {
        is_path = true;
      } else if (!IsNameChar(ch) && ch != '^' && ch != '!') {
        break;
      }
      ++end;
    }
    const std::string_view verb_text = input_.substr(start, end - start);
    if (!is_path) {
      RWDT_ASSIGN_OR_RETURN(Term t, ParseTerm());
      return std::make_pair(t, paths::PathPtr());
    }
    RWDT_ASSIGN_OR_RETURN(paths::PathPtr path,
                          paths::ParsePath(verb_text, dict_));
    pos_ = end;
    // Trivial one-IRI paths degrade to plain triple patterns.
    if (path->op() == paths::PathOp::kIri) {
      Term t;
      t.kind = Term::Kind::kIri;
      t.id = path->iri();
      return std::make_pair(t, paths::PathPtr());
    }
    return std::make_pair(Term{}, path);
  }

  // --- Filter constraints ---------------------------------------------

  Result<FilterPtr> ParseConstraint() { return ParseOrExpr(); }

  Result<FilterPtr> ParseOrExpr() {
    RWDT_ASSIGN_OR_RETURN(FilterPtr first, ParseAndExpr());
    std::vector<FilterPtr> parts = {std::move(first)};
    while (Lit('|')) {
      if (!Lit('|')) return Error("expected '||'");
      RWDT_ASSIGN_OR_RETURN(FilterPtr next, ParseAndExpr());
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return parts[0];
    auto node = std::make_shared<FilterExpr>();
    node->kind = FilterExpr::Kind::kOr;
    node->children = std::move(parts);
    return FilterPtr(node);
  }

  Result<FilterPtr> ParseAndExpr() {
    RWDT_ASSIGN_OR_RETURN(FilterPtr first, ParseUnaryExpr());
    std::vector<FilterPtr> parts = {std::move(first)};
    while (Lit('&')) {
      if (!Lit('&')) return Error("expected '&&'");
      RWDT_ASSIGN_OR_RETURN(FilterPtr next, ParseUnaryExpr());
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return parts[0];
    auto node = std::make_shared<FilterExpr>();
    node->kind = FilterExpr::Kind::kAnd;
    node->children = std::move(parts);
    return FilterPtr(node);
  }

  Result<FilterPtr> ParseUnaryExpr() {
    RWDT_RETURN_IF_ERROR(ConsumeStep());
    SkipSpace();
    if (Lit('!')) {
      if (Peek() == '=') return Error("unexpected '!='");
      RWDT_ASSIGN_OR_RETURN(FilterPtr inner, ParseUnaryExpr());
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kNot;
      node->children = {std::move(inner)};
      return FilterPtr(node);
    }
    if (LitWord("NOT")) {
      if (!LitWord("EXISTS")) return Error("expected EXISTS after NOT");
      RWDT_ASSIGN_OR_RETURN(PatternPtr p, ParseGroupGraphPattern());
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kNotExistsPattern;
      node->pattern = std::move(p);
      return FilterPtr(node);
    }
    if (LitWord("EXISTS")) {
      RWDT_ASSIGN_OR_RETURN(PatternPtr p, ParseGroupGraphPattern());
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kExistsPattern;
      node->pattern = std::move(p);
      return FilterPtr(node);
    }
    if (Peek() == '(') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(FilterPtr inner, ParseOrExpr());
      if (!Lit(')')) return Error("expected ')'");
      return MaybeComparison(std::move(inner));
    }
    return ParsePrimaryConstraint();
  }

  /// A parenthesized expression may still be the lhs of a comparison in
  /// real queries; treat "(expr) op term" as the inner expression (the
  /// classifications only need variable sets).
  Result<FilterPtr> MaybeComparison(FilterPtr inner) { return inner; }

  Result<FilterPtr> ParsePrimaryConstraint() {
    SkipSpace();
    // Function call or term, optionally compared to another.
    Term first_term;
    std::string function;
    if (Peek() == '?' || Peek() == '$' || Peek() == '"' || Peek() == '<' ||
        std::isdigit(static_cast<unsigned char>(Peek()))) {
      RWDT_ASSIGN_OR_RETURN(first_term, ParseTerm());
    } else {
      // Function name.
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        function += input_[pos_++];
      }
      if (function.empty()) return Error("expected filter expression");
      if (!Lit('(')) return Error("expected '(' after " + function);
      // First term argument (if any), then skip to matching ')'.
      size_t depth = 1;
      while (pos_ < input_.size() && depth > 0) {
        const char ch = input_[pos_];
        if (ch == '(') {
          ++depth;
          ++pos_;
        } else if (ch == ')') {
          --depth;
          ++pos_;
        } else if ((ch == '?' || ch == '$') &&
                   first_term.kind == Term::Kind::kNone) {
          RWDT_ASSIGN_OR_RETURN(first_term, ParseTerm());
        } else {
          ++pos_;
        }
      }
    }
    // Comparison operator?
    SkipSpace();
    FilterExpr::CmpOp op;
    bool has_cmp = true;
    if (input_.substr(pos_, 2) == "!=") {
      op = FilterExpr::CmpOp::kNe;
      pos_ += 2;
    } else if (input_.substr(pos_, 2) == "<=") {
      op = FilterExpr::CmpOp::kLe;
      pos_ += 2;
    } else if (input_.substr(pos_, 2) == ">=") {
      op = FilterExpr::CmpOp::kGe;
      pos_ += 2;
    } else if (Peek() == '=') {
      op = FilterExpr::CmpOp::kEq;
      ++pos_;
    } else if (Peek() == '<') {
      op = FilterExpr::CmpOp::kLt;
      ++pos_;
    } else if (Peek() == '>') {
      op = FilterExpr::CmpOp::kGt;
      ++pos_;
    } else {
      has_cmp = false;
    }
    auto node = std::make_shared<FilterExpr>();
    if (!has_cmp) {
      node->kind = FilterExpr::Kind::kUnaryTest;
      node->operand = first_term;
      node->function = function.empty() ? "test" : function;
      return FilterPtr(node);
    }
    // Right-hand side: term or function-wrapped term.
    Term rhs_term;
    SkipSpace();
    if (std::isalpha(static_cast<unsigned char>(Peek())) &&
        input_.substr(pos_).find('(') != std::string_view::npos &&
        Peek() != '?') {
      const size_t mark = pos_;
      auto t = ParseTerm();
      SkipSpace();
      if (t.ok() && pos_ < input_.size() && input_[pos_] == '(') {
        pos_ = mark;
        RWDT_ASSIGN_OR_RETURN(rhs_term, ParseCallFirstArg());
      } else if (t.ok()) {
        rhs_term = t.value();
      } else {
        return t.status();
      }
    } else {
      RWDT_ASSIGN_OR_RETURN(rhs_term, ParseTerm());
    }
    if (!function.empty()) {
      // fn(?x) = literal: model as a unary test on ?x when the rhs is a
      // constant; otherwise a comparison between the two variables.
      if (rhs_term.kind != Term::Kind::kVar) {
        node->kind = FilterExpr::Kind::kUnaryTest;
        node->operand = first_term;
        node->function = function;
        node->argument = rhs_term.id == kInvalidSymbol
                             ? std::string()
                             : std::string(dict_->Name(rhs_term.id));
        return FilterPtr(node);
      }
    }
    node->kind = FilterExpr::Kind::kComparison;
    node->cmp = op;
    node->lhs = first_term;
    node->rhs = rhs_term;
    return FilterPtr(node);
  }

  // --- Solution modifiers ----------------------------------------------

  Status ParseSolutionModifiers(SolutionModifiers* mods) {
    for (;;) {
      if (LitWord("GROUP")) {
        if (!LitWord("BY")) return Error("expected BY after GROUP");
        for (;;) {
          SkipSpace();
          if (Peek() != '?' && Peek() != '$') break;
          RWDT_ASSIGN_OR_RETURN(Term v, ParseTerm());
          mods->group_by.push_back(v);
        }
        continue;
      }
      if (LitWord("HAVING")) {
        RWDT_ASSIGN_OR_RETURN(mods->having, ParseConstraint());
        continue;
      }
      if (LitWord("ORDER")) {
        if (!LitWord("BY")) return Error("expected BY after ORDER");
        for (;;) {
          SkipSpace();
          bool desc = false;
          if (LitWord("DESC")) {
            desc = true;
            if (!Lit('(')) return Error("expected '(' after DESC");
          } else if (LitWord("ASC")) {
            if (!Lit('(')) return Error("expected '(' after ASC");
          } else if (Peek() == '?' || Peek() == '$') {
            RWDT_ASSIGN_OR_RETURN(Term v, ParseTerm());
            mods->order_by.push_back(v);
            mods->order_desc.push_back(false);
            continue;
          } else {
            break;
          }
          RWDT_ASSIGN_OR_RETURN(Term v, ParseTerm());
          if (!Lit(')')) return Error("expected ')'");
          mods->order_by.push_back(v);
          mods->order_desc.push_back(desc);
        }
        continue;
      }
      if (LitWord("LIMIT")) {
        RWDT_ASSIGN_OR_RETURN(mods->limit, ParseNumber());
        continue;
      }
      if (LitWord("OFFSET")) {
        RWDT_ASSIGN_OR_RETURN(mods->offset, ParseNumber());
        continue;
      }
      return Status::Ok();
    }
  }

  Result<uint64_t> ParseNumber() {
    SkipSpace();
    uint64_t n = 0;
    bool any = false;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      n = n * 10 + static_cast<uint64_t>(input_[pos_] - '0');
      ++pos_;
      any = true;
    }
    if (!any) return Error("expected number");
    return n;
  }

  std::string_view input_;
  Dict* dict_;
  ParseLimits limits_;
  size_t* steps_;  // shared budget, owned by the root ParseSparql call
  size_t pos_ = 0;
  size_t blank_counter_ = 0;
};

}  // namespace

Status ParseLimits::Validate() const {
  if (max_query_bytes == 0) {
    return Status::InvalidArgument("ParseLimits: max_query_bytes must be > 0");
  }
  if (max_parser_steps == 0) {
    return Status::InvalidArgument(
        "ParseLimits: max_parser_steps must be > 0");
  }
  return Status::Ok();
}

Result<Query> ParseSparql(std::string_view input, Interner* dict) {
  return ParseSparql(input, dict, ParseLimits{});
}

Result<Query> ParseSparql(std::string_view input, FlatInterner* dict) {
  return ParseSparql(input, dict, ParseLimits{});
}

Result<Query> ParseSparql(std::string_view input, Interner* dict,
                          const ParseLimits& limits) {
  size_t steps = limits.max_parser_steps;
  return SparqlParser<Interner>(input, dict, limits, &steps).Parse();
}

Result<Query> ParseSparql(std::string_view input, FlatInterner* dict,
                          const ParseLimits& limits) {
  size_t steps = limits.max_parser_steps;
  return SparqlParser<FlatInterner>(input, dict, limits, &steps).Parse();
}

}  // namespace rwdt::sparql
