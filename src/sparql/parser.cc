#include "sparql/parser.h"

#include <algorithm>
#include <cctype>

namespace rwdt::sparql {
namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '.' || c == '-' || c == '#';
}

/// Characters that turn a predicate expression into a property path.
bool IsPathOperatorChar(char c) {
  return c == '/' || c == '|' || c == '^' || c == '*' || c == '+' ||
         c == '?' || c == '!' || c == '(';
}

class SparqlParser {
 public:
  SparqlParser(std::string_view input, Interner* dict)
      : input_(input), dict_(dict) {}

  Result<Query> Parse() {
    Query query;
    if (!SkipHeaders()) return Error("bad PREFIX/BASE header");

    if (LitWord("SELECT")) {
      query.form = QueryForm::kSelect;
      if (auto s = ParseSelectClause(&query); !s.ok()) return s;
      LitWord("WHERE");
      auto p = ParseGroupGraphPattern();
      if (!p.ok()) return p.status();
      query.pattern = std::move(p).value();
    } else if (LitWord("ASK")) {
      query.form = QueryForm::kAsk;
      LitWord("WHERE");
      auto p = ParseGroupGraphPattern();
      if (!p.ok()) return p.status();
      query.pattern = std::move(p).value();
    } else if (LitWord("CONSTRUCT")) {
      query.form = QueryForm::kConstruct;
      if (auto s = ParseConstructTemplate(&query); !s.ok()) return s;
      LitWord("WHERE");
      auto p = ParseGroupGraphPattern();
      if (!p.ok()) return p.status();
      query.pattern = std::move(p).value();
    } else if (LitWord("DESCRIBE")) {
      query.form = QueryForm::kDescribe;
      // DESCRIBE terms, optional WHERE pattern.
      for (;;) {
        SkipSpace();
        if (pos_ >= input_.size() || Peek() == '{') break;
        const size_t mark = pos_;
        auto t = ParseTerm();
        if (!t.ok()) {
          pos_ = mark;
          break;
        }
        query.describe_terms.push_back(t.value());
        if (LitWord("WHERE") || Peek() == '{') break;
      }
      if (LitWord("WHERE") || Peek() == '{') {
        auto p = ParseGroupGraphPattern();
        if (!p.ok()) return p.status();
        query.pattern = std::move(p).value();
      }
    } else {
      return Error("expected SELECT/ASK/CONSTRUCT/DESCRIBE");
    }

    if (auto s = ParseSolutionModifiers(&query.modifiers); !s.ok()) {
      return s;
    }
    SkipSpace();
    if (pos_ != input_.size()) {
      return Error("trailing characters");
    }
    return query;
  }

 private:
  Status Error(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  void SkipSpace() {
    for (;;) {
      while (pos_ < input_.size() &&
             std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      if (pos_ < input_.size() && input_[pos_] == '#') {
        // Line comment.
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  char Peek() {
    SkipSpace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }

  bool Lit(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Case-insensitive keyword match (not followed by a name character).
  bool LitWord(std::string_view word) {
    SkipSpace();
    if (pos_ + word.size() > input_.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(input_[pos_ + i])) !=
          std::toupper(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    const size_t after = pos_ + word.size();
    if (after < input_.size() && IsNameChar(input_[after]) &&
        input_[after] != ':') {
      return false;
    }
    pos_ = after;
    return true;
  }

  bool SkipHeaders() {
    for (;;) {
      if (LitWord("PREFIX")) {
        // prefix name ':' '<iri>'
        SkipSpace();
        while (pos_ < input_.size() && input_[pos_] != '<') ++pos_;
        if (!Lit('<')) return false;
        while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
        if (pos_ >= input_.size()) return false;
        ++pos_;
        continue;
      }
      if (LitWord("BASE")) {
        SkipSpace();
        if (!Lit('<')) return false;
        while (pos_ < input_.size() && input_[pos_] != '>') ++pos_;
        if (pos_ >= input_.size()) return false;
        ++pos_;
        continue;
      }
      return true;
    }
  }

  Status ParseSelectClause(Query* query) {
    if (LitWord("DISTINCT")) query->modifiers.distinct = true;
    if (LitWord("REDUCED")) query->modifiers.reduced = true;
    if (Lit('*')) {
      query->select_star = true;
      return Status::Ok();
    }
    for (;;) {
      SkipSpace();
      const char c = Peek();
      if (c == '?' || c == '$') {
        auto v = ParseTerm();
        if (!v.ok()) return v.status();
        SelectItem item;
        item.var = v.value();
        query->projection.push_back(item);
        continue;
      }
      if (c == '(') {
        ++pos_;
        auto item = ParseAggregateItem();
        if (!item.ok()) return item.status();
        if (!Lit(')')) return Error("expected ')' in select item");
        query->projection.push_back(item.value());
        continue;
      }
      break;
    }
    if (query->projection.empty()) {
      return Error("SELECT needs projection or *");
    }
    return Status::Ok();
  }

  Result<SelectItem> ParseAggregateItem() {
    SelectItem item;
    static const std::pair<const char*, Aggregate> kAggs[] = {
        {"COUNT", Aggregate::kCount}, {"SUM", Aggregate::kSum},
        {"AVG", Aggregate::kAvg},     {"MIN", Aggregate::kMin},
        {"MAX", Aggregate::kMax},
    };
    bool found = false;
    for (const auto& [name, agg] : kAggs) {
      if (LitWord(name)) {
        item.aggregate = agg;
        found = true;
        break;
      }
    }
    if (!found) return Error("expected aggregate function");
    if (!Lit('(')) return Error("expected '(' after aggregate");
    LitWord("DISTINCT");
    if (Lit('*')) {
      item.aggregate_arg = Term{};  // COUNT(*)
    } else {
      auto v = ParseTerm();
      if (!v.ok()) return v.status();
      item.aggregate_arg = v.value();
    }
    if (!Lit(')')) return Error("expected ')' after aggregate arg");
    if (!LitWord("AS")) return Error("expected AS");
    auto out = ParseTerm();
    if (!out.ok()) return out.status();
    item.var = out.value();
    return item;
  }

  Status ParseConstructTemplate(Query* query) {
    if (!Lit('{')) return Error("expected '{' after CONSTRUCT");
    while (Peek() != '}') {
      auto s = ParseTerm();
      if (!s.ok()) return s.status();
      auto p = ParseTerm();
      if (!p.ok()) return p.status();
      auto o = ParseTerm();
      if (!o.ok()) return o.status();
      query->construct_template.push_back(
          {s.value(), p.value(), o.value()});
      Lit('.');
      if (Peek() == '\0') return Error("unterminated CONSTRUCT template");
    }
    ++pos_;  // '}'
    return Status::Ok();
  }

  // --- Terms ---------------------------------------------------------

  Result<Term> ParseTerm() {
    SkipSpace();
    if (pos_ >= input_.size()) return Error("expected term");
    const char c = input_[pos_];
    Term term;
    if (c == '?' || c == '$') {
      ++pos_;
      std::string name = "?";
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        name += input_[pos_++];
      }
      if (name.size() == 1) return Error("empty variable name");
      term.kind = Term::Kind::kVar;
      term.id = dict_->Intern(name);
      return term;
    }
    if (c == '<') {
      const size_t end = input_.find('>', pos_);
      if (end == std::string_view::npos) return Error("unterminated IRI");
      term.kind = Term::Kind::kIri;
      term.id = dict_->Intern(input_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end + 1;
      return term;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++pos_;
      std::string text;
      while (pos_ < input_.size() && input_[pos_] != quote) {
        if (input_[pos_] == '\\' && pos_ + 1 < input_.size()) ++pos_;
        text += input_[pos_++];
      }
      if (pos_ >= input_.size()) return Error("unterminated literal");
      ++pos_;
      // Language tag / datatype.
      if (pos_ < input_.size() && input_[pos_] == '@') {
        ++pos_;
        text += "@";
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '-')) {
          text += input_[pos_++];
        }
      } else if (input_.substr(pos_, 2) == "^^") {
        pos_ += 2;
        auto type = ParseTerm();
        if (!type.ok()) return type;
        text += "^^" + dict_->Name(type.value().id);
      }
      term.kind = Term::Kind::kLiteral;
      term.id = dict_->Intern("\"" + text + "\"");
      return term;
    }
    if (c == '_' && pos_ + 1 < input_.size() && input_[pos_ + 1] == ':') {
      pos_ += 2;
      std::string name = "_:";
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        name += input_[pos_++];
      }
      term.kind = Term::Kind::kBlank;
      term.id = dict_->Intern(name);
      return term;
    }
    if (c == '[') {
      ++pos_;
      SkipSpace();
      if (pos_ < input_.size() && input_[pos_] == ']') {
        ++pos_;
        term.kind = Term::Kind::kBlank;
        term.id = dict_->Intern("_:anon" + std::to_string(blank_counter_++));
        return term;
      }
      return Error("non-empty blank node property lists are unsupported");
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      std::string num;
      num += input_[pos_++];
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.' || input_[pos_] == 'e' ||
              input_[pos_] == 'E')) {
        num += input_[pos_++];
      }
      term.kind = Term::Kind::kLiteral;
      term.id = dict_->Intern("\"" + num + "\"");
      return term;
    }
    if (LitWord("true") || LitWord("false")) {
      term.kind = Term::Kind::kLiteral;
      term.id = dict_->Intern(
          std::string("\"") +
          (input_[pos_ - 1] == 'e' && input_[pos_ - 2] == 'u' ? "true"
                                                              : "false") +
          "\"");
      return term;
    }
    // Prefixed or bare name (IRI). The bare keyword 'a' is rdf:type.
    if (IsNameChar(c)) {
      std::string name;
      while (pos_ < input_.size() && IsNameChar(input_[pos_])) {
        name += input_[pos_++];
      }
      if (name == "a") name = "rdf:type";
      term.kind = Term::Kind::kIri;
      term.id = dict_->Intern(name);
      return term;
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  // --- Patterns ------------------------------------------------------

  Result<PatternPtr> ParseGroupGraphPattern() {
    if (!Lit('{')) return Error("expected '{'");
    std::vector<PatternPtr> conjuncts;
    std::vector<FilterPtr> filters;

    auto current = [&]() -> PatternPtr {
      if (conjuncts.empty()) {
        // Empty pattern: a unit VALUES with one empty row.
        auto unit = std::make_shared<Pattern>();
        unit->op = Pattern::Op::kValues;
        unit->values_rows.push_back({});
        return unit;
      }
      if (conjuncts.size() == 1) return conjuncts[0];
      auto node = std::make_shared<Pattern>();
      node->op = Pattern::Op::kAnd;
      node->children = conjuncts;
      return node;
    };

    while (Peek() != '}') {
      if (Peek() == '\0') return Error("unterminated group pattern");

      if (LitWord("FILTER")) {
        auto f = ParseConstraint();
        if (!f.ok()) return f.status();
        filters.push_back(f.value());
        Lit('.');
        continue;
      }
      if (LitWord("OPTIONAL")) {
        auto rhs = ParseGroupGraphPattern();
        if (!rhs.ok()) return rhs;
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kOptional;
        node->children = {current(), rhs.value()};
        conjuncts = {node};
        Lit('.');
        continue;
      }
      if (LitWord("MINUS")) {
        auto rhs = ParseGroupGraphPattern();
        if (!rhs.ok()) return rhs;
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kMinus;
        node->children = {current(), rhs.value()};
        conjuncts = {node};
        Lit('.');
        continue;
      }
      if (LitWord("GRAPH")) {
        auto name = ParseTerm();
        if (!name.ok()) return name.status();
        auto inner = ParseGroupGraphPattern();
        if (!inner.ok()) return inner;
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kGraph;
        node->graph_name = name.value();
        node->children = {inner.value()};
        conjuncts.push_back(node);
        Lit('.');
        continue;
      }
      if (LitWord("SERVICE")) {
        LitWord("SILENT");
        auto name = ParseTerm();
        if (!name.ok()) return name.status();
        auto inner = ParseGroupGraphPattern();
        if (!inner.ok()) return inner;
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kService;
        node->graph_name = name.value();
        node->children = {inner.value()};
        conjuncts.push_back(node);
        Lit('.');
        continue;
      }
      if (LitWord("BIND")) {
        if (!Lit('(')) return Error("expected '(' after BIND");
        auto src = ParseBindSource();
        if (!src.ok()) return src.status();
        if (!LitWord("AS")) return Error("expected AS in BIND");
        auto var = ParseTerm();
        if (!var.ok()) return var.status();
        if (!Lit(')')) return Error("expected ')' after BIND");
        auto node = std::make_shared<Pattern>();
        node->op = Pattern::Op::kBind;
        node->bind_source = src.value();
        node->bind_var = var.value();
        node->children = {current()};
        conjuncts = {node};
        Lit('.');
        continue;
      }
      if (LitWord("VALUES")) {
        auto v = ParseValues();
        if (!v.ok()) return v;
        conjuncts.push_back(v.value());
        Lit('.');
        continue;
      }
      if (Peek() == '{') {
        // Subselect or group-or-union.
        const size_t mark = pos_;
        ++pos_;
        if (LitWord("SELECT")) {
          pos_ = mark;
          auto sub = ParseSubSelect();
          if (!sub.ok()) return sub;
          conjuncts.push_back(sub.value());
          Lit('.');
          continue;
        }
        pos_ = mark;
        auto first = ParseGroupGraphPattern();
        if (!first.ok()) return first;
        PatternPtr acc = first.value();
        while (LitWord("UNION")) {
          auto next = ParseGroupGraphPattern();
          if (!next.ok()) return next;
          auto node = std::make_shared<Pattern>();
          node->op = Pattern::Op::kUnion;
          node->children = {acc, next.value()};
          acc = node;
        }
        conjuncts.push_back(acc);
        Lit('.');
        continue;
      }
      // Triples block entry.
      auto triples = ParseTriplesSameSubject();
      if (!triples.ok()) return triples.status();
      for (auto& t : triples.value()) conjuncts.push_back(std::move(t));
      if (!Lit('.')) {
        // A triple block must be followed by '.' or '}' or a keyword.
        SkipSpace();
      }
    }
    ++pos_;  // '}'

    PatternPtr result = current();
    for (const auto& f : filters) {
      auto node = std::make_shared<Pattern>();
      node->op = Pattern::Op::kFilter;
      node->children = {result};
      node->filter = f;
      result = node;
    }
    return result;
  }

  Result<PatternPtr> ParseSubSelect() {
    if (!Lit('{')) return Error("expected '{'");
    // Re-parse a full query from here until the matching '}'.
    // Find the matching close brace.
    size_t depth = 1;
    size_t end = pos_;
    while (end < input_.size() && depth > 0) {
      if (input_[end] == '{') ++depth;
      if (input_[end] == '}') --depth;
      ++end;
    }
    if (depth != 0) return Error("unterminated subquery");
    const std::string_view body = input_.substr(pos_, end - 1 - pos_);
    SparqlParser sub(body, dict_);
    auto q = sub.Parse();
    if (!q.ok()) return q.status();
    pos_ = end;
    auto node = std::make_shared<Pattern>();
    node->op = Pattern::Op::kSubquery;
    node->subquery = std::make_shared<Query>(std::move(q).value());
    return node;
  }

  Result<PatternPtr> ParseValues() {
    auto node = std::make_shared<Pattern>();
    node->op = Pattern::Op::kValues;
    if (Lit('(')) {
      while (Peek() != ')') {
        auto v = ParseTerm();
        if (!v.ok()) return v.status();
        node->values_vars.push_back(v.value());
      }
      ++pos_;
      if (!Lit('{')) return Error("expected '{' in VALUES");
      while (Peek() != '}') {
        if (!Lit('(')) return Error("expected '(' in VALUES row");
        std::vector<Term> row;
        while (Peek() != ')') {
          if (LitWord("UNDEF")) {
            row.push_back(Term{});
            continue;
          }
          auto v = ParseTerm();
          if (!v.ok()) return v.status();
          row.push_back(v.value());
        }
        ++pos_;
        node->values_rows.push_back(std::move(row));
      }
      ++pos_;
    } else {
      auto var = ParseTerm();
      if (!var.ok()) return var.status();
      node->values_vars.push_back(var.value());
      if (!Lit('{')) return Error("expected '{' in VALUES");
      while (Peek() != '}') {
        if (LitWord("UNDEF")) {
          node->values_rows.push_back({Term{}});
          continue;
        }
        auto v = ParseTerm();
        if (!v.ok()) return v.status();
        node->values_rows.push_back({v.value()});
      }
      ++pos_;
    }
    return node;
  }

  Result<Term> ParseBindSource() {
    // Either a term or a function call whose first term argument we keep.
    SkipSpace();
    const size_t mark = pos_;
    auto t = ParseTerm();
    if (t.ok()) {
      SkipSpace();
      if (pos_ < input_.size() && input_[pos_] == '(') {
        // It was a function name; scan its arguments for a term.
        pos_ = mark;
        return ParseCallFirstArg();
      }
      return t;
    }
    pos_ = mark;
    return ParseCallFirstArg();
  }

  Result<Term> ParseCallFirstArg() {
    // name '(' args ')': return the first variable inside, or a none term.
    while (pos_ < input_.size() && input_[pos_] != '(') ++pos_;
    if (pos_ >= input_.size()) return Error("expected function call");
    size_t depth = 0;
    Term found;
    do {
      if (input_[pos_] == '(') ++depth;
      if (input_[pos_] == ')') --depth;
      if (input_[pos_] == '?' || input_[pos_] == '$') {
        if (found.kind == Term::Kind::kNone) {
          auto v = ParseTerm();
          if (v.ok()) found = v.value();
          continue;
        }
      }
      ++pos_;
    } while (pos_ < input_.size() && depth > 0);
    return found;
  }

  /// Parses "subject predicateObjectList" with ';' and ',' sugar.
  Result<std::vector<PatternPtr>> ParseTriplesSameSubject() {
    auto subject = ParseTerm();
    if (!subject.ok()) return subject.status();
    std::vector<PatternPtr> out;
    for (;;) {
      // Verb: variable or property path (a bare IRI is a trivial path).
      auto verb = ParseVerb();
      if (!verb.ok()) return verb.status();
      for (;;) {
        auto object = ParseTerm();
        if (!object.ok()) return object.status();
        auto node = std::make_shared<Pattern>();
        if (verb.value().first.kind != Term::Kind::kNone) {
          node->op = Pattern::Op::kTriple;
          node->triple = {subject.value(), verb.value().first,
                          object.value()};
        } else {
          node->op = Pattern::Op::kPath;
          node->path = {subject.value(), verb.value().second,
                        object.value()};
        }
        out.push_back(std::move(node));
        if (!Lit(',')) break;
      }
      if (!Lit(';')) break;
      SkipSpace();
      if (Peek() == '.' || Peek() == '}') break;  // dangling ';'
    }
    return out;
  }

  /// Returns (term, null) for plain predicates (IRI or variable), or
  /// (none, path) for property paths.
  Result<std::pair<Term, paths::PathPtr>> ParseVerb() {
    SkipSpace();
    const char c = Peek();
    if (c == '?' || c == '$') {
      auto v = ParseTerm();
      if (!v.ok()) return v.status();
      return std::make_pair(v.value(), paths::PathPtr());
    }
    // Scan ahead to the end of the verb token sequence to decide whether
    // it is a path: collect until whitespace that precedes a term, being
    // careful with parentheses.
    const size_t start = pos_;
    size_t end = pos_;
    size_t depth = 0;
    bool is_path = (c == '^' || c == '!' || c == '(');
    while (end < input_.size()) {
      const char ch = input_[end];
      if (ch == '(') {
        ++depth;
        is_path = true;
      } else if (ch == ')') {
        if (depth == 0) break;
        --depth;
      } else if (ch == '<') {
        const size_t close = input_.find('>', end);
        if (close == std::string_view::npos) break;
        end = close;
      } else if (depth == 0 &&
                 (std::isspace(static_cast<unsigned char>(ch)))) {
        break;
      } else if (IsPathOperatorChar(ch)) {
        is_path = true;
      } else if (!IsNameChar(ch) && ch != '^' && ch != '!') {
        break;
      }
      ++end;
    }
    const std::string_view verb_text = input_.substr(start, end - start);
    if (!is_path) {
      auto t = ParseTerm();
      if (!t.ok()) return t.status();
      return std::make_pair(t.value(), paths::PathPtr());
    }
    auto path = paths::ParsePath(verb_text, dict_);
    if (!path.ok()) return path.status();
    pos_ = end;
    // Trivial one-IRI paths degrade to plain triple patterns.
    if (path.value()->op() == paths::PathOp::kIri) {
      Term t;
      t.kind = Term::Kind::kIri;
      t.id = path.value()->iri();
      return std::make_pair(t, paths::PathPtr());
    }
    return std::make_pair(Term{}, path.value());
  }

  // --- Filter constraints ---------------------------------------------

  Result<FilterPtr> ParseConstraint() { return ParseOrExpr(); }

  Result<FilterPtr> ParseOrExpr() {
    auto first = ParseAndExpr();
    if (!first.ok()) return first;
    std::vector<FilterPtr> parts = {first.value()};
    while (Lit('|')) {
      if (!Lit('|')) return Error("expected '||'");
      auto next = ParseAndExpr();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    if (parts.size() == 1) return parts[0];
    auto node = std::make_shared<FilterExpr>();
    node->kind = FilterExpr::Kind::kOr;
    node->children = std::move(parts);
    return FilterPtr(node);
  }

  Result<FilterPtr> ParseAndExpr() {
    auto first = ParseUnaryExpr();
    if (!first.ok()) return first;
    std::vector<FilterPtr> parts = {first.value()};
    while (Lit('&')) {
      if (!Lit('&')) return Error("expected '&&'");
      auto next = ParseUnaryExpr();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    if (parts.size() == 1) return parts[0];
    auto node = std::make_shared<FilterExpr>();
    node->kind = FilterExpr::Kind::kAnd;
    node->children = std::move(parts);
    return FilterPtr(node);
  }

  Result<FilterPtr> ParseUnaryExpr() {
    SkipSpace();
    if (Lit('!')) {
      if (Peek() == '=') return Error("unexpected '!='");
      auto inner = ParseUnaryExpr();
      if (!inner.ok()) return inner;
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kNot;
      node->children = {inner.value()};
      return FilterPtr(node);
    }
    if (LitWord("NOT")) {
      if (!LitWord("EXISTS")) return Error("expected EXISTS after NOT");
      auto p = ParseGroupGraphPattern();
      if (!p.ok()) return p.status();
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kNotExistsPattern;
      node->pattern = p.value();
      return FilterPtr(node);
    }
    if (LitWord("EXISTS")) {
      auto p = ParseGroupGraphPattern();
      if (!p.ok()) return p.status();
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kExistsPattern;
      node->pattern = p.value();
      return FilterPtr(node);
    }
    if (Peek() == '(') {
      ++pos_;
      auto inner = ParseOrExpr();
      if (!inner.ok()) return inner;
      if (!Lit(')')) return Error("expected ')'");
      return MaybeComparison(inner.value());
    }
    return ParsePrimaryConstraint();
  }

  /// A parenthesized expression may still be the lhs of a comparison in
  /// real queries; treat "(expr) op term" as the inner expression (the
  /// classifications only need variable sets).
  Result<FilterPtr> MaybeComparison(FilterPtr inner) { return inner; }

  Result<FilterPtr> ParsePrimaryConstraint() {
    SkipSpace();
    // Function call or term, optionally compared to another.
    Term first_term;
    std::string function;
    if (Peek() == '?' || Peek() == '$' || Peek() == '"' || Peek() == '<' ||
        std::isdigit(static_cast<unsigned char>(Peek()))) {
      auto t = ParseTerm();
      if (!t.ok()) return t.status();
      first_term = t.value();
    } else {
      // Function name.
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        function += input_[pos_++];
      }
      if (function.empty()) return Error("expected filter expression");
      if (!Lit('(')) return Error("expected '(' after " + function);
      // First term argument (if any), then skip to matching ')'.
      size_t depth = 1;
      while (pos_ < input_.size() && depth > 0) {
        const char ch = input_[pos_];
        if (ch == '(') {
          ++depth;
          ++pos_;
        } else if (ch == ')') {
          --depth;
          ++pos_;
        } else if ((ch == '?' || ch == '$') &&
                   first_term.kind == Term::Kind::kNone) {
          auto t = ParseTerm();
          if (!t.ok()) return t.status();
          first_term = t.value();
        } else {
          ++pos_;
        }
      }
    }
    // Comparison operator?
    SkipSpace();
    FilterExpr::CmpOp op;
    bool has_cmp = true;
    if (input_.substr(pos_, 2) == "!=") {
      op = FilterExpr::CmpOp::kNe;
      pos_ += 2;
    } else if (input_.substr(pos_, 2) == "<=") {
      op = FilterExpr::CmpOp::kLe;
      pos_ += 2;
    } else if (input_.substr(pos_, 2) == ">=") {
      op = FilterExpr::CmpOp::kGe;
      pos_ += 2;
    } else if (Peek() == '=') {
      op = FilterExpr::CmpOp::kEq;
      ++pos_;
    } else if (Peek() == '<') {
      op = FilterExpr::CmpOp::kLt;
      ++pos_;
    } else if (Peek() == '>') {
      op = FilterExpr::CmpOp::kGt;
      ++pos_;
    } else {
      has_cmp = false;
    }
    auto node = std::make_shared<FilterExpr>();
    if (!has_cmp) {
      node->kind = FilterExpr::Kind::kUnaryTest;
      node->operand = first_term;
      node->function = function.empty() ? "test" : function;
      return FilterPtr(node);
    }
    // Right-hand side: term or function-wrapped term.
    Term rhs_term;
    SkipSpace();
    if (std::isalpha(static_cast<unsigned char>(Peek())) &&
        input_.substr(pos_).find('(') != std::string_view::npos &&
        Peek() != '?') {
      const size_t mark = pos_;
      auto t = ParseTerm();
      SkipSpace();
      if (t.ok() && pos_ < input_.size() && input_[pos_] == '(') {
        pos_ = mark;
        auto arg = ParseCallFirstArg();
        if (!arg.ok()) return arg.status();
        rhs_term = arg.value();
      } else if (t.ok()) {
        rhs_term = t.value();
      } else {
        return t.status();
      }
    } else {
      auto t = ParseTerm();
      if (!t.ok()) return t.status();
      rhs_term = t.value();
    }
    if (!function.empty()) {
      // fn(?x) = literal: model as a unary test on ?x when the rhs is a
      // constant; otherwise a comparison between the two variables.
      if (rhs_term.kind != Term::Kind::kVar) {
        node->kind = FilterExpr::Kind::kUnaryTest;
        node->operand = first_term;
        node->function = function;
        node->argument =
            rhs_term.id == kInvalidSymbol ? "" : dict_->Name(rhs_term.id);
        return FilterPtr(node);
      }
    }
    node->kind = FilterExpr::Kind::kComparison;
    node->cmp = op;
    node->lhs = first_term;
    node->rhs = rhs_term;
    return FilterPtr(node);
  }

  // --- Solution modifiers ----------------------------------------------

  Status ParseSolutionModifiers(SolutionModifiers* mods) {
    for (;;) {
      if (LitWord("GROUP")) {
        if (!LitWord("BY")) return Error("expected BY after GROUP");
        for (;;) {
          SkipSpace();
          if (Peek() != '?' && Peek() != '$') break;
          auto v = ParseTerm();
          if (!v.ok()) return v.status();
          mods->group_by.push_back(v.value());
        }
        continue;
      }
      if (LitWord("HAVING")) {
        auto f = ParseConstraint();
        if (!f.ok()) return f.status();
        mods->having = f.value();
        continue;
      }
      if (LitWord("ORDER")) {
        if (!LitWord("BY")) return Error("expected BY after ORDER");
        for (;;) {
          SkipSpace();
          bool desc = false;
          if (LitWord("DESC")) {
            desc = true;
            if (!Lit('(')) return Error("expected '(' after DESC");
          } else if (LitWord("ASC")) {
            if (!Lit('(')) return Error("expected '(' after ASC");
          } else if (Peek() == '?' || Peek() == '$') {
            auto v = ParseTerm();
            if (!v.ok()) return v.status();
            mods->order_by.push_back(v.value());
            mods->order_desc.push_back(false);
            continue;
          } else {
            break;
          }
          auto v = ParseTerm();
          if (!v.ok()) return v.status();
          if (!Lit(')')) return Error("expected ')'");
          mods->order_by.push_back(v.value());
          mods->order_desc.push_back(desc);
        }
        continue;
      }
      if (LitWord("LIMIT")) {
        auto n = ParseNumber();
        if (!n.ok()) return n.status();
        mods->limit = n.value();
        continue;
      }
      if (LitWord("OFFSET")) {
        auto n = ParseNumber();
        if (!n.ok()) return n.status();
        mods->offset = n.value();
        continue;
      }
      return Status::Ok();
    }
  }

  Result<uint64_t> ParseNumber() {
    SkipSpace();
    uint64_t n = 0;
    bool any = false;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      n = n * 10 + static_cast<uint64_t>(input_[pos_] - '0');
      ++pos_;
      any = true;
    }
    if (!any) return Error("expected number");
    return n;
  }

  std::string_view input_;
  Interner* dict_;
  size_t pos_ = 0;
  size_t blank_counter_ = 0;
};

}  // namespace

Result<Query> ParseSparql(std::string_view input, Interner* dict) {
  return SparqlParser(input, dict).Parse();
}

}  // namespace rwdt::sparql
