#include "sparql/algebra.h"

namespace rwdt::sparql {

void FilterExpr::CollectVars(std::set<SymbolId>* out) const {
  if (operand.ActsAsVar()) out->insert(operand.id);
  if (lhs.ActsAsVar()) out->insert(lhs.id);
  if (rhs.ActsAsVar()) out->insert(rhs.id);
  for (const auto& c : children) c->CollectVars(out);
  if (pattern != nullptr) pattern->CollectVars(out);
}

bool FilterExpr::IsSafe() const {
  switch (kind) {
    case Kind::kUnaryTest:
      return true;
    case Kind::kComparison:
      return cmp == CmpOp::kEq;
    case Kind::kAnd:
    case Kind::kOr: {
      for (const auto& c : children) {
        if (!c->IsSafe()) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

bool FilterExpr::IsSimple() const {
  std::set<SymbolId> vars;
  CollectVars(&vars);
  if (kind == Kind::kExistsPattern || kind == Kind::kNotExistsPattern) {
    return false;
  }
  return vars.size() <= 2;
}

void Pattern::CollectVars(std::set<SymbolId>* out) const {
  auto add = [&](const Term& t) {
    if (t.ActsAsVar()) out->insert(t.id);
  };
  switch (op) {
    case Op::kTriple:
      add(triple.s);
      add(triple.p);
      add(triple.o);
      break;
    case Op::kPath:
      add(path.s);
      add(path.o);
      break;
    case Op::kBind:
      add(bind_var);
      add(bind_source);
      break;
    case Op::kValues:
      for (const Term& v : values_vars) add(v);
      break;
    case Op::kGraph:
    case Op::kService:
      add(graph_name);
      break;
    case Op::kSubquery:
      if (subquery != nullptr) {
        for (const auto& item : subquery->projection) add(item.var);
        if (subquery->select_star && subquery->pattern != nullptr) {
          subquery->pattern->CollectVars(out);
        }
      }
      break;
    default:
      break;
  }
  if (op == Op::kFilter && filter != nullptr) filter->CollectVars(out);
  for (const auto& c : children) c->CollectVars(out);
}

void Pattern::CollectTriples(std::vector<const TriplePattern*>* out) const {
  if (op == Op::kTriple) out->push_back(&triple);
  for (const auto& c : children) c->CollectTriples(out);
  if (op == Op::kSubquery && subquery != nullptr &&
      subquery->pattern != nullptr) {
    subquery->pattern->CollectTriples(out);
  }
}

void Pattern::CollectPathTriples(
    std::vector<const PathTriple*>* out) const {
  if (op == Op::kPath) out->push_back(&path);
  for (const auto& c : children) c->CollectPathTriples(out);
  if (op == Op::kSubquery && subquery != nullptr &&
      subquery->pattern != nullptr) {
    subquery->pattern->CollectPathTriples(out);
  }
}

void Pattern::CollectFilters(std::vector<FilterPtr>* out) const {
  if (op == Op::kFilter && filter != nullptr) out->push_back(filter);
  for (const auto& c : children) c->CollectFilters(out);
  if (op == Op::kSubquery && subquery != nullptr &&
      subquery->pattern != nullptr) {
    subquery->pattern->CollectFilters(out);
  }
}

size_t Pattern::NumTriplePatterns() const {
  std::vector<const TriplePattern*> triples;
  CollectTriples(&triples);
  std::vector<const PathTriple*> paths;
  CollectPathTriples(&paths);
  return triples.size() + paths.size();
}

}  // namespace rwdt::sparql
