#ifndef RWDT_SPARQL_ALGEBRA_H_
#define RWDT_SPARQL_ALGEBRA_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "paths/path.h"

namespace rwdt::sparql {

/// An RDF term or variable in a pattern position (paper Section 9).
struct Term {
  enum class Kind { kIri, kLiteral, kBlank, kVar, kNone };
  Kind kind = Kind::kNone;
  SymbolId id = kInvalidSymbol;

  bool IsVar() const { return kind == Kind::kVar; }
  bool IsBlank() const { return kind == Kind::kBlank; }
  /// Blank nodes in patterns act as (non-projectable) variables.
  bool ActsAsVar() const { return IsVar() || IsBlank(); }
  bool operator==(const Term& o) const {
    return kind == o.kind && id == o.id;
  }
  bool operator<(const Term& o) const {
    if (kind != o.kind) return kind < o.kind;
    return id < o.id;
  }
};

/// A triple pattern (s, p, o).
struct TriplePattern {
  Term s, p, o;
};

/// A property path pattern s pathexpr o.
struct PathTriple {
  Term s;
  paths::PathPtr path;
  Term o;
};

/// Filter constraint expressions: unary built-in tests, comparisons, and
/// Boolean combinations (the shapes the paper's classifications need:
/// "safe" = unary or ?x = ?y; "simple" = unary or binary; Section 9.5).
struct FilterExpr;
using FilterPtr = std::shared_ptr<const FilterExpr>;

struct FilterExpr {
  enum class Kind {
    kUnaryTest,   // bound(?x), isIRI(?x), lang(?x)="en", regex(?x, ...)
    kComparison,  // term op term
    kAnd,
    kOr,
    kNot,
    kExistsPattern,     // EXISTS { P }
    kNotExistsPattern,  // NOT EXISTS { P }
  };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind = Kind::kUnaryTest;
  // kUnaryTest:
  Term operand;
  std::string function;  // "bound", "isIRI", "lang", "regex", ...
  std::string argument;  // e.g. the language tag or regex text
  // kComparison:
  CmpOp cmp = CmpOp::kEq;
  Term lhs, rhs;
  // kAnd/kOr/kNot:
  std::vector<FilterPtr> children;
  // kExistsPattern / kNotExistsPattern:
  std::shared_ptr<const struct Pattern> pattern;

  /// Variables mentioned anywhere in the expression.
  void CollectVars(std::set<SymbolId>* out) const;

  /// "Safe" filters keep a query conjunctive: unary tests or ?x = ?y.
  bool IsSafe() const;
  /// "Simple" filters are unary or binary (Section 9.5).
  bool IsSimple() const;
};

struct Query;
using QueryPtr = std::shared_ptr<const Query>;

/// SPARQL pattern algebra (Section 9): the grammar
///   P ::= t | pp | Q | P1 And P2 | P Filter R | P1 Union P2 |
///         P1 Optional P2 | Bind | Service n P | Values | Graph | Minus
struct Pattern {
  enum class Op {
    kTriple,
    kPath,
    kAnd,
    kFilter,
    kUnion,
    kOptional,
    kGraph,
    kBind,
    kValues,
    kMinus,
    kService,
    kSubquery,
  };

  Op op = Op::kTriple;
  TriplePattern triple;                           // kTriple
  PathTriple path;                                // kPath
  std::vector<std::shared_ptr<Pattern>> children;  // operator arguments
  FilterPtr filter;                               // kFilter
  Term graph_name;                                // kGraph / kService
  Term bind_var;                                  // kBind target
  Term bind_source;                               // kBind simple source
  std::vector<Term> values_vars;                  // kValues header
  std::vector<std::vector<Term>> values_rows;     // kValues rows
  QueryPtr subquery;                              // kSubquery

  /// In-scope variables (for well-designedness and projection checks).
  void CollectVars(std::set<SymbolId>* out) const;

  /// All triple patterns in the pattern (paths excluded), the unit of the
  /// paper's size analysis (Figure 3 counts "triples": triple patterns
  /// and property path patterns alike).
  void CollectTriples(std::vector<const TriplePattern*>* out) const;
  void CollectPathTriples(std::vector<const PathTriple*>* out) const;
  void CollectFilters(std::vector<FilterPtr>* out) const;

  size_t NumTriplePatterns() const;  // triples + path triples
};

using PatternPtr = std::shared_ptr<Pattern>;

enum class QueryForm { kSelect, kAsk, kConstruct, kDescribe };

/// Aggregate functions of the solution modifier.
enum class Aggregate { kCount, kSum, kAvg, kMin, kMax };

struct SelectItem {
  Term var;                              // output variable
  std::optional<Aggregate> aggregate;    // e.g. (COUNT(?x) AS ?c)
  Term aggregate_arg;                    // argument variable (or none = *)
};

struct SolutionModifiers {
  bool distinct = false;
  bool reduced = false;
  std::optional<uint64_t> limit;
  std::optional<uint64_t> offset;
  std::vector<Term> order_by;
  std::vector<bool> order_desc;
  std::vector<Term> group_by;
  FilterPtr having;
};

/// A SPARQL query: (query-type, pattern, solution-modifier).
struct Query {
  QueryForm form = QueryForm::kSelect;
  bool select_star = false;
  std::vector<SelectItem> projection;
  PatternPtr pattern;                       // may be null for DESCRIBE
  std::vector<TriplePattern> construct_template;
  std::vector<Term> describe_terms;
  SolutionModifiers modifiers;
};

}  // namespace rwdt::sparql

#endif  // RWDT_SPARQL_ALGEBRA_H_
