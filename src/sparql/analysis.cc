#include "sparql/analysis.h"

#include <functional>
#include <map>

namespace rwdt::sparql {

std::string FeatureName(Feature f) {
  switch (f) {
    case Feature::kDistinct:
      return "Distinct";
    case Feature::kLimit:
      return "Limit";
    case Feature::kOffset:
      return "Offset";
    case Feature::kOrderBy:
      return "Order By";
    case Feature::kFilter:
      return "Filter";
    case Feature::kAnd:
      return "And";
    case Feature::kOptional:
      return "Optional";
    case Feature::kUnion:
      return "Union";
    case Feature::kGraph:
      return "Graph";
    case Feature::kValues:
      return "Values";
    case Feature::kNotExists:
      return "Not Exists";
    case Feature::kMinus:
      return "Minus";
    case Feature::kExists:
      return "Exists";
    case Feature::kGroupBy:
      return "Group By";
    case Feature::kCount:
      return "Count";
    case Feature::kHaving:
      return "Having";
    case Feature::kAvg:
      return "Avg";
    case Feature::kMin:
      return "Min";
    case Feature::kMax:
      return "Max";
    case Feature::kSum:
      return "Sum";
    case Feature::kService:
      return "Service";
    case Feature::kPropertyPaths:
      return "property paths (RPQs)";
    case Feature::kBind:
      return "Bind";
    case Feature::kSubquery:
      return "Subquery";
  }
  return "?";
}

const std::vector<Feature>& AllFeatures() {
  static const std::vector<Feature>* kAll = new std::vector<Feature>{
      Feature::kDistinct,  Feature::kLimit,    Feature::kOffset,
      Feature::kOrderBy,   Feature::kFilter,   Feature::kAnd,
      Feature::kOptional,  Feature::kUnion,    Feature::kGraph,
      Feature::kValues,    Feature::kNotExists, Feature::kMinus,
      Feature::kExists,    Feature::kGroupBy,  Feature::kCount,
      Feature::kHaving,    Feature::kAvg,      Feature::kMin,
      Feature::kMax,       Feature::kSum,      Feature::kService,
      Feature::kPropertyPaths,
  };
  return *kAll;
}

namespace {

void WalkFilter(const FilterExpr& f, std::set<Feature>* out) {
  if (f.kind == FilterExpr::Kind::kExistsPattern) {
    out->insert(Feature::kExists);
  }
  if (f.kind == FilterExpr::Kind::kNotExistsPattern) {
    out->insert(Feature::kNotExists);
  }
  for (const auto& c : f.children) WalkFilter(*c, out);
}

size_t TripleBearingChildren(const Pattern& p) {
  size_t n = 0;
  for (const auto& c : p.children) {
    n += c->NumTriplePatterns() > 0 ? 1 : 0;
  }
  return n;
}

void WalkPattern(const Pattern& p, std::set<Feature>* out) {
  switch (p.op) {
    case Pattern::Op::kAnd:
      // "And" in the paper's sense: a genuine conjunction of triple
      // patterns, not a triple merely co-occurring with VALUES/BIND.
      if (TripleBearingChildren(p) >= 2) out->insert(Feature::kAnd);
      break;
    case Pattern::Op::kFilter:
      out->insert(Feature::kFilter);
      if (p.filter != nullptr) WalkFilter(*p.filter, out);
      break;
    case Pattern::Op::kUnion:
      out->insert(Feature::kUnion);
      break;
    case Pattern::Op::kOptional:
      out->insert(Feature::kOptional);
      break;
    case Pattern::Op::kGraph:
      out->insert(Feature::kGraph);
      break;
    case Pattern::Op::kValues:
      // The parser's synthetic unit table (one empty row, no vars) is
      // not a user-written VALUES.
      if (!p.values_vars.empty()) out->insert(Feature::kValues);
      break;
    case Pattern::Op::kMinus:
      out->insert(Feature::kMinus);
      break;
    case Pattern::Op::kService:
      out->insert(Feature::kService);
      break;
    case Pattern::Op::kBind:
      out->insert(Feature::kBind);
      break;
    case Pattern::Op::kPath:
      out->insert(Feature::kPropertyPaths);
      break;
    case Pattern::Op::kSubquery:
      out->insert(Feature::kSubquery);
      if (p.subquery != nullptr) {
        // Recurse into the subquery's modifiers and pattern below.
      }
      break;
    case Pattern::Op::kTriple:
      break;
  }
  for (const auto& c : p.children) WalkPattern(*c, out);
}

void WalkModifiers(const Query& q, std::set<Feature>* out) {
  if (q.modifiers.distinct) out->insert(Feature::kDistinct);
  if (q.modifiers.limit.has_value()) out->insert(Feature::kLimit);
  if (q.modifiers.offset.has_value()) out->insert(Feature::kOffset);
  if (!q.modifiers.order_by.empty()) out->insert(Feature::kOrderBy);
  if (!q.modifiers.group_by.empty()) out->insert(Feature::kGroupBy);
  if (q.modifiers.having != nullptr) out->insert(Feature::kHaving);
  for (const auto& item : q.projection) {
    if (!item.aggregate.has_value()) continue;
    switch (*item.aggregate) {
      case Aggregate::kCount:
        out->insert(Feature::kCount);
        break;
      case Aggregate::kSum:
        out->insert(Feature::kSum);
        break;
      case Aggregate::kAvg:
        out->insert(Feature::kAvg);
        break;
      case Aggregate::kMin:
        out->insert(Feature::kMin);
        break;
      case Aggregate::kMax:
        out->insert(Feature::kMax);
        break;
    }
  }
}

void WalkQuery(const Query& q, std::set<Feature>* out) {
  WalkModifiers(q, out);
  if (q.pattern != nullptr) WalkPattern(*q.pattern, out);
}

}  // namespace

std::set<Feature> ExtractFeatures(const Query& q) {
  std::set<Feature> out;
  WalkQuery(q, &out);
  // Subquery modifiers count too.
  std::function<void(const Pattern&)> visit = [&](const Pattern& p) {
    if (p.op == Pattern::Op::kSubquery && p.subquery != nullptr) {
      WalkQuery(*p.subquery, &out);
    }
    for (const auto& c : p.children) visit(*c);
  };
  if (q.pattern != nullptr) visit(*q.pattern);
  return out;
}

namespace {

void WalkOperators(const Pattern& p, OperatorSet* out) {
  switch (p.op) {
    case Pattern::Op::kTriple:
      break;
    case Pattern::Op::kPath:
      out->uses_path = true;
      break;
    case Pattern::Op::kAnd:
      out->uses_and = true;
      break;
    case Pattern::Op::kFilter:
      out->uses_filter = true;
      break;
    case Pattern::Op::kValues:
      if (!p.values_vars.empty()) out->uses_other = true;
      break;
    default:
      out->uses_other = true;
      break;
  }
  for (const auto& c : p.children) WalkOperators(*c, out);
}

}  // namespace

OperatorSet ExtractOperatorSet(const Query& q) {
  OperatorSet out;
  if (q.pattern != nullptr) WalkOperators(*q.pattern, &out);
  return out;
}

namespace {

bool OnlyAfo(const Pattern& p) {
  switch (p.op) {
    case Pattern::Op::kTriple:
    case Pattern::Op::kPath:
      return true;
    case Pattern::Op::kValues:
      if (!p.values_vars.empty()) return false;
      return true;  // parser unit table
    case Pattern::Op::kAnd:
    case Pattern::Op::kFilter:
    case Pattern::Op::kOptional:
      for (const auto& c : p.children) {
        if (!OnlyAfo(*c)) return false;
      }
      return true;
    default:
      return false;
  }
}

/// Checks the well-designedness condition on every OPTIONAL node:
/// vars(P2) ∩ vars(outside) ⊆ vars(P1).
bool CheckOptionals(const Pattern& root) {
  // Collect all optional nodes with their (P1, P2).
  std::vector<const Pattern*> optionals;
  std::function<void(const Pattern&)> collect = [&](const Pattern& p) {
    if (p.op == Pattern::Op::kOptional) optionals.push_back(&p);
    for (const auto& c : p.children) collect(*c);
  };
  collect(root);

  for (const Pattern* opt : optionals) {
    std::set<SymbolId> p1_vars, p2_vars;
    opt->children[0]->CollectVars(&p1_vars);
    opt->children[1]->CollectVars(&p2_vars);
    // Vars occurring outside this OPTIONAL subtree: all vars of root
    // minus vars occurring only inside the subtree. Compute vars of the
    // tree with the subtree removed by walking and skipping `opt`.
    std::set<SymbolId> outside;
    std::function<void(const Pattern&)> walk = [&](const Pattern& p) {
      if (&p == opt) return;
      // Collect this node's own vars without recursing into children
      // (children handled explicitly so we can skip `opt`).
      Pattern shallow = p;
      shallow.children.clear();
      shallow.CollectVars(&outside);
      for (const auto& c : p.children) walk(*c);
    };
    walk(root);
    for (SymbolId v : p2_vars) {
      if (p1_vars.count(v) > 0) continue;
      if (outside.count(v) > 0) return false;
    }
  }
  return true;
}

}  // namespace

bool UsesOnlyAndFilterOptional(const Query& q) {
  return q.pattern != nullptr && OnlyAfo(*q.pattern);
}

bool IsWellDesigned(const Query& q) {
  if (!UsesOnlyAndFilterOptional(q)) return false;
  return CheckOptionals(*q.pattern);
}

bool HasOnlySafeFilters(const Query& q) {
  if (q.pattern == nullptr) return true;
  std::vector<FilterPtr> filters;
  q.pattern->CollectFilters(&filters);
  for (const auto& f : filters) {
    if (!f->IsSafe()) return false;
  }
  return true;
}

bool HasOnlySimpleFilters(const Query& q) {
  if (q.pattern == nullptr) return true;
  std::vector<FilterPtr> filters;
  q.pattern->CollectFilters(&filters);
  for (const auto& f : filters) {
    if (!f->IsSimple()) return false;
  }
  return true;
}

bool IsGraphCqF(const Query& q) {
  if (q.pattern == nullptr) return false;
  if (!ExtractOperatorSet(q).IsCqF()) return false;
  if (!HasOnlySimpleFilters(q)) return false;
  std::vector<const TriplePattern*> triples;
  q.pattern->CollectTriples(&triples);
  // A variable predicate may not appear in any other triple position.
  std::set<SymbolId> predicate_vars, other_position_vars;
  for (const auto* t : triples) {
    if (t->p.ActsAsVar()) predicate_vars.insert(t->p.id);
    if (t->s.ActsAsVar()) other_position_vars.insert(t->s.id);
    if (t->o.ActsAsVar()) other_position_vars.insert(t->o.id);
  }
  std::map<SymbolId, int> predicate_var_uses;
  for (const auto* t : triples) {
    if (t->p.ActsAsVar()) predicate_var_uses[t->p.id]++;
  }
  for (SymbolId v : predicate_vars) {
    if (other_position_vars.count(v) > 0) return false;
    if (predicate_var_uses[v] > 1) return false;
  }
  return true;
}

}  // namespace rwdt::sparql
