#ifndef RWDT_SPARQL_EVAL_H_
#define RWDT_SPARQL_EVAL_H_

#include <map>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "graph/rdf.h"
#include "sparql/algebra.h"

namespace rwdt::sparql {

/// A solution mapping mu: variables -> RDF terms (interned ids).
using Binding = std::map<SymbolId, SymbolId>;

/// Two mappings are compatible when they agree on shared variables
/// (Perez-Arenas-Gutierrez semantics).
bool Compatible(const Binding& a, const Binding& b);

/// Evaluates SPARQL patterns and queries over a triple store under bag
/// semantics. GRAPH and SERVICE evaluate their pattern against the same
/// (default) store — the library simulates remote endpoints locally,
/// binding the name variable (if any) to "urn:rwdt:default".
class Evaluator {
 public:
  Evaluator(const graph::TripleStore& store, Interner* dict);

  /// Multiset of solution mappings of a pattern.
  std::vector<Binding> EvalPattern(const Pattern& pattern) const;

  /// Full query evaluation: pattern + aggregation + solution modifiers +
  /// projection. CONSTRUCT/DESCRIBE also return bindings (the mapped
  /// template instantiation is left to callers).
  std::vector<Binding> EvalQuery(const Query& query) const;

  /// ASK-style evaluation.
  bool Ask(const Query& query) const;

  /// All (start, end) pairs connected by a property path; fixing
  /// `s`/`o` (non-wildcard) restricts the search.
  std::vector<std::pair<SymbolId, SymbolId>> EvalPathPairs(
      const paths::Path& path, SymbolId s = kInvalidSymbol,
      SymbolId o = kInvalidSymbol) const;

 private:
  std::vector<Binding> EvalTriple(const TriplePattern& t) const;
  std::vector<Binding> EvalPath(const PathTriple& p) const;
  std::vector<Binding> Join(const std::vector<Binding>& a,
                            const std::vector<Binding>& b) const;
  std::vector<Binding> LeftJoin(const std::vector<Binding>& a,
                                const std::vector<Binding>& b) const;
  std::vector<Binding> MinusOp(const std::vector<Binding>& a,
                               const std::vector<Binding>& b) const;
  bool EvalFilter(const FilterExpr& f, const Binding& mu) const;
  std::vector<SymbolId> AllTerms() const;

  const graph::TripleStore& store_;
  Interner* dict_;
};

}  // namespace rwdt::sparql

#endif  // RWDT_SPARQL_EVAL_H_
