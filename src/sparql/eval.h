#ifndef RWDT_SPARQL_EVAL_H_
#define RWDT_SPARQL_EVAL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "graph/rdf.h"
#include "sparql/algebra.h"

namespace rwdt::sparql {

/// A solution mapping mu: variables -> RDF terms (interned ids).
using Binding = std::map<SymbolId, SymbolId>;

/// Two mappings are compatible when they agree on shared variables
/// (Perez-Arenas-Gutierrez semantics).
bool Compatible(const Binding& a, const Binding& b);

/// Per-evaluation resource guards. Queries from real logs can join
/// themselves into enormous intermediate results; the evaluator refuses
/// to run away and returns `Code::kResourceExhausted` instead — the same
/// contract the parser's ParseLimits established in the ingest taxonomy.
struct EvalLimits {
  /// Budget on evaluation steps (~= bindings produced + pairs compared
  /// across joins). The default is far above anything the bundled
  /// corpora reach; tests use small values to exercise the error path.
  uint64_t max_steps = 1ull << 26;
};

/// Evaluates SPARQL patterns and queries over a triple store under bag
/// semantics. GRAPH and SERVICE evaluate their pattern against the same
/// (default) store — the library simulates remote endpoints locally,
/// binding the name variable (if any) to "urn:rwdt:default".
///
/// All fallible entry points follow the repo-wide Result<T>/Status
/// convention: resource-limit overruns return kResourceExhausted and
/// malformed algebra (e.g. a subquery node without a query) returns
/// kInternal, instead of silently yielding empty results.
class Evaluator {
 public:
  Evaluator(const graph::TripleStore& store, Interner* dict,
            const EvalLimits& limits = {});

  /// Multiset of solution mappings of a pattern.
  Result<std::vector<Binding>> EvalPattern(const Pattern& pattern) const;

  /// Full query evaluation: pattern + aggregation + solution modifiers +
  /// projection. CONSTRUCT/DESCRIBE also return bindings (the mapped
  /// template instantiation is left to callers).
  Result<std::vector<Binding>> EvalQuery(const Query& query) const;

  /// ASK-style evaluation.
  Result<bool> Ask(const Query& query) const;

  /// The solution-modifier pipeline of EvalQuery — aggregation, HAVING,
  /// projection, ORDER BY, DISTINCT/REDUCED, OFFSET/LIMIT — applied to
  /// already-computed pattern solutions. Public so alternative pattern
  /// executors (exec::) share modifier semantics bit-for-bit with the
  /// reference evaluator.
  Result<std::vector<Binding>> ApplyModifiers(const Query& query,
                                              std::vector<Binding> rows) const;

  /// One filter constraint against one mapping. Public for the same
  /// reason as ApplyModifiers: exec::FilterOp delegates here so filter
  /// semantics (unbound-variable errors, EXISTS) cannot drift.
  Result<bool> EvalFilter(const FilterExpr& f, const Binding& mu) const;

  /// Resets the step budget. The evaluator's own entry points do this
  /// implicitly; alternative executors that drive EvalFilter /
  /// ApplyModifiers directly start their per-query budget here.
  void ResetSteps() const { steps_ = 0; }

  /// All (start, end) pairs connected by a property path; fixing
  /// `s`/`o` (non-wildcard) restricts the search. Infallible: path
  /// evaluation under walk semantics always terminates on the finite
  /// store.
  std::vector<std::pair<SymbolId, SymbolId>> EvalPathPairs(
      const paths::Path& path, SymbolId s = kInvalidSymbol,
      SymbolId o = kInvalidSymbol) const;

 private:
  Result<std::vector<Binding>> EvalPatternImpl(const Pattern& p) const;
  Result<std::vector<Binding>> EvalQueryImpl(const Query& q) const;
  Result<std::vector<Binding>> EvalTriple(const TriplePattern& t) const;
  Result<std::vector<Binding>> EvalPath(const PathTriple& p) const;
  Result<std::vector<Binding>> Join(const std::vector<Binding>& a,
                                    const std::vector<Binding>& b) const;
  Result<std::vector<Binding>> LeftJoin(const std::vector<Binding>& a,
                                        const std::vector<Binding>& b) const;
  Result<std::vector<Binding>> MinusOp(const std::vector<Binding>& a,
                                       const std::vector<Binding>& b) const;
  std::vector<SymbolId> AllTerms() const;

  /// Charges `n` steps against the budget; kResourceExhausted on overrun.
  Status Charge(uint64_t n) const;

  const graph::TripleStore& store_;
  Interner* dict_;
  EvalLimits limits_;
  mutable uint64_t steps_ = 0;  // reset at each public entry point
};

}  // namespace rwdt::sparql

#endif  // RWDT_SPARQL_EVAL_H_
