#include "sparql/eval.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <set>

namespace rwdt::sparql {

bool Compatible(const Binding& a, const Binding& b) {
  // Iterate the smaller one.
  const Binding& small = a.size() <= b.size() ? a : b;
  const Binding& large = a.size() <= b.size() ? b : a;
  for (const auto& [var, val] : small) {
    auto it = large.find(var);
    if (it != large.end() && it->second != val) return false;
  }
  return true;
}

Evaluator::Evaluator(const graph::TripleStore& store, Interner* dict,
                     const EvalLimits& limits)
    : store_(store), dict_(dict), limits_(limits) {}

Status Evaluator::Charge(uint64_t n) const {
  steps_ += n;
  if (steps_ > limits_.max_steps) {
    return Status::ResourceExhausted(
        "evaluation exceeded " + std::to_string(limits_.max_steps) +
        " steps");
  }
  return Status::Ok();
}

namespace {

/// Merges two compatible bindings.
Binding Merge(const Binding& a, const Binding& b) {
  Binding out = a;
  out.insert(b.begin(), b.end());
  return out;
}

/// True when the string names a literal (interned with quotes).
bool IsLiteralName(const std::string& name) {
  return !name.empty() && name[0] == '"';
}

/// Numeric value of a literal, if it parses.
bool NumericValue(const std::string& name, double* out) {
  std::string body = name;
  if (IsLiteralName(body) && body.size() >= 2) {
    body = body.substr(1, body.size() - 2);
  }
  if (body.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(body.c_str(), &end);
  return end == body.c_str() + body.size();
}

}  // namespace

std::vector<SymbolId> Evaluator::AllTerms() const {
  std::set<SymbolId> terms;
  for (const auto& t : store_.triples()) {
    terms.insert(t.s);
    terms.insert(t.o);
  }
  return {terms.begin(), terms.end()};
}

Result<std::vector<Binding>> Evaluator::EvalTriple(
    const TriplePattern& t) const {
  const SymbolId s = t.s.ActsAsVar() ? kInvalidSymbol : t.s.id;
  const SymbolId p = t.p.ActsAsVar() ? kInvalidSymbol : t.p.id;
  const SymbolId o = t.o.ActsAsVar() ? kInvalidSymbol : t.o.id;
  std::vector<Binding> out;
  const auto matches = store_.Match(s, p, o);
  RWDT_RETURN_IF_ERROR(Charge(matches.size()));
  for (const auto& triple : matches) {
    Binding mu;
    bool consistent = true;
    auto bind = [&](const Term& term, SymbolId value) {
      if (!term.ActsAsVar()) return;
      auto [it, inserted] = mu.emplace(term.id, value);
      if (!inserted && it->second != value) consistent = false;
    };
    bind(t.s, triple.s);
    bind(t.p, triple.p);
    bind(t.o, triple.o);
    if (consistent) out.push_back(std::move(mu));
  }
  return out;
}

std::vector<std::pair<SymbolId, SymbolId>> Evaluator::EvalPathPairs(
    const paths::Path& path, SymbolId s, SymbolId o) const {
  using paths::PathOp;
  switch (path.op()) {
    case PathOp::kIri: {
      std::vector<std::pair<SymbolId, SymbolId>> out;
      for (const auto& t : store_.Match(s, path.iri(), o)) {
        out.emplace_back(t.s, t.o);
      }
      return out;
    }
    case PathOp::kNegated: {
      std::vector<std::pair<SymbolId, SymbolId>> out;
      // Forward-forbidden and inverse-forbidden sets.
      std::set<SymbolId> fwd, inv;
      for (const auto& [iri, inverted] : path.negated_set()) {
        (inverted ? inv : fwd).insert(iri);
      }
      if (inv.empty() || !fwd.empty()) {
        for (const auto& t : store_.Match(s, kInvalidSymbol, o)) {
          if (fwd.count(t.p) == 0) out.emplace_back(t.s, t.o);
        }
      }
      if (!inv.empty()) {
        for (const auto& t : store_.Match(o, kInvalidSymbol, s)) {
          if (inv.count(t.p) == 0) out.emplace_back(t.o, t.s);
        }
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    }
    case PathOp::kInverse: {
      auto pairs = EvalPathPairs(*path.child(), o, s);
      std::vector<std::pair<SymbolId, SymbolId>> out;
      out.reserve(pairs.size());
      for (const auto& [x, y] : pairs) out.emplace_back(y, x);
      return out;
    }
    case PathOp::kSeq: {
      // Fold left; keep intermediate endpoints unrestricted.
      std::vector<std::pair<SymbolId, SymbolId>> acc =
          EvalPathPairs(*path.children()[0], s, kInvalidSymbol);
      for (size_t i = 1; i < path.children().size(); ++i) {
        const bool last = i + 1 == path.children().size();
        std::set<std::pair<SymbolId, SymbolId>> next;
        for (const auto& [x, mid] : acc) {
          for (const auto& [m2, y] : EvalPathPairs(
                   *path.children()[i], mid, last ? o : kInvalidSymbol)) {
            (void)m2;
            next.emplace(x, y);
          }
        }
        acc.assign(next.begin(), next.end());
      }
      return acc;
    }
    case PathOp::kAlt: {
      std::set<std::pair<SymbolId, SymbolId>> out;
      for (const auto& c : path.children()) {
        for (const auto& pr : EvalPathPairs(*c, s, o)) out.insert(pr);
      }
      return {out.begin(), out.end()};
    }
    case PathOp::kOptional: {
      std::set<std::pair<SymbolId, SymbolId>> out;
      for (const auto& pr : EvalPathPairs(*path.child(), s, o)) {
        out.insert(pr);
      }
      // Zero-length matches: every graph term (restricted by s/o).
      if (s != kInvalidSymbol) {
        if (o == kInvalidSymbol || o == s) out.emplace(s, s);
      } else if (o != kInvalidSymbol) {
        out.emplace(o, o);
      } else {
        for (SymbolId t : AllTerms()) out.emplace(t, t);
      }
      return {out.begin(), out.end()};
    }
    case PathOp::kStar:
    case PathOp::kPlus: {
      // BFS closure from each candidate start.
      std::vector<SymbolId> starts;
      if (s != kInvalidSymbol) {
        starts.push_back(s);
      } else if (o != kInvalidSymbol && path.op() == PathOp::kPlus) {
        // Evaluate the reversed problem from o and flip.
        // (Simpler: fall through to all-starts when both unbound.)
        starts = AllTerms();
      } else {
        starts = AllTerms();
      }
      std::set<std::pair<SymbolId, SymbolId>> out;
      for (SymbolId start : starts) {
        std::set<SymbolId> seen;
        std::deque<SymbolId> queue;
        if (path.op() == PathOp::kStar) {
          if (o == kInvalidSymbol || o == start) out.emplace(start, start);
        }
        queue.push_back(start);
        seen.insert(start);
        while (!queue.empty()) {
          const SymbolId cur = queue.front();
          queue.pop_front();
          for (const auto& [x, y] :
               EvalPathPairs(*path.child(), cur, kInvalidSymbol)) {
            (void)x;
            if (seen.insert(y).second) queue.push_back(y);
            if (o == kInvalidSymbol || o == y) out.emplace(start, y);
          }
        }
      }
      // Deduplicate star self-pairs already handled; plus excludes them
      // unless reachable in >= 1 step (handled by construction).
      return {out.begin(), out.end()};
    }
  }
  return {};
}

Result<std::vector<Binding>> Evaluator::EvalPath(const PathTriple& p) const {
  const SymbolId s = p.s.ActsAsVar() ? kInvalidSymbol : p.s.id;
  const SymbolId o = p.o.ActsAsVar() ? kInvalidSymbol : p.o.id;
  std::vector<Binding> out;
  const auto pairs = EvalPathPairs(*p.path, s, o);
  RWDT_RETURN_IF_ERROR(Charge(pairs.size()));
  for (const auto& [x, y] : pairs) {
    Binding mu;
    bool consistent = true;
    if (p.s.ActsAsVar()) mu[p.s.id] = x;
    if (p.o.ActsAsVar()) {
      auto [it, inserted] = mu.emplace(p.o.id, y);
      if (!inserted && it->second != y) consistent = false;
    }
    if (consistent) out.push_back(std::move(mu));
  }
  return out;
}

Result<std::vector<Binding>> Evaluator::Join(
    const std::vector<Binding>& a, const std::vector<Binding>& b) const {
  std::vector<Binding> out;
  for (const auto& mu1 : a) {
    RWDT_RETURN_IF_ERROR(Charge(b.size()));
    for (const auto& mu2 : b) {
      if (Compatible(mu1, mu2)) out.push_back(Merge(mu1, mu2));
    }
  }
  return out;
}

Result<std::vector<Binding>> Evaluator::LeftJoin(
    const std::vector<Binding>& a, const std::vector<Binding>& b) const {
  std::vector<Binding> out;
  for (const auto& mu1 : a) {
    RWDT_RETURN_IF_ERROR(Charge(b.size()));
    bool any = false;
    for (const auto& mu2 : b) {
      if (Compatible(mu1, mu2)) {
        out.push_back(Merge(mu1, mu2));
        any = true;
      }
    }
    if (!any) out.push_back(mu1);
  }
  return out;
}

Result<std::vector<Binding>> Evaluator::MinusOp(
    const std::vector<Binding>& a, const std::vector<Binding>& b) const {
  std::vector<Binding> out;
  for (const auto& mu1 : a) {
    RWDT_RETURN_IF_ERROR(Charge(b.size()));
    bool excluded = false;
    for (const auto& mu2 : b) {
      if (!Compatible(mu1, mu2)) continue;
      // MINUS requires a shared domain variable.
      for (const auto& [var, val] : mu2) {
        (void)val;
        if (mu1.count(var) > 0) {
          excluded = true;
          break;
        }
      }
      if (excluded) break;
    }
    if (!excluded) out.push_back(mu1);
  }
  return out;
}

Result<bool> Evaluator::EvalFilter(const FilterExpr& f,
                                   const Binding& mu) const {
  switch (f.kind) {
    case FilterExpr::Kind::kUnaryTest: {
      if (!f.operand.ActsAsVar()) return true;
      auto it = mu.find(f.operand.id);
      if (f.function == "bound" || f.function == "BOUND") {
        return it != mu.end();
      }
      if (it == mu.end()) return false;  // error -> not selected
      const std::string& name = dict_->Name(it->second);
      if (f.function == "isIRI" || f.function == "isURI") {
        return !IsLiteralName(name) && name.substr(0, 2) != "_:";
      }
      if (f.function == "isLiteral") return IsLiteralName(name);
      if (f.function == "isBlank") return name.substr(0, 2) == "_:";
      if (f.function == "lang") {
        return name.find("@" + f.argument) != std::string::npos ||
               (f.argument.size() >= 2 &&
                name.find("@" + f.argument.substr(1, f.argument.size() - 2)) !=
                    std::string::npos);
      }
      if (f.function == "regex" || f.function == "contains" ||
          f.function == "strstarts" || f.function == "STRSTARTS" ||
          f.function == "CONTAINS" || f.function == "REGEX") {
        std::string needle = f.argument;
        if (needle.size() >= 2 && needle.front() == '"') {
          needle = needle.substr(1, needle.size() - 2);
        }
        return name.find(needle) != std::string::npos;
      }
      // Unknown unary tests pass when the variable is bound.
      return true;
    }
    case FilterExpr::Kind::kComparison: {
      auto value = [&](const Term& t, SymbolId* out) {
        if (t.kind == Term::Kind::kNone) return false;
        if (!t.ActsAsVar()) {
          *out = t.id;
          return true;
        }
        auto it = mu.find(t.id);
        if (it == mu.end()) return false;
        *out = it->second;
        return true;
      };
      SymbolId l, r;
      if (!value(f.lhs, &l) || !value(f.rhs, &r)) return false;
      if (f.cmp == FilterExpr::CmpOp::kEq) return l == r;
      if (f.cmp == FilterExpr::CmpOp::kNe) return l != r;
      const std::string& ln = dict_->Name(l);
      const std::string& rn = dict_->Name(r);
      double lv, rv;
      int c;
      if (NumericValue(ln, &lv) && NumericValue(rn, &rv)) {
        c = lv < rv ? -1 : (lv > rv ? 1 : 0);
      } else {
        c = ln.compare(rn);
      }
      switch (f.cmp) {
        case FilterExpr::CmpOp::kLt:
          return c < 0;
        case FilterExpr::CmpOp::kLe:
          return c <= 0;
        case FilterExpr::CmpOp::kGt:
          return c > 0;
        case FilterExpr::CmpOp::kGe:
          return c >= 0;
        default:
          return false;
      }
    }
    case FilterExpr::Kind::kAnd:
      for (const auto& c : f.children) {
        RWDT_ASSIGN_OR_RETURN(const bool pass, EvalFilter(*c, mu));
        if (!pass) return false;
      }
      return true;
    case FilterExpr::Kind::kOr:
      for (const auto& c : f.children) {
        RWDT_ASSIGN_OR_RETURN(const bool pass, EvalFilter(*c, mu));
        if (pass) return true;
      }
      return false;
    case FilterExpr::Kind::kNot: {
      RWDT_ASSIGN_OR_RETURN(const bool pass, EvalFilter(*f.children[0], mu));
      return !pass;
    }
    case FilterExpr::Kind::kExistsPattern:
    case FilterExpr::Kind::kNotExistsPattern: {
      RWDT_ASSIGN_OR_RETURN(const std::vector<Binding> results,
                            EvalPatternImpl(*f.pattern));
      bool exists = false;
      for (const auto& mu2 : results) {
        if (Compatible(mu, mu2)) {
          exists = true;
          break;
        }
      }
      return f.kind == FilterExpr::Kind::kExistsPattern ? exists : !exists;
    }
  }
  return Status::Unsupported("unknown filter kind");
}

Result<std::vector<Binding>> Evaluator::EvalPattern(const Pattern& p) const {
  steps_ = 0;
  return EvalPatternImpl(p);
}

Result<std::vector<Binding>> Evaluator::EvalPatternImpl(
    const Pattern& p) const {
  switch (p.op) {
    case Pattern::Op::kTriple:
      return EvalTriple(p.triple);
    case Pattern::Op::kPath:
      return EvalPath(p.path);
    case Pattern::Op::kAnd: {
      std::vector<Binding> acc = {Binding{}};
      for (const auto& c : p.children) {
        RWDT_ASSIGN_OR_RETURN(const std::vector<Binding> rows,
                              EvalPatternImpl(*c));
        RWDT_ASSIGN_OR_RETURN(acc, Join(acc, rows));
        if (acc.empty()) break;
      }
      return acc;
    }
    case Pattern::Op::kFilter: {
      std::vector<Binding> out;
      RWDT_ASSIGN_OR_RETURN(std::vector<Binding> rows,
                            EvalPatternImpl(*p.children[0]));
      for (auto& mu : rows) {
        RWDT_ASSIGN_OR_RETURN(const bool pass, EvalFilter(*p.filter, mu));
        if (pass) out.push_back(std::move(mu));
      }
      return out;
    }
    case Pattern::Op::kUnion: {
      RWDT_ASSIGN_OR_RETURN(std::vector<Binding> out,
                            EvalPatternImpl(*p.children[0]));
      RWDT_ASSIGN_OR_RETURN(std::vector<Binding> right,
                            EvalPatternImpl(*p.children[1]));
      for (auto& mu : right) out.push_back(std::move(mu));
      return out;
    }
    case Pattern::Op::kOptional: {
      RWDT_ASSIGN_OR_RETURN(const std::vector<Binding> left,
                            EvalPatternImpl(*p.children[0]));
      RWDT_ASSIGN_OR_RETURN(const std::vector<Binding> right,
                            EvalPatternImpl(*p.children[1]));
      return LeftJoin(left, right);
    }
    case Pattern::Op::kMinus: {
      RWDT_ASSIGN_OR_RETURN(const std::vector<Binding> left,
                            EvalPatternImpl(*p.children[0]));
      RWDT_ASSIGN_OR_RETURN(const std::vector<Binding> right,
                            EvalPatternImpl(*p.children[1]));
      return MinusOp(left, right);
    }
    case Pattern::Op::kGraph:
    case Pattern::Op::kService: {
      // Single default graph; a variable name binds to the default IRI.
      RWDT_ASSIGN_OR_RETURN(std::vector<Binding> inner,
                            EvalPatternImpl(*p.children[0]));
      if (p.graph_name.ActsAsVar()) {
        const SymbolId def = dict_->Intern("urn:rwdt:default");
        for (auto& mu : inner) mu.emplace(p.graph_name.id, def);
      }
      return inner;
    }
    case Pattern::Op::kBind: {
      std::vector<Binding> inner;
      if (p.children.empty()) {
        inner = {Binding{}};
      } else {
        RWDT_ASSIGN_OR_RETURN(inner, EvalPatternImpl(*p.children[0]));
      }
      for (auto& mu : inner) {
        if (!p.bind_var.ActsAsVar()) continue;
        if (p.bind_source.kind == Term::Kind::kNone) continue;
        if (p.bind_source.ActsAsVar()) {
          auto it = mu.find(p.bind_source.id);
          if (it != mu.end()) mu.emplace(p.bind_var.id, it->second);
        } else {
          mu.emplace(p.bind_var.id, p.bind_source.id);
        }
      }
      return inner;
    }
    case Pattern::Op::kValues: {
      std::vector<Binding> out;
      for (const auto& row : p.values_rows) {
        Binding mu;
        for (size_t i = 0; i < row.size() && i < p.values_vars.size();
             ++i) {
          if (row[i].kind == Term::Kind::kNone) continue;  // UNDEF
          if (p.values_vars[i].ActsAsVar()) {
            mu[p.values_vars[i].id] = row[i].id;
          }
        }
        out.push_back(std::move(mu));
      }
      return out;
    }
    case Pattern::Op::kSubquery:
      if (p.subquery == nullptr) {
        return Status::Internal("subquery pattern without a query");
      }
      return EvalQueryImpl(*p.subquery);
  }
  return Status::Unsupported("unsupported pattern operator");
}

Result<std::vector<Binding>> Evaluator::ApplyModifiers(
    const Query& q, std::vector<Binding> rows) const {
  // Grouping and aggregation for queries that use them.
  const bool has_aggregates = std::any_of(
      q.projection.begin(), q.projection.end(),
      [](const SelectItem& item) { return item.aggregate.has_value(); });
  if (has_aggregates || !q.modifiers.group_by.empty()) {
    // Group key = values of group-by variables.
    std::map<std::vector<SymbolId>, std::vector<Binding>> groups;
    for (auto& mu : rows) {
      std::vector<SymbolId> key;
      for (const Term& g : q.modifiers.group_by) {
        auto it = mu.find(g.id);
        key.push_back(it == mu.end() ? kInvalidSymbol : it->second);
      }
      groups[key].push_back(std::move(mu));
    }
    if (groups.empty() && q.modifiers.group_by.empty()) {
      groups[{}] = {};  // aggregates over the empty solution set
    }

    std::vector<Binding> grouped;
    for (auto& [key, members] : groups) {
      Binding mu;
      for (size_t i = 0; i < q.modifiers.group_by.size(); ++i) {
        if (key[i] != kInvalidSymbol) {
          mu[q.modifiers.group_by[i].id] = key[i];
        }
      }
      for (const auto& item : q.projection) {
        if (!item.aggregate.has_value()) continue;
        double acc = 0;
        uint64_t count = 0;
        bool first = true;
        for (const auto& member : members) {
          SymbolId value = kInvalidSymbol;
          if (item.aggregate_arg.kind == Term::Kind::kNone) {
            ++count;  // COUNT(*)
            continue;
          }
          auto it = member.find(item.aggregate_arg.id);
          if (it == member.end()) continue;
          value = it->second;
          ++count;
          double v = 0;
          const std::string& name = dict_->Name(value);
          std::string body = name;
          if (!body.empty() && body[0] == '"' && body.size() >= 2) {
            body = body.substr(1, body.size() - 2);
          }
          char* end = nullptr;
          v = std::strtod(body.c_str(), &end);
          const bool numeric = end == body.c_str() + body.size() &&
                               !body.empty();
          switch (*item.aggregate) {
            case Aggregate::kCount:
              break;
            case Aggregate::kSum:
            case Aggregate::kAvg:
              if (numeric) acc += v;
              break;
            case Aggregate::kMin:
              if (numeric && (first || v < acc)) acc = v;
              break;
            case Aggregate::kMax:
              if (numeric && (first || v > acc)) acc = v;
              break;
          }
          first = false;
        }
        double result = acc;
        if (*item.aggregate == Aggregate::kCount) {
          result = static_cast<double>(count);
        } else if (*item.aggregate == Aggregate::kAvg && count > 0) {
          result = acc / static_cast<double>(count);
        }
        char buf[32];
        if (result == static_cast<uint64_t>(result)) {
          std::snprintf(buf, sizeof(buf), "\"%llu\"",
                        static_cast<unsigned long long>(result));
        } else {
          std::snprintf(buf, sizeof(buf), "\"%g\"", result);
        }
        if (item.var.ActsAsVar()) mu[item.var.id] = dict_->Intern(buf);
      }
      grouped.push_back(std::move(mu));
    }
    rows = std::move(grouped);
  }

  if (q.modifiers.having != nullptr) {
    std::vector<Binding> kept;
    for (auto& mu : rows) {
      RWDT_ASSIGN_OR_RETURN(const bool pass,
                            EvalFilter(*q.modifiers.having, mu));
      if (pass) kept.push_back(std::move(mu));
    }
    rows = std::move(kept);
  }

  // Projection (Select with explicit variables).
  if (q.form == QueryForm::kSelect && !q.select_star &&
      !q.projection.empty()) {
    for (auto& mu : rows) {
      Binding projected;
      for (const auto& item : q.projection) {
        auto it = mu.find(item.var.id);
        if (it != mu.end()) projected.emplace(it->first, it->second);
      }
      mu = std::move(projected);
    }
  }

  // Order by (term-name order; numeric literals numerically).
  if (!q.modifiers.order_by.empty()) {
    std::stable_sort(
        rows.begin(), rows.end(),
        [&](const Binding& a, const Binding& b) {
          for (size_t i = 0; i < q.modifiers.order_by.size(); ++i) {
            const SymbolId var = q.modifiers.order_by[i].id;
            auto ita = a.find(var);
            auto itb = b.find(var);
            const std::string na =
                ita == a.end() ? "" : dict_->Name(ita->second);
            const std::string nb =
                itb == b.end() ? "" : dict_->Name(itb->second);
            double va, vb;
            int c;
            if (NumericValue(na, &va) && NumericValue(nb, &vb)) {
              c = va < vb ? -1 : (va > vb ? 1 : 0);
            } else {
              c = na.compare(nb);
            }
            const bool desc = i < q.modifiers.order_desc.size() &&
                              q.modifiers.order_desc[i];
            if (c != 0) return desc ? c > 0 : c < 0;
          }
          return false;
        });
  }

  if (q.modifiers.distinct || q.modifiers.reduced) {
    std::set<Binding> seen;
    std::vector<Binding> unique;
    for (auto& mu : rows) {
      if (seen.insert(mu).second) unique.push_back(std::move(mu));
    }
    rows = std::move(unique);
  }

  const uint64_t offset = q.modifiers.offset.value_or(0);
  if (offset > 0) {
    if (offset >= rows.size()) {
      rows.clear();
    } else {
      rows.erase(rows.begin(), rows.begin() + static_cast<long>(offset));
    }
  }
  if (q.modifiers.limit.has_value() && rows.size() > *q.modifiers.limit) {
    rows.resize(*q.modifiers.limit);
  }
  return rows;
}

Result<std::vector<Binding>> Evaluator::EvalQuery(const Query& q) const {
  steps_ = 0;
  return EvalQueryImpl(q);
}

Result<std::vector<Binding>> Evaluator::EvalQueryImpl(const Query& q) const {
  std::vector<Binding> rows;
  if (q.pattern != nullptr) {
    RWDT_ASSIGN_OR_RETURN(rows, EvalPatternImpl(*q.pattern));
  } else {
    rows = {Binding{}};
  }
  return ApplyModifiers(q, std::move(rows));
}

Result<bool> Evaluator::Ask(const Query& q) const {
  RWDT_ASSIGN_OR_RETURN(const std::vector<Binding> rows, EvalQuery(q));
  return !rows.empty();
}

}  // namespace rwdt::sparql
