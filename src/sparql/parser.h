#ifndef RWDT_SPARQL_PARSER_H_
#define RWDT_SPARQL_PARSER_H_

#include <string_view>

#include "common/flat_interner.h"
#include "common/interner.h"
#include "common/status.h"
#include "sparql/algebra.h"

namespace rwdt::sparql {

/// Per-query resource guards. Real logs contain adversarially large
/// queries; the parser refuses to run away and instead returns
/// `Code::kResourceExhausted`, which the ingest pipeline counts under
/// its error taxonomy.
struct ParseLimits {
  /// Queries longer than this many bytes are rejected up front.
  size_t max_query_bytes = 1 << 20;  // 1 MiB
  /// Budget on parser steps (~= AST nodes + tokens). Each term, pattern
  /// node, filter node, and path expression consumes one step, including
  /// inside subqueries; 0 is invalid (use Validate()).
  size_t max_parser_steps = 1 << 20;

  /// Rejects nonsensical limits (a zero budget would fail every query).
  Status Validate() const;
};

/// Parses a SPARQL(-subset) query into the algebra of algebra.h.
///
/// Supported: PREFIX/BASE headers (prefixes are kept as written, not
/// expanded), SELECT (DISTINCT/REDUCED, projections, aggregates as
/// "(AGG(?x) AS ?y)"), ASK, CONSTRUCT, DESCRIBE; group graph patterns
/// with triple blocks ('.', ';', ',' notation), property paths in
/// predicate position, FILTER (comparisons, unary built-ins, && || !,
/// (NOT) EXISTS), OPTIONAL, UNION, GRAPH, BIND, VALUES, MINUS, SERVICE,
/// subqueries; solution modifiers GROUP BY / HAVING / ORDER BY / LIMIT /
/// OFFSET.
///
/// Variables, IRIs, and literals are interned into `dict`; variables are
/// interned with their '?' prefix so they never collide with IRIs.
///
/// Errors carry a `Code` that maps onto the ingest taxonomy: kLexError
/// for malformed tokens, kParseError for grammar violations,
/// kUnsupported for recognized-but-unsupported syntax, and
/// kResourceExhausted when `limits` are exceeded.
/// The FlatInterner overloads are the engine's allocation-free hot path:
/// the caller keeps one arena-backed dictionary per worker and Clear()s
/// it between queries instead of rebuilding a hash map per parse. Both
/// dictionary types yield identical ASTs for identical inputs.
Result<Query> ParseSparql(std::string_view input, Interner* dict);
Result<Query> ParseSparql(std::string_view input, Interner* dict,
                          const ParseLimits& limits);
Result<Query> ParseSparql(std::string_view input, FlatInterner* dict);
Result<Query> ParseSparql(std::string_view input, FlatInterner* dict,
                          const ParseLimits& limits);

}  // namespace rwdt::sparql

#endif  // RWDT_SPARQL_PARSER_H_
