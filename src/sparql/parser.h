#ifndef RWDT_SPARQL_PARSER_H_
#define RWDT_SPARQL_PARSER_H_

#include <string_view>

#include "common/interner.h"
#include "common/status.h"
#include "sparql/algebra.h"

namespace rwdt::sparql {

/// Parses a SPARQL(-subset) query into the algebra of algebra.h.
///
/// Supported: PREFIX/BASE headers (prefixes are kept as written, not
/// expanded), SELECT (DISTINCT/REDUCED, projections, aggregates as
/// "(AGG(?x) AS ?y)"), ASK, CONSTRUCT, DESCRIBE; group graph patterns
/// with triple blocks ('.', ';', ',' notation), property paths in
/// predicate position, FILTER (comparisons, unary built-ins, && || !,
/// (NOT) EXISTS), OPTIONAL, UNION, GRAPH, BIND, VALUES, MINUS, SERVICE,
/// subqueries; solution modifiers GROUP BY / HAVING / ORDER BY / LIMIT /
/// OFFSET.
///
/// Variables, IRIs, and literals are interned into `dict`; variables are
/// interned with their '?' prefix so they never collide with IRIs.
Result<Query> ParseSparql(std::string_view input, Interner* dict);

}  // namespace rwdt::sparql

#endif  // RWDT_SPARQL_PARSER_H_
