#ifndef RWDT_SCHEMA_DTD_H_
#define RWDT_SCHEMA_DTD_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "regex/ast.h"
#include "regex/automaton.h"
#include "tree/tree.h"

namespace rwdt::schema {

/// A Document Type Definition d = (Sigma, rho, S) (Definition 4.1):
/// rules map labels to content models (regular expressions over labels);
/// labels without a rule admit no children. `any` labels use DTD's
/// ANY content (any children allowed).
struct Dtd {
  std::map<SymbolId, regex::RegexPtr> rules;
  std::set<SymbolId> start;
  std::set<SymbolId> any;  // labels declared ANY

  /// Implicit alphabet: labels occurring in rules, starts, or contents.
  std::set<SymbolId> Alphabet() const;
};

/// Outcome of validating one tree.
struct ValidationResult {
  bool valid = false;
  /// First offending node (child word not in content model or bad root).
  tree::NodeId offending_node = tree::kNoNode;
  std::string message;
};

/// Validates trees against a DTD; content models are compiled to DFAs
/// once and reused across trees.
class DtdValidator {
 public:
  explicit DtdValidator(const Dtd& dtd);

  ValidationResult Validate(const tree::Tree& t) const;

 private:
  const Dtd& dtd_;
  std::map<SymbolId, regex::Dfa> dfas_;
};

/// True iff the rule graph (a -> b when b occurs in rho(a)) has a directed
/// cycle reachable from a start label (Choi's recursion analysis,
/// Section 4.1: 35 of his 60 DTDs were recursive).
bool IsRecursive(const Dtd& dtd);

/// Maximum depth (in nodes) of any tree valid w.r.t. the DTD; nullopt when
/// the DTD is recursive (depth unbounded). Choi observed non-recursive
/// DTDs allowing depth up to 20.
std::optional<size_t> MaxDocumentDepth(const Dtd& dtd);

/// SAX-style streaming validator: feed StartElement/EndElement events in
/// document order. Memory use is one DFA state per open element, so for
/// non-recursive DTDs the stack depth is bounded by MaxDocumentDepth
/// (Segoufin-Vianu constant-memory validation, Section 4.1).
class StreamingDtdValidator {
 public:
  explicit StreamingDtdValidator(const Dtd& dtd);

  /// Both return false when the document is already known invalid.
  bool StartElement(SymbolId label);
  bool EndElement();

  /// True iff all events were consistent and the document is complete
  /// (the single root was opened and closed).
  bool Finish() const;

  /// High-water mark of the open-element stack (memory footprint).
  size_t max_stack_depth() const { return max_stack_depth_; }

 private:
  struct Frame {
    SymbolId label;
    regex::State state;
    bool any;
  };

  const Dtd& dtd_;
  std::map<SymbolId, regex::Dfa> dfas_;
  std::vector<Frame> stack_;
  bool failed_ = false;
  bool root_seen_ = false;
  bool root_closed_ = false;
  size_t max_stack_depth_ = 0;
};

/// Parses real-world DTD syntax:
///   <!ELEMENT persons (person*)>
///   <!ELEMENT person (name, birthplace)>
///   <!ELEMENT name (#PCDATA)>
///   <!ELEMENT note EMPTY>
///   <!ELEMENT extra ANY>
/// Operators: ',' concatenation, '|' union, postfix '*' '+' '?'. Mixed
/// content (#PCDATA|a|b)* is modeled as (a|b)*. The first declared
/// element becomes the start label.
Result<Dtd> ParseDtd(std::string_view input, Interner* dict);

/// Renders the DTD back to <!ELEMENT ...> syntax.
std::string DtdToString(const Dtd& dtd, const Interner& dict);

}  // namespace rwdt::schema

#endif  // RWDT_SCHEMA_DTD_H_
