#ifndef RWDT_SCHEMA_JSON_SCHEMA_H_
#define RWDT_SCHEMA_JSON_SCHEMA_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "tree/json.h"

namespace rwdt::schema {

/// A JSON Schema assertion. Unlike DTD/XML Schema, JSON Schema follows a
/// logic-based approach (paper Section 4.5): schemas are Boolean
/// combinations of assertions over objects, arrays, and base values.
class JsonSchema;
using JsonSchemaPtr = std::shared_ptr<const JsonSchema>;

class JsonSchema {
 public:
  enum class Kind {
    kAny,      // accepts everything ("true" schema)
    kType,     // type: null/boolean/number/string/object/array
    kEnum,     // enumeration of scalar values (as serialized strings)
    kObject,   // properties / required / additionalProperties
    kArray,    // items / minItems / maxItems
    kNumber,   // minimum / maximum
    kNot,      // negation
    kAllOf,    // conjunction
    kAnyOf,    // disjunction
    kRef,      // reference into the document's definitions
  };

  struct Property {
    std::string name;
    JsonSchemaPtr schema;
    bool required = false;
  };

  Kind kind = Kind::kAny;
  // kType:
  std::string type_name;
  // kEnum:
  std::vector<std::string> enum_values;
  // kObject:
  std::vector<Property> properties;
  /// false == "schema-full": properties not mentioned are forbidden.
  /// true == "schema-mixed" (the JSON Schema default).
  bool additional_properties = true;
  // kArray:
  JsonSchemaPtr items;
  std::optional<size_t> min_items, max_items;
  // kNumber:
  std::optional<double> minimum, maximum;
  // kNot / kAllOf / kAnyOf:
  std::vector<JsonSchemaPtr> children;
  // kRef:
  std::string ref_name;
};

/// A schema document: a root schema plus named definitions ($defs), which
/// enable recursion.
struct JsonSchemaDoc {
  JsonSchemaPtr root;
  std::map<std::string, JsonSchemaPtr> definitions;
};

/// Parses a schema from its JSON representation. Supported keywords:
/// type, enum, properties, required, additionalProperties, items,
/// minItems, maxItems, minimum, maximum, not, allOf, anyOf, $ref, $defs.
Result<JsonSchemaDoc> ParseJsonSchema(const tree::JsonPtr& json);

/// Text entry point with the library-wide parser shape: parses the JSON
/// first (keys interned into `dict`), then the schema.
Result<JsonSchemaDoc> ParseJsonSchema(std::string_view input,
                                      Interner* dict);

/// Validates an instance against the schema document.
bool ValidateJsonSchema(const JsonSchemaDoc& doc, const tree::JsonPtr& value);

/// Structural statistics in the style of the Maiwald et al. and Baazizi
/// et al. studies (Section 4.5).
struct JsonSchemaStats {
  size_t size = 0;            // number of schema nodes
  bool recursive = false;     // $ref cycle among definitions
  size_t max_depth = 0;       // nesting depth (non-recursive schemas)
  bool uses_negation = false; // any "not"
  bool schema_full = false;   // any additionalProperties: false
};

JsonSchemaStats AnalyzeJsonSchema(const JsonSchemaDoc& doc);

}  // namespace rwdt::schema

#endif  // RWDT_SCHEMA_JSON_SCHEMA_H_
