#include "schema/edtd.h"

#include <algorithm>

#include "regex/glushkov.h"

namespace rwdt::schema {

std::set<SymbolId> Edtd::Types() const {
  std::set<SymbolId> out(start_types.begin(), start_types.end());
  for (const auto& [type, content] : rules) {
    out.insert(type);
    content->CollectAlphabet(&out);
  }
  for (const auto& [type, label] : mu) {
    (void)label;
    out.insert(type);
  }
  return out;
}

bool IsSingleType(const Edtd& edtd) {
  auto single = [&](const std::set<SymbolId>& types) {
    std::map<SymbolId, SymbolId> label_to_type;
    for (SymbolId t : types) {
      auto it = edtd.mu.find(t);
      const SymbolId label = it == edtd.mu.end() ? t : it->second;
      auto [pos, inserted] = label_to_type.emplace(label, t);
      if (!inserted && pos->second != t) return false;
    }
    return true;
  };
  if (!single(edtd.start_types)) return false;
  for (const auto& [type, content] : edtd.rules) {
    (void)type;
    if (!single(content->Alphabet())) return false;
  }
  return true;
}

namespace {

SymbolId LabelOf(const Edtd& edtd, SymbolId type) {
  auto it = edtd.mu.find(type);
  return it == edtd.mu.end() ? type : it->second;
}

}  // namespace

bool ValidateEdtd(const Edtd& edtd, const tree::Tree& t) {
  if (t.empty()) return false;
  // Compile rules to NFAs over types once.
  std::map<SymbolId, regex::Nfa> nfas;
  for (const auto& [type, content] : edtd.rules) {
    nfas.emplace(type, regex::ToNfa(content));
  }
  // Bottom-up feasible-type sets. Process nodes in reverse pre-order (all
  // children come after their parent in pre-order, so reverse order is a
  // valid bottom-up schedule).
  const auto order = t.PreOrder();
  const std::set<SymbolId> all_types = edtd.Types();
  std::vector<std::set<SymbolId>> feasible(t.NumNodes());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const tree::NodeId id = *it;
    const SymbolId label = t.node(id).label;
    for (SymbolId type : all_types) {
      if (LabelOf(edtd, type) != label) continue;
      // Children must admit a typing matching rho(type); types without a
      // rule admit no children.
      const auto& children = t.node(id).children;
      auto rule = nfas.find(type);
      if (rule == nfas.end()) {
        if (children.empty()) feasible[id].insert(type);
        continue;
      }
      // Run the NFA over the "set-labeled" child word: a transition on
      // type t' is enabled at child c when t' is feasible for c.
      const regex::Nfa& nfa = rule->second;
      std::set<regex::State> current(nfa.start.begin(), nfa.start.end());
      bool dead = false;
      for (tree::NodeId c : children) {
        std::set<regex::State> next;
        for (regex::State q : current) {
          for (const auto& [sym, target] : nfa.trans[q]) {
            if (feasible[c].count(sym) > 0) next.insert(target);
          }
        }
        current = std::move(next);
        if (current.empty()) {
          dead = true;
          break;
        }
      }
      if (dead) continue;
      for (regex::State q : current) {
        if (nfa.accept[q]) {
          feasible[id].insert(type);
          break;
        }
      }
    }
  }
  for (SymbolId s : edtd.start_types) {
    if (feasible[t.root()].count(s) > 0) return true;
  }
  return false;
}

bool ValidateSingleType(const Edtd& edtd, const tree::Tree& t,
                        std::vector<SymbolId>* typing) {
  if (t.empty()) return false;
  std::map<SymbolId, regex::Dfa> dfas;
  for (const auto& [type, content] : edtd.rules) {
    dfas.emplace(type, regex::ToDfa(content));
  }
  // Map (type, child label) -> unique child type, per single-typedness.
  std::vector<SymbolId> types(t.NumNodes(), kInvalidSymbol);

  // Root type: unique start type whose label matches.
  const SymbolId root_label = t.node(t.root()).label;
  for (SymbolId s : edtd.start_types) {
    if (LabelOf(edtd, s) == root_label) {
      types[t.root()] = s;
      break;
    }
  }
  if (types[t.root()] == kInvalidSymbol) return false;

  for (tree::NodeId id : t.PreOrder()) {
    const SymbolId type = types[id];
    const auto& children = t.node(id).children;
    auto rule = dfas.find(type);
    if (rule == dfas.end()) {
      if (!children.empty()) return false;
      continue;
    }
    // Unique type per label in this content model.
    std::map<SymbolId, SymbolId> type_of_label;
    for (SymbolId ct : edtd.rules.at(type)->Alphabet()) {
      type_of_label[LabelOf(edtd, ct)] = ct;
    }
    regex::State state = rule->second.start;
    for (tree::NodeId c : children) {
      auto it = type_of_label.find(t.node(c).label);
      if (it == type_of_label.end()) return false;
      types[c] = it->second;
      state = rule->second.Step(state, it->second);
      if (state == regex::kNoState) return false;
    }
    if (!rule->second.accept[state]) return false;
  }
  if (typing != nullptr) *typing = types;
  return true;
}

Edtd DtdAsEdtd(const Dtd& dtd) {
  Edtd edtd;
  edtd.rules = dtd.rules;
  edtd.start_types.insert(dtd.start.begin(), dtd.start.end());
  for (SymbolId label : dtd.Alphabet()) edtd.mu[label] = label;
  return edtd;
}

bool IsStructurallyDtd(const Edtd& edtd) {
  std::map<SymbolId, SymbolId> label_to_type;
  for (SymbolId t : edtd.Types()) {
    auto [pos, inserted] = label_to_type.emplace(LabelOf(edtd, t), t);
    if (!inserted && pos->second != t) return false;
  }
  return true;
}

}  // namespace rwdt::schema
