#include "schema/bonxai.h"

#include <algorithm>
#include <deque>
#include <map>

#include "regex/glushkov.h"
#include "regex/state_elimination.h"

namespace rwdt::schema {
namespace {

/// Pattern match states as a bitmask: bit i set == steps 1..i matched.
/// Bit 0 ("nothing matched yet") is always trackable; patterns are
/// limited to 63 steps, far beyond practical schemas.
uint64_t InitialStates() { return 1ull; }

uint64_t Advance(const PathPattern& pattern, uint64_t states,
                 SymbolId label) {
  uint64_t next = 0;
  const size_t k = pattern.steps.size();
  for (size_t i = 0; i <= k; ++i) {
    if (((states >> i) & 1) == 0) continue;
    if (i < k) {
      const PathStep& step = pattern.steps[i];
      if (step.axis == PathStep::Axis::kDescendant) {
        next |= 1ull << i;  // skip this label, stay waiting
      }
      if (step.label == label) next |= 1ull << (i + 1);
    }
    // A fully-matched state does not persist: the pattern selects the
    // node at which the match completes, not its descendants...
    // Except that descendants may restart partial matches, which the
    // earlier bits already track.
  }
  return next;
}

bool Selected(const PathPattern& pattern, uint64_t states) {
  return ((states >> pattern.steps.size()) & 1) != 0;
}

}  // namespace

bool PathPattern::Matches(const std::vector<SymbolId>& path) const {
  uint64_t states = InitialStates();
  for (SymbolId label : path) states = Advance(*this, states, label);
  return Selected(*this, states);
}

std::string PathPattern::ToString(const Interner& dict) const {
  std::string out;
  for (const auto& step : steps) {
    out += step.axis == PathStep::Axis::kDescendant ? "//" : "/";
    out += dict.Name(step.label);
  }
  return out;
}

Result<PathPattern> ParsePathPattern(std::string_view input,
                                     Interner* dict) {
  PathPattern pattern;
  size_t pos = 0;
  if (input.empty()) return Status::ParseError("empty pattern");
  if (input[0] != '/') {
    // Bare label shorthand: "a" == "//a".
    PathStep step;
    step.axis = PathStep::Axis::kDescendant;
    step.label = dict->Intern(input);
    pattern.steps.push_back(step);
    return pattern;
  }
  while (pos < input.size()) {
    PathStep step;
    if (input.substr(pos, 2) == "//") {
      step.axis = PathStep::Axis::kDescendant;
      pos += 2;
    } else if (input[pos] == '/') {
      step.axis = PathStep::Axis::kChild;
      pos += 1;
    } else {
      return Status::ParseError("expected '/' in pattern");
    }
    std::string name;
    while (pos < input.size() && input[pos] != '/') name += input[pos++];
    if (name.empty()) return Status::ParseError("empty step label");
    step.label = dict->Intern(name);
    pattern.steps.push_back(step);
  }
  if (pattern.steps.size() > 63) {
    return Status::Unsupported("patterns limited to 63 steps");
  }
  return pattern;
}

bool ValidateBonxai(const BonxaiSchema& schema, const tree::Tree& t,
                    tree::NodeId* offending) {
  if (t.empty()) return false;
  // Compile content models once.
  std::vector<regex::Dfa> content(schema.rules.size());
  for (size_t r = 0; r < schema.rules.size(); ++r) {
    content[r] = regex::ToDfa(schema.rules[r].content);
  }
  // DFS with per-rule pattern states along the path.
  struct Item {
    tree::NodeId node;
    std::vector<uint64_t> states;
  };
  std::vector<Item> stack;
  {
    Item root;
    root.node = t.root();
    for (const auto& rule : schema.rules) {
      root.states.push_back(
          Advance(rule.pattern, InitialStates(), t.node(t.root()).label));
    }
    stack.push_back(std::move(root));
  }
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    const auto word = t.ChildLabels(item.node);
    bool selected_any = false;
    for (size_t r = 0; r < schema.rules.size(); ++r) {
      if (!Selected(schema.rules[r].pattern, item.states[r])) continue;
      selected_any = true;
      if (!content[r].Accepts(word)) {
        if (offending != nullptr) *offending = item.node;
        return false;
      }
    }
    if (!selected_any) {
      if (offending != nullptr) *offending = item.node;
      return false;
    }
    for (tree::NodeId c : t.node(item.node).children) {
      Item child;
      child.node = c;
      child.states.reserve(schema.rules.size());
      for (size_t r = 0; r < schema.rules.size(); ++r) {
        child.states.push_back(
            Advance(schema.rules[r].pattern, item.states[r],
                    t.node(c).label));
      }
      stack.push_back(std::move(child));
    }
  }
  return true;
}

BonxaiSchema DtdToBonxai(const Dtd& dtd) {
  BonxaiSchema schema;
  for (const auto& [label, rule_content] : dtd.rules) {
    BonxaiSchema::Rule rule;
    PathStep step;
    step.axis = PathStep::Axis::kDescendant;
    step.label = label;
    rule.pattern.steps.push_back(step);
    rule.content = rule_content;
    schema.rules.push_back(std::move(rule));
  }
  return schema;
}

Edtd BonxaiToSingleTypeEdtd(const BonxaiSchema& schema,
                            const std::vector<SymbolId>& alphabet,
                            Interner* dict) {
  // A type is (label, per-rule pattern state). Types are discovered by
  // BFS from the possible root types.
  using Key = std::pair<SymbolId, std::vector<uint64_t>>;
  std::map<Key, SymbolId> type_of;
  std::deque<Key> queue;
  Edtd edtd;

  // Per-rule complete content DFAs over `alphabet` (label level).
  std::vector<regex::Dfa> content(schema.rules.size());
  std::vector<SymbolId> sorted_alphabet(alphabet);
  std::sort(sorted_alphabet.begin(), sorted_alphabet.end());
  for (size_t r = 0; r < schema.rules.size(); ++r) {
    content[r] =
        regex::Complete(regex::ToDfa(schema.rules[r].content),
                        sorted_alphabet);
  }

  auto selecting = [&](const Key& key) {
    std::vector<size_t> out;
    for (size_t r = 0; r < schema.rules.size(); ++r) {
      if (Selected(schema.rules[r].pattern, key.second[r])) out.push_back(r);
    }
    return out;
  };

  auto intern_type = [&](const Key& key) {
    auto it = type_of.find(key);
    if (it != type_of.end()) return it->second;
    const SymbolId type = dict->Intern(
        "bonxai-type-" + std::to_string(type_of.size()));
    type_of.emplace(key, type);
    edtd.mu[type] = key.first;
    queue.push_back(key);
    return type;
  };

  // Root types: one per alphabet label whose key selects >= 1 rule.
  for (SymbolId l : sorted_alphabet) {
    Key key;
    key.first = l;
    for (const auto& rule : schema.rules) {
      key.second.push_back(Advance(rule.pattern, InitialStates(), l));
    }
    if (!selecting(key).empty()) {
      edtd.start_types.insert(intern_type(key));
    }
  }

  while (!queue.empty()) {
    const Key key = queue.front();
    queue.pop_front();
    const SymbolId type = type_of.at(key);
    const std::vector<size_t> rules = selecting(key);
    // (Dead keys are never interned.)

    // Product DFA of the selecting rules' content models over labels.
    // States: tuple of per-rule DFA states; we fold into a single DFA by
    // iterated product.
    regex::Dfa product = content[rules[0]];
    for (size_t i = 1; i < rules.size(); ++i) {
      product = regex::Product(product, content[rules[i]], true);
    }

    // Relabel label transitions with child types; drop transitions to
    // dead child keys (those reject the tree anyway).
    regex::Dfa typed;
    typed.start = product.start;
    typed.accept = product.accept;
    std::vector<SymbolId> child_types(sorted_alphabet.size(),
                                      kInvalidSymbol);
    for (size_t a = 0; a < sorted_alphabet.size(); ++a) {
      Key child_key;
      child_key.first = sorted_alphabet[a];
      for (size_t r = 0; r < schema.rules.size(); ++r) {
        child_key.second.push_back(Advance(schema.rules[r].pattern,
                                           key.second[r],
                                           sorted_alphabet[a]));
      }
      if (!selecting(child_key).empty()) {
        child_types[a] = intern_type(child_key);
      }
    }
    typed.alphabet.clear();
    std::vector<size_t> kept;  // alphabet indices with live child types
    for (size_t a = 0; a < sorted_alphabet.size(); ++a) {
      if (child_types[a] != kInvalidSymbol) {
        kept.push_back(a);
        typed.alphabet.push_back(child_types[a]);
      }
    }
    // typed.alphabet must be sorted; child type ids grow with discovery
    // order, not label order, so sort with a permutation.
    std::vector<size_t> perm(kept.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::sort(perm.begin(), perm.end(), [&](size_t x, size_t y) {
      return typed.alphabet[x] < typed.alphabet[y];
    });
    std::vector<SymbolId> sorted_types;
    for (size_t i : perm) sorted_types.push_back(typed.alphabet[i]);
    typed.alphabet = sorted_types;
    typed.trans.assign(product.NumStates(),
                       std::vector<regex::State>(kept.size(),
                                                 regex::kNoState));
    for (size_t q = 0; q < product.NumStates(); ++q) {
      for (size_t i = 0; i < perm.size(); ++i) {
        const size_t a = kept[perm[i]];
        const size_t idx = product.SymbolIndex(sorted_alphabet[a]);
        typed.trans[q][i] = product.trans[q][idx];
      }
    }
    edtd.rules[type] = regex::DfaToRegex(regex::Minimize(typed));
  }
  return edtd;
}

}  // namespace rwdt::schema
