#ifndef RWDT_SCHEMA_EDTD_H_
#define RWDT_SCHEMA_EDTD_H_

#include <map>
#include <set>

#include "common/interner.h"
#include "regex/ast.h"
#include "regex/automaton.h"
#include "schema/dtd.h"
#include "tree/tree.h"

namespace rwdt::schema {

/// An extended DTD D = (Sigma, Gamma, rho, S, mu) (Definition 4.10):
/// a DTD over the type alphabet Gamma plus a type-to-label map mu.
/// XML Schema corresponds structurally to *single-type* EDTDs
/// (Definition 4.12).
struct Edtd {
  std::map<SymbolId, regex::RegexPtr> rules;  // rho: over types
  std::set<SymbolId> start_types;             // S subseteq Gamma
  std::map<SymbolId, SymbolId> mu;            // type -> label

  std::set<SymbolId> Types() const;
};

/// True iff no regular expression rho(t) (nor S) mentions two distinct
/// types with the same label — XML Schema's Element Declarations
/// Consistent constraint (Definition 4.12).
bool IsSingleType(const Edtd& edtd);

/// Validates a tree against a general EDTD: computes, bottom-up, the set
/// of feasible types per node (unranked tree automaton membership,
/// polynomial time) and checks a start type is feasible at the root.
bool ValidateEdtd(const Edtd& edtd, const tree::Tree& t);

/// Validates against a single-type EDTD with the one-pass top-down typing
/// that single-typedness enables (each node's type is determined by its
/// label and its parent's type). Results agree with ValidateEdtd on
/// single-type inputs; additionally returns the computed typing through
/// `typing` when non-null (typing[node] = assigned type).
bool ValidateSingleType(const Edtd& edtd, const tree::Tree& t,
                        std::vector<SymbolId>* typing = nullptr);

/// Converts a DTD into the trivial EDTD (types == labels, mu = identity).
/// ANY rules are not representable and must be expanded by the caller.
Edtd DtdAsEdtd(const Dtd& dtd);

/// True iff the EDTD is structurally equivalent to a DTD: every label has
/// at most one type. Bex et al. found 25 of 30 real XSDs have this
/// property (Section 4.4).
bool IsStructurallyDtd(const Edtd& edtd);

}  // namespace rwdt::schema

#endif  // RWDT_SCHEMA_EDTD_H_
