#ifndef RWDT_SCHEMA_BONXAI_H_
#define RWDT_SCHEMA_BONXAI_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "regex/ast.h"
#include "schema/edtd.h"
#include "tree/tree.h"

namespace rwdt::schema {

/// One step of an ancestor path pattern: /a (child) or //a (descendant).
struct PathStep {
  enum class Axis { kChild, kDescendant };
  Axis axis = Axis::kChild;
  SymbolId label = kInvalidSymbol;
};

/// A BonXai left-hand side: an anchored ancestor pattern like //b//h or
/// /a/b (paper Section 4.4, Figure 2b). A pattern starting with '//'
/// allows any prefix; '/' anchors at the root. The pattern selects the
/// nodes whose root-to-node label path matches.
struct PathPattern {
  std::vector<PathStep> steps;

  bool Matches(const std::vector<SymbolId>& path) const;
  std::string ToString(const Interner& dict) const;
};

/// Parses "//b//h", "/a/b", or the bare-label shorthand "a" (== "//a").
Result<PathPattern> ParsePathPattern(std::string_view input, Interner* dict);

/// A pattern-based schema: rules phi -> e. A tree satisfies the schema if
/// every node is selected by at least one rule and, for every rule
/// selecting a node, its children match the rule's content model.
struct BonxaiSchema {
  struct Rule {
    PathPattern pattern;
    regex::RegexPtr content;
  };
  std::vector<Rule> rules;
};

/// Validates a tree against a pattern-based schema.
bool ValidateBonxai(const BonxaiSchema& schema, const tree::Tree& t,
                    tree::NodeId* offending = nullptr);

/// The trivial translation DTD -> BonXai: rule a -> e becomes //a -> e.
BonxaiSchema DtdToBonxai(const Dtd& dtd);

/// Translates a pattern-based schema into an equivalent single-type EDTD:
/// types are the reachable "match states" of the rule patterns (so a
/// node's type depends only on its ancestor path), and each type's
/// content model is the intersection of the selecting rules' expressions
/// (computed via product DFA + state elimination). Fresh type names
/// "bonxai-type-N" are interned into `dict`.
///
/// Trees without a match for some node are rejected by the EDTD, matching
/// ValidateBonxai. Requires `root_label_universe`: the labels the
/// translation should consider (BonXai semantics quantifies over all
/// labels; the translation is finite per alphabet).
Edtd BonxaiToSingleTypeEdtd(const BonxaiSchema& schema,
                            const std::vector<SymbolId>& alphabet,
                            Interner* dict);

}  // namespace rwdt::schema

#endif  // RWDT_SCHEMA_BONXAI_H_
