#include "schema/dtd.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <functional>

#include "regex/glushkov.h"

namespace rwdt::schema {

std::set<SymbolId> Dtd::Alphabet() const {
  std::set<SymbolId> out(start.begin(), start.end());
  for (SymbolId a : any) out.insert(a);
  for (const auto& [label, content] : rules) {
    out.insert(label);
    content->CollectAlphabet(&out);
  }
  return out;
}

namespace {

std::map<SymbolId, regex::Dfa> CompileRules(const Dtd& dtd) {
  std::map<SymbolId, regex::Dfa> dfas;
  for (const auto& [label, content] : dtd.rules) {
    dfas.emplace(label, regex::ToDfa(content));
  }
  return dfas;
}

}  // namespace

DtdValidator::DtdValidator(const Dtd& dtd)
    : dtd_(dtd), dfas_(CompileRules(dtd)) {}

ValidationResult DtdValidator::Validate(const tree::Tree& t) const {
  ValidationResult result;
  if (t.empty()) {
    result.message = "empty tree";
    return result;
  }
  const SymbolId root_label = t.node(t.root()).label;
  if (dtd_.start.count(root_label) == 0) {
    result.offending_node = t.root();
    result.message = "root label not in start set";
    return result;
  }
  for (tree::NodeId id : t.PreOrder()) {
    const SymbolId label = t.node(id).label;
    if (dtd_.any.count(label) > 0) continue;
    const auto word = t.ChildLabels(id);
    auto it = dfas_.find(label);
    if (it == dfas_.end()) {
      if (!word.empty()) {
        result.offending_node = id;
        result.message = "element without rule has children";
        return result;
      }
      continue;
    }
    if (!it->second.Accepts(word)) {
      result.offending_node = id;
      result.message = "children violate content model";
      return result;
    }
  }
  result.valid = true;
  return result;
}

bool IsRecursive(const Dtd& dtd) {
  // DFS from start labels over the rule graph, tracking the stack.
  std::map<SymbolId, std::set<SymbolId>> succ;
  for (const auto& [label, content] : dtd.rules) {
    std::set<SymbolId> alphabet;
    content->CollectAlphabet(&alphabet);
    succ[label] = std::move(alphabet);
  }
  std::map<SymbolId, int> color;  // 0 white 1 grey 2 black
  std::vector<std::pair<SymbolId, bool>> stack;
  // Choi's definition considers the whole rule graph, not only the part
  // reachable from start labels.
  for (const auto& [label, content] : dtd.rules) {
    (void)content;
    stack.emplace_back(label, false);
  }
  for (SymbolId s : dtd.start) stack.emplace_back(s, false);
  while (!stack.empty()) {
    auto [label, leaving] = stack.back();
    stack.pop_back();
    if (leaving) {
      color[label] = 2;
      continue;
    }
    if (color[label] == 1) continue;
    if (color[label] == 2) continue;
    color[label] = 1;
    stack.emplace_back(label, true);
    for (SymbolId next : succ[label]) {
      if (color[next] == 1) return true;  // back edge
      if (color[next] == 0) stack.emplace_back(next, false);
    }
  }
  return false;
}

std::optional<size_t> MaxDocumentDepth(const Dtd& dtd) {
  if (IsRecursive(dtd)) return std::nullopt;
  // Longest path in the (acyclic) rule DAG from a start label, counting
  // nodes. Memoized DFS.
  std::map<SymbolId, std::set<SymbolId>> succ;
  for (const auto& [label, content] : dtd.rules) {
    std::set<SymbolId> alphabet;
    content->CollectAlphabet(&alphabet);
    succ[label] = std::move(alphabet);
  }
  std::map<SymbolId, size_t> memo;
  // Iterative post-order.
  std::function<size_t(SymbolId)> depth = [&](SymbolId label) -> size_t {
    auto it = memo.find(label);
    if (it != memo.end()) return it->second;
    size_t best = 0;
    for (SymbolId next : succ[label]) best = std::max(best, depth(next));
    memo[label] = best + 1;
    return best + 1;
  };
  size_t best = 0;
  for (SymbolId s : dtd.start) best = std::max(best, depth(s));
  return best;
}

StreamingDtdValidator::StreamingDtdValidator(const Dtd& dtd)
    : dtd_(dtd), dfas_(CompileRules(dtd)) {}

bool StreamingDtdValidator::StartElement(SymbolId label) {
  if (failed_) return false;
  if (stack_.empty()) {
    if (root_closed_ || dtd_.start.count(label) == 0) {
      failed_ = true;
      return false;
    }
    root_seen_ = true;
  } else {
    Frame& top = stack_.back();
    if (!top.any) {
      auto it = dfas_.find(top.label);
      if (it == dfas_.end()) {
        failed_ = true;  // element without rule must be a leaf
        return false;
      }
      top.state = it->second.Step(top.state, label);
      if (top.state == regex::kNoState) {
        failed_ = true;
        return false;
      }
    }
  }
  Frame frame;
  frame.label = label;
  frame.any = dtd_.any.count(label) > 0;
  frame.state = 0;
  stack_.push_back(frame);
  max_stack_depth_ = std::max(max_stack_depth_, stack_.size());
  return true;
}

bool StreamingDtdValidator::EndElement() {
  if (failed_ || stack_.empty()) {
    failed_ = true;
    return false;
  }
  const Frame top = stack_.back();
  stack_.pop_back();
  if (!top.any) {
    auto it = dfas_.find(top.label);
    if (it == dfas_.end()) {
      // Leaf without rule: fine (no children were accepted anyway).
    } else if (!it->second.accept[top.state]) {
      failed_ = true;
      return false;
    }
  }
  if (stack_.empty()) root_closed_ = true;
  return true;
}

bool StreamingDtdValidator::Finish() const {
  return !failed_ && root_seen_ && root_closed_ && stack_.empty();
}

namespace {

/// Parses DTD content-model syntax: ',' concat, '|' union, postfix
/// modifiers, #PCDATA, names.
class ContentParser {
 public:
  ContentParser(std::string_view input, Interner* dict)
      : input_(input), dict_(dict) {}

  Result<regex::RegexPtr> Parse() {
    RWDT_ASSIGN_OR_RETURN(regex::RegexPtr e, ParseUnion());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing content-model characters");
    }
    return e;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    SkipSpace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }

  Result<regex::RegexPtr> ParseUnion() {
    RWDT_ASSIGN_OR_RETURN(regex::RegexPtr first, ParseConcat());
    std::vector<regex::RegexPtr> parts = {std::move(first)};
    while (Peek() == '|') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(regex::RegexPtr next, ParseConcat());
      parts.push_back(std::move(next));
    }
    return regex::Regex::Union(std::move(parts));
  }

  Result<regex::RegexPtr> ParseConcat() {
    RWDT_ASSIGN_OR_RETURN(regex::RegexPtr first, ParsePostfix());
    std::vector<regex::RegexPtr> parts = {std::move(first)};
    while (Peek() == ',') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(regex::RegexPtr next, ParsePostfix());
      parts.push_back(std::move(next));
    }
    return regex::Regex::Concat(std::move(parts));
  }

  Result<regex::RegexPtr> ParsePostfix() {
    RWDT_ASSIGN_OR_RETURN(regex::RegexPtr e, ParseAtom());
    for (;;) {
      const char c = pos_ < input_.size() ? input_[pos_] : '\0';
      if (c == '*') {
        e = regex::Regex::Star(e);
        ++pos_;
      } else if (c == '+') {
        e = regex::Regex::Plus(e);
        ++pos_;
      } else if (c == '?') {
        e = regex::Regex::Optional(e);
        ++pos_;
      } else {
        break;
      }
    }
    return e;
  }

  Result<regex::RegexPtr> ParseAtom() {
    const char c = Peek();
    if (c == '(') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(regex::RegexPtr inner, ParseUnion());
      if (Peek() != ')') return Status::ParseError("expected ')'");
      ++pos_;
      return inner;
    }
    if (c == '#') {
      if (input_.substr(pos_, 7) == "#PCDATA") {
        pos_ += 7;
        return regex::Regex::Epsilon();  // text content: no child labels
      }
      return Status::ParseError("unknown # token");
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '-' ||
              input_[pos_] == ':' || input_[pos_] == '.')) {
        name += input_[pos_++];
      }
      return regex::Regex::Symbol(dict_->Intern(name));
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' in content model");
  }

  std::string_view input_;
  Interner* dict_;
  size_t pos_ = 0;
};

}  // namespace

Result<Dtd> ParseDtd(std::string_view input, Interner* dict) {
  Dtd dtd;
  size_t pos = 0;
  bool first = true;
  while (pos < input.size()) {
    const size_t open = input.find("<!ELEMENT", pos);
    if (open == std::string_view::npos) break;
    const size_t close = input.find('>', open);
    if (close == std::string_view::npos) {
      return Status::ParseError("unterminated <!ELEMENT");
    }
    std::string_view body = input.substr(open + 9, close - open - 9);
    // body: "  name  content".
    size_t i = 0;
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    std::string name;
    while (i < body.size() &&
           !std::isspace(static_cast<unsigned char>(body[i]))) {
      name += body[i++];
    }
    if (name.empty()) return Status::ParseError("missing element name");
    const SymbolId label = dict->Intern(name);
    std::string_view content = body.substr(i);
    // Trim.
    size_t b = 0, e = content.size();
    while (b < e && std::isspace(static_cast<unsigned char>(content[b]))) {
      ++b;
    }
    while (e > b &&
           std::isspace(static_cast<unsigned char>(content[e - 1]))) {
      --e;
    }
    content = content.substr(b, e - b);
    if (content == "EMPTY") {
      dtd.rules[label] = regex::Regex::Epsilon();
    } else if (content == "ANY") {
      dtd.any.insert(label);
    } else {
      // Mixed content (#PCDATA|a|b)* parses to (eps|a|b)* ; keep as-is
      // (the epsilon branch is harmless).
      RWDT_ASSIGN_OR_RETURN(dtd.rules[label],
                            ContentParser(content, dict).Parse());
    }
    if (first) {
      dtd.start.insert(label);
      first = false;
    }
    pos = close + 1;
  }
  if (first) return Status::ParseError("no <!ELEMENT declarations found");
  return dtd;
}

namespace {

// DTD content-model syntax uses ',' for concatenation; precedence as in
// the regex renderer (union < concat < postfix).
void RenderContent(const regex::Regex& e, const Interner& dict,
                   int parent_prec, std::string* out) {
  using regex::Op;
  const int prec = e.op() == Op::kUnion    ? 0
                   : e.op() == Op::kConcat ? 1
                                           : 2;
  const bool parens = prec < parent_prec;
  if (parens) *out += '(';
  switch (e.op()) {
    case Op::kEpsilon:
    case Op::kEmpty:
      *out += "#PCDATA";  // closest DTD notion of "no element content"
      break;
    case Op::kSymbol:
      *out += dict.Name(e.symbol());
      break;
    case Op::kConcat: {
      bool first = true;
      for (const auto& c : e.children()) {
        if (!first) *out += ", ";
        first = false;
        RenderContent(*c, dict, 2, out);
      }
      break;
    }
    case Op::kUnion: {
      bool first = true;
      for (const auto& c : e.children()) {
        if (!first) *out += " | ";
        first = false;
        RenderContent(*c, dict, 1, out);
      }
      break;
    }
    case Op::kStar:
      RenderContent(*e.child(), dict, 3, out);
      *out += '*';
      break;
    case Op::kPlus:
      RenderContent(*e.child(), dict, 3, out);
      *out += '+';
      break;
    case Op::kOptional:
      RenderContent(*e.child(), dict, 3, out);
      *out += '?';
      break;
  }
  if (parens) *out += ')';
}

}  // namespace

std::string DtdToString(const Dtd& dtd, const Interner& dict) {
  std::string out;
  for (const auto& [label, content] : dtd.rules) {
    out += "<!ELEMENT " + dict.Name(label) + " ";
    if (content->op() == regex::Op::kEpsilon) {
      out += "EMPTY";
    } else {
      std::string body;
      RenderContent(*content, dict, 0, &body);
      out += "(" + body + ")";
    }
    out += ">\n";
  }
  for (SymbolId label : dtd.any) {
    out += "<!ELEMENT " + dict.Name(label) + " ANY>\n";
  }
  return out;
}

}  // namespace rwdt::schema
