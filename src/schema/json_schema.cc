#include "schema/json_schema.h"

#include <algorithm>
#include <functional>
#include <set>

namespace rwdt::schema {

using tree::JsonPtr;
using tree::JsonValue;

namespace {

Result<JsonSchemaPtr> ParseNode(const JsonPtr& json,
                                JsonSchemaDoc* doc);

Result<JsonSchemaPtr> ParseNodeList(const JsonPtr& json, JsonSchemaDoc* doc,
                                    JsonSchema::Kind kind) {
  if (json->kind() != JsonValue::Kind::kArray) {
    return Status::ParseError("allOf/anyOf expects an array");
  }
  auto node = std::make_shared<JsonSchema>();
  node->kind = kind;
  for (const auto& item : json->items()) {
    RWDT_ASSIGN_OR_RETURN(JsonSchemaPtr child, ParseNode(item, doc));
    node->children.push_back(std::move(child));
  }
  return JsonSchemaPtr(node);
}

Result<JsonSchemaPtr> ParseNode(const JsonPtr& json, JsonSchemaDoc* doc) {
  if (json->kind() == JsonValue::Kind::kBool) {
    // "true" accepts everything; "false" rejects everything.
    auto node = std::make_shared<JsonSchema>();
    if (json->bool_value()) {
      node->kind = JsonSchema::Kind::kAny;
    } else {
      node->kind = JsonSchema::Kind::kNot;
      auto any = std::make_shared<JsonSchema>();
      any->kind = JsonSchema::Kind::kAny;
      node->children.push_back(any);
    }
    return JsonSchemaPtr(node);
  }
  if (json->kind() != JsonValue::Kind::kObject) {
    return Status::ParseError("schema must be an object or boolean");
  }

  // $defs can appear at any level; hoist into the document.
  if (auto defs = json->Get("$defs"); defs != nullptr) {
    if (defs->kind() != JsonValue::Kind::kObject) {
      return Status::ParseError("$defs must be an object");
    }
    for (const auto& [name, def] : defs->members()) {
      RWDT_ASSIGN_OR_RETURN(doc->definitions[name], ParseNode(def, doc));
    }
  }

  if (auto ref = json->Get("$ref"); ref != nullptr) {
    auto node = std::make_shared<JsonSchema>();
    node->kind = JsonSchema::Kind::kRef;
    std::string name = ref->string_value();
    // Accept both "#/$defs/name" and bare "name".
    const size_t slash = name.rfind('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    node->ref_name = name;
    return JsonSchemaPtr(node);
  }
  if (auto n = json->Get("not"); n != nullptr) {
    RWDT_ASSIGN_OR_RETURN(JsonSchemaPtr inner, ParseNode(n, doc));
    auto node = std::make_shared<JsonSchema>();
    node->kind = JsonSchema::Kind::kNot;
    node->children.push_back(std::move(inner));
    return JsonSchemaPtr(node);
  }
  if (auto a = json->Get("allOf"); a != nullptr) {
    return ParseNodeList(a, doc, JsonSchema::Kind::kAllOf);
  }
  if (auto a = json->Get("anyOf"); a != nullptr) {
    return ParseNodeList(a, doc, JsonSchema::Kind::kAnyOf);
  }
  if (auto e = json->Get("enum"); e != nullptr) {
    auto node = std::make_shared<JsonSchema>();
    node->kind = JsonSchema::Kind::kEnum;
    if (e->kind() != JsonValue::Kind::kArray) {
      return Status::ParseError("enum expects an array");
    }
    for (const auto& item : e->items()) {
      node->enum_values.push_back(item->ToString());
    }
    return JsonSchemaPtr(node);
  }

  auto type = json->Get("type");
  const std::string type_name =
      type != nullptr ? type->string_value() : "";

  if (type_name == "object" || json->Get("properties") != nullptr) {
    auto node = std::make_shared<JsonSchema>();
    node->kind = JsonSchema::Kind::kObject;
    std::set<std::string> required;
    if (auto req = json->Get("required"); req != nullptr) {
      for (const auto& item : req->items()) {
        required.insert(item->string_value());
      }
    }
    if (auto props = json->Get("properties"); props != nullptr) {
      for (const auto& [name, sub] : props->members()) {
        RWDT_ASSIGN_OR_RETURN(JsonSchemaPtr parsed, ParseNode(sub, doc));
        JsonSchema::Property prop;
        prop.name = name;
        prop.schema = std::move(parsed);
        prop.required = required.count(name) > 0;
        node->properties.push_back(std::move(prop));
        required.erase(name);
      }
    }
    // required names without a property schema: any value, must exist.
    for (const auto& name : required) {
      JsonSchema::Property prop;
      prop.name = name;
      auto any = std::make_shared<JsonSchema>();
      any->kind = JsonSchema::Kind::kAny;
      prop.schema = any;
      prop.required = true;
      node->properties.push_back(std::move(prop));
    }
    if (auto ap = json->Get("additionalProperties"); ap != nullptr) {
      node->additional_properties =
          !(ap->kind() == JsonValue::Kind::kBool && !ap->bool_value());
    }
    return JsonSchemaPtr(node);
  }
  if (type_name == "array" || json->Get("items") != nullptr) {
    auto node = std::make_shared<JsonSchema>();
    node->kind = JsonSchema::Kind::kArray;
    if (auto items = json->Get("items"); items != nullptr) {
      RWDT_ASSIGN_OR_RETURN(node->items, ParseNode(items, doc));
    }
    if (auto m = json->Get("minItems"); m != nullptr) {
      node->min_items = static_cast<size_t>(m->number_value());
    }
    if (auto m = json->Get("maxItems"); m != nullptr) {
      node->max_items = static_cast<size_t>(m->number_value());
    }
    return JsonSchemaPtr(node);
  }
  if (type_name == "number" || type_name == "integer" ||
      json->Get("minimum") != nullptr || json->Get("maximum") != nullptr) {
    auto node = std::make_shared<JsonSchema>();
    node->kind = JsonSchema::Kind::kNumber;
    if (auto m = json->Get("minimum"); m != nullptr) {
      node->minimum = m->number_value();
    }
    if (auto m = json->Get("maximum"); m != nullptr) {
      node->maximum = m->number_value();
    }
    return JsonSchemaPtr(node);
  }
  if (!type_name.empty()) {
    auto node = std::make_shared<JsonSchema>();
    node->kind = JsonSchema::Kind::kType;
    node->type_name = type_name;
    return JsonSchemaPtr(node);
  }
  auto node = std::make_shared<JsonSchema>();
  node->kind = JsonSchema::Kind::kAny;
  return JsonSchemaPtr(node);
}

bool TypeMatches(const std::string& name, const JsonPtr& v) {
  switch (v->kind()) {
    case JsonValue::Kind::kNull:
      return name == "null";
    case JsonValue::Kind::kBool:
      return name == "boolean";
    case JsonValue::Kind::kNumber:
      return name == "number" || name == "integer";
    case JsonValue::Kind::kString:
      return name == "string";
    case JsonValue::Kind::kArray:
      return name == "array";
    case JsonValue::Kind::kObject:
      return name == "object";
  }
  return false;
}

bool ValidateNode(const JsonSchemaDoc& doc, const JsonSchema& schema,
                  const JsonPtr& v, int depth) {
  if (depth > 256) return false;  // runaway recursion guard
  switch (schema.kind) {
    case JsonSchema::Kind::kAny:
      return true;
    case JsonSchema::Kind::kType:
      return TypeMatches(schema.type_name, v);
    case JsonSchema::Kind::kEnum: {
      const std::string s = v->ToString();
      return std::find(schema.enum_values.begin(), schema.enum_values.end(),
                       s) != schema.enum_values.end();
    }
    case JsonSchema::Kind::kNumber: {
      if (v->kind() != JsonValue::Kind::kNumber) return false;
      if (schema.minimum.has_value() && v->number_value() < *schema.minimum) {
        return false;
      }
      if (schema.maximum.has_value() && v->number_value() > *schema.maximum) {
        return false;
      }
      return true;
    }
    case JsonSchema::Kind::kObject: {
      if (v->kind() != JsonValue::Kind::kObject) return false;
      std::set<std::string> known;
      for (const auto& prop : schema.properties) {
        known.insert(prop.name);
        const JsonPtr member = v->Get(prop.name);
        if (member == nullptr) {
          if (prop.required) return false;
          continue;
        }
        if (!ValidateNode(doc, *prop.schema, member, depth + 1)) {
          return false;
        }
      }
      if (!schema.additional_properties) {
        for (const auto& [name, member] : v->members()) {
          (void)member;
          if (known.count(name) == 0) return false;  // schema-full mode
        }
      }
      return true;
    }
    case JsonSchema::Kind::kArray: {
      if (v->kind() != JsonValue::Kind::kArray) return false;
      if (schema.min_items.has_value() &&
          v->items().size() < *schema.min_items) {
        return false;
      }
      if (schema.max_items.has_value() &&
          v->items().size() > *schema.max_items) {
        return false;
      }
      if (schema.items != nullptr) {
        for (const auto& item : v->items()) {
          if (!ValidateNode(doc, *schema.items, item, depth + 1)) {
            return false;
          }
        }
      }
      return true;
    }
    case JsonSchema::Kind::kNot:
      return !ValidateNode(doc, *schema.children[0], v, depth + 1);
    case JsonSchema::Kind::kAllOf:
      for (const auto& c : schema.children) {
        if (!ValidateNode(doc, *c, v, depth + 1)) return false;
      }
      return true;
    case JsonSchema::Kind::kAnyOf:
      for (const auto& c : schema.children) {
        if (ValidateNode(doc, *c, v, depth + 1)) return true;
      }
      return false;
    case JsonSchema::Kind::kRef: {
      auto it = doc.definitions.find(schema.ref_name);
      if (it == doc.definitions.end()) return false;
      return ValidateNode(doc, *it->second, v, depth + 1);
    }
  }
  return false;
}

/// Walks a schema node, visiting children and (optionally) references.
void Walk(const JsonSchemaDoc& doc, const JsonSchema& schema,
          const std::function<void(const JsonSchema&)>& visit) {
  visit(schema);
  for (const auto& c : schema.children) Walk(doc, *c, visit);
  for (const auto& p : schema.properties) Walk(doc, *p.schema, visit);
  if (schema.items != nullptr) Walk(doc, *schema.items, visit);
}

/// Names of definitions referenced (transitively one level) by a node.
void CollectRefs(const JsonSchema& schema, std::set<std::string>* out) {
  if (schema.kind == JsonSchema::Kind::kRef) out->insert(schema.ref_name);
  for (const auto& c : schema.children) CollectRefs(*c, out);
  for (const auto& p : schema.properties) CollectRefs(*p.schema, out);
  if (schema.items != nullptr) CollectRefs(*schema.items, out);
}

size_t NodeDepth(const JsonSchemaDoc& doc, const JsonSchema& schema,
                 int guard) {
  if (guard > 128) return 128;
  size_t best = 0;
  for (const auto& c : schema.children) {
    best = std::max(best, NodeDepth(doc, *c, guard + 1));
  }
  for (const auto& p : schema.properties) {
    best = std::max(best, NodeDepth(doc, *p.schema, guard + 1));
  }
  if (schema.items != nullptr) {
    best = std::max(best, NodeDepth(doc, *schema.items, guard + 1));
  }
  if (schema.kind == JsonSchema::Kind::kRef) {
    auto it = doc.definitions.find(schema.ref_name);
    if (it != doc.definitions.end()) {
      best = std::max(best, NodeDepth(doc, *it->second, guard + 1));
    }
  }
  // Only structural nesting (object/array) counts toward depth.
  const bool structural = schema.kind == JsonSchema::Kind::kObject ||
                          schema.kind == JsonSchema::Kind::kArray;
  return best + (structural ? 1 : 0);
}

}  // namespace

Result<JsonSchemaDoc> ParseJsonSchema(const JsonPtr& json) {
  JsonSchemaDoc doc;
  RWDT_ASSIGN_OR_RETURN(doc.root, ParseNode(json, &doc));
  return doc;
}

Result<JsonSchemaDoc> ParseJsonSchema(std::string_view input,
                                      Interner* dict) {
  RWDT_ASSIGN_OR_RETURN(tree::JsonPtr json, tree::ParseJson(input, dict));
  return ParseJsonSchema(json);
}

bool ValidateJsonSchema(const JsonSchemaDoc& doc, const JsonPtr& value) {
  return ValidateNode(doc, *doc.root, value, 0);
}

JsonSchemaStats AnalyzeJsonSchema(const JsonSchemaDoc& doc) {
  JsonSchemaStats stats;
  auto analyze_node = [&](const JsonSchema& s) {
    stats.size++;
    if (s.kind == JsonSchema::Kind::kNot) stats.uses_negation = true;
    if (s.kind == JsonSchema::Kind::kObject && !s.additional_properties) {
      stats.schema_full = true;
    }
  };
  Walk(doc, *doc.root, analyze_node);
  for (const auto& [name, def] : doc.definitions) {
    (void)name;
    Walk(doc, *def, analyze_node);
  }

  // Recursion: cycle in the definition reference graph (including the
  // root's reachability is irrelevant; a cycle anywhere counts).
  std::map<std::string, std::set<std::string>> refs;
  for (const auto& [name, def] : doc.definitions) {
    CollectRefs(*def, &refs[name]);
  }
  std::function<bool(const std::string&, std::set<std::string>&,
                     std::set<std::string>&)>
      has_cycle = [&](const std::string& name, std::set<std::string>& grey,
                      std::set<std::string>& black) {
        if (black.count(name)) return false;
        if (!grey.insert(name).second) return true;
        for (const auto& next : refs[name]) {
          if (has_cycle(next, grey, black)) return true;
        }
        grey.erase(name);
        black.insert(name);
        return false;
      };
  std::set<std::string> black;
  for (const auto& [name, _] : refs) {
    (void)_;
    std::set<std::string> grey;
    if (has_cycle(name, grey, black)) {
      stats.recursive = true;
      break;
    }
  }
  if (!stats.recursive) {
    stats.max_depth = NodeDepth(doc, *doc.root, 0);
  }
  return stats;
}

}  // namespace rwdt::schema
