// Umbrella header for the rwdt library.
//
// This is the supported public surface: applications (and the bundled
// examples) include only this header. The individual headers below stay
// includable for fine-grained builds, but anything not reachable from
// here is an internal detail and may change without notice.
//
// The API follows three repo-wide conventions:
//   * Fallible operations return Status or Result<T> (common/status.h);
//     errors map onto the five-class taxonomy in ErrorClass.
//   * Every parser entry point is Parse*(std::string_view, Interner*)
//     -> Result<T>; the interner owns all symbol names.
//   * Streaming analysis goes through engine::Engine::OpenStream or the
//     ingest::IngestStream / IngestFile wrappers, which keep memory
//     bounded regardless of log size.
//   * Observability is opt-in and zero-cost when idle: install an
//     obs::TraceCollector for a Perfetto-loadable per-worker timeline,
//     use RWDT_LOG for leveled structured logging, and set
//     EngineOptions/IngestOptions::progress for live run reporting.
#ifndef RWDT_RWDT_H_
#define RWDT_RWDT_H_

// Foundations: status/error taxonomy, interning, RNG, stats, tables,
// JSON string escaping.
#include "common/build_info.h"
#include "common/interner.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

// Observability: tracing, structured logging, live run reporting.
#include "obs/obs.h"

// Parsers and per-formalism analyses.
#include "paths/analysis.h"
#include "paths/path.h"
#include "paths/semantics.h"
#include "regex/automaton.h"
#include "regex/fragments.h"
#include "regex/glushkov.h"
#include "regex/parser.h"
#include "schema/bonxai.h"
#include "schema/dtd.h"
#include "schema/edtd.h"
#include "schema/json_schema.h"
#include "sparql/algebra.h"
#include "sparql/analysis.h"
#include "sparql/eval.h"
#include "sparql/parser.h"
#include "tree/json.h"
#include "tree/tree.h"
#include "tree/xml.h"
#include "xpath/xpath.h"

// Graph data, hypergraphs, and schema-inference algorithms.
#include "graph/generators.h"
#include "graph/rdf.h"
#include "graph/treewidth.h"
#include "hypergraph/hypergraph.h"
#include "inference/crx.h"
#include "inference/kore.h"
#include "inference/rwr.h"
#include "inference/soa.h"

// Log generation, corruption, serialization, and traffic shaping.
#include "loggen/corpus_gen.h"
#include "loggen/corruptor.h"
#include "loggen/log_text.h"
#include "loggen/rate_schedule.h"
#include "loggen/sparql_gen.h"

// Streaming engine, studies, and raw-text ingest.
#include "core/log_study.h"
#include "core/query_analysis.h"
#include "core/studies.h"
#include "core/verdict.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "ingest/ingest.h"

// Classifier-dispatched query executor: Volcano operators, the verdict-
// dispatching planner, and the NFA-product property-path evaluator.
#include "exec/operators.h"
#include "exec/path_automaton.h"
#include "exec/planner.h"

// HTTP serving: the hand-rolled HTTP/1.1 stack and the classification
// service (batching, backpressure, per-tenant quotas, graceful drain).
#include "serve/http_server.h"
#include "serve/serve.h"
#include "serve/verdict.h"

#endif  // RWDT_RWDT_H_
