#ifndef RWDT_REGEX_BKW_H_
#define RWDT_REGEX_BKW_H_

#include "regex/ast.h"
#include "regex/automaton.h"

namespace rwdt::regex {

/// Decides whether a regular *language* is definable by a deterministic
/// (one-unambiguous) regular expression, using the Brüggemann-Klein & Wood
/// characterization on the minimal DFA (paper Section 4.2.1):
///
///   L is one-unambiguous iff the minimal partial DFA of L, after cutting
///   the transitions of M-consistent symbols out of final states, has the
///   orbit property and all its orbit automata are one-unambiguous.
///
/// The paper's canonical non-example (a+b)*a(a+b) is rejected by this test;
/// (a+b)*a (equivalent to the deterministic b*a(b*a)*) is accepted.
///
/// `dfa` must be the minimal partial DFA of the language (as produced by
/// Minimize); the function re-minimizes defensively.
bool IsDreDefinableDfa(const Dfa& dfa);

/// Convenience wrapper: tests DRE-definability of L(e).
bool IsDreDefinable(const RegexPtr& e);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_BKW_H_
