#include "regex/fragments.h"

#include <algorithm>

namespace rwdt::regex {

std::string FactorTypeName(FactorType type) {
  switch (type) {
    case FactorType::kA:
      return "a";
    case FactorType::kAOpt:
      return "a?";
    case FactorType::kAStar:
      return "a*";
    case FactorType::kAPlus:
      return "a+";
    case FactorType::kDisj:
      return "(+a)";
    case FactorType::kDisjOpt:
      return "(+a)?";
    case FactorType::kDisjStar:
      return "(+a)*";
    case FactorType::kDisjPlus:
      return "(+a)+";
  }
  return "?";
}

FactorType TypeOf(const SimpleFactor& factor) {
  const bool single = factor.IsSingleSymbol();
  switch (factor.modifier) {
    case FactorModifier::kOnce:
      return single ? FactorType::kA : FactorType::kDisj;
    case FactorModifier::kOptional:
      return single ? FactorType::kAOpt : FactorType::kDisjOpt;
    case FactorModifier::kStar:
      return single ? FactorType::kAStar : FactorType::kDisjStar;
    case FactorModifier::kPlus:
      return single ? FactorType::kAPlus : FactorType::kDisjPlus;
  }
  return FactorType::kA;
}

std::set<FactorType> ChainRegex::Signature() const {
  std::set<FactorType> out;
  for (const auto& f : factors) out.insert(TypeOf(f));
  return out;
}

RegexPtr ChainRegex::ToRegex() const {
  std::vector<RegexPtr> parts;
  for (const auto& f : factors) {
    std::vector<RegexPtr> symbols;
    symbols.reserve(f.symbols.size());
    for (SymbolId s : f.symbols) symbols.push_back(Regex::Symbol(s));
    RegexPtr base = Regex::Union(std::move(symbols));
    switch (f.modifier) {
      case FactorModifier::kOnce:
        break;
      case FactorModifier::kOptional:
        base = Regex::Optional(base);
        break;
      case FactorModifier::kStar:
        base = Regex::Star(base);
        break;
      case FactorModifier::kPlus:
        base = Regex::Plus(base);
        break;
    }
    parts.push_back(std::move(base));
  }
  return Regex::Concat(std::move(parts));
}

namespace {

/// Parses a disjunction-of-symbols body: either one symbol or a union
/// whose children are all symbols.
std::optional<std::vector<SymbolId>> AsSymbolDisjunction(const Regex& e) {
  if (e.op() == Op::kSymbol) return std::vector<SymbolId>{e.symbol()};
  if (e.op() != Op::kUnion) return std::nullopt;
  std::vector<SymbolId> out;
  for (const auto& c : e.children()) {
    if (c->op() != Op::kSymbol) return std::nullopt;
    out.push_back(c->symbol());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<SimpleFactor> AsSimpleFactor(const Regex& e) {
  SimpleFactor factor;
  const Regex* body = &e;
  switch (e.op()) {
    case Op::kOptional:
      factor.modifier = FactorModifier::kOptional;
      body = e.child().get();
      break;
    case Op::kStar:
      factor.modifier = FactorModifier::kStar;
      body = e.child().get();
      break;
    case Op::kPlus:
      factor.modifier = FactorModifier::kPlus;
      body = e.child().get();
      break;
    default:
      break;
  }
  auto symbols = AsSymbolDisjunction(*body);
  if (!symbols.has_value()) return std::nullopt;
  factor.symbols = std::move(*symbols);
  return factor;
}

}  // namespace

std::optional<ChainRegex> ToChainRegex(const RegexPtr& e) {
  ChainRegex chain;
  if (e->op() == Op::kEpsilon) return chain;  // empty concatenation
  if (e->op() == Op::kConcat) {
    for (const auto& c : e->children()) {
      auto factor = AsSimpleFactor(*c);
      if (!factor.has_value()) return std::nullopt;
      chain.factors.push_back(std::move(*factor));
    }
    return chain;
  }
  auto factor = AsSimpleFactor(*e);
  if (!factor.has_value()) return std::nullopt;
  chain.factors.push_back(std::move(*factor));
  return chain;
}

bool IsKore(const RegexPtr& e, size_t k) {
  return e->MaxSymbolOccurrences() <= k;
}

bool IsSore(const RegexPtr& e) { return IsKore(e, 1); }

bool InFragment(const RegexPtr& e, const std::set<FactorType>& allowed) {
  auto chain = ToChainRegex(e);
  if (!chain.has_value()) return false;
  for (const auto& f : chain->factors) {
    FactorType t = TypeOf(f);
    // A single-symbol factor also belongs to the corresponding
    // disjunction type: "a" is a special case of "(+a)".
    if (allowed.count(t) > 0) continue;
    if (f.IsSingleSymbol()) {
      FactorType widened = t;
      switch (t) {
        case FactorType::kA:
          widened = FactorType::kDisj;
          break;
        case FactorType::kAOpt:
          widened = FactorType::kDisjOpt;
          break;
        case FactorType::kAStar:
          widened = FactorType::kDisjStar;
          break;
        case FactorType::kAPlus:
          widened = FactorType::kDisjPlus;
          break;
        default:
          break;
      }
      if (allowed.count(widened) > 0) continue;
    }
    return false;
  }
  return true;
}

}  // namespace rwdt::regex
