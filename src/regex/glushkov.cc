#include "regex/glushkov.h"

#include <algorithm>
#include <set>

namespace rwdt::regex {
namespace {

/// Per-subexpression Glushkov attributes over position indices.
struct Attrs {
  bool nullable = false;
  std::vector<uint32_t> first;  // positions that can start a word
  std::vector<uint32_t> last;   // positions that can end a word
};

void Append(std::vector<uint32_t>* to, const std::vector<uint32_t>& from) {
  to->insert(to->end(), from.begin(), from.end());
}

/// Computes attributes and fills follow sets. `follow[p]` collects the
/// positions that may come directly after position p.
Attrs Walk(const Regex& e, std::vector<SymbolId>* pos_symbol,
           std::vector<std::set<uint32_t>>* follow) {
  switch (e.op()) {
    case Op::kEmpty:
      return {};  // non-nullable, empty first/last: the empty language
    case Op::kEpsilon: {
      Attrs a;
      a.nullable = true;
      return a;
    }
    case Op::kSymbol: {
      const uint32_t pos = static_cast<uint32_t>(pos_symbol->size());
      pos_symbol->push_back(e.symbol());
      follow->emplace_back();
      Attrs a;
      a.first = {pos};
      a.last = {pos};
      return a;
    }
    case Op::kConcat: {
      Attrs acc = Walk(*e.children()[0], pos_symbol, follow);
      for (size_t i = 1; i < e.children().size(); ++i) {
        Attrs rhs = Walk(*e.children()[i], pos_symbol, follow);
        for (uint32_t p : acc.last) {
          (*follow)[p].insert(rhs.first.begin(), rhs.first.end());
        }
        Attrs merged;
        merged.nullable = acc.nullable && rhs.nullable;
        merged.first = acc.first;
        if (acc.nullable) Append(&merged.first, rhs.first);
        merged.last = rhs.last;
        if (rhs.nullable) Append(&merged.last, acc.last);
        acc = std::move(merged);
      }
      return acc;
    }
    case Op::kUnion: {
      Attrs acc;
      for (const auto& c : e.children()) {
        Attrs child = Walk(*c, pos_symbol, follow);
        acc.nullable = acc.nullable || child.nullable;
        Append(&acc.first, child.first);
        Append(&acc.last, child.last);
      }
      return acc;
    }
    case Op::kStar:
    case Op::kPlus: {
      Attrs child = Walk(*e.child(), pos_symbol, follow);
      for (uint32_t p : child.last) {
        (*follow)[p].insert(child.first.begin(), child.first.end());
      }
      if (e.op() == Op::kStar) child.nullable = true;
      return child;
    }
    case Op::kOptional: {
      Attrs child = Walk(*e.child(), pos_symbol, follow);
      child.nullable = true;
      return child;
    }
  }
  return {};
}

}  // namespace

GlushkovResult BuildGlushkov(const RegexPtr& e) {
  // pos_symbol[0] is a placeholder for the synthetic start state.
  std::vector<SymbolId> pos_symbol = {kInvalidSymbol};
  std::vector<std::set<uint32_t>> follow;
  follow.emplace_back();  // follow[0] unused; positions start at 1

  const Attrs attrs = Walk(*e, &pos_symbol, &follow);
  const size_t n = pos_symbol.size() - 1;  // number of positions

  GlushkovResult result;
  result.pos_symbol = pos_symbol;
  Nfa& nfa = result.nfa;
  nfa.trans.resize(n + 1);
  nfa.accept.assign(n + 1, false);
  nfa.start = {0};

  std::set<SymbolId> alphabet;
  for (size_t i = 1; i <= n; ++i) alphabet.insert(pos_symbol[i]);
  nfa.alphabet.assign(alphabet.begin(), alphabet.end());

  // Start transitions: 0 -> p for p in first(e).
  for (uint32_t p : attrs.first) {
    nfa.trans[0].emplace_back(pos_symbol[p], p);
  }
  // Internal transitions: p -> q for q in follow(p).
  for (size_t p = 1; p <= n; ++p) {
    for (uint32_t q : follow[p]) {
      nfa.trans[p].emplace_back(pos_symbol[q], q);
    }
  }
  for (auto& row : nfa.trans) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }

  nfa.accept[0] = attrs.nullable;
  for (uint32_t p : attrs.last) nfa.accept[p] = true;
  return result;
}

Nfa ToNfa(const RegexPtr& e) { return BuildGlushkov(e).nfa; }

Dfa ToDfa(const RegexPtr& e) { return Determinize(ToNfa(e)); }

Dfa ToMinimalDfa(const RegexPtr& e) { return Minimize(ToDfa(e)); }

bool IsDeterministic(const RegexPtr& e) {
  const GlushkovResult g = BuildGlushkov(e);
  // Deterministic iff no state has two outgoing transitions with the same
  // symbol to *different* positions.
  for (const auto& row : g.nfa.trans) {
    for (size_t i = 1; i < row.size(); ++i) {
      if (row[i].first == row[i - 1].first &&
          row[i].second != row[i - 1].second) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rwdt::regex
