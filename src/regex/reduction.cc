#include "regex/reduction.h"

#include <cstdlib>

namespace rwdt::regex {

bool DnfFormula::SatisfiedBy(uint64_t assignment) const {
  for (const Clause& clause : clauses) {
    bool sat = true;
    for (int lit : clause) {
      const size_t var = static_cast<size_t>(std::abs(lit)) - 1;
      const bool value = (assignment >> var) & 1;
      if ((lit > 0) != value) {
        sat = false;
        break;
      }
    }
    if (sat) return true;
  }
  return false;
}

bool DnfFormula::IsValidBruteForce() const {
  const uint64_t count = 1ull << num_vars;
  for (uint64_t a = 0; a < count; ++a) {
    if (!SatisfiedBy(a)) return false;
  }
  return true;
}

namespace {

enum class SlotKind { kBuffer, kGenerator, kPositive, kNegative, kFree };

/// Appends one slot's factors to `parts`.
void AppendSlot(SlotKind kind, SymbolId a, std::vector<RegexPtr>* parts) {
  auto sym = [&] { return Regex::Symbol(a); };
  switch (kind) {
    case SlotKind::kBuffer:  // exactly "a"
      parts->push_back(sym());
      break;
    case SlotKind::kGenerator:  // a?a?  -> {"", a, aa}
      parts->push_back(Regex::Optional(sym()));
      parts->push_back(Regex::Optional(sym()));
      break;
    case SlotKind::kPositive:  // a a?  -> {a, aa}: true or buffer
      parts->push_back(sym());
      parts->push_back(Regex::Optional(sym()));
      break;
    case SlotKind::kNegative:  // a?    -> {"", a}: false or buffer
      parts->push_back(Regex::Optional(sym()));
      break;
    case SlotKind::kFree:  // a?a?
      parts->push_back(Regex::Optional(sym()));
      parts->push_back(Regex::Optional(sym()));
      break;
  }
}

/// Appends a block: slot_1 $ slot_2 $ ... $ slot_n. `optional_skeleton`
/// makes the separators (and the trailing '#') optional, used for the
/// buffer blocks of e2.
void AppendBlock(const std::vector<SlotKind>& slots, SymbolId a,
                 SymbolId dollar, SymbolId hash, bool optional_skeleton,
                 std::vector<RegexPtr>* parts) {
  for (size_t i = 0; i < slots.size(); ++i) {
    if (i > 0) {
      RegexPtr sep = Regex::Symbol(dollar);
      parts->push_back(optional_skeleton ? Regex::Optional(sep) : sep);
    }
    AppendSlot(slots[i], a, parts);
  }
  RegexPtr close = Regex::Symbol(hash);
  parts->push_back(optional_skeleton ? Regex::Optional(close) : close);
}

}  // namespace

ContainmentInstance EncodeValidityAsContainment(const DnfFormula& formula,
                                                Interner* dict) {
  const SymbolId hash = dict->Intern("#");
  const SymbolId dollar = dict->Intern("$");
  const SymbolId a = dict->Intern("a");

  const size_t n = formula.num_vars;
  const size_t m = formula.clauses.size();

  const std::vector<SlotKind> buffer_slots(n, SlotKind::kBuffer);
  const std::vector<SlotKind> generator_slots(n, SlotKind::kGenerator);

  // e1 = # (Buf #)^{m-1} (Gen #) (Buf #)^{m-1}
  std::vector<RegexPtr> e1 = {Regex::Symbol(hash)};
  for (size_t i = 0; i + 1 < m; ++i) {
    AppendBlock(buffer_slots, a, dollar, hash, /*optional_skeleton=*/false,
                &e1);
  }
  AppendBlock(generator_slots, a, dollar, hash, false, &e1);
  for (size_t i = 0; i + 1 < m; ++i) {
    AppendBlock(buffer_slots, a, dollar, hash, false, &e1);
  }

  // e2 = #? (OptBuf #?)^{m-1} # (Clause_1 #) ... (Clause_m #)
  //      (OptBuf #?)^{m-1}
  // Leading '#?' then optional buffer blocks, a mandatory '#' opening the
  // clause region, m clause blocks with mandatory skeleton, then optional
  // buffer blocks. Wait -- the leading '#' of the word must be consumable
  // whether or not prefix buffers are present; using '#?' for it and for
  // each optional block's closing '#' keeps the count flexible while the
  // clause region contributes exactly m+1 mandatory '#'s... The clause
  // region opener is mandatory.
  std::vector<RegexPtr> e2;
  // Prefix optional region: (#? OptBufContent)^{m-1}; each OptBuf block's
  // *opening* '#' pairs with the previous block, so we emit: for each of
  // the m-1 prefix slots, an optional '#' followed by optional buffer
  // content. The mandatory '#' of the clause region then matches the '#'
  // preceding the first clause-aligned block.
  // Equivalent formulation used here:
  //   e2 = (OptBufContent' )... : we emit m-1 groups of
  //        [#? content?] then the mandatory clause region "# C_1 # ... C_m #"
  //        then m-1 groups of [content? #?].
  for (size_t i = 0; i + 1 < m; ++i) {
    e2.push_back(Regex::Optional(Regex::Symbol(hash)));
    // Optional buffer content: a? ($? a?)^{n-1}.
    for (size_t v = 0; v < n; ++v) {
      if (v > 0) e2.push_back(Regex::Optional(Regex::Symbol(dollar)));
      e2.push_back(Regex::Optional(Regex::Symbol(a)));
    }
  }
  e2.push_back(Regex::Symbol(hash));  // opens the clause region
  for (size_t c = 0; c < m; ++c) {
    std::vector<SlotKind> slots(n, SlotKind::kFree);
    for (int lit : formula.clauses[c]) {
      const size_t var = static_cast<size_t>(std::abs(lit)) - 1;
      slots[var] = lit > 0 ? SlotKind::kPositive : SlotKind::kNegative;
    }
    AppendBlock(slots, a, dollar, hash, /*optional_skeleton=*/false, &e2);
  }
  for (size_t i = 0; i + 1 < m; ++i) {
    for (size_t v = 0; v < n; ++v) {
      if (v > 0) e2.push_back(Regex::Optional(Regex::Symbol(dollar)));
      e2.push_back(Regex::Optional(Regex::Symbol(a)));
    }
    e2.push_back(Regex::Optional(Regex::Symbol(hash)));
  }

  ContainmentInstance out;
  out.lhs = Regex::Concat(std::move(e1));
  out.rhs = Regex::Concat(std::move(e2));
  return out;
}

}  // namespace rwdt::regex
