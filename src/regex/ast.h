#ifndef RWDT_REGEX_AST_H_
#define RWDT_REGEX_AST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"

namespace rwdt::regex {

/// Node kinds of the regular-expression AST, following the paper's
/// Section 2 grammar: empty set, epsilon, symbols, concatenation, union
/// ("+" in the paper, "|" in our concrete syntax), Kleene star, Kleene
/// plus, and optionality ("?").
enum class Op {
  kEmpty,     // ∅
  kEpsilon,   // ε
  kSymbol,    // a ∈ Lab
  kConcat,    // e1 · e2 · ... · en  (n >= 2)
  kUnion,     // e1 + e2 + ... + en  (n >= 2)
  kStar,      // e*
  kPlus,      // e+
  kOptional,  // e?
};

class Regex;
using RegexPtr = std::shared_ptr<const Regex>;

/// Immutable regular-expression node. Construct via the factory functions
/// below; they perform light normalization (flattening nested
/// concats/unions) but no language-level simplification, so the syntactic
/// classifiers in fragments.h see the expression as written.
class Regex {
 public:
  Op op() const { return op_; }
  SymbolId symbol() const { return symbol_; }
  const std::vector<RegexPtr>& children() const { return children_; }
  const RegexPtr& child() const { return children_[0]; }

  /// Number of AST nodes.
  size_t Size() const;

  /// Nesting depth of the parse tree ("parse depth" in Choi's study,
  /// paper Section 4.2.1). A bare symbol has depth 1.
  size_t Depth() const;

  /// Collects the set of symbols occurring in the expression.
  void CollectAlphabet(std::set<SymbolId>* out) const;
  std::set<SymbolId> Alphabet() const;

  /// Number of occurrences of each symbol; an expression is a k-ORE iff
  /// every count is <= k (Section 4.2.3).
  std::map<SymbolId, size_t> SymbolOccurrences() const;

  /// Max occurrences of any one symbol (0 for symbol-free expressions);
  /// the minimal k such that the expression is a k-ORE.
  size_t MaxSymbolOccurrences() const;

  /// True if epsilon is in the language (computed syntactically).
  bool Nullable() const;

  /// Renders the expression with '|' for union, postfix * + ?, and
  /// parentheses only where required. Symbol names come from `dict`.
  std::string ToString(const Interner& dict) const;

  // Factory functions.
  static RegexPtr Empty();
  static RegexPtr Epsilon();
  static RegexPtr Symbol(SymbolId s);
  static RegexPtr Concat(std::vector<RegexPtr> parts);
  static RegexPtr Concat(RegexPtr a, RegexPtr b);
  static RegexPtr Union(std::vector<RegexPtr> parts);
  static RegexPtr Union(RegexPtr a, RegexPtr b);
  static RegexPtr Star(RegexPtr e);
  static RegexPtr Plus(RegexPtr e);
  static RegexPtr Optional(RegexPtr e);

 private:
  Regex(Op op, SymbolId symbol, std::vector<RegexPtr> children)
      : op_(op), symbol_(symbol), children_(std::move(children)) {}

  Op op_;
  SymbolId symbol_ = kInvalidSymbol;
  std::vector<RegexPtr> children_;
};

/// Structural equality of two expressions (same tree shape & symbols).
bool StructurallyEqual(const RegexPtr& a, const RegexPtr& b);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_AST_H_
