#include "regex/parser.h"

#include <cctype>
#include <string>

namespace rwdt::regex {
namespace {

bool IsSymbolChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '#' || c == '$' || c == '@';
}

/// Recursive-descent parser over the grammar
///   union   := concat ('|' concat)*
///   concat  := postfix+
///   postfix := atom ('*' | '+' | '?')*
///   atom    := symbol | '(' union ')' | '<eps>' | '<empty>'
class Parser {
 public:
  Parser(std::string_view input, Interner* dict)
      : input_(input), dict_(dict) {}

  Result<RegexPtr> Parse() {
    RWDT_ASSIGN_OR_RETURN(RegexPtr e, ParseUnion());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return e;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }

  Result<RegexPtr> ParseUnion() {
    RWDT_ASSIGN_OR_RETURN(RegexPtr first, ParseConcat());
    std::vector<RegexPtr> parts = {std::move(first)};
    while (Peek() == '|') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(RegexPtr next, ParseConcat());
      parts.push_back(std::move(next));
    }
    return Regex::Union(std::move(parts));
  }

  Result<RegexPtr> ParseConcat() {
    std::vector<RegexPtr> parts;
    for (;;) {
      const char c = Peek();
      if (c == '\0' || c == '|' || c == ')') break;
      RWDT_ASSIGN_OR_RETURN(RegexPtr next, ParsePostfix());
      parts.push_back(std::move(next));
    }
    if (parts.empty()) {
      return Status::ParseError("empty alternative at offset " +
                                std::to_string(pos_));
    }
    return Regex::Concat(std::move(parts));
  }

  Result<RegexPtr> ParsePostfix() {
    RWDT_ASSIGN_OR_RETURN(RegexPtr e, ParseAtom());
    for (;;) {
      // Postfix operators bind to the immediately preceding atom; no
      // whitespace skipping here so "a *" is concat(a, error) rather than
      // silently a*. SkipSpace would make 'a b*' ambiguous to read.
      if (pos_ >= input_.size()) break;
      const char c = input_[pos_];
      if (c == '*') {
        e = Regex::Star(e);
        ++pos_;
      } else if (c == '+') {
        e = Regex::Plus(e);
        ++pos_;
      } else if (c == '?') {
        e = Regex::Optional(e);
        ++pos_;
      } else {
        break;
      }
    }
    return e;
  }

  Result<RegexPtr> ParseAtom() {
    const char c = Peek();
    if (c == '(') {
      ++pos_;
      RWDT_ASSIGN_OR_RETURN(RegexPtr inner, ParseUnion());
      if (Peek() != ')') {
        return Status::ParseError("expected ')' at offset " +
                                  std::to_string(pos_));
      }
      ++pos_;
      return inner;
    }
    if (c == '<') {
      if (input_.substr(pos_, 5) == "<eps>") {
        pos_ += 5;
        return Regex::Epsilon();
      }
      if (input_.substr(pos_, 7) == "<empty>") {
        pos_ += 7;
        return Regex::Empty();
      }
      return Status::ParseError("unknown <...> token at offset " +
                                std::to_string(pos_));
    }
    if (c == '\'') {
      ++pos_;
      std::string name;
      while (pos_ < input_.size() && input_[pos_] != '\'') {
        name += input_[pos_++];
      }
      if (pos_ >= input_.size()) {
        return Status::ParseError("unterminated quoted symbol");
      }
      ++pos_;
      if (name.empty()) return Status::ParseError("empty quoted symbol");
      return Regex::Symbol(dict_->Intern(name));
    }
    if (IsSymbolChar(c)) {
      ++pos_;
      return Regex::Symbol(dict_->Intern(std::string_view(&c, 1)));
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(pos_));
  }

  std::string_view input_;
  Interner* dict_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view input, Interner* dict) {
  return Parser(input, dict).Parse();
}

}  // namespace rwdt::regex
