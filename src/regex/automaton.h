#ifndef RWDT_REGEX_AUTOMATON_H_
#define RWDT_REGEX_AUTOMATON_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/interner.h"
#include "regex/ast.h"

namespace rwdt::regex {

using State = uint32_t;
inline constexpr State kNoState = std::numeric_limits<State>::max();

/// A word over the interned alphabet.
using Word = std::vector<SymbolId>;

/// Epsilon-free nondeterministic finite automaton. Glushkov construction
/// (see glushkov.h) produces NFAs directly without epsilon transitions, so
/// the library never needs epsilon closure.
struct Nfa {
  /// Sorted, duplicate-free alphabet. Operations on two automata use the
  /// union of their alphabets.
  std::vector<SymbolId> alphabet;

  /// trans[q] holds (symbol, target) pairs, sorted by (symbol, target).
  std::vector<std::vector<std::pair<SymbolId, State>>> trans;

  std::vector<State> start;    // sorted
  std::vector<bool> accept;    // size == NumStates()

  size_t NumStates() const { return trans.size(); }
  size_t NumTransitions() const;

  bool Accepts(const Word& w) const;
};

/// Deterministic finite automaton, possibly partial: missing transitions
/// are kNoState (an implicit dead state). State 0 is the start state,
/// except when `start` is overridden (used by orbit automata in bkw.cc).
struct Dfa {
  std::vector<SymbolId> alphabet;             // sorted
  std::vector<std::vector<State>> trans;      // NumStates() x alphabet.size()
  std::vector<bool> accept;
  State start = 0;

  size_t NumStates() const { return trans.size(); }

  /// Index of `sym` in `alphabet`, or npos.
  size_t SymbolIndex(SymbolId sym) const;

  State Step(State q, SymbolId sym) const;
  bool Accepts(const Word& w) const;

  /// True when every transition is present (no implicit dead state).
  bool IsComplete() const;
};

/// Subset construction. The result is partial (no dead-state padding) and
/// only contains reachable subsets.
Dfa Determinize(const Nfa& nfa);

/// Moore minimization of a (possibly partial) DFA. Unreachable and dead
/// (non-co-reachable) states are removed first, so the result is the
/// canonical minimal *partial* DFA of the language (no dead state).
Dfa Minimize(const Dfa& dfa);

/// Adds an explicit dead state (if needed) and extends the alphabet to
/// `alphabet` (a superset of dfa.alphabet), making the DFA complete.
Dfa Complete(const Dfa& dfa, const std::vector<SymbolId>& alphabet);

/// Complements a DFA with respect to words over `alphabet`.
Dfa Complement(const Dfa& dfa, const std::vector<SymbolId>& alphabet);

/// Product automaton; `intersect` selects intersection vs union semantics
/// for the accepting condition. Operates over the union alphabet (both
/// inputs are completed first). Only reachable product states are built.
Dfa Product(const Dfa& a, const Dfa& b, bool intersect);

/// Language emptiness (no accepting state reachable).
bool IsEmptyLanguage(const Dfa& dfa);

/// Shortest accepted word, or nullopt when the language is empty.
std::optional<Word> ShortestAccepted(const Dfa& dfa);

/// Language containment L(a) subseteq L(b), decided via a x complement(b).
/// Returns a counterexample through `witness` when non-contained and
/// `witness` != nullptr.
bool IsContained(const Dfa& a, const Dfa& b, Word* witness = nullptr);

/// Language equivalence.
bool AreEquivalent(const Dfa& a, const Dfa& b);

/// On-the-fly emptiness test of the intersection of several NFAs, i.e. the
/// generic (PSPACE) algorithm for the Intersection problem of Section 4.2.2.
/// Explores tuples of state sets via BFS; `witness` receives a word in the
/// intersection when non-empty. `max_configs` bounds the explored
/// configuration count (returns nullopt when exceeded).
std::optional<bool> IntersectionNonEmpty(const std::vector<Nfa>& nfas,
                                         Word* witness = nullptr,
                                         size_t max_configs = 1u << 22);

/// Merges two sorted alphabets.
std::vector<SymbolId> UnionAlphabet(const std::vector<SymbolId>& a,
                                    const std::vector<SymbolId>& b);

/// Enumerates up to `limit` words of L(dfa) in length-lexicographic order.
std::vector<Word> EnumerateLanguage(const Dfa& dfa, size_t limit,
                                    size_t max_len);

/// Number of states of the minimal complete DFA (minimal partial + dead
/// state when the language is not total). Used by the determinization
/// blow-up experiment (Section 4.2.1).
size_t MinimalDfaSize(const Dfa& dfa);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_AUTOMATON_H_
