#ifndef RWDT_REGEX_PARSER_H_
#define RWDT_REGEX_PARSER_H_

#include <string_view>

#include "common/interner.h"
#include "common/status.h"
#include "regex/ast.h"

namespace rwdt::regex {

/// Parses the library's concrete regex syntax:
///
///   union         e1 | e2        (the paper writes e1 + e2)
///   concatenation e1 e2          (juxtaposition; whitespace optional
///                                 between single-character symbols)
///   postfix       e* e+ e?
///   grouping      ( e )
///   epsilon       <eps>
///   empty set     <empty>
///
/// Symbols are either single characters from [A-Za-z0-9_#$@] or quoted
/// multi-character names 'like:this'. Symbol names are interned into
/// `dict`, which the caller owns (so several expressions can share one
/// alphabet).
Result<RegexPtr> ParseRegex(std::string_view input, Interner* dict);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_PARSER_H_
