#ifndef RWDT_REGEX_FRAGMENTS_H_
#define RWDT_REGEX_FRAGMENTS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "regex/ast.h"

namespace rwdt::regex {

/// Modifier of a simple factor (Definition 4.3):
///   (a1+...+ak)  (a1+...+ak)?  (a1+...+ak)*  (a1+...+ak)+
enum class FactorModifier { kOnce, kOptional, kStar, kPlus };

/// A simple factor: a disjunction of symbols with a modifier.
struct SimpleFactor {
  std::vector<SymbolId> symbols;  // sorted, duplicate-free
  FactorModifier modifier = FactorModifier::kOnce;

  bool IsSingleSymbol() const { return symbols.size() == 1; }
};

/// The eight factor types of the RE(f1,...,fk) fragment notation of
/// Martens-Neven-Schwentick (paper Section 4.2.2): "a" stands for a single
/// symbol, "(+a)" for a disjunction of symbols.
enum class FactorType {
  kA,         // a
  kAOpt,      // a?
  kAStar,     // a*
  kAPlus,     // a+
  kDisj,      // (+a)
  kDisjOpt,   // (+a)?
  kDisjStar,  // (+a)*
  kDisjPlus,  // (+a)+
};

/// Human-readable name, e.g. "(+a)*".
std::string FactorTypeName(FactorType type);

FactorType TypeOf(const SimpleFactor& factor);

/// A sequential (chain) regular expression: a concatenation f1...fn of
/// simple factors (Definition 4.3). Bex et al. found >92% of DTD
/// expressions have this form.
struct ChainRegex {
  std::vector<SimpleFactor> factors;

  /// Set of factor types used; determines the smallest RE(...) fragment
  /// the expression falls into.
  std::set<FactorType> Signature() const;

  RegexPtr ToRegex() const;
};

/// Decomposes `e` into a chain regex, or nullopt when `e` is not
/// sequential. Recognition is syntactic (per Definition 4.3): the
/// expression must literally be a concatenation of simple factors;
/// equivalent-but-differently-written expressions are not recognized.
/// A disjunction with repeated symbols (a+a) is still accepted as a factor
/// (duplicates collapsed).
std::optional<ChainRegex> ToChainRegex(const RegexPtr& e);

/// True iff `e` is a k-occurrence regular expression: every symbol occurs
/// at most `k` times (Section 4.2.3).
bool IsKore(const RegexPtr& e, size_t k);

/// Single-occurrence regular expression (1-ORE / SORE).
bool IsSore(const RegexPtr& e);

/// True iff every factor is within the fragment described by
/// `allowed` factor types, and `e` is sequential at all.
bool InFragment(const RegexPtr& e, const std::set<FactorType>& allowed);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_FRAGMENTS_H_
