#include "regex/ast.h"

#include <algorithm>

namespace rwdt::regex {

size_t Regex::Size() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->Size();
  return n;
}

size_t Regex::Depth() const {
  size_t d = 0;
  for (const auto& c : children_) d = std::max(d, c->Depth());
  return d + 1;
}

void Regex::CollectAlphabet(std::set<SymbolId>* out) const {
  if (op_ == Op::kSymbol) out->insert(symbol_);
  for (const auto& c : children_) c->CollectAlphabet(out);
}

std::set<SymbolId> Regex::Alphabet() const {
  std::set<SymbolId> out;
  CollectAlphabet(&out);
  return out;
}

std::map<SymbolId, size_t> Regex::SymbolOccurrences() const {
  std::map<SymbolId, size_t> counts;
  // Non-recursive DFS to keep stack use bounded on deep expressions.
  std::vector<const Regex*> stack = {this};
  while (!stack.empty()) {
    const Regex* e = stack.back();
    stack.pop_back();
    if (e->op_ == Op::kSymbol) counts[e->symbol_]++;
    for (const auto& c : e->children_) stack.push_back(c.get());
  }
  return counts;
}

size_t Regex::MaxSymbolOccurrences() const {
  size_t best = 0;
  for (const auto& [sym, count] : SymbolOccurrences()) {
    (void)sym;
    best = std::max(best, count);
  }
  return best;
}

bool Regex::Nullable() const {
  switch (op_) {
    case Op::kEmpty:
    case Op::kSymbol:
      return false;
    case Op::kEpsilon:
    case Op::kStar:
    case Op::kOptional:
      return true;
    case Op::kPlus:
      return children_[0]->Nullable();
    case Op::kConcat:
      for (const auto& c : children_) {
        if (!c->Nullable()) return false;
      }
      return true;
    case Op::kUnion:
      for (const auto& c : children_) {
        if (c->Nullable()) return true;
      }
      return false;
  }
  return false;
}

namespace {

// Binding strength for parenthesization: union < concat < postfix.
int Precedence(Op op) {
  switch (op) {
    case Op::kUnion:
      return 0;
    case Op::kConcat:
      return 1;
    default:
      return 2;
  }
}

void Render(const Regex& e, const Interner& dict, int parent_prec,
            std::string* out) {
  const int prec = Precedence(e.op());
  const bool need_parens = prec < parent_prec;
  if (need_parens) *out += '(';
  switch (e.op()) {
    case Op::kEmpty:
      *out += "<empty>";
      break;
    case Op::kEpsilon:
      *out += "<eps>";
      break;
    case Op::kSymbol: {
      const std::string& name = dict.Name(e.symbol());
      *out += name;
      break;
    }
    case Op::kConcat: {
      bool first = true;
      for (const auto& c : e.children()) {
        if (!first) *out += ' ';
        first = false;
        Render(*c, dict, 2, out);
      }
      break;
    }
    case Op::kUnion: {
      bool first = true;
      for (const auto& c : e.children()) {
        if (!first) *out += '|';
        first = false;
        Render(*c, dict, 1, out);
      }
      break;
    }
    case Op::kStar:
      Render(*e.child(), dict, 3, out);
      *out += '*';
      break;
    case Op::kPlus:
      Render(*e.child(), dict, 3, out);
      *out += '+';
      break;
    case Op::kOptional:
      Render(*e.child(), dict, 3, out);
      *out += '?';
      break;
  }
  if (need_parens) *out += ')';
}

}  // namespace

std::string Regex::ToString(const Interner& dict) const {
  std::string out;
  Render(*this, dict, 0, &out);
  return out;
}

RegexPtr Regex::Empty() { return RegexPtr(new Regex(Op::kEmpty, kInvalidSymbol, {})); }

RegexPtr Regex::Epsilon() { return RegexPtr(new Regex(Op::kEpsilon, kInvalidSymbol, {})); }

RegexPtr Regex::Symbol(SymbolId s) { return RegexPtr(new Regex(Op::kSymbol, s, {})); }

RegexPtr Regex::Concat(std::vector<RegexPtr> parts) {
  std::vector<RegexPtr> flat;
  for (auto& p : parts) {
    if (p->op() == Op::kConcat) {
      for (const auto& c : p->children()) flat.push_back(c);
    } else {
      flat.push_back(std::move(p));
    }
  }
  if (flat.empty()) return Epsilon();
  if (flat.size() == 1) return flat[0];
  return RegexPtr(new Regex(Op::kConcat, kInvalidSymbol, std::move(flat)));
}

RegexPtr Regex::Concat(RegexPtr a, RegexPtr b) {
  return Concat(std::vector<RegexPtr>{std::move(a), std::move(b)});
}

RegexPtr Regex::Union(std::vector<RegexPtr> parts) {
  std::vector<RegexPtr> flat;
  for (auto& p : parts) {
    if (p->op() == Op::kUnion) {
      for (const auto& c : p->children()) flat.push_back(c);
    } else {
      flat.push_back(std::move(p));
    }
  }
  if (flat.empty()) return Empty();
  if (flat.size() == 1) return flat[0];
  return RegexPtr(new Regex(Op::kUnion, kInvalidSymbol, std::move(flat)));
}

RegexPtr Regex::Union(RegexPtr a, RegexPtr b) {
  return Union(std::vector<RegexPtr>{std::move(a), std::move(b)});
}

RegexPtr Regex::Star(RegexPtr e) {
  return RegexPtr(new Regex(Op::kStar, kInvalidSymbol, {std::move(e)}));
}

RegexPtr Regex::Plus(RegexPtr e) {
  return RegexPtr(new Regex(Op::kPlus, kInvalidSymbol, {std::move(e)}));
}

RegexPtr Regex::Optional(RegexPtr e) {
  return RegexPtr(new Regex(Op::kOptional, kInvalidSymbol, {std::move(e)}));
}

bool StructurallyEqual(const RegexPtr& a, const RegexPtr& b) {
  if (a.get() == b.get()) return true;
  if (a->op() != b->op()) return false;
  if (a->op() == Op::kSymbol) return a->symbol() == b->symbol();
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!StructurallyEqual(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

}  // namespace rwdt::regex
