#include "regex/bkw.h"

#include <algorithm>
#include <set>
#include <vector>

#include "regex/glushkov.h"

namespace rwdt::regex {
namespace {

/// Kosaraju strongly connected components; comp[q] = component id.
std::vector<uint32_t> Scc(const Dfa& dfa, uint32_t* num_components) {
  const size_t n = dfa.NumStates();
  std::vector<std::vector<State>> fwd(n), rev(n);
  for (size_t q = 0; q < n; ++q) {
    for (State t : dfa.trans[q]) {
      if (t != kNoState) {
        fwd[q].push_back(t);
        rev[t].push_back(static_cast<State>(q));
      }
    }
  }
  std::vector<bool> visited(n, false);
  std::vector<State> order;
  order.reserve(n);
  // Iterative post-order DFS.
  for (size_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    std::vector<std::pair<State, size_t>> stack = {
        {static_cast<State>(root), 0}};
    visited[root] = true;
    while (!stack.empty()) {
      auto& [q, idx] = stack.back();
      if (idx < fwd[q].size()) {
        const State t = fwd[q][idx++];
        if (!visited[t]) {
          visited[t] = true;
          stack.emplace_back(t, 0);
        }
      } else {
        order.push_back(q);
        stack.pop_back();
      }
    }
  }
  std::vector<uint32_t> comp(n, 0xffffffffu);
  uint32_t c = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (comp[*it] != 0xffffffffu) continue;
    std::vector<State> stack = {*it};
    comp[*it] = c;
    while (!stack.empty()) {
      const State q = stack.back();
      stack.pop_back();
      for (State t : rev[q]) {
        if (comp[t] == 0xffffffffu) {
          comp[t] = c;
          stack.push_back(t);
        }
      }
    }
    ++c;
  }
  *num_components = c;
  return comp;
}

/// Symbols a such that every final state q has delta(q, a) defined and
/// all final states agree on the target ("M-consistent" symbols).
std::vector<size_t> ConsistentSymbolIndices(const Dfa& dfa) {
  std::vector<State> finals;
  for (size_t q = 0; q < dfa.NumStates(); ++q) {
    if (dfa.accept[q]) finals.push_back(static_cast<State>(q));
  }
  std::vector<size_t> out;
  for (size_t a = 0; a < dfa.alphabet.size(); ++a) {
    State target = kNoState;
    bool consistent = !finals.empty();
    for (State q : finals) {
      const State t = dfa.trans[q][a];
      if (t == kNoState) {
        consistent = false;
        break;
      }
      if (target == kNoState) {
        target = t;
      } else if (target != t) {
        consistent = false;
        break;
      }
    }
    if (consistent) out.push_back(a);
  }
  return out;
}

/// Removes delta(q, a) for all final q and consistent symbol indices.
/// Returns true through `cut_any` when at least one transition was removed.
Dfa CutConsistent(const Dfa& dfa, const std::vector<size_t>& symbol_indices,
                  bool* cut_any) {
  Dfa out = dfa;
  *cut_any = false;
  for (size_t q = 0; q < out.NumStates(); ++q) {
    if (!out.accept[q]) continue;
    for (size_t a : symbol_indices) {
      if (out.trans[q][a] != kNoState) {
        out.trans[q][a] = kNoState;
        *cut_any = true;
      }
    }
  }
  return out;
}

bool IsGate(const Dfa& dfa, const std::vector<uint32_t>& comp, State q) {
  if (dfa.accept[q]) return true;
  for (State t : dfa.trans[q]) {
    if (t != kNoState && comp[t] != comp[q]) return true;
  }
  return false;
}

/// BKW orbit property: within each orbit, all gates agree on finality and
/// have identical out-of-orbit transition behavior.
bool HasOrbitProperty(const Dfa& dfa, const std::vector<uint32_t>& comp,
                      uint32_t num_components) {
  const size_t k = dfa.alphabet.size();
  std::vector<std::vector<State>> gates(num_components);
  for (size_t q = 0; q < dfa.NumStates(); ++q) {
    if (IsGate(dfa, comp, static_cast<State>(q))) {
      gates[comp[q]].push_back(static_cast<State>(q));
    }
  }
  for (uint32_t c = 0; c < num_components; ++c) {
    const auto& gs = gates[c];
    for (size_t i = 1; i < gs.size(); ++i) {
      const State q1 = gs[0];
      const State q2 = gs[i];
      if (dfa.accept[q1] != dfa.accept[q2]) return false;
      for (size_t a = 0; a < k; ++a) {
        const State t1 = dfa.trans[q1][a];
        const State t2 = dfa.trans[q2][a];
        const bool out1 = t1 != kNoState && comp[t1] != c;
        const bool out2 = t2 != kNoState && comp[t2] != c;
        if (out1 || out2) {
          if (t1 != t2) return false;
        }
      }
    }
  }
  return true;
}

/// Orbit automaton M_K(q): the orbit of q with in-orbit transitions only,
/// start q, gates as finals.
Dfa OrbitAutomaton(const Dfa& dfa, const std::vector<uint32_t>& comp,
                   State start) {
  const uint32_t c = comp[start];
  const size_t k = dfa.alphabet.size();
  std::vector<State> remap(dfa.NumStates(), kNoState);
  std::vector<State> members;
  for (size_t q = 0; q < dfa.NumStates(); ++q) {
    if (comp[q] == c) {
      remap[q] = static_cast<State>(members.size());
      members.push_back(static_cast<State>(q));
    }
  }
  Dfa out;
  out.alphabet = dfa.alphabet;
  out.trans.assign(members.size(), std::vector<State>(k, kNoState));
  out.accept.assign(members.size(), false);
  for (size_t i = 0; i < members.size(); ++i) {
    const State q = members[i];
    out.accept[i] = IsGate(dfa, comp, q);
    for (size_t a = 0; a < k; ++a) {
      const State t = dfa.trans[q][a];
      if (t != kNoState && comp[t] == c) out.trans[i][a] = remap[t];
    }
  }
  out.start = remap[start];
  return out;
}

bool HasAnyTransition(const Dfa& dfa) {
  for (const auto& row : dfa.trans) {
    for (State t : row) {
      if (t != kNoState) return true;
    }
  }
  return false;
}

bool CheckRecursive(const Dfa& input, int depth) {
  if (depth > 256) return false;  // safety; never reached in practice
  const Dfa dfa = Minimize(input);

  bool any_final = false;
  for (bool f : dfa.accept) any_final = any_final || f;
  if (!any_final) return true;  // empty language
  if (dfa.NumStates() == 1 && !HasAnyTransition(dfa)) return true;

  bool cut_any = false;
  const Dfa cut =
      CutConsistent(dfa, ConsistentSymbolIndices(dfa), &cut_any);

  uint32_t num_components = 0;
  const std::vector<uint32_t> comp = Scc(cut, &num_components);

  if (num_components == 1 && !cut_any) {
    // Strongly connected minimal DFA with no consistent symbols cut:
    // not one-unambiguous (BKW).
    return false;
  }
  if (!HasOrbitProperty(cut, comp, num_components)) return false;

  // Recurse into each orbit automaton. By the orbit property it suffices
  // to pick one start per orbit when gates agree, but we test every state
  // for robustness (orbit sizes in practice are tiny).
  for (size_t q = 0; q < cut.NumStates(); ++q) {
    const Dfa orbit = OrbitAutomaton(cut, comp, static_cast<State>(q));
    if (num_components == 1 && !cut_any) return false;  // unreachable
    // Progress guarantee: either the orbit is a strict subset of states,
    // or transitions were cut; both shrink the problem.
    if (orbit.NumStates() == cut.NumStates() && !cut_any) return false;
    if (!CheckRecursive(orbit, depth + 1)) return false;
  }
  return true;
}

}  // namespace

bool IsDreDefinableDfa(const Dfa& dfa) { return CheckRecursive(dfa, 0); }

bool IsDreDefinable(const RegexPtr& e) {
  return IsDreDefinableDfa(ToMinimalDfa(e));
}

}  // namespace rwdt::regex
