#ifndef RWDT_REGEX_GLUSHKOV_H_
#define RWDT_REGEX_GLUSHKOV_H_

#include <vector>

#include "regex/ast.h"
#include "regex/automaton.h"

namespace rwdt::regex {

/// Result of the Glushkov (position automaton) construction.
///
/// Positions are the occurrences of symbols in the expression, numbered
/// 1..n in left-to-right order; position 0 is the synthetic start state.
/// The expression is *deterministic* (one-unambiguous, Section 4.2.1) iff
/// this automaton is deterministic, which is exactly how
/// IsDeterministic() decides it (Brüggemann-Klein & Wood).
struct GlushkovResult {
  Nfa nfa;                           // states: 0 = start, 1..n = positions
  std::vector<SymbolId> pos_symbol;  // pos_symbol[i] = label of position i
                                     // (pos_symbol[0] unused)
};

/// Builds the Glushkov automaton of `e` via first/last/follow sets.
GlushkovResult BuildGlushkov(const RegexPtr& e);

/// Convenience: Glushkov NFA of `e`.
Nfa ToNfa(const RegexPtr& e);

/// Convenience: determinized (partial, reachable-only) DFA of `e`.
Dfa ToDfa(const RegexPtr& e);

/// Convenience: canonical minimal partial DFA of L(e).
Dfa ToMinimalDfa(const RegexPtr& e);

/// True iff `e` is a deterministic (one-unambiguous) regular expression:
/// while reading a word left to right it is always clear which symbol
/// occurrence of `e` the next input symbol matches. Required of DTD
/// content models by the XML standard (paper Section 4.2.1).
bool IsDeterministic(const RegexPtr& e);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_GLUSHKOV_H_
