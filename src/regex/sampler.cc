#include "regex/sampler.h"

#include <algorithm>

#include "regex/automaton.h"

namespace rwdt::regex {
namespace {

RegexPtr SampleRec(const RegexSamplerOptions& opt, Rng& rng, size_t depth) {
  const double r = rng.NextDouble();
  if (depth < opt.max_depth) {
    if (r < opt.p_union) {
      const size_t fanout = static_cast<size_t>(rng.NextInt(
          2, static_cast<int64_t>(std::max<size_t>(2, opt.max_fanout))));
      std::vector<RegexPtr> parts;
      for (size_t i = 0; i < fanout; ++i) {
        parts.push_back(SampleRec(opt, rng, depth + 1));
      }
      return Regex::Union(std::move(parts));
    }
    if (r < opt.p_union + opt.p_concat) {
      const size_t fanout = static_cast<size_t>(rng.NextInt(
          2, static_cast<int64_t>(std::max<size_t>(2, opt.max_fanout))));
      std::vector<RegexPtr> parts;
      for (size_t i = 0; i < fanout; ++i) {
        parts.push_back(SampleRec(opt, rng, depth + 1));
      }
      return Regex::Concat(std::move(parts));
    }
    if (r < opt.p_union + opt.p_concat + opt.p_postfix) {
      RegexPtr inner = SampleRec(opt, rng, depth + 1);
      switch (rng.NextBelow(3)) {
        case 0:
          return Regex::Star(std::move(inner));
        case 1:
          return Regex::Plus(std::move(inner));
        default:
          return Regex::Optional(std::move(inner));
      }
    }
  }
  // Leaf: mostly symbols, occasionally epsilon.
  if (rng.NextBool(0.05)) return Regex::Epsilon();
  return Regex::Symbol(
      static_cast<SymbolId>(rng.NextBelow(opt.alphabet_size)));
}

}  // namespace

RegexPtr SampleRegex(const RegexSamplerOptions& options, Rng& rng) {
  return SampleRec(options, rng, 0);
}

Word SampleWord(size_t alphabet_size, size_t max_len, Rng& rng) {
  const size_t len = rng.NextBelow(max_len + 1);
  Word w(len);
  for (auto& s : w) s = static_cast<SymbolId>(rng.NextBelow(alphabet_size));
  return w;
}

bool SampleAcceptedWord(const Nfa& nfa, size_t max_len, Rng& rng, Word* out) {
  // Random walk with restarts.
  for (int attempt = 0; attempt < 32; ++attempt) {
    Word w;
    if (nfa.start.empty()) return false;
    State q = nfa.start[rng.NextBelow(nfa.start.size())];
    for (size_t step = 0; step <= max_len; ++step) {
      if (nfa.accept[q] && rng.NextBool(0.3)) {
        *out = w;
        return true;
      }
      if (nfa.trans[q].empty()) {
        if (nfa.accept[q]) {
          *out = w;
          return true;
        }
        break;
      }
      const auto& [sym, target] =
          nfa.trans[q][rng.NextBelow(nfa.trans[q].size())];
      w.push_back(sym);
      q = target;
    }
    if (nfa.accept[q] && w.size() <= max_len) {
      *out = w;
      return true;
    }
  }
  return false;
}

}  // namespace rwdt::regex
