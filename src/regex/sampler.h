#ifndef RWDT_REGEX_SAMPLER_H_
#define RWDT_REGEX_SAMPLER_H_

#include <vector>

#include "common/rng.h"
#include "regex/ast.h"
#include "regex/automaton.h"

namespace rwdt::regex {

/// Parameters for random regex generation (used by property tests and the
/// DTD corpus generator).
struct RegexSamplerOptions {
  size_t alphabet_size = 4;     // symbols 0..alphabet_size-1
  size_t max_depth = 4;         // recursion depth bound
  double p_union = 0.25;        // probabilities of composite nodes;
  double p_concat = 0.35;       // remainder makes a leaf
  double p_postfix = 0.25;      // star/plus/optional, uniformly
  size_t max_fanout = 3;        // children of union/concat
};

/// Samples a random regular expression; symbols are SymbolIds
/// 0..alphabet_size-1 (callers intern names separately as needed).
RegexPtr SampleRegex(const RegexSamplerOptions& options, Rng& rng);

/// Samples a random word over symbols 0..alphabet_size-1 with length
/// uniform in [0, max_len].
Word SampleWord(size_t alphabet_size, size_t max_len, Rng& rng);

/// Samples a word from L(nfa) by a bounded random walk; returns false when
/// the walk fails to reach acceptance within `max_len` steps (e.g., empty
/// language).
bool SampleAcceptedWord(const Nfa& nfa, size_t max_len, Rng& rng, Word* out);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_SAMPLER_H_
