#ifndef RWDT_REGEX_STATE_ELIMINATION_H_
#define RWDT_REGEX_STATE_ELIMINATION_H_

#include "regex/ast.h"
#include "regex/automaton.h"

namespace rwdt::regex {

/// Converts a DFA (or any automaton encoded as a Dfa) into an equivalent
/// regular expression by Kleene's state-elimination method. The result
/// can be exponentially larger than the automaton; callers needing small
/// output should Minimize first.
RegexPtr DfaToRegex(const Dfa& dfa);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_STATE_ELIMINATION_H_
