#ifndef RWDT_REGEX_CHAIN_ALGORITHMS_H_
#define RWDT_REGEX_CHAIN_ALGORITHMS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "regex/ast.h"
#include "regex/fragments.h"

namespace rwdt::regex {

/// A run-length-encoded word: maximal blocks of equal symbols.
/// Supports words of length up to 2^64-1 with a polynomial description,
/// which is how the NP upper bounds of Theorem 4.5(c-g) represent their
/// candidate witnesses.
struct CompressedWord {
  std::vector<std::pair<SymbolId, uint64_t>> runs;  // (symbol, count>0)

  uint64_t Length() const;
  static CompressedWord FromWord(const std::vector<SymbolId>& word);
};

/// Polynomial-time membership of a compressed (possibly exponentially
/// long) word in a chain regular expression. This is the verification
/// procedure behind the NP upper bounds of Theorem 4.5: "it is possible to
/// guess a polynomial-size representation of a candidate witness word w
/// ... and to test in polynomial time if w is in each of the languages."
bool ChainMatchesCompressed(const ChainRegex& chain,
                            const CompressedWord& word);

/// Unary-run normal form for expressions in RE(a, a+) (and RE(a, a*) with
/// no pure-star runs): a sequence of runs over single symbols where
/// adjacent runs carry distinct symbols.
struct UnaryRun {
  SymbolId symbol = kInvalidSymbol;
  uint64_t min_count = 0;   // exact count when !unbounded
  bool unbounded = false;   // true: any count >= min_count
};

/// Computes the run normal form of a chain regex whose factors are all
/// single-symbol with modifiers in {once, plus} (the RE(a, a+) fragment)
/// or {once, plus, star} where star factors merge into adjacent runs of
/// the same symbol. Returns nullopt when the expression has a "vanishing"
/// run (a pure star run, min 0) adjacent to runs of different symbols, in
/// which case block alignment is not forced and the normal form does not
/// characterize the language.
std::optional<std::vector<UnaryRun>> ToUnaryRuns(const ChainRegex& chain);

/// PTIME containment for RE(a, a+) — Theorem 4.4(a). Both inputs must
/// have a unary-run normal form; returns nullopt otherwise.
std::optional<bool> UnaryRunContainment(const ChainRegex& lhs,
                                        const ChainRegex& rhs);

/// PTIME intersection non-emptiness for RE(a, a+) — Theorem 4.5(a).
/// Returns nullopt when some input lacks a normal form; otherwise true iff
/// the intersection is non-empty (and fills `witness` when non-empty).
std::optional<bool> UnaryRunIntersection(
    const std::vector<ChainRegex>& chains,
    CompressedWord* witness = nullptr);

/// PTIME containment for RE(a, (+a)) — Theorem 4.4(b). All words of such
/// an expression have the same length; the language is a product of
/// per-position symbol sets. Returns nullopt when a factor has a modifier.
std::optional<bool> FixedLengthContainment(const ChainRegex& lhs,
                                           const ChainRegex& rhs);

/// PTIME intersection for RE(a, (+a)) — Theorem 4.5(b).
std::optional<bool> FixedLengthIntersection(
    const std::vector<ChainRegex>& chains);

/// Fast equivalence for RE(a, a*) / RE(a, a?) style chains via run normal
/// forms (paper: equivalence is PTIME although containment is
/// coNP-complete). Falls back to nullopt when a normal form does not
/// exist; the caller should then use automata-based equivalence.
std::optional<bool> FastChainEquivalence(const ChainRegex& lhs,
                                         const ChainRegex& rhs);

/// Which algorithm DecideContainment selected; reported by benchmarks.
enum class ContainmentAlgorithm {
  kUnaryRuns,     // PTIME, RE(a,a+)
  kFixedLength,   // PTIME, RE(a,(+a))
  kAutomata,      // generic (worst-case exponential)
};

struct ContainmentDecision {
  bool contained = false;
  ContainmentAlgorithm algorithm = ContainmentAlgorithm::kAutomata;
};

/// Containment with fragment dispatch: uses the PTIME procedures when the
/// expressions fall in a tractable fragment, otherwise the generic
/// automata-theoretic algorithm.
ContainmentDecision DecideContainment(const RegexPtr& lhs,
                                      const RegexPtr& rhs);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_CHAIN_ALGORITHMS_H_
