#include "regex/automaton.h"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <set>

namespace rwdt::regex {

size_t Nfa::NumTransitions() const {
  size_t n = 0;
  for (const auto& t : trans) n += t.size();
  return n;
}

bool Nfa::Accepts(const Word& w) const {
  std::set<State> current(start.begin(), start.end());
  for (SymbolId sym : w) {
    std::set<State> next;
    for (State q : current) {
      for (const auto& [s, target] : trans[q]) {
        if (s == sym) next.insert(target);
      }
    }
    current = std::move(next);
    if (current.empty()) return false;
  }
  for (State q : current) {
    if (accept[q]) return true;
  }
  return false;
}

size_t Dfa::SymbolIndex(SymbolId sym) const {
  auto it = std::lower_bound(alphabet.begin(), alphabet.end(), sym);
  if (it == alphabet.end() || *it != sym) return alphabet.size();
  return static_cast<size_t>(it - alphabet.begin());
}

State Dfa::Step(State q, SymbolId sym) const {
  if (q == kNoState) return kNoState;
  const size_t idx = SymbolIndex(sym);
  if (idx == alphabet.size()) return kNoState;
  return trans[q][idx];
}

bool Dfa::Accepts(const Word& w) const {
  State q = start;
  for (SymbolId sym : w) {
    q = Step(q, sym);
    if (q == kNoState) return false;
  }
  return accept[q];
}

bool Dfa::IsComplete() const {
  for (const auto& row : trans) {
    for (State t : row) {
      if (t == kNoState) return false;
    }
  }
  return true;
}

Dfa Determinize(const Nfa& nfa) {
  Dfa dfa;
  dfa.alphabet = nfa.alphabet;
  const size_t k = dfa.alphabet.size();

  std::map<std::vector<State>, State> ids;
  std::vector<std::vector<State>> subsets;

  std::vector<State> initial(nfa.start);
  ids[initial] = 0;
  subsets.push_back(initial);
  dfa.trans.emplace_back(k, kNoState);
  dfa.accept.push_back(false);

  for (size_t i = 0; i < subsets.size(); ++i) {
    // Copy: dfa.trans may reallocate while we fill the row.
    const std::vector<State> subset = subsets[i];
    bool acc = false;
    for (State q : subset) acc = acc || nfa.accept[q];
    dfa.accept[i] = acc;

    for (size_t a = 0; a < k; ++a) {
      const SymbolId sym = dfa.alphabet[a];
      std::set<State> next_set;
      for (State q : subset) {
        for (const auto& [s, target] : nfa.trans[q]) {
          if (s == sym) next_set.insert(target);
        }
      }
      if (next_set.empty()) continue;
      std::vector<State> next(next_set.begin(), next_set.end());
      auto [it, inserted] =
          ids.emplace(next, static_cast<State>(subsets.size()));
      if (inserted) {
        subsets.push_back(next);
        dfa.trans.emplace_back(k, kNoState);
        dfa.accept.push_back(false);
      }
      dfa.trans[i][a] = it->second;
    }
  }
  return dfa;
}

namespace {

// Removes states that are unreachable from the start or cannot reach an
// accepting state. Keeps the DFA partial. If the language is empty the
// result is a single non-accepting state with no transitions.
Dfa Trim(const Dfa& dfa) {
  const size_t n = dfa.NumStates();
  const size_t k = dfa.alphabet.size();

  std::vector<bool> reachable(n, false);
  std::deque<State> queue = {dfa.start};
  reachable[dfa.start] = true;
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    for (State t : dfa.trans[q]) {
      if (t != kNoState && !reachable[t]) {
        reachable[t] = true;
        queue.push_back(t);
      }
    }
  }

  // Backward reachability from accepting states.
  std::vector<std::vector<State>> rev(n);
  for (size_t q = 0; q < n; ++q) {
    for (size_t a = 0; a < k; ++a) {
      const State t = dfa.trans[q][a];
      if (t != kNoState) rev[t].push_back(static_cast<State>(q));
    }
  }
  std::vector<bool> useful(n, false);
  for (size_t q = 0; q < n; ++q) {
    if (dfa.accept[q] && reachable[q] && !useful[q]) {
      useful[q] = true;
      queue.push_back(static_cast<State>(q));
    }
  }
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    for (State p : rev[q]) {
      if (reachable[p] && !useful[p]) {
        useful[p] = true;
        queue.push_back(p);
      }
    }
  }

  std::vector<State> remap(n, kNoState);
  State next_id = 0;
  for (size_t q = 0; q < n; ++q) {
    if (reachable[q] && useful[q]) remap[q] = next_id++;
  }

  Dfa out;
  out.alphabet = dfa.alphabet;
  if (remap[dfa.start] == kNoState) {
    // Empty language: single initial state, everything undefined.
    out.trans.emplace_back(k, kNoState);
    out.accept.push_back(false);
    out.start = 0;
    return out;
  }
  out.trans.assign(next_id, std::vector<State>(k, kNoState));
  out.accept.assign(next_id, false);
  for (size_t q = 0; q < n; ++q) {
    if (remap[q] == kNoState) continue;
    out.accept[remap[q]] = dfa.accept[q];
    for (size_t a = 0; a < k; ++a) {
      const State t = dfa.trans[q][a];
      if (t != kNoState && remap[t] != kNoState) {
        out.trans[remap[q]][a] = remap[t];
      }
    }
  }
  out.start = remap[dfa.start];
  return out;
}

}  // namespace

Dfa Minimize(const Dfa& input) {
  Dfa dfa = Trim(input);
  const size_t n = dfa.NumStates();
  const size_t k = dfa.alphabet.size();

  // Moore's partition refinement. kNoState acts as an implicit class.
  std::vector<uint32_t> cls(n);
  for (size_t q = 0; q < n; ++q) cls[q] = dfa.accept[q] ? 1 : 0;

  for (;;) {
    // Signature = (class, class of each successor; kNoState -> sentinel).
    std::map<std::vector<uint32_t>, uint32_t> sig_ids;
    std::vector<uint32_t> next_cls(n);
    for (size_t q = 0; q < n; ++q) {
      std::vector<uint32_t> sig;
      sig.reserve(k + 1);
      sig.push_back(cls[q]);
      for (size_t a = 0; a < k; ++a) {
        const State t = dfa.trans[q][a];
        sig.push_back(t == kNoState ? 0xffffffffu : cls[t]);
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<uint32_t>(sig_ids.size()));
      next_cls[q] = it->second;
    }
    bool changed = false;
    for (size_t q = 0; q < n; ++q) {
      if (next_cls[q] != cls[q]) {
        changed = true;
        break;
      }
    }
    cls = std::move(next_cls);
    if (!changed) break;
  }

  const uint32_t num_classes =
      n == 0 ? 0 : *std::max_element(cls.begin(), cls.end()) + 1;
  Dfa out;
  out.alphabet = dfa.alphabet;
  out.trans.assign(num_classes, std::vector<State>(k, kNoState));
  out.accept.assign(num_classes, false);
  for (size_t q = 0; q < n; ++q) {
    out.accept[cls[q]] = dfa.accept[q];
    for (size_t a = 0; a < k; ++a) {
      const State t = dfa.trans[q][a];
      if (t != kNoState) out.trans[cls[q]][a] = cls[t];
    }
  }
  out.start = cls[dfa.start];
  return out;
}

Dfa Complete(const Dfa& dfa, const std::vector<SymbolId>& alphabet) {
  Dfa out;
  out.alphabet = alphabet;
  const size_t k = alphabet.size();
  const size_t n = dfa.NumStates();
  out.trans.assign(n + 1, std::vector<State>(k, static_cast<State>(n)));
  out.accept.assign(n + 1, false);
  for (size_t q = 0; q < n; ++q) {
    out.accept[q] = dfa.accept[q];
    for (size_t a = 0; a < k; ++a) {
      const size_t old_idx = dfa.SymbolIndex(alphabet[a]);
      if (old_idx == dfa.alphabet.size()) continue;  // stays dead
      const State t = dfa.trans[q][old_idx];
      if (t != kNoState) out.trans[q][a] = t;
    }
  }
  out.start = dfa.start;
  return out;
}

Dfa Complement(const Dfa& dfa, const std::vector<SymbolId>& alphabet) {
  Dfa out = Complete(dfa, alphabet);
  for (size_t q = 0; q < out.NumStates(); ++q) {
    out.accept[q] = !out.accept[q];
  }
  return out;
}

std::vector<SymbolId> UnionAlphabet(const std::vector<SymbolId>& a,
                                    const std::vector<SymbolId>& b) {
  std::vector<SymbolId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Dfa Product(const Dfa& a_in, const Dfa& b_in, bool intersect) {
  const std::vector<SymbolId> alphabet =
      UnionAlphabet(a_in.alphabet, b_in.alphabet);
  const Dfa a = Complete(a_in, alphabet);
  const Dfa b = Complete(b_in, alphabet);
  const size_t k = alphabet.size();

  Dfa out;
  out.alphabet = alphabet;
  std::map<std::pair<State, State>, State> ids;
  std::vector<std::pair<State, State>> pairs;
  auto intern = [&](State qa, State qb) {
    auto [it, inserted] =
        ids.emplace(std::make_pair(qa, qb), static_cast<State>(pairs.size()));
    if (inserted) {
      pairs.emplace_back(qa, qb);
      out.trans.emplace_back(k, kNoState);
      const bool acc = intersect ? (a.accept[qa] && b.accept[qb])
                                 : (a.accept[qa] || b.accept[qb]);
      out.accept.push_back(acc);
    }
    return it->second;
  };
  intern(a.start, b.start);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto [qa, qb] = pairs[i];
    for (size_t s = 0; s < k; ++s) {
      const State ta = a.trans[qa][s];
      const State tb = b.trans[qb][s];
      out.trans[i][s] = intern(ta, tb);
    }
  }
  out.start = 0;
  return out;
}

bool IsEmptyLanguage(const Dfa& dfa) {
  return !ShortestAccepted(dfa).has_value();
}

std::optional<Word> ShortestAccepted(const Dfa& dfa) {
  const size_t n = dfa.NumStates();
  std::vector<std::pair<State, SymbolId>> parent(
      n, {kNoState, kInvalidSymbol});
  std::vector<bool> seen(n, false);
  std::deque<State> queue = {dfa.start};
  seen[dfa.start] = true;
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    if (dfa.accept[q]) {
      Word w;
      State cur = q;
      while (cur != dfa.start || (w.empty() && cur == dfa.start)) {
        const auto [p, sym] = parent[cur];
        if (p == kNoState) break;
        w.push_back(sym);
        cur = p;
      }
      std::reverse(w.begin(), w.end());
      return w;
    }
    for (size_t a = 0; a < dfa.alphabet.size(); ++a) {
      const State t = dfa.trans[q][a];
      if (t != kNoState && !seen[t]) {
        seen[t] = true;
        parent[t] = {q, dfa.alphabet[a]};
        queue.push_back(t);
      }
    }
  }
  return std::nullopt;
}

bool IsContained(const Dfa& a, const Dfa& b, Word* witness) {
  const std::vector<SymbolId> alphabet =
      UnionAlphabet(a.alphabet, b.alphabet);
  const Dfa not_b = Complement(b, alphabet);
  const Dfa diff = Product(a, not_b, /*intersect=*/true);
  auto w = ShortestAccepted(diff);
  if (w.has_value()) {
    if (witness != nullptr) *witness = *w;
    return false;
  }
  return true;
}

bool AreEquivalent(const Dfa& a, const Dfa& b) {
  return IsContained(a, b) && IsContained(b, a);
}

std::optional<bool> IntersectionNonEmpty(const std::vector<Nfa>& nfas,
                                         Word* witness, size_t max_configs) {
  if (nfas.empty()) return true;
  std::vector<SymbolId> alphabet;
  for (const auto& nfa : nfas) {
    alphabet = UnionAlphabet(alphabet, nfa.alphabet);
  }

  // Configuration: tuple of state *sets* (subset construction per NFA,
  // interleaved on the fly). Encoded as a flat vector with separators.
  using Config = std::vector<std::vector<State>>;
  auto accepts = [&](const Config& cfg) {
    for (size_t i = 0; i < nfas.size(); ++i) {
      bool any = false;
      for (State q : cfg[i]) any = any || nfas[i].accept[q];
      if (!any) return false;
    }
    return true;
  };

  Config init;
  for (const auto& nfa : nfas) {
    init.push_back(nfa.start);
    if (nfa.start.empty()) return false;
  }

  std::map<Config, std::pair<const Config*, SymbolId>> parents;
  std::deque<const Config*> queue;
  auto [it0, ins0] = parents.emplace(init, std::make_pair(nullptr, kInvalidSymbol));
  queue.push_back(&it0->first);

  while (!queue.empty()) {
    if (parents.size() > max_configs) return std::nullopt;
    const Config* cfg = queue.front();
    queue.pop_front();
    if (accepts(*cfg)) {
      if (witness != nullptr) {
        Word w;
        const Config* cur = cfg;
        while (cur != nullptr) {
          const auto& [parent, sym] = parents.at(*cur);
          if (parent == nullptr) break;
          w.push_back(sym);
          cur = parent;
        }
        std::reverse(w.begin(), w.end());
        *witness = w;
      }
      return true;
    }
    for (SymbolId sym : alphabet) {
      Config next(nfas.size());
      bool dead = false;
      for (size_t i = 0; i < nfas.size() && !dead; ++i) {
        std::set<State> next_set;
        for (State q : (*cfg)[i]) {
          for (const auto& [s, target] : nfas[i].trans[q]) {
            if (s == sym) next_set.insert(target);
          }
        }
        if (next_set.empty()) dead = true;
        next[i].assign(next_set.begin(), next_set.end());
      }
      if (dead) continue;
      auto [it, inserted] = parents.emplace(
          std::move(next), std::make_pair(cfg, sym));
      if (inserted) queue.push_back(&it->first);
    }
  }
  return false;
}

std::vector<Word> EnumerateLanguage(const Dfa& dfa, size_t limit,
                                    size_t max_len) {
  std::vector<Word> out;
  // BFS over (state, word) in length-lexicographic order.
  std::deque<std::pair<State, Word>> queue = {{dfa.start, {}}};
  while (!queue.empty() && out.size() < limit) {
    auto [q, w] = std::move(queue.front());
    queue.pop_front();
    if (dfa.accept[q]) out.push_back(w);
    if (w.size() >= max_len) continue;
    for (size_t a = 0; a < dfa.alphabet.size(); ++a) {
      const State t = dfa.trans[q][a];
      if (t == kNoState) continue;
      Word next = w;
      next.push_back(dfa.alphabet[a]);
      queue.emplace_back(t, std::move(next));
    }
  }
  return out;
}

size_t MinimalDfaSize(const Dfa& dfa) {
  const Dfa min = Minimize(dfa);
  return min.NumStates() + (min.IsComplete() ? 0 : 1);
}

}  // namespace rwdt::regex
