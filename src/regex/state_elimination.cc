#include "regex/state_elimination.h"

#include <map>
#include <optional>
#include <utility>

namespace rwdt::regex {
namespace {

using Edge = std::map<std::pair<uint32_t, uint32_t>, RegexPtr>;

void AddEdge(Edge* edges, uint32_t from, uint32_t to, RegexPtr e) {
  auto it = edges->find({from, to});
  if (it == edges->end()) {
    edges->emplace(std::make_pair(from, to), std::move(e));
  } else {
    it->second = Regex::Union(it->second, std::move(e));
  }
}

}  // namespace

RegexPtr DfaToRegex(const Dfa& dfa) {
  const size_t n = dfa.NumStates();
  // Generalized NFA with fresh initial (n) and final (n+1) states.
  const uint32_t init = static_cast<uint32_t>(n);
  const uint32_t fin = static_cast<uint32_t>(n + 1);
  Edge edges;
  AddEdge(&edges, init, dfa.start, Regex::Epsilon());
  for (uint32_t q = 0; q < n; ++q) {
    if (dfa.accept[q]) AddEdge(&edges, q, fin, Regex::Epsilon());
    for (size_t a = 0; a < dfa.alphabet.size(); ++a) {
      const State t = dfa.trans[q][a];
      if (t != kNoState) {
        AddEdge(&edges, q, t, Regex::Symbol(dfa.alphabet[a]));
      }
    }
  }

  // Eliminate original states one by one.
  for (uint32_t victim = 0; victim < n; ++victim) {
    // Collect self-loop, incoming, outgoing.
    RegexPtr loop;
    std::map<uint32_t, RegexPtr> in, out;
    for (auto it = edges.begin(); it != edges.end();) {
      const auto [from, to] = it->first;
      if (from == victim && to == victim) {
        loop = it->second;
        it = edges.erase(it);
      } else if (to == victim) {
        in[from] = it->second;
        it = edges.erase(it);
      } else if (from == victim) {
        out[to] = it->second;
        it = edges.erase(it);
      } else {
        ++it;
      }
    }
    if (in.empty() || out.empty()) continue;
    for (const auto& [from, e_in] : in) {
      for (const auto& [to, e_out] : out) {
        RegexPtr path = e_in;
        if (loop != nullptr) {
          path = Regex::Concat(path, Regex::Star(loop));
        }
        path = Regex::Concat(path, e_out);
        AddEdge(&edges, from, to, std::move(path));
      }
    }
  }

  auto it = edges.find({init, fin});
  if (it == edges.end()) return Regex::Empty();
  // The surviving edge may start/end with epsilons from the construction;
  // Concat's flattening already dropped redundant nesting. Strip a
  // leading/trailing epsilon child for cosmetics.
  return it->second;
}

}  // namespace rwdt::regex
