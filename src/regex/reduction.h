#ifndef RWDT_REGEX_REDUCTION_H_
#define RWDT_REGEX_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "common/interner.h"
#include "regex/ast.h"

namespace rwdt::regex {

/// A DNF formula: a disjunction of conjunctive clauses over variables
/// 0..num_vars-1. Validity of DNF formulas (does every assignment satisfy
/// some clause?) is coNP-complete; Appendix A of the paper reduces it to
/// containment of chain regular expressions in RE(a, a?).
struct DnfFormula {
  /// literal: +v+1 for x_v, -(v+1) for ¬x_v.
  using Clause = std::vector<int>;

  size_t num_vars = 0;
  std::vector<Clause> clauses;

  bool SatisfiedBy(uint64_t assignment) const;

  /// Brute-force validity check, 2^num_vars time. For cross-checking the
  /// reduction on small instances.
  bool IsValidBruteForce() const;
};

/// Output of the validity -> containment encoding.
struct ContainmentInstance {
  RegexPtr lhs;  // e1: generator with buffer blocks
  RegexPtr rhs;  // e2: optional buffers + clause blocks
};

/// Encodes DNF validity as RE(a, a?)-containment, following the
/// construction of Appendix A: the formula is valid iff
/// L(e1) subseteq L(e2).
///
/// Encoding (over alphabet {#, $, a}): words are sequences of 2m-1 blocks
/// delimited by mandatory '#' (with leading and trailing '#'), each block
/// holding one slot per variable separated by '$'. Slot values: "aa" =
/// true, "" = false, "a" = buffer/wildcard. e1 generates m-1 buffer
/// blocks, one assignment block (slots a?a?), and m-1 buffer blocks. e2
/// has m-1 fully-optional buffer blocks on each side of m mandatory
/// clause blocks: a positive literal becomes slot "a a?", a negative one
/// "a?", an unconstrained variable "a? a?". The mandatory '#'/'$' skeleton
/// of the clause region forces block- and slot-alignment, so the
/// assignment block always lines up with some clause block.
///
/// Requires num_vars >= 1 and clauses non-empty. Symbols are interned
/// into `dict` as "#", "$", "a".
ContainmentInstance EncodeValidityAsContainment(const DnfFormula& formula,
                                                Interner* dict);

}  // namespace rwdt::regex

#endif  // RWDT_REGEX_REDUCTION_H_
