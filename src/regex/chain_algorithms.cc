#include "regex/chain_algorithms.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "regex/automaton.h"
#include "regex/glushkov.h"

namespace rwdt::regex {

uint64_t CompressedWord::Length() const {
  uint64_t n = 0;
  for (const auto& [sym, count] : runs) {
    (void)sym;
    n += count;
  }
  return n;
}

CompressedWord CompressedWord::FromWord(const std::vector<SymbolId>& word) {
  CompressedWord out;
  for (SymbolId s : word) {
    if (!out.runs.empty() && out.runs.back().first == s) {
      out.runs.back().second++;
    } else {
      out.runs.emplace_back(s, 1);
    }
  }
  return out;
}

namespace {

bool FactorContains(const SimpleFactor& f, SymbolId sym) {
  return std::binary_search(f.symbols.begin(), f.symbols.end(), sym);
}

/// Configuration set for the compressed-membership DP: runs 0..j-1 fully
/// consumed; run j has r symbols remaining for some r in [lo, hi], with
/// the invariant 1 <= lo <= hi <= count(j). Completion ("all runs
/// consumed") is tracked separately.
class ConfigSet {
 public:
  explicit ConfigSet(const CompressedWord& word) : word_(&word) {}

  void AddFresh(size_t j) {
    if (j >= word_->runs.size()) {
      done_ = true;
    } else {
      Add(j, word_->runs[j].second, word_->runs[j].second);
    }
  }

  /// Inserts (j, [lo, hi] ∩ [0, count_j]) with normalization: a remainder
  /// of 0 becomes the fresh configuration of run j+1.
  void Add(size_t j, uint64_t lo, uint64_t hi) {
    if (j >= word_->runs.size()) {
      done_ = true;
      return;
    }
    hi = std::min(hi, word_->runs[j].second);
    if (lo > hi) return;
    if (lo == 0) {
      AddFresh(j + 1);
      lo = 1;
    }
    if (lo <= hi) set_.emplace(j, lo, hi);
  }

  bool done() const { return done_; }
  void set_done(bool d) { done_ = d; }
  const std::set<std::tuple<size_t, uint64_t, uint64_t>>& set() const {
    return set_;
  }

 private:
  const CompressedWord* word_ = nullptr;
  std::set<std::tuple<size_t, uint64_t, uint64_t>> set_;
  bool done_ = false;
};

}  // namespace

bool ChainMatchesCompressed(const ChainRegex& chain,
                            const CompressedWord& word) {
  ConfigSet configs(word);
  configs.AddFresh(0);

  for (const auto& factor : chain.factors) {
    ConfigSet next(word);
    const bool allows_zero = factor.modifier == FactorModifier::kOptional ||
                             factor.modifier == FactorModifier::kStar;
    const bool bounded = factor.modifier == FactorModifier::kOnce ||
                         factor.modifier == FactorModifier::kOptional;
    if (allows_zero) {
      next.set_done(configs.done());
      for (const auto& [j, lo, hi] : configs.set()) next.Add(j, lo, hi);
    }
    for (const auto& [j, lo, hi] : configs.set()) {
      const SymbolId sym = word.runs[j].first;
      if (!FactorContains(factor, sym)) continue;
      if (bounded) {
        // Consume exactly one symbol of run j.
        next.Add(j, lo - 1, hi - 1);
      } else {
        // Unbounded factor: consume 1..r symbols of run j, then possibly
        // whole or partial subsequent runs whose symbols it contains.
        next.Add(j, 0, hi - 1);
        for (size_t jj = j + 1; jj < word.runs.size(); ++jj) {
          if (!FactorContains(factor, word.runs[jj].first)) break;
          next.Add(jj, 0, word.runs[jj].second);
        }
        // If the factor can consume through the final run, Add's
        // normalization has already recorded completion.
      }
    }
    configs = std::move(next);
    if (configs.set().empty() && !configs.done()) return false;
  }
  return configs.done();
}

std::optional<std::vector<UnaryRun>> ToUnaryRuns(const ChainRegex& chain) {
  std::vector<UnaryRun> runs;
  for (const auto& f : chain.factors) {
    if (!f.IsSingleSymbol()) return std::nullopt;
    if (f.modifier == FactorModifier::kOptional) return std::nullopt;
    const SymbolId sym = f.symbols[0];
    const uint64_t min = f.modifier == FactorModifier::kStar ? 0 : 1;
    const bool unbounded = f.modifier != FactorModifier::kOnce;
    if (!runs.empty() && runs.back().symbol == sym) {
      runs.back().min_count += min;
      runs.back().unbounded = runs.back().unbounded || unbounded;
    } else {
      runs.push_back({sym, min, unbounded});
    }
  }
  // A run that can vanish (min 0) breaks forced block alignment; the
  // normal form then no longer characterizes the language.
  for (const auto& r : runs) {
    if (r.min_count == 0) return std::nullopt;
  }
  return runs;
}

std::optional<bool> UnaryRunContainment(const ChainRegex& lhs,
                                        const ChainRegex& rhs) {
  auto a = ToUnaryRuns(lhs);
  auto b = ToUnaryRuns(rhs);
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  if (a->size() != b->size()) return false;
  for (size_t i = 0; i < a->size(); ++i) {
    const UnaryRun& x = (*a)[i];
    const UnaryRun& y = (*b)[i];
    if (x.symbol != y.symbol) return false;
    if (x.unbounded) {
      if (!y.unbounded || x.min_count < y.min_count) return false;
    } else {
      if (y.unbounded) {
        if (x.min_count < y.min_count) return false;
      } else if (x.min_count != y.min_count) {
        return false;
      }
    }
  }
  return true;
}

std::optional<bool> UnaryRunIntersection(
    const std::vector<ChainRegex>& chains, CompressedWord* witness) {
  if (chains.empty()) return std::nullopt;
  std::vector<std::vector<UnaryRun>> all;
  for (const auto& c : chains) {
    auto runs = ToUnaryRuns(c);
    if (!runs.has_value()) return std::nullopt;
    all.push_back(std::move(*runs));
  }
  const size_t n = all[0].size();
  for (const auto& runs : all) {
    if (runs.size() != n) return false;
  }
  CompressedWord w;
  for (size_t i = 0; i < n; ++i) {
    const SymbolId sym = all[0][i].symbol;
    uint64_t min = 0;
    bool has_exact = false;
    uint64_t exact = 0;
    for (const auto& runs : all) {
      if (runs[i].symbol != sym) return false;
      min = std::max(min, runs[i].min_count);
      if (!runs[i].unbounded) {
        if (has_exact && exact != runs[i].min_count) return false;
        has_exact = true;
        exact = runs[i].min_count;
      }
    }
    if (has_exact && exact < min) return false;
    w.runs.emplace_back(sym, has_exact ? exact : min);
  }
  if (witness != nullptr) *witness = w;
  return true;
}

namespace {

/// For fixed-length chains (RE(a,(+a))): all modifiers are kOnce.
bool IsFixedLength(const ChainRegex& chain) {
  for (const auto& f : chain.factors) {
    if (f.modifier != FactorModifier::kOnce) return false;
  }
  return true;
}

}  // namespace

std::optional<bool> FixedLengthContainment(const ChainRegex& lhs,
                                           const ChainRegex& rhs) {
  if (!IsFixedLength(lhs) || !IsFixedLength(rhs)) return std::nullopt;
  if (lhs.factors.size() != rhs.factors.size()) return false;
  for (size_t i = 0; i < lhs.factors.size(); ++i) {
    const auto& a = lhs.factors[i].symbols;
    const auto& b = rhs.factors[i].symbols;
    if (!std::includes(b.begin(), b.end(), a.begin(), a.end())) return false;
  }
  return true;
}

std::optional<bool> FixedLengthIntersection(
    const std::vector<ChainRegex>& chains) {
  if (chains.empty()) return std::nullopt;
  for (const auto& c : chains) {
    if (!IsFixedLength(c)) return std::nullopt;
  }
  const size_t n = chains[0].factors.size();
  for (const auto& c : chains) {
    if (c.factors.size() != n) return false;
  }
  for (size_t i = 0; i < n; ++i) {
    std::vector<SymbolId> common = chains[0].factors[i].symbols;
    for (size_t c = 1; c < chains.size(); ++c) {
      std::vector<SymbolId> next;
      const auto& other = chains[c].factors[i].symbols;
      std::set_intersection(common.begin(), common.end(), other.begin(),
                            other.end(), std::back_inserter(next));
      common = std::move(next);
    }
    if (common.empty()) return false;
  }
  return true;
}

std::optional<bool> FastChainEquivalence(const ChainRegex& lhs,
                                         const ChainRegex& rhs) {
  auto a = ToUnaryRuns(lhs);
  auto b = ToUnaryRuns(rhs);
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  if (a->size() != b->size()) return false;
  for (size_t i = 0; i < a->size(); ++i) {
    const UnaryRun& x = (*a)[i];
    const UnaryRun& y = (*b)[i];
    if (x.symbol != y.symbol || x.min_count != y.min_count ||
        x.unbounded != y.unbounded) {
      return false;
    }
  }
  return true;
}

ContainmentDecision DecideContainment(const RegexPtr& lhs,
                                      const RegexPtr& rhs) {
  ContainmentDecision decision;
  auto lc = ToChainRegex(lhs);
  auto rc = ToChainRegex(rhs);
  if (lc.has_value() && rc.has_value()) {
    if (auto r = UnaryRunContainment(*lc, *rc); r.has_value()) {
      decision.contained = *r;
      decision.algorithm = ContainmentAlgorithm::kUnaryRuns;
      return decision;
    }
    if (auto r = FixedLengthContainment(*lc, *rc); r.has_value()) {
      decision.contained = *r;
      decision.algorithm = ContainmentAlgorithm::kFixedLength;
      return decision;
    }
  }
  decision.contained = IsContained(ToDfa(lhs), ToDfa(rhs));
  decision.algorithm = ContainmentAlgorithm::kAutomata;
  return decision;
}

}  // namespace rwdt::regex
