#ifndef RWDT_INFERENCE_SOA_H_
#define RWDT_INFERENCE_SOA_H_

#include <set>
#include <vector>

#include "regex/ast.h"
#include "regex/automaton.h"

namespace rwdt::inference {

/// Single-occurrence automaton (SOA) of a sample, also known as the
/// 2T-INF automaton of Garcia & Vidal: one state per alphabet symbol plus
/// synthetic source and sink; an edge a -> b exists iff "ab" occurs in
/// some sample word. The SOA is the starting point of the RWR algorithm
/// for SORE inference (Bex et al., paper Section 4.2.3).
struct Soa {
  static constexpr uint32_t kSource = 0;
  static constexpr uint32_t kSink = 1;

  /// node_symbol[i] = alphabet symbol of node i (i >= 2).
  std::vector<SymbolId> node_symbol;
  /// Adjacency: edges[u] = set of successors.
  std::vector<std::set<uint32_t>> edges;
  /// True when the empty word is in the sample (source -> sink edge).
  bool accepts_epsilon = false;

  size_t NumNodes() const { return edges.size(); }
  bool HasEdge(uint32_t u, uint32_t v) const {
    return edges[u].count(v) > 0;
  }

  /// Whether `w` is accepted: a path source -> symbols -> sink.
  bool Accepts(const regex::Word& w) const;
};

/// Builds the SOA of a sample of words.
Soa BuildSoa(const std::vector<regex::Word>& sample);

}  // namespace rwdt::inference

#endif  // RWDT_INFERENCE_SOA_H_
