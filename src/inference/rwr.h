#ifndef RWDT_INFERENCE_RWR_H_
#define RWDT_INFERENCE_RWR_H_

#include <vector>

#include "inference/soa.h"
#include "regex/ast.h"

namespace rwdt::inference {

/// Result of SORE inference.
struct SoreInferenceResult {
  regex::RegexPtr expression;
  /// Number of repair steps (forced generalizing merges) that were needed
  /// because the SOA was not expressible as a SORE; 0 means the rewriting
  /// succeeded exactly and L(expression) == L(SOA).
  size_t repairs = 0;
};

/// Infers a single-occurrence regular expression from positive examples
/// using the RWR rewriting of Bex-Neven-Schwentick-Tuyls (paper Section
/// 4.2.3): build the SOA, then repeatedly contract it with
/// iterate (self-loop -> e+), optional (bypassed node -> e?),
/// concatenation, and disjunction rules. When no rule applies, a repair
/// step forces the most similar node pair into a disjunction
/// (generalizing the language), mirroring RWR's repair extension.
///
/// Guarantee: every sample word is in L(result).
SoreInferenceResult InferSore(const std::vector<regex::Word>& sample);

/// Runs the rewriting directly on a prebuilt SOA.
SoreInferenceResult RewriteSoa(const Soa& soa);

}  // namespace rwdt::inference

#endif  // RWDT_INFERENCE_RWR_H_
