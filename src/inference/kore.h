#ifndef RWDT_INFERENCE_KORE_H_
#define RWDT_INFERENCE_KORE_H_

#include <vector>

#include "common/interner.h"
#include "regex/ast.h"
#include "regex/automaton.h"

namespace rwdt::inference {

/// Infers a k-occurrence regular expression from positive examples
/// (paper Section 4.2.3, Theorem 4.9 / the iDRegEx system).
///
/// This is a deterministic, HMM-free variant of iDRegEx: the i-th
/// occurrence of each symbol within a word (capped at k) is relabeled to a
/// distinct variant symbol, a SORE is inferred on the relabeled sample,
/// and variants are erased afterwards. Erasure is a homomorphism, so the
/// inferred language still covers the sample, and every symbol occurs at
/// most k times in the result.
regex::RegexPtr InferKore(const std::vector<regex::Word>& sample, size_t k);

/// iDRegEx-style driver: tries k = 1, 2, ..., max_k and returns the first
/// expression whose language is not strictly generalized by a repair
/// (i.e., the smallest k whose inference needed no repairs), or the max_k
/// result.
regex::RegexPtr InferBestKore(const std::vector<regex::Word>& sample,
                              size_t max_k, size_t* chosen_k = nullptr);

}  // namespace rwdt::inference

#endif  // RWDT_INFERENCE_KORE_H_
