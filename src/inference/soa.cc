#include "inference/soa.h"

#include <map>

namespace rwdt::inference {

bool Soa::Accepts(const regex::Word& w) const {
  if (w.empty()) return accepts_epsilon;
  // Map symbols to nodes.
  std::map<SymbolId, uint32_t> node_of;
  for (size_t i = 2; i < node_symbol.size(); ++i) {
    node_of[node_symbol[i]] = static_cast<uint32_t>(i);
  }
  uint32_t cur = kSource;
  for (SymbolId s : w) {
    auto it = node_of.find(s);
    if (it == node_of.end()) return false;
    if (!HasEdge(cur, it->second)) return false;
    cur = it->second;
  }
  return HasEdge(cur, kSink);
}

Soa BuildSoa(const std::vector<regex::Word>& sample) {
  Soa soa;
  soa.node_symbol = {kInvalidSymbol, kInvalidSymbol};  // source, sink
  soa.edges.resize(2);
  std::map<SymbolId, uint32_t> node_of;
  auto intern = [&](SymbolId s) {
    auto it = node_of.find(s);
    if (it != node_of.end()) return it->second;
    const uint32_t id = static_cast<uint32_t>(soa.node_symbol.size());
    soa.node_symbol.push_back(s);
    soa.edges.emplace_back();
    node_of.emplace(s, id);
    return id;
  };
  for (const auto& w : sample) {
    if (w.empty()) {
      soa.accepts_epsilon = true;
      continue;
    }
    uint32_t prev = Soa::kSource;
    for (SymbolId s : w) {
      const uint32_t node = intern(s);
      soa.edges[prev].insert(node);
      prev = node;
    }
    soa.edges[prev].insert(Soa::kSink);
  }
  return soa;
}

}  // namespace rwdt::inference
