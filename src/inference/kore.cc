#include "inference/kore.h"

#include <map>

#include "inference/rwr.h"

namespace rwdt::inference {

using regex::Regex;
using regex::RegexPtr;

namespace {

/// Relabels the i-th occurrence of each symbol in a word (capped at k-1)
/// to the variant id sym * k + i.
std::vector<regex::Word> RelabelSample(const std::vector<regex::Word>& sample,
                                       size_t k) {
  std::vector<regex::Word> out;
  out.reserve(sample.size());
  for (const auto& w : sample) {
    regex::Word rw;
    rw.reserve(w.size());
    std::map<SymbolId, size_t> count;
    for (SymbolId s : w) {
      const size_t i = std::min(count[s], k - 1);
      count[s]++;
      rw.push_back(static_cast<SymbolId>(s * k + i));
    }
    out.push_back(std::move(rw));
  }
  return out;
}

/// Replaces each variant symbol by its original (erasing the occurrence
/// index homomorphically).
RegexPtr EraseVariants(const RegexPtr& e, size_t k) {
  switch (e->op()) {
    case regex::Op::kSymbol:
      return Regex::Symbol(static_cast<SymbolId>(e->symbol() / k));
    case regex::Op::kEmpty:
    case regex::Op::kEpsilon:
      return e;
    default: {
      std::vector<RegexPtr> children;
      children.reserve(e->children().size());
      for (const auto& c : e->children()) {
        children.push_back(EraseVariants(c, k));
      }
      switch (e->op()) {
        case regex::Op::kConcat:
          return Regex::Concat(std::move(children));
        case regex::Op::kUnion:
          return Regex::Union(std::move(children));
        case regex::Op::kStar:
          return Regex::Star(children[0]);
        case regex::Op::kPlus:
          return Regex::Plus(children[0]);
        case regex::Op::kOptional:
          return Regex::Optional(children[0]);
        default:
          return e;
      }
    }
  }
}

}  // namespace

regex::RegexPtr InferKore(const std::vector<regex::Word>& sample, size_t k) {
  if (k == 0) k = 1;
  const auto relabeled = RelabelSample(sample, k);
  const SoreInferenceResult result = InferSore(relabeled);
  return EraseVariants(result.expression, k);
}

regex::RegexPtr InferBestKore(const std::vector<regex::Word>& sample,
                              size_t max_k, size_t* chosen_k) {
  if (max_k == 0) max_k = 1;
  regex::RegexPtr last;
  for (size_t k = 1; k <= max_k; ++k) {
    const auto relabeled = RelabelSample(sample, k);
    const SoreInferenceResult result = InferSore(relabeled);
    last = EraseVariants(result.expression, k);
    if (result.repairs == 0) {
      if (chosen_k != nullptr) *chosen_k = k;
      return last;
    }
  }
  if (chosen_k != nullptr) *chosen_k = max_k;
  return last;
}

}  // namespace rwdt::inference
