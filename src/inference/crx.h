#ifndef RWDT_INFERENCE_CRX_H_
#define RWDT_INFERENCE_CRX_H_

#include <optional>
#include <vector>

#include "regex/ast.h"
#include "regex/automaton.h"
#include "regex/fragments.h"

namespace rwdt::inference {

/// Infers a chain regular expression (sequential RE, Definition 4.3) from
/// positive examples, in the spirit of the CRX algorithm of Bex et al.
/// (paper Section 4.2.3): symbols that occur in both relative orders in
/// the sample are grouped into one disjunction factor; factors are ordered
/// by the precedence observed in the sample; modifiers are derived from
/// per-word occurrence counts (absent somewhere -> optional, repeated ->
/// plus, both -> star).
///
/// Returns nullopt when the sample is not "chain-consistent": some word
/// revisits a factor after leaving it (e.g. sample {aba} with distinct
/// factors for a and b), in which case no chain expression fits the
/// grouping. Callers fall back to InferSore.
///
/// Guarantee (when a value is returned): every sample word matches.
std::optional<regex::ChainRegex> InferChain(
    const std::vector<regex::Word>& sample);

}  // namespace rwdt::inference

#endif  // RWDT_INFERENCE_CRX_H_
