#include "inference/rwr.h"

#include <algorithm>
#include <set>

namespace rwdt::inference {

using regex::Regex;
using regex::RegexPtr;

namespace {

/// Mutable rewrite graph: nodes carry partial expressions; src/snk are
/// sentinels whose labels are unused.
class RewriteGraph {
 public:
  explicit RewriteGraph(const Soa& soa) {
    labels_.resize(soa.NumNodes());
    alive_.assign(soa.NumNodes(), true);
    succ_.resize(soa.NumNodes());
    pred_.resize(soa.NumNodes());
    for (size_t i = 2; i < soa.NumNodes(); ++i) {
      labels_[i] = Regex::Symbol(soa.node_symbol[i]);
    }
    for (uint32_t u = 0; u < soa.NumNodes(); ++u) {
      for (uint32_t v : soa.edges[u]) {
        if (u == Soa::kSource && v == Soa::kSink) continue;  // epsilon
        AddEdge(u, v);
      }
    }
  }

  void AddEdge(uint32_t u, uint32_t v) {
    succ_[u].insert(v);
    pred_[v].insert(u);
  }

  void RemoveEdge(uint32_t u, uint32_t v) {
    succ_[u].erase(v);
    pred_[v].erase(u);
  }

  bool HasEdge(uint32_t u, uint32_t v) const {
    return succ_[u].count(v) > 0;
  }

  std::vector<uint32_t> AliveSymbolNodes() const {
    std::vector<uint32_t> out;
    for (uint32_t i = 2; i < alive_.size(); ++i) {
      if (alive_[i]) out.push_back(i);
    }
    return out;
  }

  /// Rule 1 — iterate: self-loop becomes Kleene plus.
  bool ApplyIterate() {
    bool any = false;
    for (uint32_t v : AliveSymbolNodes()) {
      if (HasEdge(v, v)) {
        labels_[v] = Regex::Plus(labels_[v]);
        RemoveEdge(v, v);
        any = true;
      }
    }
    return any;
  }

  /// Rule 2 — concatenate: succ(u)={v} and pred(v)={u} merge u·v.
  bool ApplyConcat() {
    for (uint32_t u : AliveSymbolNodes()) {
      if (succ_[u].size() != 1) continue;
      const uint32_t v = *succ_[u].begin();
      if (v == Soa::kSink || v == u) continue;
      if (pred_[v].size() != 1) continue;
      labels_[u] = Regex::Concat(labels_[u], labels_[v]);
      RemoveEdge(u, v);
      // u inherits v's successors.
      for (uint32_t s : std::set<uint32_t>(succ_[v])) {
        RemoveEdge(v, s);
        AddEdge(u, s);
      }
      alive_[v] = false;
      return true;
    }
    return false;
  }

  /// Rule 3 — disjoin: nodes with identical external neighborhoods and
  /// symmetric internal edges merge into a union.
  bool ApplyDisjunction() {
    const auto nodes = AliveSymbolNodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        const uint32_t u = nodes[i];
        const uint32_t v = nodes[j];
        if (!SameExternalNeighborhood(u, v)) continue;
        if (HasEdge(u, u) != HasEdge(v, v)) continue;
        if (HasEdge(u, v) != HasEdge(v, u)) continue;
        MergeAsUnion(u, v);
        return true;
      }
    }
    return false;
  }

  /// Rule 4 — optional: if every predecessor of v connects directly to
  /// every successor of v, v can be made optional and the bypass edges
  /// dropped.
  bool ApplyOptional() {
    for (uint32_t v : AliveSymbolNodes()) {
      if (HasEdge(v, v)) continue;
      bool all_bypassed = true;
      size_t pairs = 0;
      for (uint32_t p : pred_[v]) {
        if (p == v) continue;
        for (uint32_t s : succ_[v]) {
          if (s == v) continue;
          ++pairs;
          if (!HasEdge(p, s)) {
            all_bypassed = false;
            break;
          }
        }
        if (!all_bypassed) break;
      }
      if (!all_bypassed || pairs == 0) continue;
      labels_[v] = Regex::Optional(labels_[v]);
      for (uint32_t p : std::set<uint32_t>(pred_[v])) {
        for (uint32_t s : std::set<uint32_t>(succ_[v])) {
          if (p != v && s != v) RemoveEdge(p, s);
        }
      }
      return true;
    }
    return false;
  }

  /// Repair — force the most similar pair into a (generalizing) union.
  void ApplyRepair() {
    const auto nodes = AliveSymbolNodes();
    double best = -1;
    uint32_t bu = nodes[0], bv = nodes[1];
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        const double score =
            Similarity(nodes[i], nodes[j]);
        if (score > best) {
          best = score;
          bu = nodes[i];
          bv = nodes[j];
        }
      }
    }
    MergeAsUnion(bu, bv);
  }

  RegexPtr Finish(bool accepts_epsilon, size_t repairs) const {
    RegexPtr result;
    const auto nodes = AliveSymbolNodes();
    if (nodes.empty()) {
      result = accepts_epsilon ? Regex::Epsilon() : Regex::Empty();
      return result;
    }
    (void)repairs;
    result = labels_[nodes[0]];
    if (accepts_epsilon && !result->Nullable()) {
      result = Regex::Optional(result);
    }
    return result;
  }

  size_t NumAlive() const { return AliveSymbolNodes().size(); }

 private:
  bool SameExternalNeighborhood(uint32_t u, uint32_t v) const {
    auto strip = [&](const std::set<uint32_t>& s) {
      std::set<uint32_t> out;
      for (uint32_t x : s) {
        if (x != u && x != v) out.insert(x);
      }
      return out;
    };
    return strip(pred_[u]) == strip(pred_[v]) &&
           strip(succ_[u]) == strip(succ_[v]);
  }

  double Similarity(uint32_t u, uint32_t v) const {
    auto jaccard = [](const std::set<uint32_t>& a,
                      const std::set<uint32_t>& b) {
      if (a.empty() && b.empty()) return 1.0;
      size_t inter = 0;
      for (uint32_t x : a) inter += b.count(x);
      return static_cast<double>(inter) /
             static_cast<double>(a.size() + b.size() - inter);
    };
    return jaccard(pred_[u], pred_[v]) + jaccard(succ_[u], succ_[v]);
  }

  void MergeAsUnion(uint32_t u, uint32_t v) {
    const bool internal = HasEdge(u, u) || HasEdge(v, v) || HasEdge(u, v) ||
                          HasEdge(v, u);
    labels_[u] = Regex::Union(labels_[u], labels_[v]);
    RemoveEdge(u, v);
    RemoveEdge(v, u);
    RemoveEdge(u, u);
    RemoveEdge(v, v);
    for (uint32_t p : std::set<uint32_t>(pred_[v])) {
      RemoveEdge(p, v);
      AddEdge(p, u);
    }
    for (uint32_t s : std::set<uint32_t>(succ_[v])) {
      RemoveEdge(v, s);
      AddEdge(u, s);
    }
    if (internal) AddEdge(u, u);
    alive_[v] = false;
  }

  std::vector<RegexPtr> labels_;
  std::vector<bool> alive_;
  std::vector<std::set<uint32_t>> succ_;
  std::vector<std::set<uint32_t>> pred_;
};

}  // namespace

SoreInferenceResult RewriteSoa(const Soa& soa) {
  RewriteGraph graph(soa);
  SoreInferenceResult result;
  // Reduce until a single node remains. Each iteration applies the
  // highest-priority applicable rule; repair guarantees progress.
  for (;;) {
    if (graph.ApplyIterate()) continue;
    if (graph.NumAlive() <= 1) break;
    if (graph.ApplyConcat()) continue;
    if (graph.ApplyDisjunction()) continue;
    if (graph.ApplyOptional()) continue;
    graph.ApplyRepair();
    result.repairs++;
  }
  // Final iterate/optional sweep for the last node's self-loop.
  graph.ApplyIterate();
  result.expression = graph.Finish(soa.accepts_epsilon, result.repairs);
  return result;
}

SoreInferenceResult InferSore(const std::vector<regex::Word>& sample) {
  return RewriteSoa(BuildSoa(sample));
}

}  // namespace rwdt::inference
