#include "inference/crx.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>

namespace rwdt::inference {
namespace {

/// Union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::optional<regex::ChainRegex> InferChain(
    const std::vector<regex::Word>& sample) {
  // Dense-index the alphabet.
  std::map<SymbolId, size_t> index_of;
  std::vector<SymbolId> symbols;
  for (const auto& w : sample) {
    for (SymbolId s : w) {
      if (index_of.emplace(s, symbols.size()).second) symbols.push_back(s);
    }
  }
  const size_t n = symbols.size();
  if (n == 0) {
    // Sample of empty words (or empty sample): the empty chain.
    return regex::ChainRegex{};
  }

  // before[a][b]: some occurrence of a precedes some occurrence of b.
  std::vector<std::vector<bool>> before(n, std::vector<bool>(n, false));
  for (const auto& w : sample) {
    std::set<size_t> seen;
    for (SymbolId s : w) {
      const size_t b = index_of[s];
      for (size_t a : seen) before[a][b] = true;
      seen.insert(b);
    }
  }

  // Two symbols share a factor when they are order-incomparable: either
  // both relative orders occur (conflict), or no order was ever observed
  // (the symbols are alternatives that never co-occur).
  UnionFind uf(n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (before[a][b] == before[b][a]) uf.Merge(a, b);
    }
  }

  // Merge class cycles (mutual precedence through intermediaries) until
  // the class precedence relation is acyclic. Iterate to a fixpoint.
  for (;;) {
    // class precedence: c1 < c2 if some member precedes some member.
    std::map<size_t, std::set<size_t>> succ;
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = 0; b < n; ++b) {
        if (!before[a][b]) continue;
        const size_t ca = uf.Find(a);
        const size_t cb = uf.Find(b);
        if (ca != cb) succ[ca].insert(cb);
      }
    }
    // Detect a 2-cycle or longer cycle via DFS; merge its endpoints.
    bool merged = false;
    std::map<size_t, int> color;  // 0 white 1 grey 2 black
    std::vector<std::pair<size_t, size_t>> cycle_edge;
    std::function<bool(size_t)> dfs = [&](size_t u) -> bool {
      color[u] = 1;
      for (size_t v : succ[u]) {
        if (color[v] == 1) {
          cycle_edge.emplace_back(u, v);
          return true;
        }
        if (color[v] == 0 && dfs(v)) return true;
      }
      color[u] = 2;
      return false;
    };
    for (const auto& [c, _] : succ) {
      (void)_;
      if (color[c] == 0 && dfs(c)) {
        uf.Merge(cycle_edge.back().first, cycle_edge.back().second);
        merged = true;
        break;
      }
    }
    if (!merged) break;
  }

  // Collect classes and order them: topological order of precedence,
  // ties broken by smallest member symbol for determinism.
  std::map<size_t, std::vector<size_t>> members;
  for (size_t a = 0; a < n; ++a) members[uf.Find(a)].push_back(a);

  std::vector<size_t> classes;
  for (const auto& [c, _] : members) {
    (void)_;
    classes.push_back(c);
  }
  // Precedence DAG over classes.
  std::map<size_t, std::set<size_t>> preds;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (!before[a][b]) continue;
      const size_t ca = uf.Find(a);
      const size_t cb = uf.Find(b);
      if (ca != cb) preds[cb].insert(ca);
    }
  }
  std::vector<size_t> order;
  std::set<size_t> emitted;
  while (order.size() < classes.size()) {
    bool progressed = false;
    for (size_t c : classes) {
      if (emitted.count(c)) continue;
      bool ready = true;
      for (size_t p : preds[c]) {
        if (!emitted.count(p)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(c);
        emitted.insert(c);
        progressed = true;
      }
    }
    if (!progressed) return std::nullopt;  // cycle survived: inconsistent
  }

  // Per-class per-word occurrence counts decide modifiers.
  regex::ChainRegex chain;
  for (size_t c : order) {
    std::set<size_t> member_set(members[c].begin(), members[c].end());
    uint64_t min_count = UINT64_MAX;
    uint64_t max_count = 0;
    for (const auto& w : sample) {
      uint64_t count = 0;
      for (SymbolId s : w) count += member_set.count(index_of[s]);
      min_count = std::min(min_count, count);
      max_count = std::max(max_count, count);
    }
    regex::SimpleFactor factor;
    for (size_t m : members[c]) factor.symbols.push_back(symbols[m]);
    std::sort(factor.symbols.begin(), factor.symbols.end());
    if (min_count >= 1 && max_count <= 1) {
      factor.modifier = regex::FactorModifier::kOnce;
    } else if (min_count == 0 && max_count <= 1) {
      factor.modifier = regex::FactorModifier::kOptional;
    } else if (min_count >= 1) {
      factor.modifier = regex::FactorModifier::kPlus;
    } else {
      factor.modifier = regex::FactorModifier::kStar;
    }
    chain.factors.push_back(std::move(factor));
  }
  return chain;
}

}  // namespace rwdt::inference
