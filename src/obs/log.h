#ifndef RWDT_OBS_LOG_H_
#define RWDT_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace rwdt::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  // min-level sentinel: disables all logging
};

/// Stable upper-case name, e.g. "INFO".
const char* LogLevelName(LogLevel level);

/// One log event, as handed to every sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";    // basename of the emitting source file
  int line = 0;
  int64_t unix_micros = 0;  // wall-clock timestamp
  uint64_t tid = 0;         // dense per-process thread id
  std::string message;
};

/// A log destination. Write is called under the logger's sink mutex, so
/// implementations need no further synchronization among themselves.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Human-readable text to stderr:
/// `I 2026-08-07 12:34:56.789012 3 ingest.cc:87] message`.
class StderrSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
};

/// Machine-readable JSON-lines, one object per record:
/// `{"ts_us":...,"level":"info","file":"ingest.cc","line":87,"tid":3,
///   "msg":"..."}` — message and file escaped via common JsonEscape.
class JsonLinesSink : public LogSink {
 public:
  /// Opens `path` for appending.
  static Result<std::unique_ptr<JsonLinesSink>> Open(const std::string& path);

  /// Takes over `stream` (closed on destruction when `owned`).
  explicit JsonLinesSink(std::FILE* stream, bool owned = false);
  ~JsonLinesSink() override;

  void Write(const LogRecord& record) override;

 private:
  std::FILE* stream_;
  bool owned_;
};

/// Process-wide leveled logger with pluggable sinks. The level gate is
/// one relaxed atomic load (taken before the message is even composed),
/// so disabled levels cost a branch. Defaults to kInfo → StderrSink.
class Logger {
 public:
  static Logger& Global();

  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Replaces all sinks (empty = drop everything).
  void SetSinks(std::vector<std::shared_ptr<LogSink>> sinks);
  void AddSink(std::shared_ptr<LogSink> sink);
  /// Restores the default configuration (kInfo, single StderrSink).
  void ResetToDefault();

  /// Dispatches to every sink. Fills in timestamp/tid if zero.
  void Log(LogRecord record);

 private:
  Logger();

  std::atomic<int> min_level_;
  std::mutex sinks_mu_;
  std::vector<std::shared_ptr<LogSink>> sinks_;
};

inline bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         static_cast<int>(Logger::Global().min_level());
}

/// Dense id of the calling thread (1, 2, ... in first-log order).
uint64_t ThisThreadId();

namespace internal {

/// Temporary that accumulates one `RWDT_LOG` statement's stream inserts
/// and dispatches the record from its destructor (end of statement).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Lowers the stream expression to void so the ternary in RWDT_LOG
/// type-checks (glog's classic trick).
struct Voidify {
  void operator&(std::ostream&) {}
};

// Severity spellings for the RWDT_LOG token paste.
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARN = LogLevel::kWarn;
inline constexpr LogLevel kERROR = LogLevel::kError;

}  // namespace internal
}  // namespace rwdt::obs

/// Leveled structured logging:
///
///   RWDT_LOG(INFO) << "ingested " << n << " lines";
///
/// Severity is one of DEBUG, INFO, WARN, ERROR. The stream operands are
/// evaluated only when the level passes the global gate.
#define RWDT_LOG(severity)                                                 \
  !::rwdt::obs::LogLevelEnabled(::rwdt::obs::internal::k##severity)        \
      ? (void)0                                                            \
      : ::rwdt::obs::internal::Voidify() &                                 \
            ::rwdt::obs::internal::LogMessage(                             \
                ::rwdt::obs::internal::k##severity, __FILE__, __LINE__)    \
                .stream()

#endif  // RWDT_OBS_LOG_H_
