#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

#include "common/json.h"

namespace rwdt::obs {
namespace internal {

std::atomic<bool> g_trace_active{false};

namespace {

/// The active collector and its generation. The generation bumps on
/// every install *and* uninstall so that a thread's cached ring pointer
/// (valid only for the collector that handed it out) is never reused
/// against a different collector.
std::mutex g_install_mu;
TraceCollector* g_collector = nullptr;             // guarded by g_install_mu
std::atomic<uint64_t> g_generation{0};

struct ThreadRingCache {
  TraceRing* ring = nullptr;
  uint64_t generation = 0;
};
thread_local ThreadRingCache t_ring_cache;

}  // namespace

void EmitSpanSlow(const char* name, uint64_t ts_ns, uint64_t dur_ns) {
  const uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (t_ring_cache.ring == nullptr || t_ring_cache.generation != gen) {
    std::lock_guard<std::mutex> lock(g_install_mu);
    if (g_collector == nullptr) return;  // uninstalled since the fast check
    t_ring_cache.ring = g_collector->RegisterCurrentThread();
    t_ring_cache.generation = g_generation.load(std::memory_order_relaxed);
  }
  t_ring_cache.ring->Append(name, ts_ns, dur_ns);
}

}  // namespace internal

bool DrainActiveTraceJson(std::string* out) {
  std::lock_guard<std::mutex> lock(internal::g_install_mu);
  if (internal::g_collector == nullptr) return false;
  *out = internal::g_collector->ToChromeJson();
  return true;
}

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceRing::TraceRing(size_t capacity, uint32_t tid) : tid_(tid) {
  const size_t cap = std::bit_ceil(std::max<size_t>(capacity, 2));
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const size_t cap = capacity();
  const uint64_t h1 = head_.load(std::memory_order_acquire);
  const uint64_t lo = h1 > cap ? h1 - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(h1 - lo));
  for (uint64_t i = lo; i < h1; ++i) {
    const Slot& s = slots_[i & mask_];
    TraceEvent ev;
    ev.name = s.name.load(std::memory_order_relaxed);
    ev.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    ev.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    ev.tid = tid_;
    out.push_back(ev);
  }
  // A writer that wrapped past `lo` while we were reading may have been
  // rewriting the slots we copied first. Any logical index at or below
  // h2 - cap (the slot the writer may currently be filling reuses index
  // h2 - cap) is suspect; drop it. Before wraparound nothing is dropped.
  const uint64_t h2 = head_.load(std::memory_order_acquire);
  if (h2 >= cap) {
    const uint64_t stable_lo = h2 - cap + 1;
    if (stable_lo > lo) {
      const uint64_t drop =
          std::min<uint64_t>(stable_lo - lo, out.size());
      out.erase(out.begin(), out.begin() + static_cast<size_t>(drop));
    }
  }
  return out;
}

TraceCollector::TraceCollector(const TraceOptions& options)
    : options_(options) {
  std::lock_guard<std::mutex> lock(internal::g_install_mu);
  if (internal::g_collector != nullptr) return;  // someone else is tracing
  internal::g_collector = this;
  internal::g_generation.fetch_add(1, std::memory_order_release);
  epoch_ns_ = TraceNowNs();
  installed_ = true;
  internal::g_trace_active.store(true, std::memory_order_release);
}

TraceCollector::~TraceCollector() {
  if (!installed_) return;
  internal::g_trace_active.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(internal::g_install_mu);
  internal::g_collector = nullptr;
  internal::g_generation.fetch_add(1, std::memory_order_release);
}

TraceRing* TraceCollector::RegisterCurrentThread() {
  // Caller holds g_install_mu; rings_mu_ still taken so the exporter
  // can iterate rings_ without the install lock.
  std::lock_guard<std::mutex> lock(rings_mu_);
  const uint32_t tid = static_cast<uint32_t>(rings_.size());
  rings_.push_back(
      std::make_unique<TraceRing>(options_.events_per_thread, tid));
  return rings_.back().get();
}

std::vector<TraceEvent> TraceCollector::Drain() const {
  std::vector<TraceEvent> all;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    std::vector<TraceEvent> events = ring->Snapshot();
    all.insert(all.end(), events.begin(), events.end());
  }
  return all;
}

uint64_t TraceCollector::events_recorded() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) total += ring->appended();
  return total;
}

uint64_t TraceCollector::events_dropped() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    const uint64_t appended = ring->appended();
    if (appended > ring->capacity()) dropped += appended - ring->capacity();
  }
  return dropped;
}

size_t TraceCollector::threads_seen() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  return rings_.size();
}

std::string TraceCollector::ToChromeJson() const {
  std::vector<TraceEvent> events = Drain();
  // Sort by (tid, start): Perfetto does not require ordering, but it
  // makes the per-thread timeline directly readable in the raw JSON and
  // gives the tests a crisp monotonicity contract.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_ns < b.ts_ns;
                   });

  std::string out = "{\"traceEvents\":[";
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
                "\"args\":{\"name\":\"%s\"}}",
                JsonEscape(options_.process_name).c_str());
  out += buf;
  for (size_t t = 0; t < threads_seen(); ++t) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":"
                  "\"thread-%zu\"}}",
                  t, t);
    out += buf;
  }
  for (const TraceEvent& ev : events) {
    // Rebase onto the install epoch; a span whose start predates the
    // epoch (installed mid-measurement) clamps to 0.
    const uint64_t rel =
        ev.ts_ns > epoch_ns_ ? ev.ts_ns - epoch_ns_ : 0;
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
                  "\"cat\":\"rwdt\",\"ts\":%.3f,\"dur\":%.3f}",
                  ev.tid,
                  JsonEscape(ev.name != nullptr ? ev.name : "?").c_str(),
                  rel / 1e3, ev.dur_ns / 1e3);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"events_recorded\":%llu,\"events_dropped\":%llu,"
                "\"threads\":%zu}}",
                static_cast<unsigned long long>(events_recorded()),
                static_cast<unsigned long long>(events_dropped()),
                threads_seen());
  out += buf;
  return out;
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  const std::string json = ToChromeJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot write trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace rwdt::obs
