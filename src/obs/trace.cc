#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

#include "common/json.h"

namespace rwdt::obs {
namespace internal {

std::atomic<bool> g_trace_active{false};

namespace {

/// The active collector and its generation. The generation bumps on
/// every install *and* uninstall so that a thread's cached ring pointer
/// (valid only for the collector that handed it out) is never reused
/// against a different collector.
std::mutex g_install_mu;
TraceCollector* g_collector = nullptr;             // guarded by g_install_mu
std::atomic<uint64_t> g_generation{0};

struct ThreadRingCache {
  TraceRing* ring = nullptr;
  uint64_t generation = 0;
};
thread_local ThreadRingCache t_ring_cache;

}  // namespace

void EmitSpanSlow(const char* name, uint64_t ts_ns, uint64_t dur_ns,
                  uint64_t trace_id, uint64_t span_id, uint64_t parent_id) {
  const uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (t_ring_cache.ring == nullptr || t_ring_cache.generation != gen) {
    std::lock_guard<std::mutex> lock(g_install_mu);
    if (g_collector == nullptr) return;  // uninstalled since the fast check
    t_ring_cache.ring = g_collector->RegisterCurrentThread();
    t_ring_cache.generation = g_generation.load(std::memory_order_relaxed);
  }
  t_ring_cache.ring->Append(name, ts_ns, dur_ns, trace_id, span_id, parent_id);
}

}  // namespace internal

uint64_t NewTraceId() {
  // Per-process random base (the steady clock at first use, mixed) so
  // two processes started together still mint disjoint id streams; the
  // counter keeps ids unique within the process. MixBits is bijective,
  // so collisions within one process are impossible.
  static const uint64_t base = MixBits(TraceNowNs() | 1);
  static std::atomic<uint64_t> n{0};
  const uint64_t id =
      MixBits(base + n.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;
}

uint64_t NewSpanId() {
  static std::atomic<uint64_t> n{0};
  const uint64_t id = MixBits(n.fetch_add(1, std::memory_order_relaxed) + 1);
  return id != 0 ? id : 1;
}

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string FormatTraceparent(const TraceContext& ctx) {
  // version 00, 128-bit trace id with our 64 bits in the low half.
  std::string out = "00-0000000000000000";
  out += TraceIdHex(ctx.trace_id);
  out += '-';
  out += TraceIdHex(ctx.span_id);
  out += ctx.sampled ? "-01" : "-00";
  return out;
}

namespace {

/// Value of one lower-case hex digit, or -1. The W3C spec mandates
/// lower case on the wire; upper case is malformed by definition.
int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// Parses exactly `n` lower-case hex digits into `*out`; false on any
/// non-hex character.
bool ParseHex(std::string_view s, size_t pos, size_t n, uint64_t* out) {
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    const int d = HexVal(s[pos + i]);
    if (d < 0) return false;
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

}  // namespace

bool ParseTraceparent(std::string_view header, TraceContext* ctx) {
  // 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags> == 55 chars.
  // Unknown future versions may append fields; we accept only the
  // version-00 shape and hand anything else a fresh trace.
  if (header.size() != 55) return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') return false;
  uint64_t version = 0, hi = 0, lo = 0, parent = 0, flags = 0;
  if (!ParseHex(header, 0, 2, &version)) return false;
  if (version == 0xff) return false;  // forbidden by the spec
  if (!ParseHex(header, 3, 16, &hi) || !ParseHex(header, 19, 16, &lo)) {
    return false;
  }
  if (!ParseHex(header, 36, 16, &parent)) return false;
  if (!ParseHex(header, 53, 2, &flags)) return false;
  if ((hi | lo) == 0 || parent == 0) return false;  // all-zero ids invalid
  // Fold 128 -> 64: keep the low half (ours round-trip exactly); a
  // foreign id with an all-zero low half keeps its high half instead.
  ctx->trace_id = lo != 0 ? lo : hi;
  ctx->span_id = parent;  // the caller's span: our root spans nest under it
  ctx->sampled = (flags & 1) != 0;
  return true;
}

bool DrainActiveTraceJson(std::string* out, size_t limit) {
  std::lock_guard<std::mutex> lock(internal::g_install_mu);
  if (internal::g_collector == nullptr) return false;
  *out = internal::g_collector->ToChromeJson(limit);
  return true;
}

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceRing::TraceRing(size_t capacity, uint32_t tid) : tid_(tid) {
  const size_t cap = std::bit_ceil(std::max<size_t>(capacity, 2));
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  const size_t cap = capacity();
  const uint64_t h1 = head_.load(std::memory_order_acquire);
  const uint64_t lo = h1 > cap ? h1 - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(h1 - lo));
  for (uint64_t i = lo; i < h1; ++i) {
    const Slot& s = slots_[i & mask_];
    TraceEvent ev;
    ev.name = s.name.load(std::memory_order_relaxed);
    ev.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    ev.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    ev.trace_id = s.trace_id.load(std::memory_order_relaxed);
    ev.span_id = s.span_id.load(std::memory_order_relaxed);
    ev.parent_id = s.parent_id.load(std::memory_order_relaxed);
    ev.tid = tid_;
    out.push_back(ev);
  }
  // A writer that wrapped past `lo` while we were reading may have been
  // rewriting the slots we copied first. Any logical index at or below
  // h2 - cap (the slot the writer may currently be filling reuses index
  // h2 - cap) is suspect; drop it. Before wraparound nothing is dropped.
  const uint64_t h2 = head_.load(std::memory_order_acquire);
  if (h2 >= cap) {
    const uint64_t stable_lo = h2 - cap + 1;
    if (stable_lo > lo) {
      const uint64_t drop =
          std::min<uint64_t>(stable_lo - lo, out.size());
      out.erase(out.begin(), out.begin() + static_cast<size_t>(drop));
    }
  }
  return out;
}

TraceCollector::TraceCollector(const TraceOptions& options)
    : options_(options) {
  {
    std::lock_guard<std::mutex> lock(internal::g_install_mu);
    if (internal::g_collector != nullptr) return;  // someone else is tracing
    internal::g_collector = this;
    internal::g_generation.fetch_add(1, std::memory_order_release);
    epoch_ns_ = TraceNowNs();
    installed_ = true;
    internal::g_trace_active.store(true, std::memory_order_release);
  }
  // Surface span-loss accounting on /metrics for as long as we record.
  // Registered outside g_install_mu: the registry lock is taken here and
  // in CollectMetrics (via Collect), never with g_install_mu held.
  MetricRegistry& registry = MetricRegistry::Global();
  metrics_collector_ = ScopedCollector(
      &registry, registry.AddCollector([this](std::vector<FamilySnapshot>* o) {
        CollectMetrics(o);
      }));
}

TraceCollector::~TraceCollector() {
  if (!installed_) return;
  // Unhook the scrape callback before tearing down the install, so no
  // Collect can observe a half-dead collector.
  metrics_collector_.Reset();
  internal::g_trace_active.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(internal::g_install_mu);
  internal::g_collector = nullptr;
  internal::g_generation.fetch_add(1, std::memory_order_release);
}

TraceRing* TraceCollector::RegisterCurrentThread() {
  // Caller holds g_install_mu; rings_mu_ still taken so the exporter
  // can iterate rings_ without the install lock.
  std::lock_guard<std::mutex> lock(rings_mu_);
  const uint32_t tid = static_cast<uint32_t>(rings_.size());
  rings_.push_back(
      std::make_unique<TraceRing>(options_.events_per_thread, tid));
  return rings_.back().get();
}

std::vector<TraceEvent> TraceCollector::Drain() const {
  std::vector<TraceEvent> all;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    std::vector<TraceEvent> events = ring->Snapshot();
    all.insert(all.end(), events.begin(), events.end());
  }
  return all;
}

uint64_t TraceCollector::events_recorded() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) total += ring->appended();
  return total;
}

uint64_t TraceCollector::events_dropped() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    const uint64_t appended = ring->appended();
    if (appended > ring->capacity()) dropped += appended - ring->capacity();
  }
  return dropped;
}

size_t TraceCollector::threads_seen() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  return rings_.size();
}

void TraceCollector::CollectMetrics(std::vector<FamilySnapshot>* out) const {
  // Runs under the registry mutex (scrape time). Only rings_mu_ is taken
  // here; no path acquires the registry mutex with rings_mu_ held, so
  // the order registry -> rings is acyclic.
  std::lock_guard<std::mutex> lock(rings_mu_);
  uint64_t recorded = 0, dropped = 0;
  FamilySnapshot occupancy;
  occupancy.name = "rwdt_trace_ring_occupancy";
  occupancy.help =
      "Fraction of each trace thread's ring currently holding events; "
      "1 means the ring has wrapped and is overwriting its oldest spans";
  occupancy.type = MetricType::kGauge;
  for (const auto& ring : rings_) {
    const uint64_t appended = ring->appended();
    const uint64_t cap = ring->capacity();
    recorded += appended;
    if (appended > cap) dropped += appended - cap;
    occupancy.samples.push_back(
        {"",
         {{"thread", std::to_string(ring->tid())}},
         static_cast<double>(std::min<uint64_t>(appended, cap)) /
             static_cast<double>(cap)});
  }
  FamilySnapshot rec;
  rec.name = "rwdt_trace_spans_recorded";
  rec.help = "Spans appended to trace rings since the collector installed";
  rec.type = MetricType::kCounter;
  rec.samples.push_back({"_total", {}, static_cast<double>(recorded)});
  FamilySnapshot drop;
  drop.name = "rwdt_trace_spans_dropped";
  drop.help = "Spans lost to trace ring overwrites (recorded minus retained)";
  drop.type = MetricType::kCounter;
  drop.samples.push_back({"_total", {}, static_cast<double>(dropped)});
  FamilySnapshot threads;
  threads.name = "rwdt_trace_threads";
  threads.help = "Threads that have registered a trace ring";
  threads.type = MetricType::kGauge;
  threads.samples.push_back({"", {}, static_cast<double>(rings_.size())});
  out->push_back(std::move(rec));
  out->push_back(std::move(drop));
  out->push_back(std::move(threads));
  out->push_back(std::move(occupancy));
}

std::string TraceCollector::ToChromeJson(size_t limit) const {
  std::vector<TraceEvent> events = Drain();
  if (limit > 0 && events.size() > limit) {
    // Keep the `limit` most recent events by start time (the tail of
    // the run — what a /tracez scrape of a live server wants), then
    // restore per-thread order below.
    std::nth_element(events.begin(), events.begin() + (events.size() - limit),
                     events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    events.erase(events.begin(),
                 events.begin() + static_cast<ptrdiff_t>(events.size() - limit));
  }
  // Sort by (tid, start): Perfetto does not require ordering, but it
  // makes the per-thread timeline directly readable in the raw JSON and
  // gives the tests a crisp monotonicity contract.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_ns < b.ts_ns;
                   });

  std::string out = "{\"traceEvents\":[";
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
                "\"args\":{\"name\":\"%s\"}}",
                JsonEscape(options_.process_name).c_str());
  out += buf;
  for (size_t t = 0; t < threads_seen(); ++t) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":"
                  "\"thread-%zu\"}}",
                  t, t);
    out += buf;
  }
  for (const TraceEvent& ev : events) {
    // Rebase onto the install epoch; a span whose start predates the
    // epoch (installed mid-measurement) clamps to 0.
    const uint64_t rel =
        ev.ts_ns > epoch_ns_ ? ev.ts_ns - epoch_ns_ : 0;
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
                  "\"cat\":\"rwdt\",\"ts\":%.3f,\"dur\":%.3f",
                  ev.tid,
                  JsonEscape(ev.name != nullptr ? ev.name : "?").c_str(),
                  rel / 1e3, ev.dur_ns / 1e3);
    out += buf;
    if (ev.span_id != 0) {
      // Span-tree identity rides in args; Perfetto shows it on click.
      // trace_id is omitted for request-free spans (engine/bench runs).
      out += ",\"args\":{";
      if (ev.trace_id != 0) {
        out += "\"trace_id\":\"";
        out += TraceIdHex(ev.trace_id);
        out += "\",";
      }
      out += "\"span_id\":\"";
      out += TraceIdHex(ev.span_id);
      out += "\",\"parent_id\":\"";
      out += TraceIdHex(ev.parent_id);
      out += "\"}";
    }
    out += '}';
  }
  std::snprintf(buf, sizeof(buf),
                "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"events_recorded\":%llu,\"events_dropped\":%llu,"
                "\"threads\":%zu,\"events_shown\":%zu}}",
                static_cast<unsigned long long>(events_recorded()),
                static_cast<unsigned long long>(events_dropped()),
                threads_seen(), events.size());
  out += buf;
  return out;
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  const std::string json = ToChromeJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot write trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace rwdt::obs
