#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#include "obs/log.h"

namespace rwdt::obs {
namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void SetSocketTimeout(int fd, uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Reads from `fd` until the end of the request head (CRLFCRLF), a cap,
/// a timeout, or EOF. Returns false on anything but a complete head.
bool ReadRequestHead(int fd, std::string* head) {
  constexpr size_t kMaxHeadBytes = 16 * 1024;
  char buf[1024];
  while (head->size() < kMaxHeadBytes) {
    if (head->find("\r\n\r\n") != std::string::npos) return true;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;  // EOF, timeout, or error
    head->append(buf, static_cast<size_t>(n));
  }
  return head->find("\r\n\r\n") != std::string::npos;
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

AdminServer::AdminServer(Options options) : options_(std::move(options)) {
  if (options_.handler_threads == 0) options_.handler_threads = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(std::string path, std::string help, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[std::move(path)] = {std::move(help), std::move(handler)};
}

Status AdminServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("admin server already started");
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad admin bind address: " +
                                   options_.bind_address);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close(fd);
    return Status(Code::kResourceExhausted,
                  "cannot bind admin server to " + options_.bind_address + ":" +
                      std::to_string(options_.port) + ": " +
                      std::strerror(err));
  }
  if (listen(fd, 16) != 0) {
    const int err = errno;
    close(fd);
    return Status::Internal(std::string("listen(): ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  std::lock_guard<std::mutex> lock(mu_);
  listen_fd_ = fd;
  started_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  handler_threads_.reserve(options_.handler_threads);
  for (unsigned i = 0; i < options_.handler_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  RWDT_LOG(INFO) << "admin server listening on http://"
                 << options_.bind_address << ":" << port_
                 << " (" << routes_.size() << " routes)";
  return Status::Ok();
}

void AdminServer::Stop() {
  std::thread accept_thread;
  std::vector<std::thread> handler_threads;
  int listen_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    listen_fd = listen_fd_;
    listen_fd_ = -1;
    accept_thread = std::move(accept_thread_);
    handler_threads = std::move(handler_threads_);
    handler_threads_.clear();
  }
  // Unblock accept(); handlers keep draining `pending_` until empty.
  if (listen_fd >= 0) {
    shutdown(listen_fd, SHUT_RDWR);
    close(listen_fd);
  }
  queue_cv_.notify_all();
  quit_cv_.notify_all();
  if (accept_thread.joinable()) accept_thread.join();
  if (handler_threads.empty()) return;
  for (std::thread& t : handler_threads) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
  RWDT_LOG(INFO) << "admin server on port " << port_ << " stopped after "
                 << requests_served_ << " requests";
}

bool AdminServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_ && !stopping_;
}

uint64_t AdminServer::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_served_;
}

bool AdminServer::WaitForQuit(uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  quit_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return quit_requested_ || stopping_; });
  return quit_requested_ || stopping_;
}

void AdminServer::AcceptLoop() {
  for (;;) {
    int listen_fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed by Stop(), or a transient accept failure while stopping.
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      RWDT_LOG(WARN) << "admin accept(): " << std::strerror(errno);
      continue;
    }
    SetSocketTimeout(fd, options_.io_timeout_ms);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!stopping_ && pending_.size() < options_.max_pending) {
        pending_.push_back(fd);
        queue_cv_.notify_one();
        continue;
      }
    }
    close(fd);  // shedding: queue full or shutting down
  }
}

void AdminServer::HandlerLoop() {
  for (;;) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      // Graceful stop: drain every accepted connection before exiting.
      if (pending_.empty()) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void AdminServer::ServeConnection(int fd) {
  std::string head;
  HttpResponse response;
  HttpRequest request;
  if (!ReadRequestHead(fd, &head)) {
    close(fd);
    return;
  }
  const size_t line_end = head.find("\r\n");
  const std::string request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "malformed request line\n"};
  } else {
    request.method = request_line.substr(0, sp1);
    std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
      request.query = target.substr(qmark + 1);
      target.resize(qmark);
    }
    request.path = std::move(target);
    response = Dispatch(request);
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  SendAll(fd, out);
  close(fd);

  std::lock_guard<std::mutex> lock(mu_);
  requests_served_++;
}

HttpResponse AdminServer::Dispatch(const HttpRequest& request) {
  if (request.method != "GET") {
    return {405, "text/plain; charset=utf-8",
            "only GET is supported on admin endpoints\n"};
  }
  if (request.path == "/quitquitquit") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      quit_requested_ = true;
    }
    quit_cv_.notify_all();
    return {200, "text/plain; charset=utf-8", "bye\n"};
  }
  if (request.path == "/" || request.path == "/index") {
    return {200, "text/plain; charset=utf-8", IndexBody()};
  }
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = routes_.find(request.path);
    if (it != routes_.end()) handler = it->second.second;
  }
  if (handler == nullptr) {
    return {404, "text/plain; charset=utf-8",
            "no route " + request.path + " — see / for the index\n"};
  }
  return handler(request);
}

std::string AdminServer::IndexBody() const {
  std::string out = "rwdt admin server — routes:\n";
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, route] : routes_) {
    out += "  " + path + "  —  " + route.first + "\n";
  }
  out += "  /quitquitquit  —  release WaitForQuit (linger) and return\n";
  return out;
}

uint32_t AdminPortFromEnv(uint32_t fallback) {
  const char* env = std::getenv("RWDT_ADMIN_PORT");
  if (env == nullptr || env[0] == '\0') return fallback;
  const unsigned long v = std::strtoul(env, nullptr, 10);
  if (v == 0) return fallback;  // "0" = explicit off, same as unset
  if (v > 65535) {
    RWDT_LOG(WARN) << "RWDT_ADMIN_PORT=" << env
                   << " is not a valid port; admin server stays off";
    return 0;
  }
  return static_cast<uint32_t>(v);
}

}  // namespace rwdt::obs
