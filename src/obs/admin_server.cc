#include "obs/admin_server.h"

#include <cstdlib>
#include <utility>

#include "obs/log.h"

namespace rwdt::obs {

AdminServer::AdminServer(Options options) : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(std::string path, std::string help, Handler handler) {
  routes_[std::move(path)] = {std::move(help), std::move(handler)};
}

Status AdminServer::Start() {
  if (http_ != nullptr) {
    return Status::InvalidArgument("admin server already started");
  }
  serve::HttpServer::Options hopts;
  hopts.bind_address = options_.bind_address;
  hopts.port = options_.port;
  hopts.handler_threads = options_.handler_threads;
  hopts.max_pending = options_.max_pending;
  hopts.io_timeout_ms = options_.io_timeout_ms;
  // Admin scrapes are one-shot ("read until EOF" clients like the CI
  // curl loop); keep the historical Connection: close contract.
  hopts.keep_alive = false;

  auto http = std::make_unique<serve::HttpServer>(hopts);
  for (const auto& [path, route] : routes_) {
    http->Handle("GET", path, route.second);
  }
  const Handler index = [this](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", IndexBody(), {}};
  };
  http->Handle("GET", "/", index);
  http->Handle("GET", "/index", index);

  RWDT_RETURN_IF_ERROR(http->Start());
  http_ = std::move(http);
  return Status::Ok();
}

void AdminServer::Stop() {
  if (http_ != nullptr) http_->Stop();
}

uint16_t AdminServer::port() const {
  return http_ == nullptr ? 0 : http_->port();
}

bool AdminServer::running() const {
  return http_ != nullptr && http_->running();
}

uint64_t AdminServer::requests_served() const {
  return http_ == nullptr ? 0 : http_->requests_served();
}

bool AdminServer::WaitForQuit(uint32_t timeout_ms) {
  if (http_ == nullptr) return false;
  return http_->WaitForQuit(timeout_ms);
}

std::string AdminServer::IndexBody() const {
  std::string out = "rwdt admin server — routes:\n";
  for (const auto& [path, route] : routes_) {
    out += "  " + path + "  —  " + route.first + "\n";
  }
  out += "  /quitquitquit  —  release WaitForQuit (linger) and return\n";
  return out;
}

uint32_t AdminPortFromEnv(uint32_t fallback) {
  const char* env = std::getenv("RWDT_ADMIN_PORT");
  if (env == nullptr || env[0] == '\0') return fallback;
  const unsigned long v = std::strtoul(env, nullptr, 10);
  if (v == 0) return fallback;  // "0" = explicit off, same as unset
  if (v > 65535) {
    RWDT_LOG(WARN) << "RWDT_ADMIN_PORT=" << env
                   << " is not a valid port; admin server stays off";
    return 0;
  }
  return static_cast<uint32_t>(v);
}

}  // namespace rwdt::obs
