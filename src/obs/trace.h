#ifndef RWDT_OBS_TRACE_H_
#define RWDT_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/registry.h"

namespace rwdt::obs {

/// One completed span, as drained from a thread's ring buffer.
/// Timestamps are steady-clock nanoseconds (the same clock the engine's
/// metrics use); the exporter rebases them onto the collector's install
/// time.
///
/// Spans form a tree: `trace_id` groups every span of one request,
/// `span_id` names this span, and `parent_id` points at the enclosing
/// span (0 = root). Spans emitted outside any request context carry
/// trace_id 0 and stay flat — exactly the v1/v2 shape, so engine and
/// bench traces are unchanged.
struct TraceEvent {
  const char* name = nullptr;  // static string supplied at emit time
  uint32_t tid = 0;            // dense trace-thread id (registration order)
  uint64_t ts_ns = 0;          // span start
  uint64_t dur_ns = 0;         // span duration
  uint64_t trace_id = 0;       // request trace (0 = no request context)
  uint64_t span_id = 0;        // this span (0 = pre-v3 event)
  uint64_t parent_id = 0;      // enclosing span (0 = root)
};

/// SplitMix64 finalizer: the bit mixer behind span-id generation and
/// the deterministic head sampler. Bijective, so distinct inputs never
/// collide, and a single-bit input change avalanches the whole output.
inline uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The request-scoped trace identity carried from the HTTP front end
/// through the job queue, the worker, and every subsystem the worker
/// calls (ingest, engine, exec). Plain value type: copy it into a job,
/// install it on the processing thread with ScopedTraceContext.
struct TraceContext {
  uint64_t trace_id = 0;  // 0 = no active request trace
  uint64_t span_id = 0;   // current span; new spans become its children
  bool sampled = false;   // head/tail sampling verdict for this trace

  /// True when this context belongs to a request trace.
  bool active() const { return trace_id != 0; }
};

/// Process-unique non-zero ids. NewTraceId seeds from the steady clock
/// so ids differ across processes; NewSpanId is a mixed global counter
/// (one relaxed fetch_add + SplitMix64 — cheap enough for every span).
uint64_t NewTraceId();
uint64_t NewSpanId();

/// `id` as exactly 16 lower-case hex digits (the W3C trace-id /
/// span-id wire spelling, and the exemplar label value on /metrics).
std::string TraceIdHex(uint64_t id);

/// Renders `ctx` as a W3C Trace Context `traceparent` header value:
/// `00-<32 hex trace id>-<16 hex span id>-<01|00>`. Our 64-bit trace id
/// occupies the low half of the 128-bit field; the high half is zero.
std::string FormatTraceparent(const TraceContext& ctx);

/// Parses a W3C `traceparent` header value into `*ctx` (trace id, the
/// caller's span id as `span_id`, and the sampled flag). Returns false
/// — leaving `*ctx` untouched — on anything malformed: wrong length or
/// dash positions, non-hex digits, version ff, or an all-zero trace or
/// parent id. A 128-bit trace id folds to our 64-bit space by taking
/// the low 64 bits (the high 64 when the low half is all zero), so ids
/// minted by FormatTraceparent round-trip exactly.
bool ParseTraceparent(std::string_view header, TraceContext* ctx);

/// Deterministic head sampler: the decision is a pure function of
/// (trace_id, seed), so every process holding the same seed — and every
/// re-run of the same request stream — samples the identical subset.
/// rate <= 0 samples nothing, rate >= 1 everything.
struct TraceSampler {
  double rate = 0;
  uint64_t seed = 0;

  bool Sample(uint64_t trace_id) const {
    if (trace_id == 0 || rate <= 0.0) return false;  // id 0 = "no trace"
    if (rate >= 1.0) return true;
    // Top 53 mixed bits as a uniform double in [0, 1).
    return (MixBits(trace_id ^ seed) >> 11) * 0x1.0p-53 < rate;
  }
};

namespace internal {
extern std::atomic<bool> g_trace_active;
void EmitSpanSlow(const char* name, uint64_t ts_ns, uint64_t dur_ns,
                  uint64_t trace_id, uint64_t span_id, uint64_t parent_id);

/// The calling thread's current trace context. One instance per thread
/// program-wide (inline function-local thread_local).
inline TraceContext& MutableCurrentContext() {
  thread_local TraceContext ctx;
  return ctx;
}
}  // namespace internal

/// Read-only view of the calling thread's current trace context. Copy
/// it into a queued job to propagate the trace across a thread handoff.
inline const TraceContext& CurrentTraceContext() {
  return internal::MutableCurrentContext();
}

/// Installs `ctx` as the calling thread's trace context for the current
/// scope and restores the previous context on destruction. This is the
/// context-propagation primitive: the serve worker installs the job's
/// context before touching ingest/engine/exec, and the engine's thread
/// pool installs the submitting thread's context inside each shard task.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : prev_(internal::MutableCurrentContext()) {
    internal::MutableCurrentContext() = ctx;
  }
  ~ScopedTraceContext() { internal::MutableCurrentContext() = prev_; }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// Fixed-capacity single-writer ring buffer of trace events.
///
/// The hot path (`Append`) is lock-free and allocation-free: relaxed
/// stores into a pre-allocated slot plus one release store of the head
/// index. When the ring is full the oldest event is overwritten, so
/// tracing a week-long run costs bounded memory and always retains the
/// most recent window. `Snapshot` may run concurrently with the writer:
/// every slot field is an atomic, and the drain re-reads the head
/// afterwards to discard any slot that a wrapping writer may have been
/// rewriting mid-read (after wraparound this conservatively drops the
/// single oldest retained event).
///
/// One ring has exactly one writer thread; the `TraceCollector` owns one
/// ring per traced thread.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit TraceRing(size_t capacity, uint32_t tid = 0);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Writer-only. `name` must outlive the ring (use string literals or
  /// otherwise static storage).
  void Append(const char* name, uint64_t ts_ns, uint64_t dur_ns,
              uint64_t trace_id = 0, uint64_t span_id = 0,
              uint64_t parent_id = 0) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & mask_];
    s.name.store(name, std::memory_order_relaxed);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.trace_id.store(trace_id, std::memory_order_relaxed);
    s.span_id.store(span_id, std::memory_order_relaxed);
    s.parent_id.store(parent_id, std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Copies out the currently-stable events, oldest first. Safe to call
  /// from any thread while the writer keeps appending.
  std::vector<TraceEvent> Snapshot() const;

  /// Total events ever appended (monotone; not reduced by overwrites).
  uint64_t appended() const { return head_.load(std::memory_order_acquire); }

  size_t capacity() const { return mask_ + 1; }
  uint32_t tid() const { return tid_; }

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_;
  uint32_t tid_;
  std::atomic<uint64_t> head_{0};
};

struct TraceOptions {
  /// Ring capacity per traced thread (events). 8192 events ≈ 384 KiB
  /// per thread; with overwrite-oldest semantics this is the retained
  /// window, not a limit on run length.
  size_t events_per_thread = 8192;

  /// "process_name" metadata in the exported trace.
  std::string process_name = "rwdt";
};

/// Installs itself as the process-wide tracer on construction (if none
/// is active) and collects spans from every thread that emits them.
///
/// Usage:
///
///   rwdt::obs::TraceCollector trace;         // tracing on
///   ... run the engine / ingest ...
///   trace.WriteChromeJson("trace.json");     // open in Perfetto
///                                            // (chrome://tracing)
///
/// While installed, the collector also exports its loss accounting to
/// the global MetricRegistry (rwdt_trace_spans_recorded/_dropped,
/// rwdt_trace_ring_occupancy{thread=...}), so span loss shows up on
/// /metrics, not only inside the exported trace file.
///
/// Lifetime contract: destroy the collector only after all traced work
/// has quiesced (engine runs returned, pools drained). At most one
/// collector is active at a time; a second one constructed while another
/// is active stays inert (`installed()` == false) and records nothing.
class TraceCollector {
 public:
  explicit TraceCollector(const TraceOptions& options = {});
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Whether this collector won the install race and is recording.
  bool installed() const { return installed_; }

  /// Drains every thread's ring and renders Chrome trace-event JSON
  /// (the "JSON Array Format" with a traceEvents wrapper object), one
  /// complete-event ("ph":"X") per span, sorted by start time within
  /// each thread. Span-tree identity (trace/span/parent ids) rides in
  /// each event's "args". Loadable by Perfetto / chrome://tracing.
  ///
  /// `limit` > 0 keeps only the `limit` most recent events (by start
  /// time, across all threads) — the /tracez scrape cap. 0 = all.
  std::string ToChromeJson(size_t limit = 0) const;

  /// ToChromeJson written to `path` (overwrites).
  Status WriteChromeJson(const std::string& path) const;

  /// Total spans appended across all threads (including overwritten).
  uint64_t events_recorded() const;
  /// Spans lost to ring overwrites (recorded minus currently retained).
  uint64_t events_dropped() const;
  /// Number of threads that have registered a ring.
  size_t threads_seen() const;

  /// Steady-clock ns of installation — the exported trace's time zero.
  uint64_t epoch_ns() const { return epoch_ns_; }

 private:
  friend void internal::EmitSpanSlow(const char* name, uint64_t ts_ns,
                                     uint64_t dur_ns, uint64_t trace_id,
                                     uint64_t span_id, uint64_t parent_id);

  TraceRing* RegisterCurrentThread();
  std::vector<TraceEvent> Drain() const;  // all rings, merged
  void CollectMetrics(std::vector<FamilySnapshot>* out) const;

  TraceOptions options_;
  bool installed_ = false;
  uint64_t epoch_ns_ = 0;
  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  // Last member: destroyed first, so the scrape callback (which reads
  // rings_ under rings_mu_) is unhooked before anything else dies.
  ScopedCollector metrics_collector_;
};

/// True while a TraceCollector is installed. One relaxed atomic load —
/// this is the whole cost of instrumentation when tracing is off.
inline bool TracingActive() {
  return internal::g_trace_active.load(std::memory_order_relaxed);
}

/// True when a span emitted right now would be recorded: a collector is
/// installed AND the thread's context is either request-free (engine /
/// bench runs trace as before) or a sampled request. Unsampled requests
/// skip span recording entirely — that is the head sampler's job.
inline bool SpanEnabled() {
  if (!TracingActive()) return false;
  const TraceContext& ctx = CurrentTraceContext();
  return ctx.trace_id == 0 || ctx.sampled;
}

/// If a TraceCollector is installed, renders its Chrome trace JSON into
/// `*out` and returns true; false when no collector is active. The
/// install lock is held for the duration, so the collector cannot be
/// destroyed mid-serialization — this is what lets the admin server's
/// /tracez pull a trace from a live run at any moment. `limit` caps the
/// rendered events as in ToChromeJson (0 = all).
bool DrainActiveTraceJson(std::string* out, size_t limit = 0);

/// Steady-clock nanoseconds (the clock all span timestamps use).
uint64_t TraceNowNs();

/// Records one pre-measured span (e.g. a stage duration the caller
/// already clocked for its metrics histogram) as a child of the
/// thread's current span. No-op when tracing is off or the current
/// request is unsampled. `name` must have static storage duration.
inline void EmitSpan(const char* name, uint64_t ts_ns, uint64_t dur_ns) {
  if (!TracingActive()) return;
  const TraceContext& ctx = CurrentTraceContext();
  if (ctx.trace_id != 0 && !ctx.sampled) return;
  internal::EmitSpanSlow(name, ts_ns, dur_ns, ctx.trace_id, NewSpanId(),
                         ctx.span_id);
}

/// Records a pre-measured span with explicit identity: `ctx.span_id` IS
/// the span, `parent_id` its parent. For callers that allocated the
/// span id up front and handed `ctx` to other threads so their spans
/// nest underneath — e.g. the serve layer's per-request root span,
/// emitted by the handler after the worker already recorded children.
inline void EmitSpanAs(const TraceContext& ctx, uint64_t parent_id,
                       const char* name, uint64_t ts_ns, uint64_t dur_ns) {
  if (!TracingActive()) return;
  if (ctx.trace_id != 0 && !ctx.sampled) return;
  internal::EmitSpanSlow(name, ts_ns, dur_ns, ctx.trace_id, ctx.span_id,
                         parent_id);
}

/// RAII span: clocks construction-to-destruction and emits one trace
/// event. While alive it is the thread's current span, so nested Spans
/// (and EmitSpan calls) become its children — this is how the span tree
/// forms without any explicit parent plumbing. When tracing is off both
/// ends are a single branch.
///
///   { rwdt::obs::Span span("parse"); ... }   // one "parse" slice
class Span {
 public:
  explicit Span(const char* name) {
    if (!TracingActive()) return;
    TraceContext& ctx = internal::MutableCurrentContext();
    if (ctx.trace_id != 0 && !ctx.sampled) return;
    name_ = name;
    trace_id_ = ctx.trace_id;
    parent_id_ = ctx.span_id;
    span_id_ = NewSpanId();
    ctx.span_id = span_id_;  // children opened in this scope nest under us
    start_ns_ = TraceNowNs();
  }
  ~Span() {
    if (name_ == nullptr) return;
    internal::MutableCurrentContext().span_id = parent_id_;
    internal::EmitSpanSlow(name_, start_ns_, TraceNowNs() - start_ns_,
                           trace_id_, span_id_, parent_id_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id (0 when tracing is off / the request is unsampled).
  uint64_t span_id() const { return span_id_; }

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
};

}  // namespace rwdt::obs

#endif  // RWDT_OBS_TRACE_H_
