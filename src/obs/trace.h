#ifndef RWDT_OBS_TRACE_H_
#define RWDT_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace rwdt::obs {

/// One completed span, as drained from a thread's ring buffer.
/// Timestamps are steady-clock nanoseconds (the same clock the engine's
/// metrics use); the exporter rebases them onto the collector's install
/// time.
struct TraceEvent {
  const char* name = nullptr;  // static string supplied at emit time
  uint32_t tid = 0;            // dense trace-thread id (registration order)
  uint64_t ts_ns = 0;          // span start
  uint64_t dur_ns = 0;         // span duration
};

/// Fixed-capacity single-writer ring buffer of trace events.
///
/// The hot path (`Append`) is lock-free and allocation-free: three
/// relaxed stores into a pre-allocated slot plus one release store of
/// the head index. When the ring is full the oldest event is
/// overwritten, so tracing a week-long run costs bounded memory and
/// always retains the most recent window. `Snapshot` may run
/// concurrently with the writer: every slot field is an atomic, and the
/// drain re-reads the head afterwards to discard any slot that a
/// wrapping writer may have been rewriting mid-read (after wraparound
/// this conservatively drops the single oldest retained event).
///
/// One ring has exactly one writer thread; the `TraceCollector` owns one
/// ring per traced thread.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit TraceRing(size_t capacity, uint32_t tid = 0);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Writer-only. `name` must outlive the ring (use string literals or
  /// otherwise static storage).
  void Append(const char* name, uint64_t ts_ns, uint64_t dur_ns) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & mask_];
    s.name.store(name, std::memory_order_relaxed);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Copies out the currently-stable events, oldest first. Safe to call
  /// from any thread while the writer keeps appending.
  std::vector<TraceEvent> Snapshot() const;

  /// Total events ever appended (monotone; not reduced by overwrites).
  uint64_t appended() const { return head_.load(std::memory_order_acquire); }

  size_t capacity() const { return mask_ + 1; }
  uint32_t tid() const { return tid_; }

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_;
  uint32_t tid_;
  std::atomic<uint64_t> head_{0};
};

namespace internal {
extern std::atomic<bool> g_trace_active;
void EmitSpanSlow(const char* name, uint64_t ts_ns, uint64_t dur_ns);
}  // namespace internal

struct TraceOptions {
  /// Ring capacity per traced thread (events). 8192 events ≈ 192 KiB
  /// per thread; with overwrite-oldest semantics this is the retained
  /// window, not a limit on run length.
  size_t events_per_thread = 8192;

  /// "process_name" metadata in the exported trace.
  std::string process_name = "rwdt";
};

/// Installs itself as the process-wide tracer on construction (if none
/// is active) and collects spans from every thread that emits them.
///
/// Usage:
///
///   rwdt::obs::TraceCollector trace;         // tracing on
///   ... run the engine / ingest ...
///   trace.WriteChromeJson("trace.json");     // open in Perfetto
///                                            // (chrome://tracing)
///
/// Lifetime contract: destroy the collector only after all traced work
/// has quiesced (engine runs returned, pools drained). At most one
/// collector is active at a time; a second one constructed while another
/// is active stays inert (`installed()` == false) and records nothing.
class TraceCollector {
 public:
  explicit TraceCollector(const TraceOptions& options = {});
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Whether this collector won the install race and is recording.
  bool installed() const { return installed_; }

  /// Drains every thread's ring and renders Chrome trace-event JSON
  /// (the "JSON Array Format" with a traceEvents wrapper object), one
  /// complete-event ("ph":"X") per span, sorted by start time within
  /// each thread. Loadable by Perfetto / chrome://tracing.
  std::string ToChromeJson() const;

  /// ToChromeJson written to `path` (overwrites).
  Status WriteChromeJson(const std::string& path) const;

  /// Total spans appended across all threads (including overwritten).
  uint64_t events_recorded() const;
  /// Spans lost to ring overwrites (recorded minus currently retained).
  uint64_t events_dropped() const;
  /// Number of threads that have registered a ring.
  size_t threads_seen() const;

  /// Steady-clock ns of installation — the exported trace's time zero.
  uint64_t epoch_ns() const { return epoch_ns_; }

 private:
  friend void internal::EmitSpanSlow(const char* name, uint64_t ts_ns,
                                     uint64_t dur_ns);

  TraceRing* RegisterCurrentThread();
  std::vector<TraceEvent> Drain() const;  // all rings, merged

  TraceOptions options_;
  bool installed_ = false;
  uint64_t epoch_ns_ = 0;
  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

/// True while a TraceCollector is installed. One relaxed atomic load —
/// this is the whole cost of instrumentation when tracing is off.
inline bool TracingActive() {
  return internal::g_trace_active.load(std::memory_order_relaxed);
}

/// If a TraceCollector is installed, renders its Chrome trace JSON into
/// `*out` and returns true; false when no collector is active. The
/// install lock is held for the duration, so the collector cannot be
/// destroyed mid-serialization — this is what lets the admin server's
/// /tracez pull a trace from a live run at any moment.
bool DrainActiveTraceJson(std::string* out);

/// Steady-clock nanoseconds (the clock all span timestamps use).
uint64_t TraceNowNs();

/// Records one pre-measured span (e.g. a stage duration the caller
/// already clocked for its metrics histogram). No-op when tracing is
/// off. `name` must have static storage duration.
inline void EmitSpan(const char* name, uint64_t ts_ns, uint64_t dur_ns) {
  if (TracingActive()) internal::EmitSpanSlow(name, ts_ns, dur_ns);
}

/// RAII span: clocks construction-to-destruction and emits one trace
/// event. When tracing is off both ends are a single branch.
///
///   { rwdt::obs::Span span("parse"); ... }   // one "parse" slice
class Span {
 public:
  explicit Span(const char* name)
      : name_(TracingActive() ? name : nullptr),
        start_ns_(name_ != nullptr ? TraceNowNs() : 0) {}
  ~Span() {
    if (name_ != nullptr) {
      internal::EmitSpanSlow(name_, start_ns_, TraceNowNs() - start_ns_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_;
};

}  // namespace rwdt::obs

#endif  // RWDT_OBS_TRACE_H_
