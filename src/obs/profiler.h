#ifndef RWDT_OBS_PROFILER_H_
#define RWDT_OBS_PROFILER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/http_server.h"

namespace rwdt::obs {

/// Sampling CPU profiler: a process-wide SIGPROF timer fires on CPU
/// time at a configurable frequency; the signal handler captures the
/// interrupted thread's call stack (backtrace(3), async-signal-safe
/// after a warm-up call) into a lock-free per-thread sample ring — the
/// TraceRing design with flat pc storage. Symbolization (dladdr +
/// __cxa_demangle) happens off the signal path, at Stop.
///
/// Cost model: when no capture is running nothing is installed — no
/// timer, no handler, no per-sample work — so profiling-off overhead is
/// zero by construction, matching the rest of rwdt::obs.
struct ProfileOptions {
  /// Sampling frequency in Hz of process CPU time (ITIMER_PROF), so an
  /// idle process takes ~0 samples and a saturated one ~hz per busy
  /// core-second. Clamped to [1, 1000].
  double hz = 99;

  /// Frames captured per sample (stack depth). Clamped to the pool's
  /// frame stride (first Start wins, max 64).
  uint32_t max_frames = 32;

  /// Samples retained per thread ring; older samples are overwritten
  /// and surface as `samples_dropped`. Rounded up to a power of two.
  /// Pool geometry is fixed by the first Start of the process.
  size_t ring_capacity = 2048;

  /// Pre-allocated sample rings. A thread claims one on its first
  /// sample and keeps it for the process lifetime; signals landing on
  /// threads beyond this count as `threads_missed` samples. Fixed by
  /// the first Start of the process.
  uint32_t max_threads = 16;
};

/// One aggregated call stack, frames root-first (main at index 0, the
/// sampled leaf last) — the flamegraph orientation.
struct ProfileStack {
  std::vector<std::string> frames;
  uint64_t count = 0;
};

/// One off-CPU dimension entry: the delta of a registered wall-time
/// source over the capture window, rendered alongside the CPU stacks so
/// a profile distinguishes "burning CPU in ParseSparql" from "parked on
/// the serve queue".
struct OffCpuEntry {
  std::string name;
  double seconds = 0;
  /// `seconds * hz`, i.e. the sample count this wait would have drawn
  /// had it been CPU time — directly comparable to stack counts.
  uint64_t samples = 0;
};

/// A completed capture.
struct Profile {
  double hz = 0;
  double duration_s = 0;
  uint64_t samples = 0;          // captured into rings (pre-overwrite)
  uint64_t samples_dropped = 0;  // lost to ring overwrite
  uint64_t threads_missed = 0;   // samples on threads with no free ring
  std::vector<ProfileStack> stacks;  // sorted by count, descending
  std::vector<OffCpuEntry> off_cpu;

  /// flamegraph.pl collapsed-stack format: one
  /// `frame;frame;frame count\n` line per stack (root-first, ';' in
  /// symbols replaced by ':'), followed by `[offcpu];<name> N` lines
  /// for each off-CPU source with a nonzero window delta.
  std::string ToCollapsed() const;

  /// Self-describing JSON object (hz, duration, loss accounting, the
  /// stack table, and the off-CPU entries).
  std::string ToJson() const;
};

/// True when this build can profile: Linux/glibc with <execinfo.h>.
/// When false, StartProfiling returns kUnsupported and everything else
/// degrades gracefully.
bool ProfilerSupported();

/// True while a capture is running.
bool ProfilingActive();

/// Installs the SIGPROF handler and arms the timer. Fails with
/// kUnsupported on builds without backtrace(3) and kResourceExhausted
/// when a capture is already running (captures are process-global —
/// there is one profiling timer per process).
Status StartProfiling(const ProfileOptions& options = {});

/// Disarms the timer, waits for in-flight handlers to retire, drains
/// and symbolizes the sample rings, and returns the capture. Fails with
/// kInvalidArgument when no capture is running.
Result<Profile> StopProfiling();

/// StartProfiling + sleep(seconds) + StopProfiling. The calling thread
/// sleeps (no CPU), so it draws no samples itself; worker threads keep
/// earning SIGPROF deliveries. `seconds` clamped to [0.05, 300].
Result<Profile> CaptureProfile(double seconds,
                               const ProfileOptions& options = {});

/// Registers a wall-time source for the profile's off-CPU dimension:
/// `seconds_total` returns a monotone cumulative total (e.g. a queue
/// wait histogram's sum); captures snapshot it at Start and Stop and
/// report the delta. Returns an id for RemoveProfileOffCpuSource.
/// The callback must stay valid until removed.
uint64_t AddProfileOffCpuSource(std::string name,
                                std::function<double()> seconds_total);
void RemoveProfileOffCpuSource(uint64_t id);

/// RAII handle for AddProfileOffCpuSource.
class ScopedOffCpuSource {
 public:
  ScopedOffCpuSource() = default;
  ScopedOffCpuSource(std::string name, std::function<double()> seconds_total)
      : id_(AddProfileOffCpuSource(std::move(name), std::move(seconds_total))) {}
  ~ScopedOffCpuSource() { Reset(); }

  ScopedOffCpuSource(ScopedOffCpuSource&& other) noexcept : id_(other.id_) {
    other.id_ = 0;
  }
  ScopedOffCpuSource& operator=(ScopedOffCpuSource&& other) noexcept {
    if (this != &other) {
      Reset();
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }
  ScopedOffCpuSource(const ScopedOffCpuSource&) = delete;
  ScopedOffCpuSource& operator=(const ScopedOffCpuSource&) = delete;

  void Reset() {
    if (id_ != 0) RemoveProfileOffCpuSource(id_);
    id_ = 0;
  }

 private:
  uint64_t id_ = 0;
};

/// Self-profiling for a whole run: starts a capture on construction and
/// writes the collapsed-stack output to `path` on Finish (or
/// destruction). Start failures are logged, never fatal — a bench must
/// not die because another capture is running.
class ScopedSelfProfile {
 public:
  explicit ScopedSelfProfile(std::string path, ProfileOptions options = {});
  ~ScopedSelfProfile();

  ScopedSelfProfile(const ScopedSelfProfile&) = delete;
  ScopedSelfProfile& operator=(const ScopedSelfProfile&) = delete;

  /// Whether the capture actually started.
  bool active() const { return active_; }

  /// Stops the capture and writes `path`. Idempotent.
  Status Finish();

 private:
  std::string path_;
  bool active_ = false;
};

/// The env-driven self-profile hook every tool shares: when RWDT_PROFILE
/// names a file (the value "1" selects `default_path`), returns a
/// started ScopedSelfProfile writing there; null otherwise.
/// RWDT_PROFILE_HZ overrides the sampling frequency (default 99).
std::unique_ptr<ScopedSelfProfile> MaybeStartEnvProfile(
    const char* default_path = "profile.collapsed");

/// The shared GET /profilez handler: parses `seconds` (default 1,
/// clamped to [0.05, 60]), `hz` (default 99), and `format`
/// ("collapsed" | "json") from the query string, runs a blocking timed
/// capture, and renders it. Both the engine's AdminServer and
/// rwdt_serve mount this. Responses carry Cache-Control: no-store — a
/// profile is a point-in-time capture.
serve::HttpResponse HandleProfilez(const serve::HttpRequest& request);

}  // namespace rwdt::obs

#endif  // RWDT_OBS_PROFILER_H_
