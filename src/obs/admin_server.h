#ifndef RWDT_OBS_ADMIN_SERVER_H_
#define RWDT_OBS_ADMIN_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace rwdt::obs {

/// One parsed HTTP/1.1 request (the subset the admin server speaks:
/// method + target, headers ignored, no body).
struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/metrics" (query string split off)
  std::string query;   // "verbose=1" (without the '?'), may be empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A small, dependency-free blocking HTTP/1.1 server for in-process
/// admin endpoints (/metrics, /healthz, ...). One accept thread feeds a
/// bounded connection queue drained by a fixed handler pool; every
/// response closes the connection (Connection: close), so there is no
/// keep-alive state to manage. Binds 127.0.0.1 by default — admin
/// endpoints expose internals and must not face the open network.
///
/// Lifecycle: construct, register routes with Handle(), Start(), and
/// eventually Stop() (or destroy). Stop is graceful: the listener closes
/// first, then queued and in-flight requests finish before the handler
/// threads join. Handlers therefore must stay callable until Stop
/// returns — owners stop the server before tearing down anything a
/// handler touches.
class AdminServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (tests); read back via port().
    uint16_t port = 0;
    unsigned handler_threads = 2;
    /// Accepted connections waiting for a handler; beyond this the
    /// accept thread closes new connections immediately (load shedding).
    size_t max_pending = 64;
    /// Per-connection socket read/write timeout. Bounds how long a
    /// silent client can pin a handler thread (and therefore how long
    /// Stop() can block).
    uint32_t io_timeout_ms = 5000;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit AdminServer(Options options);
  ~AdminServer();  // implies Stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers an exact-path route (before Start). `help` is shown on
  /// the generated "/" index page.
  void Handle(std::string path, std::string help, Handler handler);

  /// Binds, listens (SO_REUSEADDR), and spawns the accept thread and
  /// handler pool. Fails with kUnavailable if the address is taken.
  Status Start();

  /// Graceful shutdown: stops accepting, drains queued + in-flight
  /// requests, joins all threads. Idempotent; called by the destructor.
  void Stop();

  /// The bound port (resolves Options::port == 0), 0 before Start.
  uint16_t port() const { return port_; }
  bool running() const;

  uint64_t requests_served() const;

  /// Blocks until GET /quitquitquit is served (a built-in route), Stop()
  /// runs, or `timeout_ms` elapses. Lets a CLI keep its admin endpoints
  /// alive after the workload finishes ("linger") with a remote,
  /// deterministic way to release it. Returns true if quit/stop arrived.
  bool WaitForQuit(uint32_t timeout_ms);

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request);
  std::string IndexBody() const;

  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  std::map<std::string, std::pair<std::string, Handler>> routes_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable quit_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a handler
  bool started_ = false;
  bool stopping_ = false;
  bool quit_requested_ = false;
  uint64_t requests_served_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;
};

/// Parses the RWDT_ADMIN_PORT environment variable: unset, empty, or
/// "0" yield `fallback` (admin off). Values above 65535 are clamped to
/// 0 with a warning.
uint32_t AdminPortFromEnv(uint32_t fallback = 0);

}  // namespace rwdt::obs

#endif  // RWDT_OBS_ADMIN_SERVER_H_
