#ifndef RWDT_OBS_ADMIN_SERVER_H_
#define RWDT_OBS_ADMIN_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "serve/http_server.h"

namespace rwdt::obs {

/// The admin endpoints reuse the single hand-rolled HTTP stack in the
/// tree (serve::HttpServer); these aliases keep the historical
/// obs::HttpRequest / obs::HttpResponse spelling working for handlers.
using HttpRequest = serve::HttpRequest;
using HttpResponse = serve::HttpResponse;

/// In-process admin endpoints (/metrics, /healthz, ...) on top of
/// serve::HttpServer. GET-only, one response per connection
/// (Connection: close), bound to loopback by default — admin endpoints
/// expose internals and must not face the open network.
///
/// Lifecycle: construct, register routes with Handle(), Start(), and
/// eventually Stop() (or destroy). Stop is graceful: queued and
/// in-flight requests finish before the handler threads join, so
/// handlers must stay callable until Stop returns — owners stop the
/// server before tearing down anything a handler touches.
class AdminServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (tests); read back via port().
    uint16_t port = 0;
    unsigned handler_threads = 2;
    /// Accepted connections waiting for a handler; beyond this new
    /// connections are shed with a 503 (load shedding).
    size_t max_pending = 64;
    /// Per-connection socket read/write timeout. Bounds how long a
    /// silent client can pin a handler thread (and therefore how long
    /// Stop() can block).
    uint32_t io_timeout_ms = 5000;
  };

  using Handler = serve::HttpServer::Handler;

  explicit AdminServer(Options options);
  ~AdminServer();  // implies Stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers an exact-path GET route (before Start). `help` is shown
  /// on the generated "/" index page.
  void Handle(std::string path, std::string help, Handler handler);

  /// Binds, listens (SO_REUSEADDR), and spawns the accept thread and
  /// handler pool. Fails with kResourceExhausted if the address is
  /// taken.
  Status Start();

  /// Graceful shutdown: stops accepting, drains queued + in-flight
  /// requests, joins all threads. Idempotent; called by the destructor.
  void Stop();

  /// The bound port (resolves Options::port == 0), 0 before Start.
  uint16_t port() const;
  bool running() const;

  uint64_t requests_served() const;

  /// Blocks until GET /quitquitquit is served (a built-in route), Stop()
  /// runs, or `timeout_ms` elapses. Lets a CLI keep its admin endpoints
  /// alive after the workload finishes ("linger") with a remote,
  /// deterministic way to release it. Returns true if quit/stop arrived.
  bool WaitForQuit(uint32_t timeout_ms);

 private:
  std::string IndexBody() const;

  Options options_;
  std::map<std::string, std::pair<std::string, Handler>> routes_;
  std::unique_ptr<serve::HttpServer> http_;
};

/// Parses the RWDT_ADMIN_PORT environment variable: unset, empty, or
/// "0" yield `fallback` (admin off). Values above 65535 are clamped to
/// 0 with a warning.
uint32_t AdminPortFromEnv(uint32_t fallback = 0);

}  // namespace rwdt::obs

#endif  // RWDT_OBS_ADMIN_SERVER_H_
