#include "obs/proc_stats.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define RWDT_HAS_RUSAGE 1
#else
#define RWDT_HAS_RUSAGE 0
#endif

namespace rwdt::obs {
namespace {

/// Reads a small /proc file into `*out`. Returns false when the file is
/// absent (non-Linux) or unreadable (/proc/self/io under some
/// containers).
bool ReadProcFile(const char* path, std::string* out) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) return false;
  buf[n] = '\0';
  out->assign(buf, n);
  return true;
}

#if RWDT_HAS_RUSAGE
double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) / 1e6;
}
#endif

FamilySnapshot MakeGauge(const char* name, const char* help, double value) {
  FamilySnapshot f;
  f.name = name;
  f.help = help;
  f.type = MetricType::kGauge;
  f.samples.push_back({"", {}, value});
  return f;
}

/// Process-unique install guard: the engine's admin path and a serve
/// front end may both construct a collector, but a scrape must never
/// render the rwdt_proc_* families twice.
std::atomic<bool> g_proc_stats_installed{false};

}  // namespace

ProcStatsSample SampleProcStats() {
  ProcStatsSample sample;

#if RWDT_HAS_RUSAGE
  const long page = sysconf(_SC_PAGESIZE);
  std::string text;
  if (ReadProcFile("/proc/self/statm", &text)) {
    // statm: size resident shared text lib data dt (pages).
    unsigned long long size_pages = 0, resident_pages = 0;
    if (std::sscanf(text.c_str(), "%llu %llu", &size_pages,
                    &resident_pages) == 2) {
      sample.virtual_bytes =
          static_cast<double>(size_pages) * static_cast<double>(page);
      sample.resident_bytes =
          static_cast<double>(resident_pages) * static_cast<double>(page);
      sample.has_statm = true;
    }
  }
  if (ReadProcFile("/proc/self/stat", &text)) {
    // comm (field 2) may contain spaces; fields resume after the last
    // ')'. num_threads is field 20, i.e. the 18th token after comm.
    const size_t close = text.rfind(')');
    if (close != std::string::npos) {
      const char* p = text.c_str() + close + 1;
      int field = 2;  // the token after ')' is field 3 (state)
      long long threads = 0;
      char token[64];
      int consumed = 0;
      while (std::sscanf(p, " %63s%n", token, &consumed) == 1) {
        ++field;
        if (field == 20) {
          threads = std::strtoll(token, nullptr, 10);
          break;
        }
        p += consumed;
      }
      if (threads > 0) {
        sample.threads = static_cast<double>(threads);
        sample.has_stat = true;
      }
    }
  }
  if (ReadProcFile("/proc/self/io", &text)) {
    unsigned long long read_bytes = 0, write_bytes = 0;
    const char* r = std::strstr(text.c_str(), "read_bytes:");
    const char* w = std::strstr(text.c_str(), "write_bytes:");
    if (r != nullptr && w != nullptr &&
        std::sscanf(r, "read_bytes: %llu", &read_bytes) == 1 &&
        std::sscanf(w, "write_bytes: %llu", &write_bytes) == 1) {
      sample.io_read_bytes = static_cast<double>(read_bytes);
      sample.io_write_bytes = static_cast<double>(write_bytes);
      sample.has_io = true;
    }
  }
  rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    sample.utime_s = TimevalSeconds(usage.ru_utime);
    sample.stime_s = TimevalSeconds(usage.ru_stime);
    // ru_maxrss is KiB on Linux (bytes on macOS; this path is
    // Linux-first and macOS would overreport by 1024x — acceptable for
    // an observability gauge on a non-target platform).
    sample.max_resident_bytes =
        static_cast<double>(usage.ru_maxrss) * 1024.0;
    sample.minor_faults = static_cast<double>(usage.ru_minflt);
    sample.major_faults = static_cast<double>(usage.ru_majflt);
    sample.voluntary_ctx_switches = static_cast<double>(usage.ru_nvcsw);
    sample.involuntary_ctx_switches = static_cast<double>(usage.ru_nivcsw);
    sample.has_rusage = true;
  }
#endif

  return sample;
}

void AppendProcStatsFamilies(const ProcStatsSample& sample,
                             std::vector<FamilySnapshot>* out) {
  if (sample.has_statm) {
    out->push_back(MakeGauge("rwdt_proc_resident_bytes",
                         "Resident set size of the process.",
                         sample.resident_bytes));
    out->push_back(MakeGauge("rwdt_proc_virtual_bytes",
                         "Virtual memory size of the process.",
                         sample.virtual_bytes));
  }
  if (sample.has_stat) {
    out->push_back(MakeGauge("rwdt_proc_threads",
                         "OS threads in the process.", sample.threads));
  }
  if (sample.has_rusage) {
    out->push_back(MakeGauge("rwdt_proc_max_resident_bytes",
                         "Peak resident set size of the process.",
                         sample.max_resident_bytes));
    {
      FamilySnapshot f;
      f.name = "rwdt_proc_cpu_seconds";
      f.help = "Cumulative process CPU time by mode.";
      f.type = MetricType::kCounter;
      f.samples.push_back({"_total", {{"mode", "user"}}, sample.utime_s});
      f.samples.push_back({"_total", {{"mode", "system"}}, sample.stime_s});
      out->push_back(std::move(f));
    }
    {
      FamilySnapshot f;
      f.name = "rwdt_proc_page_faults";
      f.help = "Cumulative page faults by kind.";
      f.type = MetricType::kCounter;
      f.samples.push_back({"_total", {{"kind", "minor"}}, sample.minor_faults});
      f.samples.push_back({"_total", {{"kind", "major"}}, sample.major_faults});
      out->push_back(std::move(f));
    }
    {
      FamilySnapshot f;
      f.name = "rwdt_proc_context_switches";
      f.help = "Cumulative context switches by kind.";
      f.type = MetricType::kCounter;
      f.samples.push_back({"_total",
                           {{"kind", "voluntary"}},
                           sample.voluntary_ctx_switches});
      f.samples.push_back({"_total",
                           {{"kind", "involuntary"}},
                           sample.involuntary_ctx_switches});
      out->push_back(std::move(f));
    }
  }
  if (sample.has_io) {
    FamilySnapshot f;
    f.name = "rwdt_proc_io_bytes";
    f.help = "Cumulative storage-layer I/O bytes by direction.";
    f.type = MetricType::kCounter;
    f.samples.push_back({"_total", {{"dir", "read"}}, sample.io_read_bytes});
    f.samples.push_back({"_total", {{"dir", "write"}}, sample.io_write_bytes});
    out->push_back(std::move(f));
  }
}

ProcStatsCollector::ProcStatsCollector(MetricRegistry* registry) {
  bool expected = false;
  if (!g_proc_stats_installed.compare_exchange_strong(expected, true)) {
    return;  // another collector already exposes the families
  }
  installed_ = true;
  collector_ = ScopedCollector(
      registry, registry->AddCollector([](std::vector<FamilySnapshot>* out) {
        AppendProcStatsFamilies(SampleProcStats(), out);
      }));
}

ProcStatsCollector::~ProcStatsCollector() {
  if (installed_) {
    collector_.Reset();
    g_proc_stats_installed.store(false);
  }
}

}  // namespace rwdt::obs
