#ifndef RWDT_OBS_REGISTRY_H_
#define RWDT_OBS_REGISTRY_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rwdt::obs {

/// The three OpenMetrics instrument kinds the registry supports.
enum class MetricType { kCounter, kGauge, kHistogram };

/// Stable lower-case name as it appears in `# TYPE` lines.
const char* MetricTypeName(MetricType t);

/// A label set: key/value pairs, sorted by key at registration so that
/// `{a="1",b="2"}` and `{b="2",a="1"}` name the same child series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// An OpenMetrics exemplar: one concrete observation attached to a
/// histogram bucket, carrying correlation labels (here: the trace id of
/// the request that produced it). Rendered as
/// `... # {trace_id="4f2a..."} 0.0042` after the bucket sample.
struct Exemplar {
  Labels labels;
  double value = 0;
  bool set = false;
};

/// Monotone counter. `Increment` is one relaxed atomic RMW on a
/// registry-owned cache line — the same discipline as the engine's
/// metric counters, no mutex anywhere near the hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous value. Stored as the bit pattern of a double so `Set`
/// is a single relaxed store (no CAS) and `Add` a CAS loop.
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  void Add(double d);
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-boundary histogram. `Observe` increments exactly one bucket
/// counter (relaxed) and CAS-adds the sum; bucket cumulativity is
/// computed at exposition time, so the hot path never touches more than
/// two cache lines.
class Histogram {
 public:
  /// `bounds` are the inclusive upper bounds of the finite buckets
  /// (OpenMetrics `le` values), strictly increasing. A final +Inf bucket
  /// is implicit.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  /// Observe(v) plus: remember `(exemplar_labels, v)` as the landing
  /// bucket's exemplar (latest write wins). The exemplar store is
  /// mutex-guarded and lazily allocated — callers only pay for it on
  /// sampled requests, and plain Observe stays lock-free.
  void ObserveWithExemplar(double v, Labels exemplar_labels);

  /// Copy of bucket `i`'s exemplar (`set == false` when none recorded).
  /// `i == bounds().size()` is the +Inf bucket.
  Exemplar exemplar(size_t i) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  uint64_t bucket_count(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const;
  double sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }

  /// Power-of-two bounds {start, 2*start, ...}, `n` buckets — the shape
  /// the engine's latency histograms use.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t n);

 private:
  size_t BucketIndex(double v) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_bits_{0};
  // Exemplar storage: written rarely (sampled requests only), read at
  // scrape time. Allocated on first ObserveWithExemplar.
  mutable std::mutex exemplar_mu_;
  std::unique_ptr<Exemplar[]> exemplars_;  // bounds_.size() + 1, or null
};

/// One exposition sample: `<family name><suffix>{<labels>} <value>`,
/// optionally followed by an exemplar (histogram `_bucket` rows only).
struct Sample {
  Sample() = default;
  Sample(std::string suffix_in, Labels labels_in, double value_in,
         Exemplar exemplar_in = {})
      : suffix(std::move(suffix_in)),
        labels(std::move(labels_in)),
        value(value_in),
        exemplar(std::move(exemplar_in)) {}

  std::string suffix;  // "", "_total", "_bucket", "_sum", "_count"
  Labels labels;
  double value = 0;
  Exemplar exemplar;
};

/// A point-in-time copy of one metric family, ready for the OpenMetrics
/// writer. Produced by `MetricRegistry::Collect` and by scrape-time
/// collector callbacks (e.g. the engine bridge).
struct FamilySnapshot {
  std::string name;  // base name without the _total/_bucket suffixes
  std::string help;
  MetricType type = MetricType::kGauge;
  std::vector<Sample> samples;
};

/// A process-wide registry of named instruments with optional label
/// sets, plus scrape-time collector callbacks for subsystems that keep
/// their own counters (the engine's LocalMetrics slabs stay exactly as
/// they are — the bridge converts a MetricsSnapshot into families on
/// demand, so registration costs the hot path nothing).
///
/// Registration (`GetCounter`/...) takes a mutex and is expected to
/// happen once per call site, with the returned pointer cached by the
/// caller; the instruments themselves are lock-free. Returned pointers
/// stay valid for the registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry();
  ~MetricRegistry();  // out of line: Family is an incomplete type here
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry `/metrics` serves.
  static MetricRegistry& Global();

  /// Get-or-create. `name` must match [a-zA-Z_:][a-zA-Z0-9_:]* and not
  /// collide with a family of a different type; violations are logged
  /// and a process-lifetime dummy instrument is returned so callers
  /// never need a null check.
  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  /// All children of one histogram family share the family's bounds
  /// (the bounds of the first registration win).
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds, Labels labels = {});

  /// Scrape-time callback appending zero or more FamilySnapshots.
  /// Called under the registry mutex — do not re-enter the registry.
  using Collector = std::function<void(std::vector<FamilySnapshot>*)>;

  /// Registers `fn` to run on every Collect. Returns an id for
  /// RemoveCollector (mandatory before anything `fn` captures dies).
  uint64_t AddCollector(Collector fn);
  void RemoveCollector(uint64_t id);

  /// Snapshots every instrument and runs every collector, merging
  /// families with the same name (samples concatenated; the first
  /// registration's type/help win). Families are sorted by name so the
  /// exposition is deterministic.
  std::vector<FamilySnapshot> Collect() const;

  /// `Collect()` rendered as OpenMetrics text (see openmetrics.h).
  std::string RenderOpenMetrics() const;

 private:
  struct Family;
  Family* GetFamily(std::string_view name, std::string_view help,
                    MetricType type);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Family>, std::less<>> families_;
  std::map<uint64_t, Collector> collectors_;
  uint64_t next_collector_id_ = 1;
};

/// RAII handle for AddCollector: removes the collector on destruction,
/// so a subsystem that registers a scrape callback capturing `this` can
/// never dangle past its own lifetime.
class ScopedCollector {
 public:
  ScopedCollector() = default;
  ScopedCollector(MetricRegistry* registry, uint64_t id)
      : registry_(registry), id_(id) {}
  ~ScopedCollector() { Reset(); }

  ScopedCollector(ScopedCollector&& other) noexcept
      : registry_(other.registry_), id_(other.id_) {
    other.registry_ = nullptr;
  }
  ScopedCollector& operator=(ScopedCollector&& other) noexcept {
    if (this != &other) {
      Reset();
      registry_ = other.registry_;
      id_ = other.id_;
      other.registry_ = nullptr;
    }
    return *this;
  }
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

  void Reset() {
    if (registry_ != nullptr) registry_->RemoveCollector(id_);
    registry_ = nullptr;
  }

 private:
  MetricRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace rwdt::obs

#endif  // RWDT_OBS_REGISTRY_H_
