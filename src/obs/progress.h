#ifndef RWDT_OBS_PROGRESS_H_
#define RWDT_OBS_PROGRESS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "engine/metrics.h"

namespace rwdt::obs {

/// Live run reporting. Carried inside EngineOptions / IngestOptions so
/// a long run can be watched without touching the calling code.
struct ProgressOptions {
  /// Snapshot-and-report period in milliseconds. 0 disables the
  /// background thread (a final report can still be written).
  uint32_t interval_ms = 0;

  /// Emit a one-line RWDT_LOG(INFO) per tick: entries/sec since the
  /// previous tick, cache hit rate, error count.
  bool log_progress = true;

  /// Non-empty: on Stop, write a JSON run report here — elapsed wall
  /// time, tick count, and the final MetricsSnapshot (its counters are
  /// exactly the engine's totals at stop time).
  std::string report_path;

  /// Prefix for progress lines and the report's "label" field.
  std::string label = "run";

  /// True when either periodic reporting or a final report is wanted.
  bool enabled() const { return interval_ms > 0 || !report_path.empty(); }

  Status Validate() const;
};

/// Snapshots engine metrics on a background thread every `interval_ms`,
/// logging one progress line per tick, and renders a final JSON run
/// report on Stop. The snapshot callback must be safe to call from
/// another thread for the reporter's whole lifetime
/// (engine::Engine::Snapshot is).
class ProgressReporter {
 public:
  using SnapshotFn = std::function<engine::MetricsSnapshot()>;

  ProgressReporter(SnapshotFn snapshot, ProgressOptions options);
  ~ProgressReporter();  // implies Stop()

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Joins the background thread, takes the final snapshot, renders the
  /// run report, and writes it to `options.report_path` if set.
  /// Idempotent.
  void Stop();

  /// Periodic progress lines emitted so far (final snapshot excluded).
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// The final run report; empty until Stop() has run.
  const std::string& report_json() const { return report_json_; }

 private:
  void Loop();
  void EmitProgressLine(const engine::MetricsSnapshot& snap);

  SnapshotFn snapshot_;
  ProgressOptions options_;
  uint64_t start_ns_;

  std::mutex mu_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;

  std::atomic<uint64_t> ticks_{0};
  uint64_t last_entries_ = 0;  // background thread only
  std::string report_json_;
};

}  // namespace rwdt::obs

#endif  // RWDT_OBS_PROGRESS_H_
