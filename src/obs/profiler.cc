#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/json.h"
#include "obs/log.h"
#include "obs/registry.h"

#if defined(__linux__) && __has_include(<execinfo.h>)
#define RWDT_PROFILER_SUPPORTED 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#include <time.h>
#else
#define RWDT_PROFILER_SUPPORTED 0
#endif

namespace rwdt::obs {
namespace {

/// Compile-time ceiling on frames per sample (the handler's stack
/// buffer); ProfileOptions::max_frames clamps below this.
constexpr uint32_t kMaxFrames = 64;

double ClampHz(double hz) { return std::min(std::max(hz, 1.0), 1000.0); }

size_t RoundUpPow2(size_t v) {
  size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

/// Replaces ';' (the collapsed-stack frame separator) and control bytes
/// in a symbol name so frames round-trip through flamegraph.pl.
std::string SanitizeFrame(std::string s) {
  for (char& c : s) {
    if (c == ';') c = ':';
    if (static_cast<unsigned char>(c) < 0x20) c = '_';
  }
  return s;
}

/// Off-CPU source registry: process-global, mutex-guarded (never touched
/// from the signal path).
struct OffCpuSourceEntry {
  std::string name;
  std::function<double()> seconds_total;
};

std::mutex& OffCpuMu() {
  static std::mutex mu;
  return mu;
}
std::map<uint64_t, OffCpuSourceEntry>& OffCpuSources() {
  static std::map<uint64_t, OffCpuSourceEntry> sources;
  return sources;
}
uint64_t g_next_off_cpu_id = 1;

#if RWDT_PROFILER_SUPPORTED

/// One per-thread sample ring: single-writer (the SIGPROF handler
/// running on the owning thread), drained only after the timer is
/// disarmed and in-flight handlers have retired. Frame storage is a
/// flat atomic array (slot i's pcs at [i * stride]) so geometry is a
/// runtime choice without per-slot allocation.
struct SampleRing {
  std::atomic<uint64_t> head{0};
  size_t mask = 0;
  size_t stride = 0;
  std::atomic<uintptr_t>* pcs = nullptr;   // (mask + 1) * stride
  std::atomic<uint32_t>* counts = nullptr;  // mask + 1
};

/// Process-lifetime profiler state. Allocated once at the first Start
/// and never freed: the thread_local ring pointers below must stay
/// valid for threads that outlive a capture.
struct ProfilerState {
  std::atomic<bool> active{false};
  std::atomic<uint32_t> rings_claimed{0};
  std::atomic<uint64_t> threads_missed{0};
  std::atomic<int32_t> in_handler{0};
  std::atomic<uint32_t> depth{32};  // frames per sample, this capture

  uint32_t num_rings = 0;
  size_t capacity = 0;  // power of two
  size_t stride = 0;
  std::unique_ptr<SampleRing[]> rings;
  std::unique_ptr<std::atomic<uintptr_t>[]> pc_storage;
  std::unique_ptr<std::atomic<uint32_t>[]> count_storage;
};

std::atomic<ProfilerState*> g_state{nullptr};
thread_local SampleRing* t_ring = nullptr;

/// Serializes Start/Stop bookkeeping (never held on the signal path).
std::mutex& ProfilerMu() {
  static std::mutex mu;
  return mu;
}

/// Non-ring bookkeeping of the capture in flight, owned by Start/Stop
/// under ProfilerMu.
struct CaptureState {
  bool running = false;
  double hz = 0;
  std::chrono::steady_clock::time_point start;
  std::vector<std::pair<std::string, double>> off_cpu_start;  // name, total
  struct sigaction old_action;
};
CaptureState g_capture;

extern "C" void RwdtProfileSignalHandler(int, siginfo_t*, void*) {
  ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st == nullptr) return;
  // The in_handler count lets Stop wait for handlers that raced past
  // the active check; re-check active after publishing the increment.
  st->in_handler.fetch_add(1, std::memory_order_acquire);
  if (!st->active.load(std::memory_order_relaxed)) {
    st->in_handler.fetch_sub(1, std::memory_order_release);
    return;
  }
  const int saved_errno = errno;
  SampleRing* ring = t_ring;
  if (ring == nullptr) {
    // First sample on this thread: claim a ring for the rest of the
    // process lifetime (a CAS loop is async-signal-safe; fetch_add
    // would overflow the claim counter on ringless threads).
    uint32_t idx = st->rings_claimed.load(std::memory_order_relaxed);
    while (idx < st->num_rings &&
           !st->rings_claimed.compare_exchange_weak(
               idx, idx + 1, std::memory_order_relaxed)) {
    }
    if (idx < st->num_rings) {
      ring = &st->rings[idx];
      t_ring = ring;
    } else {
      st->threads_missed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (ring != nullptr) {
    // backtrace(3) into a handler-stack buffer, then relaxed atomic
    // stores into the claimed slot. glibc's backtrace is signal-safe
    // after the warm-up call Start performed (the first call dlopens
    // libgcc, which must not happen here).
    void* frames[kMaxFrames];
    int want = static_cast<int>(st->depth.load(std::memory_order_relaxed));
    const int n = backtrace(frames, want);
    if (n > 0) {
      const uint64_t h = ring->head.load(std::memory_order_relaxed);
      const size_t slot = static_cast<size_t>(h) & ring->mask;
      std::atomic<uintptr_t>* pcs = ring->pcs + slot * ring->stride;
      for (int i = 0; i < n; ++i) {
        pcs[i].store(reinterpret_cast<uintptr_t>(frames[i]),
                     std::memory_order_relaxed);
      }
      ring->counts[slot].store(static_cast<uint32_t>(n),
                               std::memory_order_relaxed);
      ring->head.store(h + 1, std::memory_order_release);
    }
  }
  errno = saved_errno;
  st->in_handler.fetch_sub(1, std::memory_order_release);
}

/// Creates the process-lifetime ring pool (first Start only).
ProfilerState* EnsureState(const ProfileOptions& options) {
  ProfilerState* st = g_state.load(std::memory_order_acquire);
  if (st != nullptr) return st;
  auto state = std::make_unique<ProfilerState>();
  state->num_rings = std::max<uint32_t>(1, options.max_threads);
  state->capacity = RoundUpPow2(std::max<size_t>(64, options.ring_capacity));
  state->stride = std::min<uint32_t>(kMaxFrames,
                                     std::max<uint32_t>(4, options.max_frames));
  const size_t slots = state->num_rings * state->capacity;
  state->pc_storage =
      std::make_unique<std::atomic<uintptr_t>[]>(slots * state->stride);
  state->count_storage = std::make_unique<std::atomic<uint32_t>[]>(slots);
  state->rings = std::make_unique<SampleRing[]>(state->num_rings);
  for (uint32_t r = 0; r < state->num_rings; ++r) {
    SampleRing& ring = state->rings[r];
    ring.mask = state->capacity - 1;
    ring.stride = state->stride;
    ring.pcs = state->pc_storage.get() + r * state->capacity * state->stride;
    ring.counts = state->count_storage.get() + r * state->capacity;
  }
  st = state.release();  // process-lifetime: thread rings point into it
  g_state.store(st, std::memory_order_release);
  return st;
}

/// Resolves one sampled pc to a display frame. `pc - 1` lands inside
/// the call instruction for return addresses; for the interrupted pc
/// itself it stays within the same function in practice.
std::string SymbolizePc(uintptr_t pc) {
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string out = (status == 0 && demangled != nullptr) ? demangled
                                                            : info.dli_sname;
    std::free(demangled);
    return SanitizeFrame(std::move(out));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<size_t>(pc));
  return buf;
}

/// Index of the handler's own frame in a leaf-first pc vector, or -1.
int FindHandlerFrame(const std::vector<uintptr_t>& pcs) {
  for (size_t i = 0; i < pcs.size(); ++i) {
    Dl_info info;
    if (dladdr(reinterpret_cast<void*>(pcs[i] - 1), &info) != 0 &&
        info.dli_saddr ==
            reinterpret_cast<void*>(&RwdtProfileSignalHandler)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Capture-loss counters on /metrics, so dropped samples are visible
/// without reading the profile itself. Registered on first use; the
/// instruments live for the process.
void RecordCaptureMetrics(const Profile& profile) {
  auto& registry = MetricRegistry::Global();
  static Counter* captures = registry.GetCounter(
      "rwdt_profile_captures", "Completed profiler captures");
  static Counter* samples = registry.GetCounter(
      "rwdt_profile_samples", "CPU samples captured into profiler rings");
  static Counter* dropped = registry.GetCounter(
      "rwdt_profile_samples_dropped",
      "CPU samples lost to ring overwrite or ring-pool exhaustion");
  captures->Increment();
  samples->Increment(profile.samples);
  dropped->Increment(profile.samples_dropped + profile.threads_missed);
}

#endif  // RWDT_PROFILER_SUPPORTED

std::vector<std::pair<std::string, double>> SnapshotOffCpuSources() {
  std::vector<std::pair<std::string, double>> out;
  std::lock_guard<std::mutex> lock(OffCpuMu());
  for (const auto& [id, src] : OffCpuSources()) {
    (void)id;
    out.emplace_back(src.name, src.seconds_total());
  }
  return out;
}

}  // namespace

bool ProfilerSupported() { return RWDT_PROFILER_SUPPORTED != 0; }

bool ProfilingActive() {
#if RWDT_PROFILER_SUPPORTED
  ProfilerState* st = g_state.load(std::memory_order_acquire);
  return st != nullptr && st->active.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

uint64_t AddProfileOffCpuSource(std::string name,
                                std::function<double()> seconds_total) {
  std::lock_guard<std::mutex> lock(OffCpuMu());
  const uint64_t id = g_next_off_cpu_id++;
  OffCpuSources()[id] = {std::move(name), std::move(seconds_total)};
  return id;
}

void RemoveProfileOffCpuSource(uint64_t id) {
  std::lock_guard<std::mutex> lock(OffCpuMu());
  OffCpuSources().erase(id);
}

#if RWDT_PROFILER_SUPPORTED

Status StartProfiling(const ProfileOptions& options) {
  std::lock_guard<std::mutex> lock(ProfilerMu());
  if (g_capture.running) {
    return Status::ResourceExhausted("a profile capture is already running");
  }
  ProfilerState* st = EnsureState(options);

  // Warm up backtrace outside the signal path: glibc's first call
  // dlopens libgcc_s (malloc + loader locks), which must never happen
  // inside the handler.
  {
    void* warm[4];
    (void)backtrace(warm, 4);
  }

  // Reset per-capture ring state. The timer is off and no capture is
  // running, so no handler writes concurrently.
  for (uint32_t r = 0; r < st->num_rings; ++r) {
    st->rings[r].head.store(0, std::memory_order_relaxed);
  }
  st->threads_missed.store(0, std::memory_order_relaxed);
  st->depth.store(std::min(kMaxFrames, std::max(4u, options.max_frames)),
                  std::memory_order_relaxed);

  g_capture.hz = ClampHz(options.hz);
  g_capture.start = std::chrono::steady_clock::now();
  g_capture.off_cpu_start = SnapshotOffCpuSources();

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &RwdtProfileSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  if (sigaction(SIGPROF, &action, &g_capture.old_action) != 0) {
    return Status::Internal("sigaction(SIGPROF) failed");
  }

  st->active.store(true, std::memory_order_release);

  itimerval timer;
  const auto interval_us =
      static_cast<suseconds_t>(1e6 / g_capture.hz);
  timer.it_interval.tv_sec = interval_us / 1000000;
  timer.it_interval.tv_usec = interval_us % 1000000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    st->active.store(false, std::memory_order_release);
    sigaction(SIGPROF, &g_capture.old_action, nullptr);
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }
  g_capture.running = true;
  return Status::Ok();
}

Result<Profile> StopProfiling() {
  std::lock_guard<std::mutex> lock(ProfilerMu());
  if (!g_capture.running) {
    return Status::InvalidArgument("no profile capture is running");
  }
  ProfilerState* st = g_state.load(std::memory_order_acquire);

  // Disarm, then deactivate, then wait for handlers that were already
  // past the active check — after the loop no thread touches a ring.
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(ITIMER_PROF, &off, nullptr);
  st->active.store(false, std::memory_order_release);
  for (int spin = 0;
       st->in_handler.load(std::memory_order_acquire) != 0 && spin < 10000;
       ++spin) {
    timespec ts{0, 100000};  // 0.1 ms
    nanosleep(&ts, nullptr);
  }
  sigaction(SIGPROF, &g_capture.old_action, nullptr);
  g_capture.running = false;

  Profile profile;
  profile.hz = g_capture.hz;
  profile.duration_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - g_capture.start)
                           .count();
  profile.threads_missed = st->threads_missed.load(std::memory_order_relaxed);

  // Drain: aggregate retained samples by raw pc vector (leaf-first)
  // before paying for any symbolization.
  std::map<std::vector<uintptr_t>, uint64_t> by_pcs;
  const uint32_t claimed =
      std::min(st->rings_claimed.load(std::memory_order_acquire),
               st->num_rings);
  for (uint32_t r = 0; r < claimed; ++r) {
    SampleRing& ring = st->rings[r];
    const uint64_t head = ring.head.load(std::memory_order_acquire);
    const uint64_t retained =
        std::min<uint64_t>(head, ring.mask + 1);
    profile.samples += head;
    profile.samples_dropped += head - retained;
    std::vector<uintptr_t> pcs;
    for (uint64_t seq = head - retained; seq < head; ++seq) {
      const size_t slot = static_cast<size_t>(seq) & ring.mask;
      const uint32_t n = std::min<uint32_t>(
          ring.counts[slot].load(std::memory_order_relaxed),
          static_cast<uint32_t>(ring.stride));
      pcs.clear();
      pcs.reserve(n);
      const std::atomic<uintptr_t>* base = ring.pcs + slot * ring.stride;
      for (uint32_t i = 0; i < n; ++i) {
        pcs.push_back(base[i].load(std::memory_order_relaxed));
      }
      if (!pcs.empty()) by_pcs[pcs]++;
    }
  }

  // Symbolize each distinct stack once, caching per-pc resolutions.
  std::unordered_map<uintptr_t, std::string> symbols;
  auto symbol_of = [&symbols](uintptr_t pc) -> const std::string& {
    auto it = symbols.find(pc);
    if (it == symbols.end()) {
      it = symbols.emplace(pc, SymbolizePc(pc)).first;
    }
    return it->second;
  };
  std::map<std::vector<std::string>, uint64_t> by_frames;
  for (const auto& [pcs, count] : by_pcs) {
    // Strip the handler and the signal trampoline: frames are
    // leaf-first, so everything up to and including handler + 1 is
    // capture machinery, not the interrupted stack. Fall back to
    // skipping the top two frames when the handler is not resolvable.
    const int handler = FindHandlerFrame(pcs);
    size_t begin = handler >= 0 ? static_cast<size_t>(handler) + 2 : 2;
    if (begin >= pcs.size()) begin = pcs.size() > 1 ? pcs.size() - 1 : 0;
    std::vector<std::string> frames;
    frames.reserve(pcs.size() - begin);
    for (size_t i = pcs.size(); i > begin; --i) {  // reverse: root-first
      frames.push_back(symbol_of(pcs[i - 1]));
    }
    if (frames.empty()) frames.push_back("[unknown]");
    by_frames[std::move(frames)] += count;
  }
  profile.stacks.reserve(by_frames.size());
  for (auto& [frames, count] : by_frames) {
    profile.stacks.push_back({frames, count});
  }
  std::stable_sort(profile.stacks.begin(), profile.stacks.end(),
                   [](const ProfileStack& a, const ProfileStack& b) {
                     return a.count > b.count;
                   });

  // Off-CPU dimension: window delta of each source still registered,
  // scaled by hz into synthetic sample counts.
  const auto off_cpu_end = SnapshotOffCpuSources();
  for (const auto& [name, end_total] : off_cpu_end) {
    double start_total = 0;
    for (const auto& [start_name, value] : g_capture.off_cpu_start) {
      if (start_name == name) {
        start_total = value;
        break;
      }
    }
    OffCpuEntry entry;
    entry.name = SanitizeFrame(name);
    entry.seconds = std::max(0.0, end_total - start_total);
    entry.samples =
        static_cast<uint64_t>(entry.seconds * profile.hz + 0.5);
    profile.off_cpu.push_back(std::move(entry));
  }

  RecordCaptureMetrics(profile);
  return profile;
}

#else  // !RWDT_PROFILER_SUPPORTED

Status StartProfiling(const ProfileOptions&) {
  return Status::Unsupported(
      "sampling profiler requires Linux with <execinfo.h>");
}

Result<Profile> StopProfiling() {
  return Status::Unsupported(
      "sampling profiler requires Linux with <execinfo.h>");
}

#endif  // RWDT_PROFILER_SUPPORTED

Result<Profile> CaptureProfile(double seconds, const ProfileOptions& options) {
  seconds = std::min(std::max(seconds, 0.05), 300.0);
  RWDT_RETURN_IF_ERROR(StartProfiling(options));
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  return StopProfiling();
}

std::string Profile::ToCollapsed() const {
  std::string out;
  for (const ProfileStack& stack : stacks) {
    for (size_t i = 0; i < stack.frames.size(); ++i) {
      if (i > 0) out += ';';
      out += stack.frames[i];
    }
    out += ' ';
    out += std::to_string(stack.count);
    out += '\n';
  }
  for (const OffCpuEntry& entry : off_cpu) {
    if (entry.samples == 0) continue;
    out += "[offcpu];";
    out += entry.name;
    out += ' ';
    out += std::to_string(entry.samples);
    out += '\n';
  }
  return out;
}

std::string Profile::ToJson() const {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.DoubleField("hz", hz);
  w.DoubleField("duration_s", duration_s);
  w.UIntField("samples", samples);
  w.UIntField("samples_dropped", samples_dropped);
  w.UIntField("threads_missed", threads_missed);
  w.Key("stacks").BeginArray();
  for (const ProfileStack& stack : stacks) {
    w.BeginObject();
    w.Key("frames").BeginArray();
    for (const std::string& frame : stack.frames) w.String(frame);
    w.EndArray();
    w.UIntField("count", stack.count);
    w.EndObject();
  }
  w.EndArray();
  w.Key("off_cpu").BeginArray();
  for (const OffCpuEntry& entry : off_cpu) {
    w.BeginObject();
    w.StringField("name", entry.name);
    w.DoubleField("seconds", entry.seconds);
    w.UIntField("samples", entry.samples);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return out;
}

ScopedSelfProfile::ScopedSelfProfile(std::string path, ProfileOptions options)
    : path_(std::move(path)) {
  const Status status = StartProfiling(options);
  if (!status.ok()) {
    RWDT_LOG(WARN) << "self-profile disabled: " << status.message();
    return;
  }
  active_ = true;
  RWDT_LOG(INFO) << "self-profile: sampling at " << ClampHz(options.hz)
                 << " Hz, will write " << path_;
}

ScopedSelfProfile::~ScopedSelfProfile() {
  const Status status = Finish();
  if (!status.ok()) {
    RWDT_LOG(ERROR) << "self-profile write failed: " << status.message();
  }
}

Status ScopedSelfProfile::Finish() {
  if (!active_) return Status::Ok();
  active_ = false;
  auto profile = StopProfiling();
  RWDT_RETURN_IF_ERROR(profile.status());
  FILE* out = std::fopen(path_.c_str(), "w");
  if (out == nullptr) {
    return Status::Internal("cannot write " + path_);
  }
  const std::string collapsed = profile.value().ToCollapsed();
  std::fwrite(collapsed.data(), 1, collapsed.size(), out);
  std::fclose(out);
  RWDT_LOG(INFO) << "self-profile: " << profile.value().samples
                 << " samples over " << profile.value().duration_s
                 << " s (" << profile.value().samples_dropped
                 << " dropped) written to " << path_;
  return Status::Ok();
}

std::unique_ptr<ScopedSelfProfile> MaybeStartEnvProfile(
    const char* default_path) {
  const char* env = std::getenv("RWDT_PROFILE");
  if (env == nullptr || env[0] == '\0') return nullptr;
  std::string path = env;
  if (path == "1" && default_path != nullptr) path = default_path;
  ProfileOptions options;
  const char* hz_env = std::getenv("RWDT_PROFILE_HZ");
  if (hz_env != nullptr) {
    const double hz = std::strtod(hz_env, nullptr);
    if (hz > 0) options.hz = hz;
  }
  return std::make_unique<ScopedSelfProfile>(std::move(path), options);
}

serve::HttpResponse HandleProfilez(const serve::HttpRequest& request) {
  serve::HttpResponse resp;
  resp.extra_headers.push_back({"Cache-Control", "no-store"});

  double seconds = 1.0;
  const std::string seconds_param =
      serve::QueryParam(request.query, "seconds");
  if (!seconds_param.empty()) {
    seconds = std::strtod(seconds_param.c_str(), nullptr);
    if (!(seconds > 0)) {
      resp.status = 400;
      resp.body = "bad seconds parameter\n";
      return resp;
    }
  }
  seconds = std::min(std::max(seconds, 0.05), 60.0);

  ProfileOptions options;
  const std::string hz_param = serve::QueryParam(request.query, "hz");
  if (!hz_param.empty()) {
    options.hz = std::strtod(hz_param.c_str(), nullptr);
    if (!(options.hz > 0)) {
      resp.status = 400;
      resp.body = "bad hz parameter\n";
      return resp;
    }
  }

  const std::string format =
      serve::QueryParam(request.query, "format", "collapsed");
  if (format != "collapsed" && format != "json") {
    resp.status = 400;
    resp.body = "format must be collapsed or json\n";
    return resp;
  }

  auto profile = CaptureProfile(seconds, options);
  if (!profile.ok()) {
    resp.status = 503;
    resp.extra_headers.push_back({"Retry-After", "1"});
    resp.body = profile.error_message() + "\n";
    return resp;
  }
  if (format == "json") {
    resp.content_type = "application/json; charset=utf-8";
    resp.body = profile.value().ToJson();
  } else {
    resp.content_type = "text/plain; charset=utf-8";
    resp.body = profile.value().ToCollapsed();
  }
  return resp;
}

}  // namespace rwdt::obs
