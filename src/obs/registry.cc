#include "obs/registry.h"

#include <algorithm>
#include <cctype>

#include "obs/log.h"
#include "obs/openmetrics.h"

namespace rwdt::obs {
namespace {

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!tail(c)) return false;
  }
  return true;
}

bool ValidLabelName(std::string_view name) {
  // Like a metric name but without ':' (reserved for recording rules),
  // and never the histogram's own "le".
  if (!ValidMetricName(name)) return false;
  return name.find(':') == std::string_view::npos && name != "le";
}

Labels Normalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Process-lifetime sinks handed out on misuse (type collision, bad
/// name) so call sites never crash; the error is logged instead.
Counter* DummyCounter() {
  static Counter* c = new Counter();
  return c;
}
Gauge* DummyGauge() {
  static Gauge* g = new Gauge();
  return g;
}
Histogram* DummyHistogram() {
  static Histogram* h = new Histogram({1.0});
  return h;
}

}  // namespace

const char* MetricTypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

void Gauge::Add(double d) {
  uint64_t cur = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(
      cur, std::bit_cast<uint64_t>(std::bit_cast<double>(cur) + d),
      std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

size_t Histogram::BucketIndex(double v) const {
  // Linear scan: bucket lists are short (the engine's 64-bucket latency
  // families go through the bridge, not through Observe) and the scan is
  // branch-predictable; a binary search would cost more in practice.
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  return i;
}

void Histogram::Observe(double v) {
  counts_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      cur, std::bit_cast<uint64_t>(std::bit_cast<double>(cur) + v),
      std::memory_order_relaxed)) {
  }
}

void Histogram::ObserveWithExemplar(double v, Labels exemplar_labels) {
  Observe(v);
  const size_t i = BucketIndex(v);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (exemplars_ == nullptr) {
    exemplars_ = std::make_unique<Exemplar[]>(bounds_.size() + 1);
  }
  exemplars_[i].labels = std::move(exemplar_labels);
  exemplars_[i].value = v;
  exemplars_[i].set = true;
}

Exemplar Histogram::exemplar(size_t i) const {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (exemplars_ == nullptr || i > bounds_.size()) return {};
  return exemplars_[i];
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) total += bucket_count(i);
  return total;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double v = start;
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

/// One named family: its metadata plus one instrument per label set.
/// Children are deque-like via unique_ptr so handed-out pointers are
/// stable across later registrations.
struct MetricRegistry::Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::kGauge;
  std::vector<double> bounds;  // histograms only
  std::map<Labels, std::unique_ptr<Counter>> counters;
  std::map<Labels, std::unique_ptr<Gauge>> gauges;
  std::map<Labels, std::unique_ptr<Histogram>> histograms;
};

MetricRegistry::MetricRegistry() = default;
MetricRegistry::~MetricRegistry() = default;

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // leaked
  return *registry;
}

MetricRegistry::Family* MetricRegistry::GetFamily(std::string_view name,
                                                  std::string_view help,
                                                  MetricType type) {
  // Caller holds mu_.
  if (!ValidMetricName(name)) {
    RWDT_LOG(ERROR) << "invalid metric name '" << name
                    << "': returning dummy instrument";
    return nullptr;
  }
  auto it = families_.find(name);
  if (it != families_.end()) {
    if (it->second->type != type) {
      RWDT_LOG(ERROR) << "metric '" << name << "' re-registered as "
                      << MetricTypeName(type) << " but is a "
                      << MetricTypeName(it->second->type)
                      << ": returning dummy instrument";
      return nullptr;
    }
    return it->second.get();
  }
  auto family = std::make_unique<Family>();
  family->name = std::string(name);
  family->help = std::string(help);
  family->type = type;
  Family* raw = family.get();
  families_.emplace(std::string(name), std::move(family));
  return raw;
}

namespace {
bool CheckLabels(const Labels& labels, std::string_view family) {
  for (const auto& [key, value] : labels) {
    (void)value;
    if (!ValidLabelName(key)) {
      RWDT_LOG(ERROR) << "invalid label name '" << key << "' on metric '"
                      << family << "': returning dummy instrument";
      return false;
    }
  }
  return true;
}
}  // namespace

Counter* MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!CheckLabels(labels, name)) return DummyCounter();  // before creation
  Family* family = GetFamily(name, help, MetricType::kCounter);
  if (family == nullptr) return DummyCounter();
  auto& slot = family->counters[Normalize(std::move(labels))];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name, std::string_view help,
                                Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!CheckLabels(labels, name)) return DummyGauge();
  Family* family = GetFamily(name, help, MetricType::kGauge);
  if (family == nullptr) return DummyGauge();
  auto& slot = family->gauges[Normalize(std::move(labels))];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        std::string_view help,
                                        std::vector<double> bounds,
                                        Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!CheckLabels(labels, name)) return DummyHistogram();
  Family* family = GetFamily(name, help, MetricType::kHistogram);
  if (family == nullptr) return DummyHistogram();
  if (family->bounds.empty()) family->bounds = std::move(bounds);
  auto& slot = family->histograms[Normalize(std::move(labels))];
  if (slot == nullptr) slot = std::make_unique<Histogram>(family->bounds);
  return slot.get();
}

uint64_t MetricRegistry::AddCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void MetricRegistry::RemoveCollector(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

std::vector<FamilySnapshot> MetricRegistry::Collect() const {
  std::vector<FamilySnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, family] : families_) {
      FamilySnapshot snap;
      snap.name = family->name;
      snap.help = family->help;
      snap.type = family->type;
      for (const auto& [labels, counter] : family->counters) {
        snap.samples.push_back(
            {"_total", labels, static_cast<double>(counter->value())});
      }
      for (const auto& [labels, gauge] : family->gauges) {
        snap.samples.push_back({"", labels, gauge->value()});
      }
      for (const auto& [labels, histogram] : family->histograms) {
        AppendHistogramSamples(
            family->bounds,
            [&](size_t i) { return histogram->bucket_count(i); },
            histogram->sum(), labels, &snap.samples,
            [&](size_t i) { return histogram->exemplar(i); });
      }
      out.push_back(std::move(snap));
    }
    for (const auto& [id, collector] : collectors_) {
      (void)id;
      collector(&out);
    }
  }
  return MergeFamilies(std::move(out));
}

std::string MetricRegistry::RenderOpenMetrics() const {
  return WriteOpenMetrics(Collect());
}

}  // namespace rwdt::obs
