// Umbrella header for rwdt::obs — the observability subsystem:
//
//   * trace.h    — RAII spans over per-thread lock-free ring buffers,
//                  exported as Chrome trace-event JSON (Perfetto).
//   * log.h      — RWDT_LOG leveled structured logging with pluggable
//                  sinks (stderr text, JSON-lines file).
//   * progress.h — background-thread live run reporting over
//                  engine::Metrics, plus the final JSON run report.
//
// Everything here is zero-cost when idle: spans gate on one relaxed
// atomic load, log statements on one relaxed load before the message is
// composed, and progress reporting only exists while explicitly enabled.
#ifndef RWDT_OBS_OBS_H_
#define RWDT_OBS_OBS_H_

#include "obs/log.h"
#include "obs/progress.h"
#include "obs/trace.h"

#endif  // RWDT_OBS_OBS_H_
