// Umbrella header for rwdt::obs — the observability subsystem:
//
//   * trace.h    — RAII spans over per-thread lock-free ring buffers,
//                  exported as Chrome trace-event JSON (Perfetto).
//   * log.h      — RWDT_LOG leveled structured logging with pluggable
//                  sinks (stderr text, JSON-lines file).
//   * progress.h — background-thread live run reporting over
//                  engine::Metrics, plus the final JSON run report.
//   * registry.h — process-wide MetricRegistry of named counters,
//                  gauges, and histograms (relaxed-atomic hot path).
//   * openmetrics.h — OpenMetrics/Prometheus text exposition of
//                  registry family snapshots.
//   * engine_bridge.h — pull-model adapter from engine::MetricsSnapshot
//                  into registry families (rwdt_engine_*).
//   * admin_server.h — embedded blocking HTTP/1.1 admin server serving
//                  /metrics, /healthz, /readyz, /statusz, /tracez,
//                  /profilez.
//   * profiler.h — SIGPROF sampling CPU profiler (per-thread lock-free
//                  sample rings, off-signal-path symbolization) with
//                  collapsed-stack / JSON export and an off-CPU
//                  dimension from registered wall-time sources.
//   * proc_stats.h — scrape-time process footprint (RSS, CPU seconds,
//                  page faults, context switches, I/O bytes) from
//                  /proc/self and getrusage as rwdt_proc_* families.
//
// Everything here is zero-cost when idle: spans gate on one relaxed
// atomic load, log statements on one relaxed load before the message is
// composed, progress reporting only exists while explicitly enabled,
// and the registry is pull-only — nothing runs until a scrape.
#ifndef RWDT_OBS_OBS_H_
#define RWDT_OBS_OBS_H_

#include "obs/admin_server.h"
#include "obs/engine_bridge.h"
#include "obs/log.h"
#include "obs/openmetrics.h"
#include "obs/proc_stats.h"
#include "obs/profiler.h"
#include "obs/progress.h"
#include "obs/registry.h"
#include "obs/trace.h"

#endif  // RWDT_OBS_OBS_H_
