#include "obs/log.h"

#include <cctype>
#include <chrono>
#include <cstring>
#include <ctime>
#include <utility>

#include "common/json.h"

namespace rwdt::obs {
namespace {

int64_t WallMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

uint64_t ThisThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void StderrSink::Write(const LogRecord& record) {
  const std::time_t secs =
      static_cast<std::time_t>(record.unix_micros / 1000000);
  const long micros = static_cast<long>(record.unix_micros % 1000000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char when[40];
  std::strftime(when, sizeof(when), "%Y-%m-%d %H:%M:%S", &tm_utc);
  std::fprintf(stderr, "%c %s.%06ld %llu %s:%d] %s\n",
               LogLevelName(record.level)[0], when, micros,
               static_cast<unsigned long long>(record.tid), record.file,
               record.line, record.message.c_str());
}

Result<std::unique_ptr<JsonLinesSink>> JsonLinesSink::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::NotFound("cannot open log sink file: " + path);
  }
  return std::make_unique<JsonLinesSink>(f, /*owned=*/true);
}

JsonLinesSink::JsonLinesSink(std::FILE* stream, bool owned)
    : stream_(stream), owned_(owned) {}

JsonLinesSink::~JsonLinesSink() {
  if (stream_ == nullptr) return;
  // Flush even when the stream is borrowed: a sink dropped at process
  // exit must never owe the file buffered records.
  std::fflush(stream_);
  if (owned_) std::fclose(stream_);
}

void JsonLinesSink::Write(const LogRecord& record) {
  std::string line = "{";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"ts_us\":%lld,",
                static_cast<long long>(record.unix_micros));
  line += buf;
  line += "\"level\":\"";
  for (const char* p = LogLevelName(record.level); *p != '\0'; ++p) {
    line += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  line += "\",";
  AppendJsonStringField("file", record.file, &line);
  std::snprintf(buf, sizeof(buf), "\"line\":%d,\"tid\":%llu,", record.line,
                static_cast<unsigned long long>(record.tid));
  line += buf;
  AppendJsonStringField("msg", record.message, &line,
                        /*trailing_comma=*/false);
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), stream_);
  // Errors flush immediately (a crashing process must not lose them);
  // routine records ride the stdio buffer and land in the destructor's
  // flush, keeping hot logging off the syscall path.
  if (record.level >= LogLevel::kError) std::fflush(stream_);
}

Logger::Logger() : min_level_(static_cast<int>(LogLevel::kInfo)) {
  sinks_.push_back(std::make_shared<StderrSink>());
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // leaked: outlives static dtors
  return *logger;
}

void Logger::SetSinks(std::vector<std::shared_ptr<LogSink>> sinks) {
  std::lock_guard<std::mutex> lock(sinks_mu_);
  sinks_ = std::move(sinks);
}

void Logger::AddSink(std::shared_ptr<LogSink> sink) {
  std::lock_guard<std::mutex> lock(sinks_mu_);
  sinks_.push_back(std::move(sink));
}

void Logger::ResetToDefault() {
  set_min_level(LogLevel::kInfo);
  std::lock_guard<std::mutex> lock(sinks_mu_);
  sinks_.clear();
  sinks_.push_back(std::make_shared<StderrSink>());
}

void Logger::Log(LogRecord record) {
  if (record.unix_micros == 0) record.unix_micros = WallMicrosNow();
  if (record.tid == 0) record.tid = ThisThreadId();
  std::lock_guard<std::mutex> lock(sinks_mu_);
  for (const auto& sink : sinks_) sink->Write(record);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(Basename(file)), line_(line) {}

LogMessage::~LogMessage() {
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.message = stream_.str();
  Logger::Global().Log(std::move(record));
}

}  // namespace internal
}  // namespace rwdt::obs
