#include "obs/engine_bridge.h"

#include <algorithm>
#include <utility>

#include "engine/engine.h"
#include "obs/openmetrics.h"

namespace rwdt::obs {
namespace {

using engine::kLatencyBuckets;
using engine::kNumStages;
using engine::MetricsSnapshot;
using engine::Stage;
using engine::StageStats;

FamilySnapshot CounterFamily(const char* name, const char* help,
                             const Labels& labels, double value) {
  FamilySnapshot f;
  f.name = name;
  f.help = help;
  f.type = MetricType::kCounter;
  f.samples.push_back({"_total", labels, value});
  return f;
}

FamilySnapshot GaugeFamily(const char* name, const char* help,
                           const Labels& labels, double value) {
  FamilySnapshot f;
  f.name = name;
  f.help = help;
  f.type = MetricType::kGauge;
  f.samples.push_back({"", labels, value});
  return f;
}

Labels WithLabel(const Labels& labels, const char* key, const char* value) {
  Labels out = labels;
  out.emplace_back(key, value);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

EngineTick ComputeEngineTick(const MetricsSnapshot& snap,
                             uint64_t prev_entries, double interval_s) {
  EngineTick tick;
  tick.entries = snap.entries_processed;
  tick.analyzed = snap.queries_analyzed;
  tick.rejects = snap.TotalErrors();
  tick.cache_hit_rate = snap.CacheHitRate();
  if (interval_s > 0 && tick.entries >= prev_entries) {
    tick.entries_per_sec =
        static_cast<double>(tick.entries - prev_entries) / interval_s;
  }
  return tick;
}

void AppendEngineFamilies(const MetricsSnapshot& snap, uint64_t queue_depth,
                          const Labels& labels,
                          std::vector<FamilySnapshot>* out) {
  out->push_back(CounterFamily("rwdt_engine_entries",
                               "Log entries streamed through the engine.",
                               labels,
                               static_cast<double>(snap.entries_processed)));
  out->push_back(CounterFamily(
      "rwdt_engine_queries_analyzed",
      "Full parse+analyze executions (cache misses).", labels,
      static_cast<double>(snap.queries_analyzed)));
  out->push_back(CounterFamily("rwdt_engine_parse_failures",
                               "Distinct query texts that failed to parse.",
                               labels,
                               static_cast<double>(snap.parse_failures)));
  out->push_back(CounterFamily(
      "rwdt_engine_wall_seconds",
      "Cumulative wall time inside AnalyzeEntries/Feed.", labels,
      static_cast<double>(snap.wall_ns) / 1e9));

  {
    FamilySnapshot errors;
    errors.name = "rwdt_engine_errors";
    errors.help = "Rejected entries by taxonomy class.";
    errors.type = MetricType::kCounter;
    for (size_t c = 0; c < kNumErrorClasses; ++c) {
      errors.samples.push_back(
          {"_total",
           WithLabel(labels, "class",
                     ErrorClassName(static_cast<ErrorClass>(c))),
           static_cast<double>(snap.errors[c])});
    }
    out->push_back(std::move(errors));
  }

  out->push_back(CounterFamily("rwdt_engine_cache_hits",
                               "Query-cache lookup hits.", labels,
                               static_cast<double>(snap.cache_hits)));
  out->push_back(CounterFamily("rwdt_engine_cache_misses",
                               "Query-cache lookup misses.", labels,
                               static_cast<double>(snap.cache_misses)));
  out->push_back(CounterFamily("rwdt_engine_cache_evictions",
                               "Query-cache LRU evictions.", labels,
                               static_cast<double>(snap.cache_evictions)));
  out->push_back(GaugeFamily("rwdt_engine_cache_size",
                             "Query-cache resident entries.", labels,
                             static_cast<double>(snap.cache_size)));
  out->push_back(GaugeFamily(
      "rwdt_engine_cache_hit_ratio", "Query-cache hit ratio in [0,1].",
      labels, ComputeEngineTick(snap, 0, 0).cache_hit_rate));
  out->push_back(GaugeFamily("rwdt_engine_threads", "Engine worker threads.",
                             labels, static_cast<double>(snap.threads)));
  out->push_back(GaugeFamily(
      "rwdt_engine_interner_bytes",
      "Bytes reserved by the open stream's dedup interners and parse "
      "dictionaries.",
      labels, static_cast<double>(snap.interner_bytes)));
  out->push_back(GaugeFamily(
      "rwdt_engine_dedup_entries",
      "Distinct query texts pinned by the open stream's dedup state.",
      labels, static_cast<double>(snap.dedup_entries)));
  out->push_back(GaugeFamily(
      "rwdt_engine_queue_depth",
      "Shard tasks queued or running on the engine's thread pool.", labels,
      static_cast<double>(queue_depth)));

  // Stage latency histograms. The engine's power-of-two buckets map onto
  // exact inclusive `le` bounds: bucket b counts samples with
  // bit_width(ns) == b, i.e. ns in [2^(b-1), 2^b - 1], so le = 2^b - 1
  // (bucket 0 is ns == 0 -> le = 0). The empty tail above the highest
  // non-empty bucket of any stage is collapsed into +Inf to keep the
  // exposition compact; cumulativity is unaffected.
  size_t max_bucket = 0;
  for (size_t s = 0; s < kNumStages; ++s) {
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      if (snap.stages[s].buckets[b] != 0) max_bucket = std::max(max_bucket, b);
    }
  }
  std::vector<double> bounds;
  bounds.reserve(max_bucket + 1);
  for (size_t b = 0; b <= max_bucket; ++b) {
    bounds.push_back(b == 0 ? 0.0
                            : static_cast<double>((uint64_t{1} << b) - 1));
  }
  FamilySnapshot latency;
  latency.name = "rwdt_engine_stage_latency_ns";
  latency.help = "Per-stage pipeline latency in nanoseconds.";
  latency.type = MetricType::kHistogram;
  for (size_t s = 0; s < kNumStages; ++s) {
    const StageStats& st = snap.stages[s];
    if (st.count == 0) continue;
    AppendHistogramSamples(
        bounds,
        [&](size_t i) {
          if (i < bounds.size()) return st.buckets[i];
          uint64_t tail = 0;  // anything past the collapsed range
          for (size_t b = bounds.size(); b < kLatencyBuckets; ++b) {
            tail += st.buckets[b];
          }
          return tail;
        },
        static_cast<double>(st.total_ns),
        WithLabel(labels, "stage", engine::StageName(static_cast<Stage>(s))),
        &latency.samples);
  }
  out->push_back(std::move(latency));
}

ScopedCollector RegisterEngineMetrics(
    MetricRegistry* registry,
    std::function<MetricsSnapshot()> snapshot,
    std::function<uint64_t()> queue_depth, Labels labels) {
  std::sort(labels.begin(), labels.end());
  const uint64_t id = registry->AddCollector(
      [snapshot = std::move(snapshot), queue_depth = std::move(queue_depth),
       labels = std::move(labels)](std::vector<FamilySnapshot>* out) {
        AppendEngineFamilies(snapshot(),
                             queue_depth != nullptr ? queue_depth() : 0,
                             labels, out);
      });
  return ScopedCollector(registry, id);
}

ScopedCollector RegisterEngineMetrics(MetricRegistry* registry,
                                      const engine::Engine* engine,
                                      Labels labels) {
  return RegisterEngineMetrics(
      registry, [engine] { return engine->Snapshot(); },
      [engine] { return engine->queue_depth(); }, std::move(labels));
}

}  // namespace rwdt::obs
