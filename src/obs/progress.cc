#include "obs/progress.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/json.h"
#include "common/table.h"
#include "obs/engine_bridge.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace rwdt::obs {

Status ProgressOptions::Validate() const {
  constexpr uint32_t kMaxIntervalMs = 3600 * 1000;
  if (interval_ms > kMaxIntervalMs) {
    return Status::InvalidArgument("progress interval_ms must be <= 1 hour");
  }
  return Status::Ok();
}

ProgressReporter::ProgressReporter(SnapshotFn snapshot,
                                   ProgressOptions options)
    : snapshot_(std::move(snapshot)),
      options_(std::move(options)),
      start_ns_(TraceNowNs()) {
  if (options_.interval_ms > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

ProgressReporter::~ProgressReporter() { Stop(); }

void ProgressReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_requested_; });
    if (stop_requested_) return;
    lock.unlock();
    const engine::MetricsSnapshot snap = snapshot_();
    ticks_.fetch_add(1, std::memory_order_relaxed);
    if (options_.log_progress) EmitProgressLine(snap);
    lock.lock();
  }
}

void ProgressReporter::EmitProgressLine(const engine::MetricsSnapshot& snap) {
  // Same derivation the registry bridge uses for its gauges, so the
  // tick log and a concurrent /metrics scrape can never disagree on
  // what "entries/sec" or "cache hit rate" means.
  const EngineTick tick = ComputeEngineTick(
      snap, last_entries_, options_.interval_ms / 1000.0);
  last_entries_ = tick.entries;
  RWDT_LOG(INFO) << options_.label << ": " << tick.entries << " entries (+"
                 << static_cast<uint64_t>(tick.entries_per_sec) << "/s), "
                 << tick.analyzed << " analyzed, cache hit "
                 << static_cast<int>(100.0 * tick.cache_hit_rate + 0.5)
                 << "%, " << tick.rejects << " rejects";
}

void ProgressReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();

  const engine::MetricsSnapshot snap = snapshot_();
  const double elapsed_ms = (TraceNowNs() - start_ns_) / 1e6;
  std::string report = "{";
  AppendJsonStringField("label", options_.label, &report);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"elapsed_ms\":%.3f,\"ticks\":%llu,",
                elapsed_ms,
                static_cast<unsigned long long>(
                    ticks_.load(std::memory_order_relaxed)));
  report += buf;
  report += "\"metrics\":";
  report += snap.ToJson();
  report += "}";
  report_json_ = std::move(report);

  if (options_.log_progress) {
    RWDT_LOG(INFO) << options_.label << ": done — " << snap.entries_processed
                   << " entries in " << Fixed(elapsed_ms, 1) << " ms ("
                   << static_cast<uint64_t>(snap.QueriesPerSec())
                   << " entries/s inside the engine)";
  }

  if (!options_.report_path.empty()) {
    FILE* f = std::fopen(options_.report_path.c_str(), "w");
    if (f == nullptr) {
      RWDT_LOG(ERROR) << "cannot write run report: " << options_.report_path;
      return;
    }
    std::fwrite(report_json_.data(), 1, report_json_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    RWDT_LOG(INFO) << options_.label
                   << ": run report written to " << options_.report_path;
  }
}

}  // namespace rwdt::obs
