#include "obs/openmetrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/log.h"

namespace rwdt::obs {

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatOpenMetricsValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

namespace {

/// Escapes HELP text: backslash and newline (quotes are legal there).
std::string EscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendLabels(const Labels& labels, std::string* out) {
  if (labels.empty()) return;
  *out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += key;
    *out += "=\"";
    *out += EscapeLabelValue(value);
    *out += '"';
  }
  *out += '}';
}

}  // namespace

void AppendHistogramSamples(
    const std::vector<double>& bounds,
    const std::function<uint64_t(size_t)>& bucket_count, double sum,
    const Labels& labels, std::vector<Sample>* out,
    const std::function<Exemplar(size_t)>& exemplar) {
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= bounds.size(); ++i) {
    cumulative += bucket_count(i);
    Labels with_le = labels;
    with_le.emplace_back("le", i < bounds.size()
                                   ? FormatOpenMetricsValue(bounds[i])
                                   : "+Inf");
    Sample sample{"_bucket", std::move(with_le),
                  static_cast<double>(cumulative), {}};
    if (exemplar) sample.exemplar = exemplar(i);
    out->push_back(std::move(sample));
  }
  out->push_back({"_sum", labels, sum, {}});
  out->push_back({"_count", labels, static_cast<double>(cumulative), {}});
}

std::vector<FamilySnapshot> MergeFamilies(
    std::vector<FamilySnapshot> families) {
  std::map<std::string, FamilySnapshot> merged;
  for (FamilySnapshot& family : families) {
    auto it = merged.find(family.name);
    if (it == merged.end()) {
      merged.emplace(family.name, std::move(family));
      continue;
    }
    if (it->second.type != family.type) {
      RWDT_LOG(ERROR) << "metric family '" << family.name
                      << "' collected twice with conflicting types ("
                      << MetricTypeName(it->second.type) << " vs "
                      << MetricTypeName(family.type) << "); dropping the "
                      << MetricTypeName(family.type) << " samples";
      continue;
    }
    for (Sample& sample : family.samples) {
      it->second.samples.push_back(std::move(sample));
    }
    if (it->second.help.empty()) it->second.help = std::move(family.help);
  }
  std::vector<FamilySnapshot> out;
  out.reserve(merged.size());
  for (auto& [name, family] : merged) {
    (void)name;
    out.push_back(std::move(family));
  }
  return out;  // std::map iteration order == sorted by name
}

std::string WriteOpenMetrics(const std::vector<FamilySnapshot>& families) {
  std::string out;
  for (const FamilySnapshot& family : families) {
    if (!family.help.empty()) {
      out += "# HELP ";
      out += family.name;
      out += ' ';
      out += EscapeHelp(family.help);
      out += '\n';
    }
    out += "# TYPE ";
    out += family.name;
    out += ' ';
    out += MetricTypeName(family.type);
    out += '\n';
    for (const Sample& sample : family.samples) {
      out += family.name;
      out += sample.suffix;
      AppendLabels(sample.labels, &out);
      out += ' ';
      out += FormatOpenMetricsValue(sample.value);
      // OpenMetrics exemplar: `<sample> # {<labels>} <value>`. Only
      // histogram buckets carry them here (the spec also allows counter
      // exemplars, which we do not produce).
      if (sample.exemplar.set && sample.suffix == "_bucket") {
        out += " # ";
        if (sample.exemplar.labels.empty()) {
          out += "{}";
        } else {
          AppendLabels(sample.exemplar.labels, &out);
        }
        out += ' ';
        out += FormatOpenMetricsValue(sample.exemplar.value);
      }
      out += '\n';
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace rwdt::obs
