#ifndef RWDT_OBS_OPENMETRICS_H_
#define RWDT_OBS_OPENMETRICS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace rwdt::obs {

/// Renders families as OpenMetrics / Prometheus text exposition:
///
///   # HELP rwdt_engine_entries Log entries streamed through the engine.
///   # TYPE rwdt_engine_entries counter
///   rwdt_engine_entries_total{engine="1"} 200000
///   ...
///   # EOF
///
/// Counter samples carry the `_total` suffix (the family is declared
/// under its base name, per the OpenMetrics spec); histogram children
/// expand into cumulative `_bucket{le="..."}` samples plus `_sum` and
/// `_count`. Label values are escaped (`\\`, `\"`, `\n`) and the output
/// ends with the mandatory `# EOF` marker. Families must already be
/// merged/sorted — `MetricRegistry::Collect` returns them that way.
std::string WriteOpenMetrics(const std::vector<FamilySnapshot>& families);

/// Merges families with the same name (samples concatenated in order;
/// the first occurrence's type and help win — a type clash is logged and
/// the later family dropped) and sorts the result by name. `Collect`
/// applies this; collector callbacks can therefore emit families
/// without caring what the direct instruments already declared.
std::vector<FamilySnapshot> MergeFamilies(std::vector<FamilySnapshot> families);

/// Expands one histogram child into exposition samples: cumulative
/// `_bucket` samples with `le` labels (finite bounds then `+Inf`),
/// `_sum`, and `_count`. `bucket_count(i)` must return the
/// NON-cumulative count of bucket `i`, with `i == bounds.size()` the
/// overflow (+Inf) bucket; `labels` are copied onto every sample with
/// `le` appended last. When `exemplar` is non-empty, `exemplar(i)` is
/// attached to bucket `i`'s sample — because each exemplar records the
/// bucket its own value landed in, its value always satisfies the
/// bucket's `le` bound as the spec requires.
void AppendHistogramSamples(
    const std::vector<double>& bounds,
    const std::function<uint64_t(size_t)>& bucket_count, double sum,
    const Labels& labels, std::vector<Sample>* out,
    const std::function<Exemplar(size_t)>& exemplar = {});

/// Escapes a label value for exposition (backslash, quote, newline).
std::string EscapeLabelValue(std::string_view value);

/// Formats a sample value: integers exactly (no exponent, no trailing
/// `.0`), everything else via shortest-ish %g — deterministic, so golden
/// tests can compare whole documents.
std::string FormatOpenMetricsValue(double v);

}  // namespace rwdt::obs

#endif  // RWDT_OBS_OPENMETRICS_H_
