#ifndef RWDT_OBS_ENGINE_BRIDGE_H_
#define RWDT_OBS_ENGINE_BRIDGE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/metrics.h"
#include "obs/registry.h"

namespace rwdt::engine {
class Engine;
}  // namespace rwdt::engine

namespace rwdt::obs {

/// The derived numbers every consumer of engine metrics shows: the
/// progress reporter's live log lines and the registry's gauges both
/// come from `ComputeEngineTick`, so `/metrics` and the tick log can
/// never disagree on what "cache hit rate" or "entries/sec" means.
struct EngineTick {
  uint64_t entries = 0;
  uint64_t analyzed = 0;
  uint64_t rejects = 0;
  double entries_per_sec = 0;  // delta vs prev_entries over interval_s
  double cache_hit_rate = 0;   // [0,1]
};

EngineTick ComputeEngineTick(const engine::MetricsSnapshot& snap,
                             uint64_t prev_entries, double interval_s);

/// Registers a scrape-time collector that converts the engine's
/// MetricsSnapshot (and thread-pool queue depth) into registry families
/// under the `rwdt_engine_*` namespace:
///
///   rwdt_engine_entries_total / queries_analyzed_total /
///   parse_failures_total / wall_seconds_total        counters
///   rwdt_engine_errors_total{class="parse_error"}    counter per class
///   rwdt_engine_cache_{hits,misses,evictions}_total  counters
///   rwdt_engine_cache_size / cache_hit_ratio /
///   threads / queue_depth                            gauges
///   rwdt_engine_stage_latency_ns{stage="parse"}      histograms
///
/// Pull-model: nothing happens until a scrape, so the engine's hot path
/// is untouched and an idle registry costs zero. `labels` (typically
/// {{"engine","<id>"}}) are stamped on every sample so several live
/// engines expose disjoint series. The returned handle must not outlive
/// `engine` — the engine owns it and resets it in its destructor.
ScopedCollector RegisterEngineMetrics(MetricRegistry* registry,
                                      const engine::Engine* engine,
                                      Labels labels = {});

/// As above but snapshot-function based (tests, replayed snapshots).
/// `queue_depth` may be null.
ScopedCollector RegisterEngineMetrics(
    MetricRegistry* registry,
    std::function<engine::MetricsSnapshot()> snapshot,
    std::function<uint64_t()> queue_depth, Labels labels = {});

/// The conversion itself, usable without a registry: appends the
/// families described above for one snapshot. Exposed for tests and for
/// one-shot exposition of a saved snapshot.
void AppendEngineFamilies(const engine::MetricsSnapshot& snap,
                          uint64_t queue_depth, const Labels& labels,
                          std::vector<FamilySnapshot>* out);

}  // namespace rwdt::obs

#endif  // RWDT_OBS_ENGINE_BRIDGE_H_
