#ifndef RWDT_OBS_PROC_STATS_H_
#define RWDT_OBS_PROC_STATS_H_

#include <cstdint>
#include <vector>

#include "obs/registry.h"

namespace rwdt::obs {

/// One point-in-time reading of the process's resource footprint,
/// assembled from /proc/self/{statm,stat,io} and getrusage(2). All
/// values are in base units (bytes, seconds, counts); fields whose
/// source is unavailable (non-Linux, /proc/self/io unreadable) are left
/// at their defaults and flagged by the has_* booleans.
struct ProcStatsSample {
  double resident_bytes = 0;      // statm: RSS
  double virtual_bytes = 0;       // statm: VmSize
  double max_resident_bytes = 0;  // getrusage: peak RSS
  double threads = 0;             // stat: num_threads
  double utime_s = 0;             // getrusage: user CPU
  double stime_s = 0;             // getrusage: system CPU
  double minor_faults = 0;        // getrusage
  double major_faults = 0;        // getrusage
  double voluntary_ctx_switches = 0;    // getrusage
  double involuntary_ctx_switches = 0;  // getrusage
  double io_read_bytes = 0;   // /proc/self/io: storage-layer reads
  double io_write_bytes = 0;  // /proc/self/io: storage-layer writes

  bool has_statm = false;
  bool has_stat = false;
  bool has_rusage = false;
  bool has_io = false;
};

/// Reads the current process footprint. Cheap (three small /proc reads
/// plus one syscall); intended to run at scrape time, never on a hot
/// path.
ProcStatsSample SampleProcStats();

/// Registers a scrape-time collector on `registry` exposing the process
/// footprint as rwdt_proc_* families: resident/virtual/peak-RSS and
/// thread-count gauges, plus cumulative CPU seconds (mode=user|system),
/// page faults (kind=minor|major), context switches
/// (kind=voluntary|involuntary), and storage I/O bytes (dir=read|write)
/// counters. Values are sampled fresh on every scrape.
///
/// At most one collector is active per process: the engine's admin
/// server and a serve front end may both construct one, but only the
/// first registers (`installed()` tells); a scrape must not expose
/// duplicate series.
class ProcStatsCollector {
 public:
  explicit ProcStatsCollector(
      MetricRegistry* registry = &MetricRegistry::Global());
  ~ProcStatsCollector();

  ProcStatsCollector(const ProcStatsCollector&) = delete;
  ProcStatsCollector& operator=(const ProcStatsCollector&) = delete;

  /// Whether this instance won the process-unique install race.
  bool installed() const { return installed_; }

 private:
  bool installed_ = false;
  ScopedCollector collector_;
};

/// Appends the rwdt_proc_* families for `sample` (the collector's
/// rendering, exposed for tests).
void AppendProcStatsFamilies(const ProcStatsSample& sample,
                             std::vector<FamilySnapshot>* out);

}  // namespace rwdt::obs

#endif  // RWDT_OBS_PROC_STATS_H_
