#ifndef RWDT_EXEC_OPERATORS_H_
#define RWDT_EXEC_OPERATORS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/json.h"
#include "common/status.h"
#include "exec/path_automaton.h"
#include "graph/rdf.h"
#include "sparql/algebra.h"
#include "sparql/eval.h"

namespace rwdt::exec {

using sparql::Binding;

/// A Volcano-style rowsource: Open prepares (and pulls any build-side
/// input), Next produces one solution mapping at a time, Close releases
/// state. Operators are single-threaded and reusable: Close then Open
/// restarts the stream.
///
/// The semantic contract is strict: every operator produces exactly the
/// multiset the reference `sparql::Evaluator` produces for the pattern
/// it was planned from (row order is unspecified). The differential
/// property test enforces this against random graphs and queries.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open() = 0;
  /// True and fills `*row` while rows remain; false at end-of-stream.
  virtual Result<bool> Next(Binding* row) = 0;
  virtual void Close() = 0;

  virtual const char* Name() const = 0;
  /// Appends this operator subtree as one JSON object (Plan::ToJson).
  virtual void Explain(JsonWriter* w) const = 0;

  /// Drains the full stream: Open, Next*, Close.
  Result<std::vector<Binding>> Drain();
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Merges two compatible bindings (left values win on shared vars; for
/// compatible mappings both agree, so the choice is immaterial).
Binding MergeBindings(const Binding& a, const Binding& b);

/// Leaf scan over one triple pattern; binds the pattern's variable
/// positions exactly like Evaluator::EvalTriple (including repeated-
/// variable consistency, e.g. `?x p ?x`).
class TripleScanOp : public Operator {
 public:
  TripleScanOp(const graph::TripleStore& store, const Interner& dict,
               sparql::TriplePattern pattern);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override { return "triple_scan"; }
  void Explain(JsonWriter* w) const override;

 private:
  const graph::TripleStore& store_;
  const Interner& dict_;
  sparql::TriplePattern pattern_;
  std::vector<Binding> rows_;
  size_t pos_ = 0;
};

/// Leaf scan over one property-path pattern via the reference
/// evaluator's recursive pair-set algorithm. The slow-but-exact leaf;
/// the planner prefers AutomatonPathScanOp for simple transitive
/// expressions.
class PathScanOp : public Operator {
 public:
  PathScanOp(const sparql::Evaluator& eval, const Interner& dict,
             sparql::PathTriple pattern);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override { return "path_scan"; }
  void Explain(JsonWriter* w) const override;

 private:
  const sparql::Evaluator& eval_;
  const Interner& dict_;
  sparql::PathTriple pattern_;
  std::vector<Binding> rows_;
  size_t pos_ = 0;
};

/// Leaf scan over one property-path pattern via NFA-product
/// reachability (CompilePathNfa / EvalPathNfa). Falls back to the
/// evaluator's pair-set algorithm for the one binding shape whose
/// zero-length semantics the product cannot reproduce exactly (subject
/// unbound, object bound to a term with no incident edges).
class AutomatonPathScanOp : public Operator {
 public:
  AutomatonPathScanOp(const graph::TripleStore& store,
                      const sparql::Evaluator& eval, const Interner& dict,
                      sparql::PathTriple pattern);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override { return "path_nfa_scan"; }
  void Explain(JsonWriter* w) const override;

 private:
  const graph::TripleStore& store_;
  const sparql::Evaluator& eval_;
  const Interner& dict_;
  sparql::PathTriple pattern_;
  PathNfa nfa_;
  std::vector<Binding> rows_;
  size_t pos_ = 0;
};

/// Hash join on an explicit variable list. Open drains the right (build)
/// child into a hash table keyed by the join variables; Next streams the
/// left (probe) child. The planner only emits this when every join
/// variable is definitely bound on both sides, in which case key
/// equality is exactly binding compatibility.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<SymbolId> join_vars, const Interner& dict);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override { return "hash_join"; }
  void Explain(JsonWriter* w) const override;

 private:
  OperatorPtr left_, right_;
  std::vector<SymbolId> join_vars_;
  const Interner& dict_;
  std::map<std::vector<SymbolId>, std::vector<Binding>> build_;
  Binding probe_;
  const std::vector<Binding>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// Hash left (outer) join: like HashJoinOp, but a probe row with no
/// build match is emitted unchanged — SPARQL OPTIONAL semantics.
class HashLeftJoinOp : public Operator {
 public:
  HashLeftJoinOp(OperatorPtr left, OperatorPtr right,
                 std::vector<SymbolId> join_vars, const Interner& dict);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override { return "hash_left_join"; }
  void Explain(JsonWriter* w) const override;

 private:
  OperatorPtr left_, right_;
  std::vector<SymbolId> join_vars_;
  const Interner& dict_;
  std::map<std::vector<SymbolId>, std::vector<Binding>> build_;
  Binding probe_;
  const std::vector<Binding>* matches_ = nullptr;
  size_t match_pos_ = 0;
  bool probe_pending_unmatched_ = false;
};

/// Nested-loop join with full Compatible() semantics; the safe join for
/// inputs that may produce partially-bound rows (OPTIONAL or UNION
/// below either side). Materializes the right child in Open.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                   bool left_outer = false);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override {
    return left_outer_ ? "nl_left_join" : "nl_join";
  }
  void Explain(JsonWriter* w) const override;

 private:
  OperatorPtr left_, right_;
  bool left_outer_;
  std::vector<Binding> build_;
  Binding probe_;
  size_t build_pos_ = 0;
  bool probe_live_ = false;
  bool probe_matched_ = false;
};

/// Filter at its exact pattern position; delegates the predicate to
/// Evaluator::EvalFilter so filter semantics (unbound-variable handling,
/// EXISTS against the full store) cannot drift from the reference.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, sparql::FilterPtr filter,
           const sparql::Evaluator& eval);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override { return "filter"; }
  void Explain(JsonWriter* w) const override;

 private:
  OperatorPtr child_;
  sparql::FilterPtr filter_;
  const sparql::Evaluator& eval_;
};

/// Bag union: streams each child in turn (SPARQL UNION).
class UnionOp : public Operator {
 public:
  explicit UnionOp(std::vector<OperatorPtr> children);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override { return "union"; }
  void Explain(JsonWriter* w) const override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

/// SPARQL MINUS: materializes the right child in Open, then streams left
/// rows that no right row both is compatible with and shares a bound
/// variable with (the shared-domain-variable rule).
class MinusOp : public Operator {
 public:
  MinusOp(OperatorPtr left, OperatorPtr right);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override { return "minus"; }
  void Explain(JsonWriter* w) const override;

 private:
  OperatorPtr left_, right_;
  std::vector<Binding> build_;
};

/// The Yannakakis semijoin program for an acyclic conjunction of triple
/// scans: Open materializes each relation, builds a GYO join forest over
/// the variable sets, runs the two semijoin reduction passes (leaf-to-
/// root, then root-to-leaf), and joins along the forest in removal
/// order. Intermediate results never exceed the final output size times
/// the largest relation — the classic acyclic-CQ guarantee. Produces the
/// same bag as the evaluator's left-fold of nested-loop joins.
class YannakakisOp : public Operator {
 public:
  YannakakisOp(const graph::TripleStore& store, const Interner& dict,
               std::vector<sparql::TriplePattern> triples);

  Status Open() override;
  Result<bool> Next(Binding* row) override;
  void Close() override;
  const char* Name() const override { return "yannakakis"; }
  void Explain(JsonWriter* w) const override;

 private:
  const graph::TripleStore& store_;
  const Interner& dict_;
  std::vector<sparql::TriplePattern> triples_;
  std::vector<Binding> rows_;
  size_t pos_ = 0;
};

/// GYO ear removal over relation variable sets. `parent[i]` is the
/// forest parent of relation i (or -1 for the root); `order` lists
/// relations in removal order (leaves first, root excluded). `ok` is
/// false when no ear exists — the hypergraph is cyclic.
struct JoinForest {
  std::vector<int> parent;
  std::vector<size_t> order;
  bool ok = false;
};

JoinForest BuildJoinForest(const std::vector<std::set<SymbolId>>& varsets);

}  // namespace rwdt::exec

#endif  // RWDT_EXEC_OPERATORS_H_
