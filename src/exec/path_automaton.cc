#include "exec/path_automaton.h"

#include <algorithm>
#include <deque>
#include <set>

namespace rwdt::exec {
namespace {

/// Thompson construction over an epsilon-NFA; `inverted` compiles the
/// reversal with flipped step directions, which is exactly the relation
/// inverse `^e` (so nested `^` costs nothing at runtime).
class NfaBuilder {
 public:
  struct Frag {
    uint32_t in = 0;
    uint32_t out = 0;
  };

  Frag Build(const paths::Path& p, bool inverted) {
    using paths::PathOp;
    switch (p.op()) {
      case PathOp::kIri: {
        Frag f = NewFrag();
        AddEdge(f.in,
                {inverted ? PathNfa::EdgeKind::kInv : PathNfa::EdgeKind::kFwd,
                 p.iri(),
                 {},
                 f.out});
        return f;
      }
      case PathOp::kNegated: {
        // Forward-forbidden and inverse-forbidden sets, split the same
        // way Evaluator::EvalPathPairs splits them; inversion swaps the
        // roles of the two components.
        std::vector<SymbolId> fwd, inv;
        for (const auto& [iri, is_inv] : p.negated_set()) {
          (is_inv ? inv : fwd).push_back(iri);
        }
        std::sort(fwd.begin(), fwd.end());
        std::sort(inv.begin(), inv.end());
        Frag f = NewFrag();
        const bool has_fwd_component = inv.empty() || !fwd.empty();
        if (has_fwd_component) {
          AddEdge(f.in, {inverted ? PathNfa::EdgeKind::kNegInv
                                  : PathNfa::EdgeKind::kNegFwd,
                         kInvalidSymbol, fwd, f.out});
        }
        if (!inv.empty()) {
          AddEdge(f.in, {inverted ? PathNfa::EdgeKind::kNegFwd
                                  : PathNfa::EdgeKind::kNegInv,
                         kInvalidSymbol, inv, f.out});
        }
        return f;
      }
      case PathOp::kInverse:
        return Build(*p.child(), !inverted);
      case PathOp::kSeq: {
        Frag whole = NewFrag();
        uint32_t cur = whole.in;
        const auto& kids = p.children();
        for (size_t i = 0; i < kids.size(); ++i) {
          // Reversal distributes over concatenation in reverse order.
          const auto& child =
              inverted ? *kids[kids.size() - 1 - i] : *kids[i];
          Frag f = Build(child, inverted);
          AddEps(cur, f.in);
          cur = f.out;
        }
        AddEps(cur, whole.out);
        return whole;
      }
      case PathOp::kAlt: {
        Frag whole = NewFrag();
        for (const auto& c : p.children()) {
          Frag f = Build(*c, inverted);
          AddEps(whole.in, f.in);
          AddEps(f.out, whole.out);
        }
        return whole;
      }
      case PathOp::kStar: {
        Frag whole = NewFrag();
        Frag f = Build(*p.child(), inverted);
        AddEps(whole.in, f.in);
        AddEps(f.out, f.in);
        AddEps(f.out, whole.out);
        AddEps(whole.in, whole.out);
        return whole;
      }
      case PathOp::kPlus: {
        Frag whole = NewFrag();
        Frag f = Build(*p.child(), inverted);
        AddEps(whole.in, f.in);
        AddEps(f.out, f.in);
        AddEps(f.out, whole.out);
        return whole;
      }
      case PathOp::kOptional: {
        Frag whole = NewFrag();
        Frag f = Build(*p.child(), inverted);
        AddEps(whole.in, f.in);
        AddEps(f.out, whole.out);
        AddEps(whole.in, whole.out);
        return whole;
      }
    }
    return NewFrag();  // unreachable
  }

  /// Epsilon elimination: the final NFA has, for each state, the labeled
  /// out-edges of its epsilon closure, and accepts wherever the closure
  /// contains `final_state`.
  PathNfa Finish(Frag top) {
    PathNfa nfa;
    const size_t n = edges_.size();
    nfa.adj.resize(n);
    nfa.accept.assign(n, false);
    nfa.start = top.in;
    for (uint32_t q = 0; q < n; ++q) {
      std::vector<bool> in_closure(n, false);
      std::deque<uint32_t> queue{q};
      in_closure[q] = true;
      while (!queue.empty()) {
        const uint32_t r = queue.front();
        queue.pop_front();
        if (r == top.out) nfa.accept[q] = true;
        for (const auto& e : edges_[r]) nfa.adj[q].push_back(e);
        for (uint32_t nxt : eps_[r]) {
          if (!in_closure[nxt]) {
            in_closure[nxt] = true;
            queue.push_back(nxt);
          }
        }
      }
      // Distinct epsilon paths can copy the same labeled edge several
      // times; duplicates would multiply product-BFS work.
      auto& adj = nfa.adj[q];
      std::sort(adj.begin(), adj.end(),
                [](const PathNfa::Edge& a, const PathNfa::Edge& b) {
                  if (a.kind != b.kind) return a.kind < b.kind;
                  if (a.iri != b.iri) return a.iri < b.iri;
                  if (a.to != b.to) return a.to < b.to;
                  return a.negated < b.negated;
                });
      adj.erase(std::unique(adj.begin(), adj.end(),
                            [](const PathNfa::Edge& a, const PathNfa::Edge& b) {
                              return a.kind == b.kind && a.iri == b.iri &&
                                     a.to == b.to && a.negated == b.negated;
                            }),
                adj.end());
    }
    nfa.nullable = nfa.accept[nfa.start];
    return nfa;
  }

 private:
  uint32_t NewState() {
    edges_.emplace_back();
    eps_.emplace_back();
    return static_cast<uint32_t>(edges_.size() - 1);
  }
  Frag NewFrag() { return {NewState(), NewState()}; }
  void AddEdge(uint32_t from, PathNfa::Edge e) {
    edges_[from].push_back(std::move(e));
  }
  void AddEps(uint32_t from, uint32_t to) { eps_[from].push_back(to); }

  std::vector<std::vector<PathNfa::Edge>> edges_;
  std::vector<std::vector<uint32_t>> eps_;
};

/// One forward application of `e` from `t`: calls `visit(y)` for every
/// successor term, stepping through the store's zero-copy ranges.
template <typename Visit>
void ForEachSuccessor(const graph::TripleStore& store, const PathNfa::Edge& e,
                      SymbolId t, Visit&& visit) {
  switch (e.kind) {
    case PathNfa::EdgeKind::kFwd: {
      const auto [lo, hi] = store.RangeSP(t, e.iri);
      for (const graph::Triple* tr = lo; tr != hi; ++tr) visit(tr->o);
      return;
    }
    case PathNfa::EdgeKind::kInv: {
      const auto [lo, hi] = store.RangePO(e.iri, t);
      for (const graph::Triple* tr = lo; tr != hi; ++tr) visit(tr->s);
      return;
    }
    case PathNfa::EdgeKind::kNegFwd: {
      const auto [lo, hi] = store.RangeS(t);
      for (const graph::Triple* tr = lo; tr != hi; ++tr) {
        if (!std::binary_search(e.negated.begin(), e.negated.end(), tr->p)) {
          visit(tr->o);
        }
      }
      return;
    }
    case PathNfa::EdgeKind::kNegInv: {
      const auto [lo, hi] = store.RangeO(t);
      for (const graph::Triple* tr = lo; tr != hi; ++tr) {
        if (!std::binary_search(e.negated.begin(), e.negated.end(), tr->p)) {
          visit(tr->s);
        }
      }
      return;
    }
  }
}

/// One reverse application of `e` into `t` (the bound-object backward
/// sweep): calls `visit(x)` for every term x with x -e-> t.
template <typename Visit>
void ForEachPredecessor(const graph::TripleStore& store,
                        const PathNfa::Edge& e, SymbolId t, Visit&& visit) {
  switch (e.kind) {
    case PathNfa::EdgeKind::kFwd: {
      const auto [lo, hi] = store.RangePO(e.iri, t);
      for (const graph::Triple* tr = lo; tr != hi; ++tr) visit(tr->s);
      return;
    }
    case PathNfa::EdgeKind::kInv: {
      const auto [lo, hi] = store.RangeSP(t, e.iri);
      for (const graph::Triple* tr = lo; tr != hi; ++tr) visit(tr->o);
      return;
    }
    case PathNfa::EdgeKind::kNegFwd: {
      const auto [lo, hi] = store.RangeO(t);
      for (const graph::Triple* tr = lo; tr != hi; ++tr) {
        if (!std::binary_search(e.negated.begin(), e.negated.end(), tr->p)) {
          visit(tr->s);
        }
      }
      return;
    }
    case PathNfa::EdgeKind::kNegInv: {
      const auto [lo, hi] = store.RangeS(t);
      for (const graph::Triple* tr = lo; tr != hi; ++tr) {
        if (!std::binary_search(e.negated.begin(), e.negated.end(), tr->p)) {
          visit(tr->o);
        }
      }
      return;
    }
  }
}

}  // namespace

PathNfa CompilePathNfa(const paths::Path& path) {
  NfaBuilder b;
  NfaBuilder::Frag top = b.Build(path, /*inverted=*/false);
  return b.Finish(top);
}

std::vector<std::pair<SymbolId, SymbolId>> EvalPathNfa(
    const graph::TripleStore& store, const PathNfa& nfa,
    const std::vector<SymbolId>& all_terms, SymbolId s, SymbolId o) {
  std::vector<std::pair<SymbolId, SymbolId>> out;
  const uint32_t ns = static_cast<uint32_t>(nfa.num_states());
  if (ns == 0) return out;

  // Dense visited / emitted stamps over (term x state): every term the
  // sweeps can touch is a store term (all_terms is sorted) or one of the
  // bound endpoints, so ids are bounded and an epoch counter replaces
  // per-BFS set allocations.
  SymbolId max_id = all_terms.empty() ? 0 : all_terms.back();
  if (s != kInvalidSymbol) max_id = std::max(max_id, s);
  if (o != kInvalidSymbol) max_id = std::max(max_id, o);
  std::vector<uint32_t> visited(static_cast<size_t>(max_id + 1) * ns, 0);
  std::vector<uint32_t> emitted(static_cast<size_t>(max_id) + 1, 0);
  uint32_t epoch = 0;
  std::vector<std::pair<SymbolId, uint32_t>> work;

  // One forward product sweep; emits (start, y) at every accepting
  // product node, including the seed (zero-length matches when
  // nullable). Traversal order is immaterial for reachability, so the
  // worklist is a stack.
  auto forward_from = [&](SymbolId start) {
    ++epoch;
    work.clear();
    auto visit = [&](SymbolId term, uint32_t state) {
      uint32_t& stamp = visited[static_cast<size_t>(term) * ns + state];
      if (stamp == epoch) return;
      stamp = epoch;
      work.emplace_back(term, state);
      if (nfa.accept[state] && (o == kInvalidSymbol || o == term) &&
          emitted[term] != epoch) {
        emitted[term] = epoch;
        out.emplace_back(start, term);
      }
    };
    visit(start, nfa.start);
    while (!work.empty()) {
      const auto [term, state] = work.back();
      work.pop_back();
      for (const auto& e : nfa.adj[state]) {
        ForEachSuccessor(store, e, term,
                         [&](SymbolId y) { visit(y, e.to); });
      }
    }
  };

  if (s != kInvalidSymbol) {
    forward_from(s);
  } else if (o != kInvalidSymbol) {
    // Backward sweep from the bound object over the reversed product;
    // reaching the start state at term x means x -> o in the path.
    // Callers must ensure o is in all_terms (see header).
    std::vector<std::vector<std::pair<uint32_t, const PathNfa::Edge*>>> radj(
        ns);
    for (uint32_t q = 0; q < ns; ++q) {
      for (const auto& e : nfa.adj[q]) radj[e.to].emplace_back(q, &e);
    }
    ++epoch;
    auto visit = [&](SymbolId term, uint32_t state) {
      uint32_t& stamp = visited[static_cast<size_t>(term) * ns + state];
      if (stamp == epoch) return;
      stamp = epoch;
      work.emplace_back(term, state);
      if (state == nfa.start && emitted[term] != epoch) {
        emitted[term] = epoch;
        out.emplace_back(term, o);
      }
    };
    for (uint32_t q = 0; q < ns; ++q) {
      if (nfa.accept[q]) visit(o, q);
    }
    while (!work.empty()) {
      const auto [term, state] = work.back();
      work.pop_back();
      for (const auto& [from, e] : radj[state]) {
        ForEachPredecessor(store, *e, term,
                           [&](SymbolId x) { visit(x, from); });
      }
    }
  } else {
    for (SymbolId start : all_terms) forward_from(start);
  }

  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rwdt::exec
