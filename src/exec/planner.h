#ifndef RWDT_EXEC_PLANNER_H_
#define RWDT_EXEC_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "core/log_study.h"
#include "core/verdict.h"
#include "exec/operators.h"
#include "graph/rdf.h"
#include "obs/registry.h"
#include "sparql/algebra.h"
#include "sparql/eval.h"

namespace rwdt::exec {

/// Which classifier-certified fragment selected the physical plan. The
/// planner dispatches on the shared core::QueryVerdict — the same object
/// /v1/classify renders — so "the classifier says this query is easy"
/// and "the executor runs it the easy way" can never disagree.
enum class Strategy {
  /// Acyclic CQ: Yannakakis semijoin program.
  kYannakakis,
  /// CQ+F with certified htw <= 3: decomposition-guided greedy join
  /// order with hash joins, filters kept at their pattern positions.
  kHtwJoinOrder,
  /// C2RPQ+F whose property paths are all simple transitive
  /// expressions: NFA-product reachability for every path leaf.
  kNfaPathProduct,
  /// Well-designed AND/FILTER/OPTIONAL: pattern-tree evaluation with
  /// hash left joins.
  kPatternTree,
  /// Everything else: the reference sparql::Evaluator, wholesale.
  kFallback,
};

const char* StrategyName(Strategy s);

/// An explainable physical plan for one query. Holds the operator tree
/// (null for kFallback) plus the verdict that selected it; `ToJson`
/// names the fragment so operators can see *why* a plan was chosen.
///
/// A Plan borrows the Executor that built it (store, dictionary,
/// evaluator); it must not outlive it.
struct Plan {
  Strategy strategy = Strategy::kFallback;
  core::QueryVerdict verdict;
  sparql::Query query;
  /// Why this strategy applies (or why the planner fell back).
  std::string reason;
  OperatorPtr root;  // null when strategy == kFallback

  std::string ToJson() const;
};

struct ExecOptions {
  sparql::EvalLimits limits;
  core::LogStudyOptions study;
};

/// Plans and executes SPARQL queries over one triple store, dispatching
/// on the shared classification verdict (ROADMAP item 1: "make the
/// classifier actionable"). Execution always finishes with the
/// reference evaluator's ApplyModifiers, so aggregation / ORDER BY /
/// DISTINCT / LIMIT semantics are shared bit-for-bit with EvalQuery.
///
/// Thread-compatibility: const methods are safe to call concurrently
/// from multiple threads; each returned Plan is single-threaded.
class Executor {
 public:
  Executor(const graph::TripleStore& store, Interner* dict,
           ExecOptions options = {});

  /// The classifier battery for `q` (shared core::Classify).
  core::QueryVerdict Classify(const sparql::Query& q) const;

  /// Plans `q`, classifying it first / with a precomputed verdict.
  Result<Plan> MakePlan(const sparql::Query& q) const;
  Result<Plan> MakePlan(const sparql::Query& q,
                        const core::QueryVerdict& verdict) const;

  /// Runs a plan: drains the operator tree (or the evaluator for
  /// fallback plans) and applies the query's solution modifiers.
  Result<std::vector<Binding>> Execute(Plan& plan) const;

  /// MakePlan + Execute.
  Result<std::vector<Binding>> Run(const sparql::Query& q) const;

  const sparql::Evaluator& evaluator() const { return eval_; }

 private:
  struct Built;

  Result<Built> BuildPattern(const sparql::Pattern& p) const;
  Result<Built> BuildAnd(const sparql::Pattern& p) const;
  Built MakeJoin(Built left, Built right) const;
  Built MakeLeaf(OperatorPtr op, std::set<SymbolId> vars,
                 uint64_t estimate) const;

  const graph::TripleStore& store_;
  Interner* dict_;
  ExecOptions options_;
  sparql::Evaluator eval_;

  // Cached obs instruments (registration is once-per-callsite by
  // contract; the instruments themselves are lock-free).
  obs::Counter* plans_by_strategy_[5] = {};
  obs::Counter* rows_total_;
  obs::Histogram* exec_seconds_;
};

}  // namespace rwdt::exec

#endif  // RWDT_EXEC_PLANNER_H_
