#ifndef RWDT_EXEC_PATH_AUTOMATON_H_
#define RWDT_EXEC_PATH_AUTOMATON_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "graph/rdf.h"
#include "paths/path.h"

namespace rwdt::exec {

/// A property path compiled to an epsilon-free NFA whose transitions are
/// direction-labeled graph steps (Section 9.6: SPARQL property paths are
/// 2RPQs; simple transitive expressions admit NFA-product reachability
/// instead of the evaluator's recursive pair-set materialization).
///
/// Transition kinds mirror exactly the four atomic steps of
/// `Evaluator::EvalPathPairs`:
///   kFwd(p)      x -> y  when (x, p, y) in G
///   kInv(p)      x -> y  when (y, p, x) in G
///   kNegFwd(S)   x -> y  when (x, q, y) in G for some q not in S
///   kNegInv(S)   x -> y  when (y, q, x) in G for some q not in S
struct PathNfa {
  enum class EdgeKind { kFwd, kInv, kNegFwd, kNegInv };
  struct Edge {
    EdgeKind kind = EdgeKind::kFwd;
    SymbolId iri = kInvalidSymbol;       // kFwd / kInv
    std::vector<SymbolId> negated;       // kNegFwd / kNegInv (sorted)
    uint32_t to = 0;
  };

  std::vector<std::vector<Edge>> adj;  // out-edges per state
  uint32_t start = 0;
  std::vector<bool> accept;
  /// Whether the empty word is in the path language (zero-length
  /// matches: the `e*` / `e?` self-pairs of the evaluator).
  bool nullable = false;

  size_t num_states() const { return adj.size(); }
};

/// Compiles a property path AST to an epsilon-free NFA (Thompson
/// construction + epsilon elimination). Inverse subexpressions are
/// compiled by reversing the subautomaton and flipping step directions,
/// so `^` needs no runtime support. Total states are linear in the path
/// size; always succeeds.
PathNfa CompilePathNfa(const paths::Path& path);

/// All (start, end) pairs of the path over the store, via BFS on the
/// (graph term x NFA state) product. Fixing `s`/`o` restricts the search
/// (bound `s`: one forward sweep; bound `o` alone: one backward sweep).
///
/// `all_terms` must be the sorted subjects-union-objects of the store
/// (`Evaluator::AllTerms` order) — it seeds the unbound sweeps and the
/// zero-length matches. The pair set is exactly
/// `Evaluator::EvalPathPairs(path, s, o)` whenever `o` is unbound, `s`
/// is bound, or `o` is in `all_terms`; the one remaining corner (s
/// unbound, o bound to a term with no incident edges) differs on
/// zero-length matches for bare `e?`, so callers fall back to the
/// evaluator there (see AutomatonPathScanOp).
std::vector<std::pair<SymbolId, SymbolId>> EvalPathNfa(
    const graph::TripleStore& store, const PathNfa& nfa,
    const std::vector<SymbolId>& all_terms, SymbolId s = kInvalidSymbol,
    SymbolId o = kInvalidSymbol);

}  // namespace rwdt::exec

#endif  // RWDT_EXEC_PATH_AUTOMATON_H_
