#include "exec/operators.h"

#include <algorithm>
#include <utility>

namespace rwdt::exec {
namespace {

/// Renders one pattern term for Explain output. Variable names are
/// interned with their leading "?" already.
std::string TermString(const sparql::Term& t, const Interner& dict) {
  if (t.kind == sparql::Term::Kind::kNone) return "_";
  return dict.Name(t.id);
}

std::string TripleString(const sparql::TriplePattern& t,
                         const Interner& dict) {
  return TermString(t.s, dict) + " " + TermString(t.p, dict) + " " +
         TermString(t.o, dict);
}

/// Evaluator::EvalTriple's binding construction, shared by the scans and
/// the Yannakakis relation loader: repeated variables must agree.
void BindTripleMatches(const std::vector<graph::Triple>& matches,
                       const sparql::TriplePattern& t,
                       std::vector<Binding>* out) {
  out->reserve(out->size() + matches.size());
  for (const auto& triple : matches) {
    Binding mu;
    bool consistent = true;
    auto bind = [&](const sparql::Term& term, SymbolId value) {
      if (!term.ActsAsVar()) return;
      auto [it, inserted] = mu.emplace(term.id, value);
      if (!inserted && it->second != value) consistent = false;
    };
    bind(t.s, triple.s);
    bind(t.p, triple.p);
    bind(t.o, triple.o);
    if (consistent) out->push_back(std::move(mu));
  }
}

/// Evaluator::EvalPath's binding construction from a pair set.
void BindPathPairs(const std::vector<std::pair<SymbolId, SymbolId>>& pairs,
                   const sparql::PathTriple& p, std::vector<Binding>* out) {
  out->reserve(pairs.size());
  for (const auto& [x, y] : pairs) {
    Binding mu;
    bool consistent = true;
    if (p.s.ActsAsVar()) mu[p.s.id] = x;
    if (p.o.ActsAsVar()) {
      auto [it, inserted] = mu.emplace(p.o.id, y);
      if (!inserted && it->second != y) consistent = false;
    }
    if (consistent) out->push_back(std::move(mu));
  }
}

/// Join-key of a row: the values of `vars`, which the planner guarantees
/// are all bound. A missing variable is a planner bug, not a data
/// condition.
Status ExtractKey(const Binding& row, const std::vector<SymbolId>& vars,
                  std::vector<SymbolId>* key) {
  key->clear();
  key->reserve(vars.size());
  for (SymbolId v : vars) {
    auto it = row.find(v);
    if (it == row.end()) {
      return Status::Internal(
          "hash join planned over a non-definite variable");
    }
    key->push_back(it->second);
  }
  return Status::Ok();
}

void ExplainJoinVars(const std::vector<SymbolId>& vars, const Interner& dict,
                     JsonWriter* w) {
  w->Key("join_vars").BeginArray();
  for (SymbolId v : vars) w->String(dict.Name(v));
  w->EndArray();
}

}  // namespace

Result<std::vector<Binding>> Operator::Drain() {
  RWDT_RETURN_IF_ERROR(Open());
  std::vector<Binding> rows;
  Binding row;
  while (true) {
    Result<bool> more = Next(&row);
    if (!more.ok()) {
      Close();
      return more.status();
    }
    if (!more.value()) break;
    rows.push_back(std::move(row));
    row.clear();
  }
  Close();
  return rows;
}

Binding MergeBindings(const Binding& a, const Binding& b) {
  Binding out = a;
  out.insert(b.begin(), b.end());
  return out;
}

// --- TripleScanOp ----------------------------------------------------

TripleScanOp::TripleScanOp(const graph::TripleStore& store,
                           const Interner& dict,
                           sparql::TriplePattern pattern)
    : store_(store), dict_(dict), pattern_(std::move(pattern)) {}

Status TripleScanOp::Open() {
  rows_.clear();
  pos_ = 0;
  const auto& t = pattern_;
  const SymbolId s = t.s.ActsAsVar() ? kInvalidSymbol : t.s.id;
  const SymbolId p = t.p.ActsAsVar() ? kInvalidSymbol : t.p.id;
  const SymbolId o = t.o.ActsAsVar() ? kInvalidSymbol : t.o.id;
  BindTripleMatches(store_.Match(s, p, o), t, &rows_);
  return Status::Ok();
}

Result<bool> TripleScanOp::Next(Binding* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

void TripleScanOp::Close() {
  rows_.clear();
  pos_ = 0;
}

void TripleScanOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  w->StringField("pattern", TripleString(pattern_, dict_));
  w->EndObject();
}

// --- PathScanOp ------------------------------------------------------

PathScanOp::PathScanOp(const sparql::Evaluator& eval, const Interner& dict,
                       sparql::PathTriple pattern)
    : eval_(eval), dict_(dict), pattern_(std::move(pattern)) {}

Status PathScanOp::Open() {
  rows_.clear();
  pos_ = 0;
  const SymbolId s =
      pattern_.s.ActsAsVar() ? kInvalidSymbol : pattern_.s.id;
  const SymbolId o =
      pattern_.o.ActsAsVar() ? kInvalidSymbol : pattern_.o.id;
  BindPathPairs(eval_.EvalPathPairs(*pattern_.path, s, o), pattern_, &rows_);
  return Status::Ok();
}

Result<bool> PathScanOp::Next(Binding* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

void PathScanOp::Close() {
  rows_.clear();
  pos_ = 0;
}

void PathScanOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  w->StringField("pattern", TermString(pattern_.s, dict_) + " " +
                                pattern_.path->ToString(dict_) + " " +
                                TermString(pattern_.o, dict_));
  w->EndObject();
}

// --- AutomatonPathScanOp ---------------------------------------------

AutomatonPathScanOp::AutomatonPathScanOp(const graph::TripleStore& store,
                                         const sparql::Evaluator& eval,
                                         const Interner& dict,
                                         sparql::PathTriple pattern)
    : store_(store),
      eval_(eval),
      dict_(dict),
      pattern_(std::move(pattern)),
      nfa_(CompilePathNfa(*pattern_.path)) {}

Status AutomatonPathScanOp::Open() {
  rows_.clear();
  pos_ = 0;
  const SymbolId s =
      pattern_.s.ActsAsVar() ? kInvalidSymbol : pattern_.s.id;
  const SymbolId o =
      pattern_.o.ActsAsVar() ? kInvalidSymbol : pattern_.o.id;

  // Sorted subjects-union-objects, as Evaluator::AllTerms computes it.
  std::vector<SymbolId> all_terms;
  {
    std::set<SymbolId> terms;
    for (const auto& t : store_.triples()) {
      terms.insert(t.s);
      terms.insert(t.o);
    }
    all_terms.assign(terms.begin(), terms.end());
  }

  if (s == kInvalidSymbol && o != kInvalidSymbol &&
      !std::binary_search(all_terms.begin(), all_terms.end(), o)) {
    // Zero-length semantics for an object with no incident edges depend
    // on the path's operator shape; defer to the reference algorithm.
    BindPathPairs(eval_.EvalPathPairs(*pattern_.path, s, o), pattern_,
                  &rows_);
    return Status::Ok();
  }
  BindPathPairs(EvalPathNfa(store_, nfa_, all_terms, s, o), pattern_,
                &rows_);
  return Status::Ok();
}

Result<bool> AutomatonPathScanOp::Next(Binding* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

void AutomatonPathScanOp::Close() {
  rows_.clear();
  pos_ = 0;
}

void AutomatonPathScanOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  w->StringField("pattern", TermString(pattern_.s, dict_) + " " +
                                pattern_.path->ToString(dict_) + " " +
                                TermString(pattern_.o, dict_));
  w->UIntField("nfa_states", nfa_.num_states());
  w->EndObject();
}

// --- HashJoinOp ------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<SymbolId> join_vars, const Interner& dict)
    : left_(std::move(left)),
      right_(std::move(right)),
      join_vars_(std::move(join_vars)),
      dict_(dict) {}

Status HashJoinOp::Open() {
  build_.clear();
  matches_ = nullptr;
  match_pos_ = 0;
  RWDT_ASSIGN_OR_RETURN(std::vector<Binding> rows, right_->Drain());
  std::vector<SymbolId> key;
  for (auto& row : rows) {
    RWDT_RETURN_IF_ERROR(ExtractKey(row, join_vars_, &key));
    build_[key].push_back(std::move(row));
  }
  return left_->Open();
}

Result<bool> HashJoinOp::Next(Binding* row) {
  std::vector<SymbolId> key;
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      *row = MergeBindings(probe_, (*matches_)[match_pos_++]);
      return true;
    }
    RWDT_ASSIGN_OR_RETURN(const bool more, left_->Next(&probe_));
    if (!more) return false;
    RWDT_RETURN_IF_ERROR(ExtractKey(probe_, join_vars_, &key));
    auto it = build_.find(key);
    matches_ = it == build_.end() ? nullptr : &it->second;
    match_pos_ = 0;
  }
}

void HashJoinOp::Close() {
  left_->Close();
  build_.clear();
  matches_ = nullptr;
}

void HashJoinOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  ExplainJoinVars(join_vars_, dict_, w);
  w->Key("left");
  left_->Explain(w);
  w->Key("right");
  right_->Explain(w);
  w->EndObject();
}

// --- HashLeftJoinOp --------------------------------------------------

HashLeftJoinOp::HashLeftJoinOp(OperatorPtr left, OperatorPtr right,
                               std::vector<SymbolId> join_vars,
                               const Interner& dict)
    : left_(std::move(left)),
      right_(std::move(right)),
      join_vars_(std::move(join_vars)),
      dict_(dict) {}

Status HashLeftJoinOp::Open() {
  build_.clear();
  matches_ = nullptr;
  match_pos_ = 0;
  probe_pending_unmatched_ = false;
  RWDT_ASSIGN_OR_RETURN(std::vector<Binding> rows, right_->Drain());
  std::vector<SymbolId> key;
  for (auto& row : rows) {
    RWDT_RETURN_IF_ERROR(ExtractKey(row, join_vars_, &key));
    build_[key].push_back(std::move(row));
  }
  return left_->Open();
}

Result<bool> HashLeftJoinOp::Next(Binding* row) {
  std::vector<SymbolId> key;
  while (true) {
    if (probe_pending_unmatched_) {
      probe_pending_unmatched_ = false;
      *row = probe_;
      return true;
    }
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      *row = MergeBindings(probe_, (*matches_)[match_pos_++]);
      return true;
    }
    matches_ = nullptr;
    RWDT_ASSIGN_OR_RETURN(const bool more, left_->Next(&probe_));
    if (!more) return false;
    RWDT_RETURN_IF_ERROR(ExtractKey(probe_, join_vars_, &key));
    auto it = build_.find(key);
    if (it == build_.end() || it->second.empty()) {
      probe_pending_unmatched_ = true;
    } else {
      matches_ = &it->second;
      match_pos_ = 0;
    }
  }
}

void HashLeftJoinOp::Close() {
  left_->Close();
  build_.clear();
  matches_ = nullptr;
  probe_pending_unmatched_ = false;
}

void HashLeftJoinOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  ExplainJoinVars(join_vars_, dict_, w);
  w->Key("left");
  left_->Explain(w);
  w->Key("right");
  right_->Explain(w);
  w->EndObject();
}

// --- NestedLoopJoinOp ------------------------------------------------

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   bool left_outer)
    : left_(std::move(left)), right_(std::move(right)),
      left_outer_(left_outer) {}

Status NestedLoopJoinOp::Open() {
  RWDT_ASSIGN_OR_RETURN(build_, right_->Drain());
  probe_live_ = false;
  return left_->Open();
}

Result<bool> NestedLoopJoinOp::Next(Binding* row) {
  while (true) {
    if (!probe_live_) {
      RWDT_ASSIGN_OR_RETURN(const bool more, left_->Next(&probe_));
      if (!more) return false;
      probe_live_ = true;
      probe_matched_ = false;
      build_pos_ = 0;
    }
    while (build_pos_ < build_.size()) {
      const Binding& other = build_[build_pos_++];
      if (sparql::Compatible(probe_, other)) {
        probe_matched_ = true;
        *row = MergeBindings(probe_, other);
        return true;
      }
    }
    probe_live_ = false;
    if (left_outer_ && !probe_matched_) {
      *row = probe_;
      return true;
    }
  }
}

void NestedLoopJoinOp::Close() {
  left_->Close();
  build_.clear();
  probe_live_ = false;
}

void NestedLoopJoinOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  w->Key("left");
  left_->Explain(w);
  w->Key("right");
  right_->Explain(w);
  w->EndObject();
}

// --- FilterOp --------------------------------------------------------

FilterOp::FilterOp(OperatorPtr child, sparql::FilterPtr filter,
                   const sparql::Evaluator& eval)
    : child_(std::move(child)), filter_(std::move(filter)), eval_(eval) {}

Status FilterOp::Open() { return child_->Open(); }

Result<bool> FilterOp::Next(Binding* row) {
  while (true) {
    RWDT_ASSIGN_OR_RETURN(const bool more, child_->Next(row));
    if (!more) return false;
    RWDT_ASSIGN_OR_RETURN(const bool pass, eval_.EvalFilter(*filter_, *row));
    if (pass) return true;
  }
}

void FilterOp::Close() { child_->Close(); }

void FilterOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  w->Key("child");
  child_->Explain(w);
  w->EndObject();
}

// --- UnionOp ---------------------------------------------------------

UnionOp::UnionOp(std::vector<OperatorPtr> children)
    : children_(std::move(children)) {}

Status UnionOp::Open() {
  current_ = 0;
  if (children_.empty()) return Status::Ok();
  return children_[0]->Open();
}

Result<bool> UnionOp::Next(Binding* row) {
  while (current_ < children_.size()) {
    RWDT_ASSIGN_OR_RETURN(const bool more, children_[current_]->Next(row));
    if (more) return true;
    children_[current_]->Close();
    ++current_;
    if (current_ < children_.size()) {
      RWDT_RETURN_IF_ERROR(children_[current_]->Open());
    }
  }
  return false;
}

void UnionOp::Close() {
  if (current_ < children_.size()) children_[current_]->Close();
  current_ = children_.size();
}

void UnionOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  w->Key("children").BeginArray();
  for (const auto& c : children_) c->Explain(w);
  w->EndArray();
  w->EndObject();
}

// --- MinusOp ---------------------------------------------------------

MinusOp::MinusOp(OperatorPtr left, OperatorPtr right)
    : left_(std::move(left)), right_(std::move(right)) {}

Status MinusOp::Open() {
  RWDT_ASSIGN_OR_RETURN(build_, right_->Drain());
  return left_->Open();
}

Result<bool> MinusOp::Next(Binding* row) {
  while (true) {
    RWDT_ASSIGN_OR_RETURN(const bool more, left_->Next(row));
    if (!more) return false;
    bool excluded = false;
    for (const Binding& other : build_) {
      if (!sparql::Compatible(*row, other)) continue;
      for (const auto& [var, val] : other) {
        (void)val;
        if (row->count(var) > 0) {
          excluded = true;
          break;
        }
      }
      if (excluded) break;
    }
    if (!excluded) return true;
  }
}

void MinusOp::Close() {
  left_->Close();
  build_.clear();
}

void MinusOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  w->Key("left");
  left_->Explain(w);
  w->Key("right");
  right_->Explain(w);
  w->EndObject();
}

// --- YannakakisOp ----------------------------------------------------

JoinForest BuildJoinForest(const std::vector<std::set<SymbolId>>& varsets) {
  const size_t n = varsets.size();
  JoinForest forest;
  forest.parent.assign(n, -1);
  if (n <= 1) {
    forest.ok = true;
    return forest;
  }
  std::vector<bool> removed(n, false);
  for (size_t round = 0; round + 1 < n; ++round) {
    bool found = false;
    for (size_t i = 0; i < n && !found; ++i) {
      if (removed[i]) continue;
      // Boundary: variables of i shared with any other live relation.
      std::set<SymbolId> boundary;
      for (size_t k = 0; k < n; ++k) {
        if (k == i || removed[k]) continue;
        for (SymbolId v : varsets[i]) {
          if (varsets[k].count(v) > 0) boundary.insert(v);
        }
      }
      for (size_t j = 0; j < n; ++j) {
        if (j == i || removed[j]) continue;
        const bool covers = std::includes(
            varsets[j].begin(), varsets[j].end(), boundary.begin(),
            boundary.end());
        if (covers) {
          forest.parent[i] = static_cast<int>(j);
          forest.order.push_back(i);
          removed[i] = true;
          found = true;
          break;
        }
      }
    }
    if (!found) return forest;  // cyclic: no ear
  }
  forest.ok = true;
  return forest;
}

namespace {

std::vector<SymbolId> SharedVars(const std::set<SymbolId>& a,
                                 const std::set<SymbolId>& b) {
  std::vector<SymbolId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// rel := rel semijoin other (keep rows with >= 1 partner on `shared`).
void Semijoin(std::vector<Binding>* rel, const std::vector<Binding>& other,
              const std::vector<SymbolId>& shared) {
  std::set<std::vector<SymbolId>> keys;
  std::vector<SymbolId> key;
  for (const Binding& row : other) {
    key.clear();
    for (SymbolId v : shared) key.push_back(row.at(v));
    keys.insert(key);
  }
  std::vector<Binding> kept;
  kept.reserve(rel->size());
  for (Binding& row : *rel) {
    key.clear();
    for (SymbolId v : shared) key.push_back(row.at(v));
    if (keys.count(key) > 0) kept.push_back(std::move(row));
  }
  *rel = std::move(kept);
}

/// Bag hash join of two materialized relations on `shared`.
std::vector<Binding> HashJoinVec(const std::vector<Binding>& probe,
                                 const std::vector<Binding>& build,
                                 const std::vector<SymbolId>& shared) {
  std::map<std::vector<SymbolId>, std::vector<const Binding*>> table;
  std::vector<SymbolId> key;
  for (const Binding& row : build) {
    key.clear();
    for (SymbolId v : shared) key.push_back(row.at(v));
    table[key].push_back(&row);
  }
  std::vector<Binding> out;
  for (const Binding& row : probe) {
    key.clear();
    for (SymbolId v : shared) key.push_back(row.at(v));
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (const Binding* other : it->second) {
      out.push_back(MergeBindings(row, *other));
    }
  }
  return out;
}

}  // namespace

YannakakisOp::YannakakisOp(const graph::TripleStore& store,
                           const Interner& dict,
                           std::vector<sparql::TriplePattern> triples)
    : store_(store), dict_(dict), triples_(std::move(triples)) {}

Status YannakakisOp::Open() {
  rows_.clear();
  pos_ = 0;
  const size_t n = triples_.size();
  if (n == 0) {
    rows_ = {Binding{}};
    return Status::Ok();
  }

  // Materialize the relations and their variable sets.
  std::vector<std::vector<Binding>> rel(n);
  std::vector<std::set<SymbolId>> varsets(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& t = triples_[i];
    const SymbolId s = t.s.ActsAsVar() ? kInvalidSymbol : t.s.id;
    const SymbolId p = t.p.ActsAsVar() ? kInvalidSymbol : t.p.id;
    const SymbolId o = t.o.ActsAsVar() ? kInvalidSymbol : t.o.id;
    BindTripleMatches(store_.Match(s, p, o), t, &rel[i]);
    for (const sparql::Term* term : {&t.s, &t.p, &t.o}) {
      if (term->ActsAsVar()) varsets[i].insert(term->id);
    }
  }

  const JoinForest forest = BuildJoinForest(varsets);
  if (!forest.ok) {
    return Status::Internal("yannakakis planned for a cyclic join");
  }

  // Semijoin reduction: leaves to root, then root to leaves. Removal
  // order guarantees every child of i has already reduced rel[i] when i
  // reduces its own parent.
  for (size_t i : forest.order) {
    const size_t j = static_cast<size_t>(forest.parent[i]);
    Semijoin(&rel[j], rel[i], SharedVars(varsets[i], varsets[j]));
  }
  for (auto it = forest.order.rbegin(); it != forest.order.rend(); ++it) {
    const size_t i = *it;
    const size_t j = static_cast<size_t>(forest.parent[i]);
    Semijoin(&rel[i], rel[j], SharedVars(varsets[i], varsets[j]));
  }

  // Join along the forest, root first. The GYO ear property keeps each
  // relation's overlap with the accumulated result inside its parent's
  // variables, so every join here is a definite-key hash join.
  size_t root = n;
  for (size_t i = 0; i < n; ++i) {
    if (forest.parent[i] == -1) root = i;
  }
  std::vector<Binding> acc = std::move(rel[root]);
  std::set<SymbolId> acc_vars = varsets[root];
  for (auto it = forest.order.rbegin(); it != forest.order.rend(); ++it) {
    const size_t i = *it;
    acc = HashJoinVec(acc, rel[i], SharedVars(varsets[i], acc_vars));
    acc_vars.insert(varsets[i].begin(), varsets[i].end());
    if (acc.empty()) break;
  }
  rows_ = std::move(acc);
  return Status::Ok();
}

Result<bool> YannakakisOp::Next(Binding* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

void YannakakisOp::Close() {
  rows_.clear();
  pos_ = 0;
}

void YannakakisOp::Explain(JsonWriter* w) const {
  w->BeginObject();
  w->StringField("op", Name());
  w->Key("relations").BeginArray();
  for (const auto& t : triples_) w->String(TripleString(t, dict_));
  w->EndArray();
  w->EndObject();
}

}  // namespace rwdt::exec
