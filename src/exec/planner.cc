#include "exec/planner.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/json.h"
#include "paths/analysis.h"

namespace rwdt::exec {
namespace {

/// Estimate for operators whose output size the planner cannot bound
/// cheaply (path closures, nested blocks). Large so scans win the
/// greedy order.
constexpr uint64_t kUnknownEstimate =
    std::numeric_limits<uint64_t>::max() / 2;

/// Conjunction flattening: nested ANDs join the same bag regardless of
/// association, so the planner works on the flat conjunct list.
void FlattenConjuncts(const sparql::Pattern& p,
                      std::vector<const sparql::Pattern*>* out) {
  if (p.op == sparql::Pattern::Op::kAnd) {
    for (const auto& c : p.children) FlattenConjuncts(*c, out);
    return;
  }
  out->push_back(&p);
}

void TermVars(const sparql::Term& t, std::set<SymbolId>* out) {
  if (t.ActsAsVar()) out->insert(t.id);
}

}  // namespace

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kYannakakis:
      return "yannakakis";
    case Strategy::kHtwJoinOrder:
      return "htw_join_order";
    case Strategy::kNfaPathProduct:
      return "nfa_path_product";
    case Strategy::kPatternTree:
      return "pattern_tree";
    case Strategy::kFallback:
      return "fallback";
  }
  return "unknown";
}

std::string Plan::ToJson() const {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.StringField("strategy", StrategyName(strategy));
  w.StringField("fragment", verdict.FragmentName());
  w.StringField("form", verdict.FormName());
  w.UIntField("htw_le", verdict.HtwLe());
  w.BoolField("well_designed", verdict.analysis.well_designed);
  if (!verdict.analysis.path_types.empty()) {
    w.UIntField("paths", verdict.analysis.path_types.size());
    w.UIntField("paths_ste", verdict.analysis.ste);
  }
  w.StringField("reason", reason);
  w.Key("plan");
  if (root == nullptr) {
    w.Null();
  } else {
    root->Explain(&w);
  }
  w.EndObject();
  return out;
}

/// One built subtree plus what the planner knows about its rows:
/// `definite` vars are bound in every row, `possible` in some row
/// (definite == possible except below OPTIONAL). Hash joins require
/// the join vars to be definite on both sides; otherwise the planner
/// emits a Compatible()-based nested-loop join.
struct Executor::Built {
  OperatorPtr op;
  std::set<SymbolId> definite;
  std::set<SymbolId> possible;
  uint64_t estimate = kUnknownEstimate;
};

Executor::Executor(const graph::TripleStore& store, Interner* dict,
                   ExecOptions options)
    : store_(store),
      dict_(dict),
      options_(options),
      eval_(store, dict, options.limits) {
  auto& reg = obs::MetricRegistry::Global();
  for (int i = 0; i < 5; ++i) {
    plans_by_strategy_[i] = reg.GetCounter(
        "rwdt_exec_plans_total",
        "Physical plans produced, by planner strategy.",
        {{"strategy", StrategyName(static_cast<Strategy>(i))}});
  }
  rows_total_ = reg.GetCounter("rwdt_exec_rows_total",
                               "Solution rows produced by the executor.");
  exec_seconds_ = reg.GetHistogram(
      "rwdt_exec_seconds", "Wall time per executed plan.",
      obs::Histogram::ExponentialBounds(1e-5, 4, 10));
}

core::QueryVerdict Executor::Classify(const sparql::Query& q) const {
  return core::Classify(q, options_.study);
}

Executor::Built Executor::MakeLeaf(OperatorPtr op, std::set<SymbolId> vars,
                                   uint64_t estimate) const {
  Built b;
  b.op = std::move(op);
  b.definite = vars;
  b.possible = std::move(vars);
  b.estimate = estimate;
  return b;
}

Executor::Built Executor::MakeJoin(Built left, Built right) const {
  std::vector<SymbolId> join_vars;
  std::set_intersection(left.possible.begin(), left.possible.end(),
                        right.possible.begin(), right.possible.end(),
                        std::back_inserter(join_vars));
  const bool hashable =
      std::all_of(join_vars.begin(), join_vars.end(), [&](SymbolId v) {
        return left.definite.count(v) > 0 && right.definite.count(v) > 0;
      });

  Built out;
  if (hashable) {
    // Build on the smaller side, probe with the larger.
    if (left.estimate < right.estimate) {
      out.op = std::make_unique<HashJoinOp>(
          std::move(right.op), std::move(left.op), join_vars, *dict_);
    } else {
      out.op = std::make_unique<HashJoinOp>(
          std::move(left.op), std::move(right.op), join_vars, *dict_);
    }
  } else {
    out.op = std::make_unique<NestedLoopJoinOp>(std::move(left.op),
                                                std::move(right.op));
  }
  std::set_union(left.definite.begin(), left.definite.end(),
                 right.definite.begin(), right.definite.end(),
                 std::inserter(out.definite, out.definite.end()));
  std::set_union(left.possible.begin(), left.possible.end(),
                 right.possible.begin(), right.possible.end(),
                 std::inserter(out.possible, out.possible.end()));
  out.estimate = std::max(left.estimate, right.estimate);
  return out;
}

Result<Executor::Built> Executor::BuildAnd(const sparql::Pattern& p) const {
  std::vector<const sparql::Pattern*> conjuncts;
  FlattenConjuncts(p, &conjuncts);
  if (conjuncts.empty()) {
    // Empty AND: the evaluator's join identity, one empty binding.
    return MakeLeaf(std::make_unique<YannakakisOp>(
                        store_, *dict_,
                        std::vector<sparql::TriplePattern>{}),
                    {}, 1);
  }

  // All-triple conjunctions whose variable hypergraph admits a GYO join
  // forest run as one Yannakakis semijoin program.
  const bool all_triples = std::all_of(
      conjuncts.begin(), conjuncts.end(), [](const sparql::Pattern* c) {
        return c->op == sparql::Pattern::Op::kTriple;
      });
  if (all_triples) {
    std::vector<sparql::TriplePattern> triples;
    std::vector<std::set<SymbolId>> varsets;
    std::set<SymbolId> vars;
    uint64_t estimate = kUnknownEstimate;
    for (const sparql::Pattern* c : conjuncts) {
      triples.push_back(c->triple);
      std::set<SymbolId> vs;
      TermVars(c->triple.s, &vs);
      TermVars(c->triple.p, &vs);
      TermVars(c->triple.o, &vs);
      vars.insert(vs.begin(), vs.end());
      varsets.push_back(std::move(vs));
      const auto& t = c->triple;
      estimate = std::min<uint64_t>(
          estimate,
          store_.CountMatch(t.s.ActsAsVar() ? kInvalidSymbol : t.s.id,
                            t.p.ActsAsVar() ? kInvalidSymbol : t.p.id,
                            t.o.ActsAsVar() ? kInvalidSymbol : t.o.id));
    }
    if (BuildJoinForest(varsets).ok) {
      return MakeLeaf(std::make_unique<YannakakisOp>(store_, *dict_,
                                                     std::move(triples)),
                      std::move(vars), estimate);
    }
    // Cyclic: fall through to the greedy join order below.
  }

  std::vector<Built> built;
  built.reserve(conjuncts.size());
  for (const sparql::Pattern* c : conjuncts) {
    RWDT_ASSIGN_OR_RETURN(Built b, BuildPattern(*c));
    built.push_back(std::move(b));
  }

  // Greedy bounded-width order: start from the smallest estimated
  // conjunct, then repeatedly take the smallest conjunct connected to
  // the accumulated variables (joins stay selective); cartesian products
  // only when no conjunct connects. Reordering is sound: bag join is
  // commutative and associative, and filters stay at their own
  // positions inside each conjunct.
  std::vector<bool> used(built.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < built.size(); ++i) {
    if (built[i].estimate < built[first].estimate) first = i;
  }
  used[first] = true;
  Built acc = std::move(built[first]);
  for (size_t round = 1; round < built.size(); ++round) {
    size_t next = built.size();
    bool next_connected = false;
    for (size_t i = 0; i < built.size(); ++i) {
      if (used[i]) continue;
      const bool connected = std::any_of(
          built[i].possible.begin(), built[i].possible.end(),
          [&](SymbolId v) { return acc.possible.count(v) > 0; });
      const bool better =
          next == built.size() || (connected && !next_connected) ||
          (connected == next_connected &&
           built[i].estimate < built[next].estimate);
      if (better) {
        next = i;
        next_connected = connected;
      }
    }
    used[next] = true;
    acc = MakeJoin(std::move(acc), std::move(built[next]));
  }
  return acc;
}

Result<Executor::Built> Executor::BuildPattern(
    const sparql::Pattern& p) const {
  using Op = sparql::Pattern::Op;
  switch (p.op) {
    case Op::kTriple: {
      std::set<SymbolId> vars;
      TermVars(p.triple.s, &vars);
      TermVars(p.triple.p, &vars);
      TermVars(p.triple.o, &vars);
      const auto& t = p.triple;
      const uint64_t estimate =
          store_.CountMatch(t.s.ActsAsVar() ? kInvalidSymbol : t.s.id,
                            t.p.ActsAsVar() ? kInvalidSymbol : t.p.id,
                            t.o.ActsAsVar() ? kInvalidSymbol : t.o.id);
      return MakeLeaf(
          std::make_unique<TripleScanOp>(store_, *dict_, p.triple),
          std::move(vars), estimate);
    }
    case Op::kPath: {
      std::set<SymbolId> vars;
      TermVars(p.path.s, &vars);
      TermVars(p.path.o, &vars);
      OperatorPtr op;
      if (paths::IsSimpleTransitiveExpression(*p.path.path)) {
        op = std::make_unique<AutomatonPathScanOp>(store_, eval_, *dict_,
                                                   p.path);
      } else {
        op = std::make_unique<PathScanOp>(eval_, *dict_, p.path);
      }
      return MakeLeaf(std::move(op), std::move(vars), store_.size());
    }
    case Op::kAnd:
      return BuildAnd(p);
    case Op::kFilter: {
      RWDT_ASSIGN_OR_RETURN(Built child, BuildPattern(*p.children[0]));
      child.op = std::make_unique<FilterOp>(std::move(child.op), p.filter,
                                            eval_);
      return child;
    }
    case Op::kOptional: {
      RWDT_ASSIGN_OR_RETURN(Built left, BuildPattern(*p.children[0]));
      RWDT_ASSIGN_OR_RETURN(Built right, BuildPattern(*p.children[1]));
      std::vector<SymbolId> join_vars;
      std::set_intersection(left.possible.begin(), left.possible.end(),
                            right.possible.begin(), right.possible.end(),
                            std::back_inserter(join_vars));
      const bool hashable = std::all_of(
          join_vars.begin(), join_vars.end(), [&](SymbolId v) {
            return left.definite.count(v) > 0 &&
                   right.definite.count(v) > 0;
          });
      Built out;
      out.definite = std::move(left.definite);
      std::set_union(left.possible.begin(), left.possible.end(),
                     right.possible.begin(), right.possible.end(),
                     std::inserter(out.possible, out.possible.end()));
      out.estimate = left.estimate;
      if (hashable) {
        out.op = std::make_unique<HashLeftJoinOp>(
            std::move(left.op), std::move(right.op), join_vars, *dict_);
      } else {
        out.op = std::make_unique<NestedLoopJoinOp>(
            std::move(left.op), std::move(right.op), /*left_outer=*/true);
      }
      return out;
    }
    default:
      return Status::Unsupported(
          std::string("pattern operator outside the certified fragments"));
  }
}

Result<Plan> Executor::MakePlan(const sparql::Query& q) const {
  return MakePlan(q, Classify(q));
}

Result<Plan> Executor::MakePlan(const sparql::Query& q,
                                const core::QueryVerdict& verdict) const {
  Plan plan;
  plan.verdict = verdict;
  plan.query = q;

  auto fallback = [&](std::string reason) {
    plan.strategy = Strategy::kFallback;
    plan.reason = std::move(reason);
    plan.root = nullptr;
    plans_by_strategy_[static_cast<int>(Strategy::kFallback)]->Increment();
    return std::move(plan);
  };

  if (q.pattern == nullptr) {
    return fallback("query has no pattern");
  }

  Strategy strategy;
  std::string reason;
  const core::QueryAnalysis& a = verdict.analysis;
  if (verdict.IsAcyclicCq()) {
    strategy = Strategy::kYannakakis;
    reason = "acyclic conjunctive query: Yannakakis semijoin program";
  } else if (verdict.IsLowWidthCqF()) {
    strategy = Strategy::kHtwJoinOrder;
    reason = "CQ+F with certified htw <= " +
             std::to_string(verdict.HtwLe()) +
             ": decomposition-guided join order";
  } else if (a.ops.IsC2RpqF() && verdict.AllPathsSimpleTransitive()) {
    strategy = Strategy::kNfaPathProduct;
    reason =
        "C2RPQ+F with simple transitive paths: NFA-product reachability";
  } else if (verdict.IsWellDesignedOptional()) {
    strategy = Strategy::kPatternTree;
    reason = "well-designed OPTIONAL: pattern-tree evaluation";
  } else {
    return fallback(std::string("no certified fragment applies (") +
                    verdict.FragmentName() + ")");
  }

  Result<Built> built = BuildPattern(*q.pattern);
  if (!built.ok()) {
    return fallback("planner fallback: " + built.status().message());
  }
  plan.strategy = strategy;
  plan.reason = std::move(reason);
  plan.root = std::move(built.value().op);
  plans_by_strategy_[static_cast<int>(strategy)]->Increment();
  return std::move(plan);
}

Result<std::vector<Binding>> Executor::Execute(Plan& plan) const {
  const auto start = std::chrono::steady_clock::now();
  Result<std::vector<Binding>> rows = [&]() -> Result<std::vector<Binding>> {
    if (plan.root == nullptr) {
      return eval_.EvalQuery(plan.query);
    }
    eval_.ResetSteps();  // per-query budget for EvalFilter / modifiers
    RWDT_ASSIGN_OR_RETURN(std::vector<Binding> pattern_rows,
                          plan.root->Drain());
    return eval_.ApplyModifiers(plan.query, std::move(pattern_rows));
  }();
  exec_seconds_->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  if (rows.ok()) rows_total_->Increment(rows.value().size());
  return rows;
}

Result<std::vector<Binding>> Executor::Run(const sparql::Query& q) const {
  RWDT_ASSIGN_OR_RETURN(Plan plan, MakePlan(q));
  return Execute(plan);
}

}  // namespace rwdt::exec
