#ifndef RWDT_SERVE_VERDICT_H_
#define RWDT_SERVE_VERDICT_H_

#include <string>
#include <string_view>

#include "common/json.h"
#include "common/status.h"
#include "core/log_study.h"
#include "sparql/parser.h"

namespace rwdt::serve {

/// The query languages POST /v1/classify accepts (the `lang` query
/// parameter): full SPARQL, a bare property-path expression, or
/// navigational XPath.
enum class QueryLang { kSparql, kPath, kXPath };

const char* QueryLangName(QueryLang lang);

/// Parses "sparql" / "path" / "xpath"; "" means kSparql (the default).
Result<QueryLang> ParseQueryLang(std::string_view name);

/// Runs the paper's per-query classifier battery on one query text and
/// renders the verdict as a single JSON object:
///
///   sparql: form, triple count, features, fragment
///           (cq | cq_f | c2rpq_f | other), well-designedness,
///           filter classes, acyclicity + hypertree-width bound,
///           graph shape with/without constants, per-path Table 8 types.
///   path:   Table 8 type, canonical type string, STE / C_tract /
///           T_tract certification.
///   xpath:  fragment flags (positive, core, downward, tree pattern),
///           syntax-tree size, branch count.
///
/// On a query that fails to parse, returns the parser's Status (the
/// taxonomy class is recoverable via ClassifyStatus) — the serving
/// layer maps it to an HTTP 422 with a JSON error body.
Result<std::string> ClassifyToJson(std::string_view text, QueryLang lang,
                                   const core::LogStudyOptions& study_options,
                                   const sparql::ParseLimits& limits);

/// Appends the full SourceStudy — counts, error taxonomy, and both
/// aggregate sides (valid multiset / unique set) — as one JSON object.
/// This is the response body of POST /v1/classify_batch; the loopback
/// tests prove it is byte-identical to rendering a direct EngineStream
/// run of the same log.
void AppendStudyJson(const core::SourceStudy& study, JsonWriter* w);
std::string StudyToJson(const core::SourceStudy& study);

}  // namespace rwdt::serve

#endif  // RWDT_SERVE_VERDICT_H_
