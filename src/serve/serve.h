#ifndef RWDT_SERVE_SERVE_H_
#define RWDT_SERVE_SERVE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "obs/proc_stats.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/http_server.h"
#include "serve/slow_log.h"
#include "serve/verdict.h"

namespace rwdt::serve {

struct ServeOptions {
  /// Front-end HTTP options (bind address, port, handler pool, body
  /// caps). handler_threads bounds concurrent in-flight requests; each
  /// one parks on its queued job until a worker completes it.
  HttpServer::Options http;

  /// Bounded request queue between the HTTP handler pool and the batch
  /// workers. A full queue sheds with 429 + Retry-After — backpressure
  /// is explicit, never a silent drop or an unbounded buffer.
  size_t queue_capacity = 256;

  /// Batch workers draining the queue. Each owns a private
  /// single-threaded engine::Engine (warm memoization cache across
  /// requests; EngineStream's one-stream-per-engine rule holds because
  /// a worker processes jobs serially).
  unsigned workers = 2;

  /// Micro-batch: a worker pops up to this many queued jobs per wakeup,
  /// amortizing queue synchronization under load while keeping
  /// time-to-first-verdict low when idle.
  size_t max_batch = 32;

  /// Value of the Retry-After header on 429/503 shed responses.
  uint32_t retry_after_s = 1;

  /// Per-tenant token bucket, keyed by the X-Tenant request header
  /// (missing header -> "anonymous"). quota_qps is the sustained refill
  /// rate, quota_burst the bucket capacity. quota_qps <= 0 disables
  /// quota enforcement entirely.
  double quota_qps = 0;
  double quota_burst = 20;

  /// Head sampling rate for request traces, in [0, 1]. A request that
  /// arrives with a valid W3C `traceparent` keeps the caller's sampled
  /// flag (distributed tracing honors the upstream decision); requests
  /// without one get a fresh trace id whose sampling is decided
  /// deterministically by (trace id, trace_sample_seed) — the same seed
  /// always samples the same subset of trace ids. Trace *ids* are
  /// always assigned; the rate only gates span recording.
  double trace_sample_rate = 0;
  uint64_t trace_sample_seed = 0;

  /// Tail sampler: the slow-query log behind GET /slowz. Regardless of
  /// head sampling, the slowest requests of the recent window are
  /// retained with their verdict, timing breakdown, and explained plan.
  /// Disabling removes the per-job WouldAdmit check entirely.
  bool enable_slow_log = true;
  SlowLogOptions slow_log;

  /// Per-worker engine configuration. `threads` is forced to 1 and the
  /// embedded admin server is forced off — the serving process exposes
  /// one /metrics on its own front end instead of one per worker.
  engine::EngineOptions engine;

  /// Test-only: artificial delay per processed job, to make overload
  /// (429) and drain tests deterministic. Keep 0 in production.
  uint32_t debug_worker_delay_ms = 0;

  /// Rejects nonsensical configurations before any thread is spawned.
  Status Validate() const;
};

/// The network-facing classification service: the paper's per-query
/// classifier battery and the streaming log-study engine behind an
/// HTTP/1.1 API.
///
/// Routes:
///   POST /v1/classify?lang=sparql|path|xpath   body: one query text
///        -> 200 JSON verdict, 422 JSON error when it does not parse.
///   POST /v1/classify_batch?format=plain|tsv   body: raw query log
///        -> 200 SourceStudy JSON (valid/unique aggregates + error
///           taxonomy), byte-identical to a direct EngineStream run.
///   POST /v1/log?format=plain|tsv              body: raw query log
///        -> 200 full IngestReport JSON (study + reader counters +
///           per-source counts + engine metrics).
///   GET  /healthz   liveness: 200 while the process serves at all.
///   GET  /readyz    readiness: 200 while accepting new work; 503 once
///                   draining (load balancers stop routing here first).
///   GET  /metrics   obs::MetricRegistry::Global() as OpenMetrics text.
///   GET  /statusz   JSON snapshot: queue depth, worker count, shed
///                   counts, per-tenant bucket levels.
///   GET  /slowz     the tail sampler's slow-query log as JSON: the
///                   slowest requests of the recent window with trace
///                   id, timing breakdown, verdict, explained plan.
///   GET  /tracez?limit=N   the active TraceCollector as Chrome trace
///                   JSON (503 when none); N caps the events rendered.
///   GET  /quitquitquit   requests shutdown (releases WaitForQuit).
///
/// Request flow: handler threads validate + check the tenant quota,
/// enqueue a job into the bounded queue (full -> 429 + Retry-After),
/// and block until a batch worker completes it. Every request gets a
/// response — shedding is a fast 429/503, never a dropped connection.
///
/// Tracing: every /v1/* request gets a TraceContext (from the caller's
/// `traceparent` header, or freshly minted) that rides the job across
/// the queue into the worker, so worker-side spans (queue_wait, the
/// classify/ingest work, engine stages) nest under one per-request root
/// span. The response always carries a `traceparent` header, and every
/// shed response (429/503) carries the trace id in its JSON body and
/// its log line — a rejected request is still unambiguously reportable.
///
/// Shutdown is a drain, not an abort: BeginDrain() flips /readyz to 503
/// and makes new submissions fail with 503, while everything already
/// queued still runs to completion; Stop() then waits for the queue to
/// empty, joins the workers, and tears down the HTTP front end. SIGTERM
/// handling in tools/rwdt_serve and GET /quitquitquit both route here.
class ClassifyServer {
 public:
  explicit ClassifyServer(ServeOptions options);
  ~ClassifyServer();  // implies Stop()

  ClassifyServer(const ClassifyServer&) = delete;
  ClassifyServer& operator=(const ClassifyServer&) = delete;

  /// Validates options, spawns the worker pool, starts the HTTP server.
  Status Start();

  /// Stops accepting new work (submissions 503, /readyz 503) while
  /// queued and in-flight jobs keep running. Idempotent.
  void BeginDrain();

  /// Graceful shutdown: BeginDrain, wait for the queue to empty and all
  /// in-flight jobs to complete, join workers, stop the HTTP server.
  /// Idempotent; called by the destructor.
  void Stop();

  uint16_t port() const;
  bool running() const;
  bool draining() const;

  /// Blocks until GET /quitquitquit, RequestQuit, or Stop. Returns true
  /// if quit/stop arrived within `timeout_ms`.
  bool WaitForQuit(uint32_t timeout_ms);
  void RequestQuit();

  const ServeOptions& options() const { return options_; }

  /// The tail sampler, for the final run report (null when disabled).
  const SlowQueryLog* slow_log() const { return slow_log_.get(); }

 private:
  struct Job;
  struct Worker;
  struct TenantBucket {
    double tokens = 0;
    std::chrono::steady_clock::time_point last_refill;
  };

  HttpResponse HandleClassify(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request, bool full_report);
  HttpResponse HandleStatusz(const HttpRequest& request);
  HttpResponse HandleSlowz(const HttpRequest& request);
  HttpResponse HandleTracez(const HttpRequest& request);

  /// The request's trace context: parsed from `traceparent` (keeping
  /// the caller's trace id and sampled flag, with the caller's span id
  /// returned in `*parent_span`), or freshly minted + head-sampled when
  /// absent/malformed. In both cases ctx.span_id is a new span id — the
  /// server-side root span of this request.
  obs::TraceContext MakeRequestContext(const HttpRequest& request,
                                       uint64_t* parent_span) const;

  /// Quota check + bounded enqueue + wait for completion. `route` is
  /// the metrics label; the job's ctx/tenant/route must be set.
  HttpResponse Submit(std::shared_ptr<Job> job, const std::string& tenant,
                      const char* route);
  /// Token-bucket admission for `tenant`; true = admit.
  bool AdmitTenant(const std::string& tenant);

  void WorkerLoop(Worker* worker);
  void ProcessJob(Worker* worker, Job* job);

  /// Tail-sampling hook, run by the worker after a job completes: if
  /// (queue wait + process time) beats the slow log's bar, build the
  /// entry — paying for the explained plan only then — and admit it.
  void MaybeRecordSlow(const Job& job, double queue_wait_s, double process_s);
  /// The executor's Plan::ToJson for one SPARQL query text, planned
  /// against an empty store ("" on parse/plan failure). Plan dispatch
  /// depends only on the classifier verdict, so the fragment/strategy
  /// match what /v1/classify says about the same text.
  std::string ExplainPlanJson(const std::string& text) const;

  HttpResponse ShedResponse(int status, const char* reason,
                            const std::string& tenant, const char* route,
                            const obs::TraceContext& ctx);
  void CountRequest(const char* route, int status);

  ServeOptions options_;
  obs::TraceSampler sampler_;
  std::unique_ptr<SlowQueryLog> slow_log_;
  std::unique_ptr<HttpServer> http_;
  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool draining_ = false;
  bool stop_workers_ = false;
  bool started_ = false;
  bool stopped_ = false;

  std::mutex tenants_mu_;
  std::map<std::string, TenantBucket> tenants_;

  // Cached instruments (registration is mutexed; lookups here are not).
  std::mutex metrics_mu_;
  std::map<std::pair<std::string, int>, obs::Counter*> request_counters_;
  std::map<std::pair<std::string, std::string>, obs::Counter*>
      shed_counters_;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* queue_wait_s_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
  obs::Histogram* job_s_ = nullptr;
  obs::ScopedCollector http_collector_;
  /// Queue-wait time as a /profilez off-CPU source, so a profile of
  /// this server shows "parked on the serve queue" next to CPU stacks.
  obs::ScopedOffCpuSource queue_wait_offcpu_;
  /// rwdt_proc_* footprint gauges on /metrics (inert if something else
  /// in the process installed them first).
  std::unique_ptr<obs::ProcStatsCollector> proc_stats_;
};

}  // namespace rwdt::serve

#endif  // RWDT_SERVE_SERVE_H_
