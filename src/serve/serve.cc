#include "serve/serve.h"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "exec/planner.h"
#include "graph/rdf.h"
#include "ingest/ingest.h"
#include "obs/log.h"
#include "sparql/parser.h"

namespace rwdt::serve {
namespace {

constexpr const char* kJsonType = "application/json; charset=utf-8";
constexpr const char* kOpenMetricsType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// {"error": <message>, "error_class": <taxonomy class>} — every
/// non-200 from the classification routes carries a machine-readable
/// body, so clients never have to parse free text.
std::string ErrorBody(const Status& status) {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject()
      .BoolField("valid", false)
      .StringField("error_class", ErrorClassName(ClassifyStatus(status)))
      .StringField("error", status.message())
      .EndObject();
  return out;
}

std::string ReasonBody(const char* reason, uint64_t trace_id = 0) {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject().StringField("error", reason);
  if (trace_id != 0) w.StringField("trace_id", obs::TraceIdHex(trace_id));
  w.EndObject();
  return out;
}

std::string TenantOf(const HttpRequest& request) {
  const std::string_view header = request.Header("x-tenant");
  return header.empty() ? "anonymous" : std::string(header);
}

uint64_t SteadyNs(std::chrono::steady_clock::time_point t) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

}  // namespace

/// One queued unit of work. The submitting handler thread parks on
/// `cv`; the worker that pops it fills `response` and flips `done`.
struct ClassifyServer::Job {
  enum class Kind { kClassify, kIngest };
  Kind kind = Kind::kClassify;
  std::string body;
  QueryLang lang = QueryLang::kSparql;          // kClassify
  ingest::LogFormat format = ingest::LogFormat::kPlain;  // kIngest
  std::string source_name;                      // kIngest
  bool full_report = false;                     // kIngest: /v1/log
  std::chrono::steady_clock::time_point enqueued;

  /// Request trace identity, carried across the handler -> queue ->
  /// worker handoff. ctx.span_id is the request's root span (emitted by
  /// the handler once the job completes); the worker installs ctx so
  /// its spans become the root's children. parent_span is the caller's
  /// span from `traceparent` (0 when the trace started here).
  obs::TraceContext ctx;
  uint64_t parent_span = 0;
  std::string tenant;          // for the slow-query log
  const char* route = "";      // static route literal

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  HttpResponse response;
};

/// A batch worker and its private engine. The engine runs
/// single-threaded and keeps its memoization cache warm across
/// requests — duplicate queries across a tenant's traffic are cache
/// hits, exactly like duplicate lines within one log.
struct ClassifyServer::Worker {
  std::unique_ptr<engine::Engine> engine;
  std::thread thread;
};

Status ServeOptions::Validate() const {
  if (queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be > 0");
  }
  if (workers == 0) return Status::InvalidArgument("workers must be > 0");
  if (max_batch == 0) return Status::InvalidArgument("max_batch must be > 0");
  if (quota_qps > 0 && !(quota_burst >= 1)) {
    return Status::InvalidArgument("quota_burst must be >= 1 when quotas on");
  }
  if (http.handler_threads == 0) {
    return Status::InvalidArgument("http.handler_threads must be > 0");
  }
  if (!(trace_sample_rate >= 0) || trace_sample_rate > 1) {
    return Status::InvalidArgument("trace_sample_rate must be in [0, 1]");
  }
  if (enable_slow_log && slow_log.capacity == 0) {
    return Status::InvalidArgument("slow_log.capacity must be > 0");
  }
  engine::EngineOptions e = engine;
  e.threads = 1;
  return e.Validate();
}

ClassifyServer::ClassifyServer(ServeOptions options)
    : options_(std::move(options)) {}

ClassifyServer::~ClassifyServer() { Stop(); }

Status ClassifyServer::Start() {
  RWDT_RETURN_IF_ERROR(options_.Validate());
  if (started_) return Status::Internal("ClassifyServer started twice");

  auto& registry = obs::MetricRegistry::Global();
  queue_depth_ = registry.GetGauge("rwdt_serve_queue_depth",
                                   "Jobs waiting in the request queue");
  queue_wait_s_ = registry.GetHistogram(
      "rwdt_serve_queue_wait_seconds",
      "Time a job spends queued before a worker pops it",
      obs::Histogram::ExponentialBounds(1e-4, 4.0, 10));
  batch_size_ = registry.GetHistogram(
      "rwdt_serve_batch_size", "Jobs popped per worker wakeup",
      {1, 2, 4, 8, 16, 32, 64, 128});
  job_s_ = registry.GetHistogram(
      "rwdt_serve_job_seconds",
      "Worker time per job (classify or ingest), excluding queueing; "
      "buckets carry trace-id exemplars for sampled requests",
      obs::Histogram::ExponentialBounds(1e-5, 4.0, 12));

  sampler_ = {options_.trace_sample_rate, options_.trace_sample_seed};
  slow_log_ = options_.enable_slow_log
                  ? std::make_unique<SlowQueryLog>(options_.slow_log)
                  : nullptr;

  // Per-worker engines: single-threaded, no embedded admin server (the
  // serving front end owns /metrics), no per-run progress reporting.
  engine::EngineOptions eopts = options_.engine;
  eopts.threads = 1;
  eopts.num_shards = 1;
  eopts.admin_port = 0;
  eopts.progress = {};
  // Profiling is process-global; N workers racing to start N captures
  // (and overwrite one file) would be nonsense. /profilez profiles the
  // whole serving process instead.
  eopts.profile_path.clear();
  for (unsigned i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->engine = std::make_unique<engine::Engine>(eopts);
    workers_.push_back(std::move(worker));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = false;
    stop_workers_ = false;
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(w); });
  }

  http_ = std::make_unique<HttpServer>(options_.http);
  http_->Handle("POST", "/v1/classify", [this](const HttpRequest& r) {
    return HandleClassify(r);
  });
  http_->Handle("POST", "/v1/classify_batch", [this](const HttpRequest& r) {
    return HandleIngest(r, /*full_report=*/false);
  });
  http_->Handle("POST", "/v1/log", [this](const HttpRequest& r) {
    return HandleIngest(r, /*full_report=*/true);
  });
  http_->Handle("GET", "/healthz", [this](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "ok\n";
    CountRequest("/healthz", resp.status);
    return resp;
  });
  http_->Handle("GET", "/readyz", [this](const HttpRequest&) {
    HttpResponse resp;
    if (draining()) {
      resp.status = 503;
      resp.body = "draining\n";
    } else {
      resp.body = "ready\n";
    }
    CountRequest("/readyz", resp.status);
    return resp;
  });
  http_->Handle("GET", "/metrics", [this](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = kOpenMetricsType;
    resp.body = obs::MetricRegistry::Global().RenderOpenMetrics();
    CountRequest("/metrics", resp.status);
    return resp;
  });
  http_->Handle("GET", "/statusz", [this](const HttpRequest& r) {
    return HandleStatusz(r);
  });
  http_->Handle("GET", "/slowz", [this](const HttpRequest& r) {
    return HandleSlowz(r);
  });
  http_->Handle("GET", "/tracez", [this](const HttpRequest& r) {
    return HandleTracez(r);
  });
  http_->Handle("GET", "/profilez", [this](const HttpRequest& r) {
    HttpResponse resp = obs::HandleProfilez(r);
    CountRequest("/profilez", resp.status);
    return resp;
  });

  const Status status = http_->Start();
  if (!status.ok()) {
    Stop();
    return status;
  }

  // The HTTP front end's own counters, bridged at scrape time.
  http_collector_ = obs::ScopedCollector(
      &registry,
      registry.AddCollector([this](std::vector<obs::FamilySnapshot>* out) {
        if (http_ == nullptr) return;
        obs::FamilySnapshot fam;
        fam.name = "rwdt_serve_connections";
        fam.help = "HTTP front-end connections by outcome";
        fam.type = obs::MetricType::kCounter;
        fam.samples.push_back(
            {"_total",
             {{"outcome", "accepted"}},
             static_cast<double>(http_->connections_accepted())});
        fam.samples.push_back(
            {"_total",
             {{"outcome", "shed"}},
             static_cast<double>(http_->connections_shed())});
        out->push_back(std::move(fam));
      }));

  // Off-CPU profile dimension: the queue-wait histogram's cumulative
  // sum is exactly the wall time jobs spent parked, and the registry
  // owns the histogram for the process lifetime, so capturing the
  // pointer (not `this`) keeps the source valid until removal.
  queue_wait_offcpu_ = obs::ScopedOffCpuSource(
      "serve.queue_wait", [h = queue_wait_s_] { return h->sum(); });
  proc_stats_ = std::make_unique<obs::ProcStatsCollector>();

  started_ = true;
  stopped_ = false;
  return Status::Ok();
}

void ClassifyServer::BeginDrain() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  draining_ = true;
}

void ClassifyServer::Stop() {
  BeginDrain();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  // Workers drain everything already queued before exiting, so every
  // handler thread parked on a job is released with a real response.
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  http_collector_.Reset();
  if (http_ != nullptr) http_->Stop();
  started_ = false;
}

uint16_t ClassifyServer::port() const {
  return http_ != nullptr ? http_->port() : 0;
}

bool ClassifyServer::running() const {
  return http_ != nullptr && http_->running();
}

bool ClassifyServer::draining() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return draining_;
}

bool ClassifyServer::WaitForQuit(uint32_t timeout_ms) {
  return http_ != nullptr ? http_->WaitForQuit(timeout_ms) : true;
}

void ClassifyServer::RequestQuit() {
  if (http_ != nullptr) http_->RequestQuit();
}

obs::TraceContext ClassifyServer::MakeRequestContext(
    const HttpRequest& request, uint64_t* parent_span) const {
  obs::TraceContext ctx;
  *parent_span = 0;
  if (!obs::ParseTraceparent(request.Header("traceparent"), &ctx)) {
    // Absent or malformed header: a fresh trace, head-sampled here.
    ctx.trace_id = obs::NewTraceId();
    ctx.sampled = sampler_.Sample(ctx.trace_id);
  } else {
    *parent_span = ctx.span_id;  // the caller's span becomes our parent
  }
  ctx.span_id = obs::NewSpanId();  // this request's root span
  return ctx;
}

HttpResponse ClassifyServer::HandleClassify(const HttpRequest& request) {
  const std::string tenant = TenantOf(request);
  auto job = std::make_shared<Job>();
  job->ctx = MakeRequestContext(request, &job->parent_span);
  const Result<QueryLang> lang =
      ParseQueryLang(QueryParam(request.query, "lang"));
  if (!lang.ok()) {
    HttpResponse resp;
    resp.status = 400;
    resp.content_type = kJsonType;
    resp.body = ErrorBody(lang.status());
    resp.extra_headers.push_back(
        {"traceparent", obs::FormatTraceparent(job->ctx)});
    CountRequest("/v1/classify", resp.status);
    return resp;
  }
  if (request.body.empty()) {
    HttpResponse resp;
    resp.status = 400;
    resp.content_type = kJsonType;
    resp.body = ReasonBody("empty body: expected one query text");
    resp.extra_headers.push_back(
        {"traceparent", obs::FormatTraceparent(job->ctx)});
    CountRequest("/v1/classify", resp.status);
    return resp;
  }
  job->kind = Job::Kind::kClassify;
  job->body = request.body;  // request outlives the wait, but keep it simple
  job->lang = lang.value();
  return Submit(std::move(job), tenant, "/v1/classify");
}

HttpResponse ClassifyServer::HandleIngest(const HttpRequest& request,
                                          bool full_report) {
  const char* route = full_report ? "/v1/log" : "/v1/classify_batch";
  const std::string tenant = TenantOf(request);
  const std::string format = QueryParam(request.query, "format", "plain");
  auto job = std::make_shared<Job>();
  job->ctx = MakeRequestContext(request, &job->parent_span);
  if (format == "plain") {
    job->format = ingest::LogFormat::kPlain;
  } else if (format == "tsv") {
    job->format = ingest::LogFormat::kTsv;
  } else {
    HttpResponse resp;
    resp.status = 400;
    resp.content_type = kJsonType;
    resp.body = ReasonBody("unknown format (want plain|tsv)");
    resp.extra_headers.push_back(
        {"traceparent", obs::FormatTraceparent(job->ctx)});
    CountRequest(route, resp.status);
    return resp;
  }
  job->kind = Job::Kind::kIngest;
  job->body = request.body;
  job->source_name = QueryParam(request.query, "source", "http");
  job->full_report = full_report;
  return Submit(std::move(job), tenant, route);
}

HttpResponse ClassifyServer::HandleStatusz(const HttpRequest&) {
  size_t depth = 0;
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
    drain = draining_;
  }
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.StringField("service", "rwdt_serve");
  w.BoolField("draining", drain);
  w.UIntField("queue_depth", depth);
  w.UIntField("queue_capacity", options_.queue_capacity);
  w.UIntField("workers", options_.workers);
  w.UIntField("max_batch", options_.max_batch);
  w.BoolField("quotas_enabled", options_.quota_qps > 0);
  w.DoubleField("trace_sample_rate", options_.trace_sample_rate);
  if (slow_log_ != nullptr) {
    w.Key("slow_log").BeginObject();
    w.UIntField("capacity", options_.slow_log.capacity);
    w.UIntField("admitted", slow_log_->admitted());
    w.UIntField("evicted", slow_log_->evicted());
    w.EndObject();
  }
  if (http_ != nullptr) {
    w.Key("http").BeginObject();
    w.UIntField("requests_served", http_->requests_served());
    w.UIntField("connections_accepted", http_->connections_accepted());
    w.UIntField("connections_shed", http_->connections_shed());
    w.EndObject();
  }
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    w.Key("tenants").BeginObject();
    for (const auto& [name, bucket] : tenants_) {
      w.DoubleField(name, bucket.tokens);
    }
    w.EndObject();
  }
  w.EndObject();
  HttpResponse resp;
  resp.content_type = kJsonType;
  resp.body = std::move(out);
  CountRequest("/statusz", resp.status);
  return resp;
}

HttpResponse ClassifyServer::HandleSlowz(const HttpRequest&) {
  HttpResponse resp;
  resp.content_type = kJsonType;
  // Point-in-time ranking of worst requests; a cached copy would mask
  // every later scrape.
  resp.extra_headers.push_back({"Cache-Control", "no-store"});
  if (slow_log_ == nullptr) {
    resp.status = 404;
    resp.body = ReasonBody("slow-query log disabled");
  } else {
    resp.body = slow_log_->ToJson();
  }
  CountRequest("/slowz", resp.status);
  return resp;
}

HttpResponse ClassifyServer::HandleTracez(const HttpRequest& request) {
  HttpResponse resp;
  resp.extra_headers.push_back({"Cache-Control", "no-store"});
  // Default cap: 5000 events per scrape. An 8192-event ring per thread
  // times a worker pool renders multi-MB otherwise; limit=0 means all.
  size_t limit = 5000;
  const std::string param = QueryParam(request.query, "limit");
  if (!param.empty()) limit = std::strtoull(param.c_str(), nullptr, 10);
  std::string json;
  if (obs::DrainActiveTraceJson(&json, limit)) {
    resp.content_type = kJsonType;
    resp.body = std::move(json);
  } else {
    resp.status = 503;
    resp.body = "no active trace collector\n";
  }
  CountRequest("/tracez", resp.status);
  return resp;
}

bool ClassifyServer::AdmitTenant(const std::string& tenant) {
  if (!(options_.quota_qps > 0)) return true;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant);
  TenantBucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = options_.quota_burst;
    bucket.last_refill = now;
  } else {
    const double dt =
        std::chrono::duration<double>(now - bucket.last_refill).count();
    bucket.tokens += dt * options_.quota_qps;
    if (bucket.tokens > options_.quota_burst) {
      bucket.tokens = options_.quota_burst;
    }
    bucket.last_refill = now;
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

HttpResponse ClassifyServer::ShedResponse(int status, const char* reason,
                                          const std::string& tenant,
                                          const char* route,
                                          const obs::TraceContext& ctx) {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    auto key = std::make_pair(std::string(reason), tenant);
    auto it = shed_counters_.find(key);
    if (it == shed_counters_.end()) {
      obs::Counter* counter = obs::MetricRegistry::Global().GetCounter(
          "rwdt_serve_shed", "Requests shed, by reason and tenant",
          {{"reason", reason}, {"tenant", tenant}});
      it = shed_counters_.emplace(std::move(key), counter).first;
    }
    it->second->Increment();
  }
  // The trace id rides both the JSON body and the log line, so a client
  // reporting "my request was rejected" and this log line name the same
  // request — even though no worker ever saw it.
  RWDT_LOG(WARN) << "shed " << route << " " << status << " reason=" << reason
                 << " tenant=" << tenant
                 << " trace_id=" << obs::TraceIdHex(ctx.trace_id);
  HttpResponse resp;
  resp.status = status;
  resp.content_type = kJsonType;
  resp.body = ReasonBody(reason, ctx.trace_id);
  resp.extra_headers.push_back(
      {"Retry-After", std::to_string(options_.retry_after_s)});
  resp.extra_headers.push_back({"traceparent", obs::FormatTraceparent(ctx)});
  CountRequest(route, status);
  return resp;
}

void ClassifyServer::CountRequest(const char* route, int status) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  auto key = std::make_pair(std::string(route), status);
  auto it = request_counters_.find(key);
  if (it == request_counters_.end()) {
    obs::Counter* counter = obs::MetricRegistry::Global().GetCounter(
        "rwdt_serve_requests", "Requests handled, by route and status code",
        {{"route", route}, {"code", std::to_string(status)}});
    it = request_counters_.emplace(std::move(key), counter).first;
  }
  it->second->Increment();
}

HttpResponse ClassifyServer::Submit(std::shared_ptr<Job> job,
                                    const std::string& tenant,
                                    const char* route) {
  job->tenant = tenant;
  job->route = route;
  const uint64_t start_ns = obs::TraceNowNs();
  if (!AdmitTenant(tenant)) {
    return ShedResponse(429, "quota_exhausted", tenant, route, job->ctx);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_) {
      return ShedResponse(503, "draining", tenant, route, job->ctx);
    }
    if (queue_.size() >= options_.queue_capacity) {
      return ShedResponse(429, "queue_full", tenant, route, job->ctx);
    }
    job->enqueued = std::chrono::steady_clock::now();
    queue_.push_back(job);
    queue_depth_->Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();

  std::unique_lock<std::mutex> lock(job->mu);
  job->cv.wait(lock, [&] { return job->done; });
  // The request's root span: admission + queue + worker, named after
  // the route. Worker-side spans already recorded under job->ctx are
  // its children; the caller's span (if any) is its parent.
  obs::EmitSpanAs(job->ctx, job->parent_span, route, start_ns,
                  obs::TraceNowNs() - start_ns);
  job->response.extra_headers.push_back(
      {"traceparent", obs::FormatTraceparent(job->ctx)});
  CountRequest(route, job->response.status);
  return std::move(job->response);
}

void ClassifyServer::WorkerLoop(Worker* worker) {
  for (;;) {
    std::vector<std::shared_ptr<Job>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return stop_workers_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and fully drained
      while (!queue_.empty() && batch.size() < options_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    batch_size_->Observe(static_cast<double>(batch.size()));
    for (auto& job : batch) {
      const double wait_s = SecondsSince(job->enqueued);
      queue_wait_s_->Observe(wait_s);
      if (options_.debug_worker_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.debug_worker_delay_ms));
      }
      const auto start = std::chrono::steady_clock::now();
      {
        // Adopt the request's trace context for the duration of the
        // job: spans recorded here (and inside ingest/engine) nest
        // under the request's root span. queue_wait is backdated to
        // the enqueue instant so the root span shows the full gap.
        obs::ScopedTraceContext scoped(job->ctx);
        obs::EmitSpan("queue_wait", SteadyNs(job->enqueued),
                      SteadyNs(start) - SteadyNs(job->enqueued));
        obs::Span span(job->kind == Job::Kind::kClassify ? "classify"
                                                         : "ingest");
        ProcessJob(worker, job.get());
      }
      const double proc_s = SecondsSince(start);
      if (job->ctx.sampled && job->ctx.trace_id != 0) {
        job_s_->ObserveWithExemplar(
            proc_s, {{"trace_id", obs::TraceIdHex(job->ctx.trace_id)}});
      } else {
        job_s_->Observe(proc_s);
      }
      MaybeRecordSlow(*job, wait_s, proc_s);
      {
        std::lock_guard<std::mutex> job_lock(job->mu);
        job->done = true;
      }
      job->cv.notify_one();
    }
  }
}

void ClassifyServer::MaybeRecordSlow(const Job& job, double queue_wait_s,
                                     double process_s) {
  if (slow_log_ == nullptr) return;
  const double total_s = queue_wait_s + process_s;
  // WouldAdmit first: the explained plan is only generated for requests
  // that will actually be retained, so the common (fast) request pays
  // one mutexed scan of a <= capacity-sized vector and nothing else.
  if (!slow_log_->WouldAdmit(total_s)) return;
  SlowQueryEntry entry;
  entry.trace_id = job.ctx.trace_id;
  entry.route = job.route;
  entry.tenant = job.tenant;
  entry.status = job.response.status;
  entry.queue_wait_s = queue_wait_s;
  entry.process_s = process_s;
  entry.total_s = total_s;
  if (job.kind == Job::Kind::kClassify) {
    entry.lang = QueryLangName(job.lang);
    entry.query = job.body;
    entry.verdict_json = job.response.body;
    if (job.lang == QueryLang::kSparql && job.response.status == 200) {
      entry.plan_json = ExplainPlanJson(job.body);
    }
  } else {
    // Ingest jobs stream their body into the engine (it is gone by
    // now); the source name is the only per-request identity left.
    entry.query = job.source_name;
  }
  slow_log_->Add(std::move(entry));
}

std::string ClassifyServer::ExplainPlanJson(const std::string& text) const {
  Interner dict;
  const Result<sparql::Query> query =
      sparql::ParseSparql(text, &dict, options_.engine.parse_limits);
  if (!query.ok()) return "";
  // Planned against an empty store: strategy dispatch depends only on
  // the classifier verdict (fragment, acyclicity, htw, shape), so the
  // explained plan names the same fragment /v1/classify certifies for
  // this text; only the cardinality-based join order would differ on
  // real data.
  const graph::TripleStore store;
  exec::ExecOptions xopts;
  xopts.study = options_.engine.study;
  const exec::Executor executor(store, &dict, xopts);
  const Result<exec::Plan> plan = executor.MakePlan(query.value());
  if (!plan.ok()) return "";
  return plan.value().ToJson();
}

void ClassifyServer::ProcessJob(Worker* worker, Job* job) {
  switch (job->kind) {
    case Job::Kind::kClassify: {
      Result<std::string> verdict =
          ClassifyToJson(job->body, job->lang, options_.engine.study,
                         options_.engine.parse_limits);
      job->response.content_type = kJsonType;
      if (verdict.ok()) {
        job->response.body = std::move(verdict).value();
      } else {
        job->response.status = 422;  // well-formed HTTP, unparseable query
        job->response.body = ErrorBody(verdict.status());
      }
      return;
    }
    case Job::Kind::kIngest: {
      ingest::IngestOptions iopts;
      iopts.format = job->format;
      iopts.source_name = job->source_name;
      std::istringstream in(std::move(job->body));
      const Result<ingest::IngestReport> report =
          ingest::IngestStream(in, worker->engine.get(), iopts);
      job->response.content_type = kJsonType;
      if (report.ok()) {
        job->response.body = job->full_report
                                 ? report.value().ToJson()
                                 : StudyToJson(report.value().study);
      } else {
        job->response.status = 400;
        job->response.body = ErrorBody(report.status());
      }
      return;
    }
  }
}

}  // namespace rwdt::serve
