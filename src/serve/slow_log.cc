#include "serve/slow_log.h"

#include <algorithm>

#include "common/json.h"
#include "obs/trace.h"

namespace rwdt::serve {

SlowQueryLog::SlowQueryLog(SlowLogOptions options)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  entries_.reserve(options_.capacity);
}

void SlowQueryLog::PruneLocked(
    std::chrono::steady_clock::time_point now) const {
  if (!(options_.window_s > 0)) return;
  const auto window = std::chrono::duration<double>(options_.window_s);
  auto expired = [&](const Timed& t) {
    return std::chrono::duration<double>(now - t.added) > window;
  };
  const size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(), expired),
                 entries_.end());
  evicted_ += before - entries_.size();
}

bool SlowQueryLog::WouldAdmit(double total_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(std::chrono::steady_clock::now());
  if (entries_.size() < options_.capacity) return true;
  auto fastest = std::min_element(entries_.begin(), entries_.end(),
                                  [](const Timed& a, const Timed& b) {
                                    return a.entry.total_s < b.entry.total_s;
                                  });
  return total_s > fastest->entry.total_s;
}

bool SlowQueryLog::Add(SlowQueryEntry entry) {
  if (entry.query.size() > options_.max_query_bytes) {
    entry.query.resize(options_.max_query_bytes);
    entry.query_truncated = true;
  }
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(now);
  if (entries_.size() >= options_.capacity) {
    auto fastest = std::min_element(entries_.begin(), entries_.end(),
                                    [](const Timed& a, const Timed& b) {
                                      return a.entry.total_s < b.entry.total_s;
                                    });
    if (entry.total_s <= fastest->entry.total_s) return false;
    *fastest = {std::move(entry), now};
    ++admitted_;
    ++evicted_;
    return true;
  }
  entries_.push_back({std::move(entry), now});
  ++admitted_;
  return true;
}

std::vector<SlowQueryEntry> SlowQueryLog::Snapshot() const {
  std::vector<SlowQueryEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PruneLocked(std::chrono::steady_clock::now());
    out.reserve(entries_.size());
    for (const Timed& t : entries_) out.push_back(t.entry);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
                     return a.total_s > b.total_s;
                   });
  return out;
}

uint64_t SlowQueryLog::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t SlowQueryLog::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::string SlowQueryLog::ToJson() const {
  const std::vector<SlowQueryEntry> entries = Snapshot();
  uint64_t admitted_now = 0, evicted_now = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    admitted_now = admitted_;
    evicted_now = evicted_;
  }
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.UIntField("capacity", options_.capacity);
  w.DoubleField("window_s", options_.window_s);
  w.UIntField("admitted", admitted_now);
  w.UIntField("evicted", evicted_now);
  w.Key("entries").BeginArray();
  for (const SlowQueryEntry& e : entries) {
    w.BeginObject();
    if (e.trace_id != 0) {
      w.StringField("trace_id", obs::TraceIdHex(e.trace_id));
    } else {
      w.Key("trace_id").Null();
    }
    w.StringField("route", e.route);
    w.StringField("tenant", e.tenant);
    if (!e.lang.empty()) w.StringField("lang", e.lang);
    w.IntField("status", e.status);
    w.DoubleField("queue_wait_ms", e.queue_wait_s * 1e3);
    w.DoubleField("process_ms", e.process_s * 1e3);
    w.DoubleField("total_ms", e.total_s * 1e3);
    w.StringField("query", e.query);
    w.BoolField("query_truncated", e.query_truncated);
    if (!e.verdict_json.empty()) {
      w.RawField("verdict", e.verdict_json);
    } else {
      w.Key("verdict").Null();
    }
    if (!e.plan_json.empty()) {
      w.RawField("plan", e.plan_json);
    } else {
      w.Key("plan").Null();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return out;
}

}  // namespace rwdt::serve
