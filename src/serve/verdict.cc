#include "serve/verdict.h"

#include <string>
#include <utility>

#include "common/interner.h"
#include "core/verdict.h"
#include "hypergraph/hypergraph.h"
#include "paths/analysis.h"
#include "paths/path.h"
#include "sparql/analysis.h"
#include "xpath/xpath.h"

namespace rwdt::serve {
namespace {

/// Renders the shared core::QueryVerdict — the same object the
/// executor's planner dispatches on — as the /v1/classify JSON body.
void AppendSparqlVerdict(const core::QueryVerdict& v, JsonWriter* w) {
  const core::QueryAnalysis& a = v.analysis;
  w->StringField("form", v.FormName());
  w->UIntField("triples", a.triples);
  w->Key("features").BeginArray();
  for (const sparql::Feature f : a.features) {
    w->String(sparql::FeatureName(f));
  }
  w->EndArray();
  w->StringField("fragment", v.FragmentName());
  w->BoolField("afo_only", a.afo_only);
  w->BoolField("well_designed", a.well_designed);
  w->BoolField("safe_filters", a.safe_filters);
  w->BoolField("simple_filters", a.simple_filters);

  // Structure verdicts are defined on the CQ+F fragment (Table 6); for
  // other fragments they read false / 0, matching the aggregate tables.
  w->BoolField("free_connex_acyclic", a.cqf_fca);
  w->UIntField("htw_le", v.HtwLe());  // 0 = not certified <= 3 (or not CQ+F)

  w->BoolField("graph_cqf", a.graph_cqf);
  if (a.graph_cqf) {
    w->StringField("shape", hypergraph::GraphShapeName(a.shape_with));
    w->StringField("shape_without_constants",
                   hypergraph::GraphShapeName(a.shape_without));
  }

  w->Key("path_types").BeginArray();
  for (const paths::Table8Type t : a.path_types) {
    w->String(paths::Table8TypeName(t));
  }
  w->EndArray();
  if (!a.path_types.empty()) {
    w->UIntField("paths_ste", a.ste);
    w->UIntField("paths_ctract", a.ctract);
    w->UIntField("paths_ttract", a.ttract);
  }
}

void AppendAggregates(const core::LogAggregates& agg, JsonWriter* w) {
  w->UIntField("queries", agg.queries);
  w->Key("triple_histogram").BeginArray();
  for (const uint64_t count : agg.triple_histogram) w->UInt(count);
  w->EndArray();
  w->Key("features").BeginObject();
  for (const auto& [feature, count] : agg.feature_counts) {
    w->UIntField(sparql::FeatureName(feature), count);
  }
  w->EndObject();
  w->UIntField("select_ask_construct", agg.select_ask_construct);
  w->UIntField("describe", agg.describe);

  w->Key("operator_sets").BeginObject();
  w->UIntField("none", agg.ops_none);
  w->UIntField("and", agg.ops_and);
  w->UIntField("filter", agg.ops_filter);
  w->UIntField("and_filter", agg.ops_and_filter);
  w->UIntField("rpq", agg.ops_rpq);
  w->UIntField("and_rpq", agg.ops_and_rpq);
  w->UIntField("filter_rpq", agg.ops_filter_rpq);
  w->UIntField("and_filter_rpq", agg.ops_and_filter_rpq);
  w->EndObject();
  w->UIntField("cq", agg.cq);
  w->UIntField("cq_f", agg.cq_f);
  w->UIntField("c2rpq_f", agg.c2rpq_f);
  w->UIntField("afo_only", agg.afo_only);
  w->UIntField("well_designed", agg.well_designed);
  w->UIntField("safe_filters_only", agg.safe_filters_only);
  w->UIntField("simple_filters_only", agg.simple_filters_only);

  w->Key("structure").BeginObject();
  w->UIntField("cq_fca", agg.cq_fca);
  w->UIntField("cq_htw1", agg.cq_htw1);
  w->UIntField("cq_htw2", agg.cq_htw2);
  w->UIntField("cq_htw3", agg.cq_htw3);
  w->UIntField("cqf_fca", agg.cqf_fca);
  w->UIntField("cqf_htw1", agg.cqf_htw1);
  w->UIntField("cqf_htw2", agg.cqf_htw2);
  w->UIntField("cqf_htw3", agg.cqf_htw3);
  w->EndObject();

  w->UIntField("graph_cqf", agg.graph_cqf);
  w->Key("shapes_with_constants").BeginObject();
  for (const auto& [shape, count] : agg.shapes_with_constants) {
    w->UIntField(hypergraph::GraphShapeName(shape), count);
  }
  w->EndObject();
  w->Key("shapes_without_constants").BeginObject();
  for (const auto& [shape, count] : agg.shapes_without_constants) {
    w->UIntField(hypergraph::GraphShapeName(shape), count);
  }
  w->EndObject();

  w->UIntField("property_paths", agg.property_paths);
  w->Key("path_types").BeginObject();
  for (const auto& [type, count] : agg.path_types) {
    w->UIntField(paths::Table8TypeName(type), count);
  }
  w->EndObject();
  w->UIntField("path_ste", agg.path_ste);
  w->UIntField("path_ctract", agg.path_ctract);
  w->UIntField("path_ttract", agg.path_ttract);
}

}  // namespace

const char* QueryLangName(QueryLang lang) {
  switch (lang) {
    case QueryLang::kSparql:
      return "sparql";
    case QueryLang::kPath:
      return "path";
    case QueryLang::kXPath:
      return "xpath";
  }
  return "unknown";
}

Result<QueryLang> ParseQueryLang(std::string_view name) {
  if (name.empty() || name == "sparql") return QueryLang::kSparql;
  if (name == "path") return QueryLang::kPath;
  if (name == "xpath") return QueryLang::kXPath;
  return Status::InvalidArgument("unknown lang: " + std::string(name) +
                                 " (want sparql|path|xpath)");
}

Result<std::string> ClassifyToJson(std::string_view text, QueryLang lang,
                                   const core::LogStudyOptions& study_options,
                                   const sparql::ParseLimits& limits) {
  Interner dict;
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.StringField("lang", QueryLangName(lang));
  w.BoolField("valid", true);
  switch (lang) {
    case QueryLang::kSparql: {
      RWDT_ASSIGN_OR_RETURN(const sparql::Query query,
                            sparql::ParseSparql(text, &dict, limits));
      AppendSparqlVerdict(core::Classify(query, study_options), &w);
      break;
    }
    case QueryLang::kPath: {
      RWDT_ASSIGN_OR_RETURN(const paths::PathPtr path,
                            paths::ParsePath(text, &dict));
      w.StringField("type", paths::Table8TypeName(
                                paths::ClassifyTable8(*path)));
      w.StringField("canonical_type", paths::CanonicalTypeString(*path));
      w.BoolField("simple_transitive",
                  paths::IsSimpleTransitiveExpression(*path));
      w.BoolField("ctract", paths::CertifiedInCtract(*path));
      w.BoolField("ttract", paths::CertifiedInTtract(*path));
      break;
    }
    case QueryLang::kXPath: {
      RWDT_ASSIGN_OR_RETURN(const xpath::Query query,
                            xpath::ParseXPath(text, &dict));
      w.UIntField("size", query.Size());
      w.UIntField("branches", query.branches.size());
      w.BoolField("positive", xpath::IsPositiveXPath(query));
      w.BoolField("core_xpath1", xpath::IsCoreXPath1(query));
      w.BoolField("downward", xpath::IsDownwardXPath(query));
      w.BoolField("tree_pattern", xpath::IsTreePattern(query));
      break;
    }
  }
  w.EndObject();
  return out;
}

void AppendStudyJson(const core::SourceStudy& study, JsonWriter* w) {
  w->BeginObject();
  w->StringField("name", study.name);
  w->BoolField("wikidata_like", study.wikidata_like);
  w->UIntField("total", study.total);
  w->UIntField("valid", study.valid);
  w->UIntField("unique", study.unique);
  w->Key("errors").BeginObject();
  for (size_t c = 0; c < kNumErrorClasses; ++c) {
    w->UIntField(ErrorClassName(static_cast<ErrorClass>(c)),
                 study.errors[c]);
  }
  w->EndObject();
  w->Key("valid_agg").BeginObject();
  AppendAggregates(study.valid_agg, w);
  w->EndObject();
  w->Key("unique_agg").BeginObject();
  AppendAggregates(study.unique_agg, w);
  w->EndObject();
  w->EndObject();
}

std::string StudyToJson(const core::SourceStudy& study) {
  std::string out;
  JsonWriter w(&out);
  AppendStudyJson(study, &w);
  return out;
}

}  // namespace rwdt::serve
