#ifndef RWDT_SERVE_SLOW_LOG_H_
#define RWDT_SERVE_SLOW_LOG_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rwdt::serve {

struct SlowLogOptions {
  /// Worst-K requests retained at any moment. The log is a bounded
  /// ring in the tail-sampling sense: once full, a new entry must be
  /// slower than the current fastest retained entry to get in, and
  /// admission evicts that fastest entry.
  size_t capacity = 32;

  /// Entries expire this many seconds after admission, so the log is
  /// "the slowest K of the recent window", not of all time — a cold
  /// start's slow requests age out instead of pinning the log forever.
  /// <= 0 disables expiry.
  double window_s = 300;

  /// Query text stored per entry is truncated to this many bytes
  /// (`query_truncated` records that it happened). Large enough by
  /// default that CI can re-classify the stored text verbatim.
  size_t max_query_bytes = 2048;
};

/// One tail-sampled request: identity, timing breakdown, verdict, and
/// the executor's explained plan.
struct SlowQueryEntry {
  uint64_t trace_id = 0;  // 0 when the request carried no trace context
  std::string route;      // "/v1/classify", ...
  std::string tenant;
  std::string lang;            // classify only; "" for ingest routes
  std::string query;           // possibly truncated, see query_truncated
  bool query_truncated = false;
  int status = 0;              // HTTP status the request was answered with
  std::string verdict_json;    // response body (classify verdict / error)
  std::string plan_json;       // exec::Plan::ToJson(); "" when unavailable
  double queue_wait_s = 0;     // bounded-queue wait before a worker popped it
  double process_s = 0;        // worker time (parse + classify / ingest)
  double total_s = 0;          // queue_wait_s + process_s — the ranking key
};

/// Tail sampler: a bounded, mutex-guarded log of the slowest requests
/// in the recent window. Head sampling decides *up front* which traces
/// record spans; this decides *after the fact* which requests were bad
/// enough to keep rich evidence for — so the latency tail is always
/// explained, even at a head-sampling rate near zero.
///
/// The intended calling pattern keeps the hot path cheap:
///
///   if (slow_log.WouldAdmit(total_s)) {
///     entry.plan_json = <generate the explained plan>;   // costly
///     slow_log.Add(std::move(entry));
///   }
///
/// WouldAdmit is one mutex acquisition and a scan of at most
/// `capacity` entries; only requests that will actually be retained pay
/// for plan explanation. (Admission is re-checked under the same lock
/// in Add, so a race between two workers can at worst waste one plan,
/// never lose a slower entry to a faster one.)
class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowLogOptions options);

  /// Whether a request that took `total_s` would currently be admitted.
  bool WouldAdmit(double total_s) const;

  /// Admits `entry` if the log has room or `entry.total_s` beats the
  /// fastest retained entry (which is then evicted). Returns whether
  /// the entry was admitted.
  bool Add(SlowQueryEntry entry);

  /// Unexpired entries, slowest first.
  std::vector<SlowQueryEntry> Snapshot() const;

  /// The /slowz document: options, admission counters, and every
  /// unexpired entry (slowest first) with its timing breakdown, verdict
  /// and explained plan spliced in as JSON.
  std::string ToJson() const;

  uint64_t admitted() const;
  uint64_t evicted() const;

 private:
  struct Timed {
    SlowQueryEntry entry;
    std::chrono::steady_clock::time_point added;
  };

  /// Drops expired entries. Caller holds mu_.
  void PruneLocked(std::chrono::steady_clock::time_point now) const;

  SlowLogOptions options_;
  mutable std::mutex mu_;
  mutable std::vector<Timed> entries_;  // unordered; capacity is small
  mutable uint64_t admitted_ = 0;
  mutable uint64_t evicted_ = 0;  // includes expiries
};

}  // namespace rwdt::serve

#endif  // RWDT_SERVE_SLOW_LOG_H_
