#ifndef RWDT_SERVE_HTTP_SERVER_H_
#define RWDT_SERVE_HTTP_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rwdt::serve {

/// One parsed HTTP/1.1 request: method, split target, lower-cased
/// headers, and the (possibly empty) body. This is the single HTTP
/// request representation in the tree — the admin endpoints and the
/// serving front end both consume it.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // "/v1/classify" (query string split off)
  std::string query;   // "lang=sparql" (without the '?'), may be empty
  std::string body;    // Content-Length bytes, already read

  /// Header names are lower-cased at parse time; values keep their case
  /// with surrounding whitespace trimmed.
  std::vector<std::pair<std::string, std::string>> headers;

  /// The value of header `name` (lower-case), or "" when absent.
  std::string_view Header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. {"Retry-After", "1"}). Content-Type,
  /// Content-Length, and Connection are emitted by the server.
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// The value of `key` in a query string ("a=1&b=2"), or `fallback` when
/// absent. No %-decoding — our parameters are plain tokens.
std::string QueryParam(std::string_view query, std::string_view key,
                       std::string_view fallback = "");

/// A small, dependency-free blocking HTTP/1.1 server: one accept thread
/// feeds a bounded connection queue drained by a fixed handler pool.
/// This is the one hand-rolled HTTP stack in the tree — the admin
/// endpoints (obs::AdminServer) and the classification front end
/// (serve::ClassifyServer) are both built on it.
///
/// Supported: GET/POST routing by exact path, request bodies framed by
/// Content-Length (bounded by `max_body_bytes`, 413 beyond), HTTP/1.1
/// keep-alive (opt-out per server; requests beyond
/// `max_requests_per_connection` get `Connection: close`), and
/// per-connection socket timeouts. Chunked transfer encoding is
/// rejected with 501 — no client we serve needs it, and refusing keeps
/// the framing code obviously bounded.
///
/// Overload behavior is never silent: when the pending-connection queue
/// is full, the accept thread writes a minimal 503 with `Retry-After`
/// before closing, so every connection that reaches the kernel gets an
/// HTTP answer. (Higher layers add request-level shedding with 429 on
/// top of this — see serve::ClassifyServer.)
///
/// Lifecycle: construct, register routes with Handle(), Start(), and
/// eventually Stop() (or destroy). Stop is graceful: the listener
/// closes first, then queued and in-flight requests finish before the
/// handler threads join; keep-alive connections are closed after the
/// response in flight. Handlers must stay callable until Stop returns.
class HttpServer {
 public:
  struct Options {
    /// Defaults to loopback: both current users expose process
    /// internals; binding wider is an explicit decision.
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (tests); read back via port().
    uint16_t port = 0;
    unsigned handler_threads = 2;
    /// Accepted connections waiting for a handler; beyond this the
    /// accept thread sheds with a 503 + Retry-After response.
    size_t max_pending = 64;
    /// Per-connection socket read/write timeout. Bounds how long a
    /// silent client can pin a handler thread (and therefore how long
    /// Stop() can block).
    uint32_t io_timeout_ms = 5000;
    /// Request head (request line + headers) cap; 431 beyond.
    size_t max_head_bytes = 16 * 1024;
    /// Request body cap; 413 beyond (the oversized body is not read).
    size_t max_body_bytes = 1 << 20;  // 1 MiB
    /// Serve multiple requests per connection (HTTP/1.1 default). The
    /// admin server turns this off to keep its one-shot
    /// "read until EOF" scrape contract.
    bool keep_alive = true;
    /// Keep-alive budget per connection, then `Connection: close`.
    unsigned max_requests_per_connection = 1000;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Options options);
  ~HttpServer();  // implies Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact route for `method` + `path` (before Start). A
  /// path with at least one route answers 405 (with `Allow`) for other
  /// methods; unknown paths answer 404.
  void Handle(std::string method, std::string path, Handler handler);

  /// Binds, listens (SO_REUSEADDR), and spawns the accept thread and
  /// handler pool. Fails with kResourceExhausted if the address is
  /// taken.
  Status Start();

  /// Graceful shutdown: stops accepting, drains queued + in-flight
  /// requests, joins all threads. Idempotent; called by the destructor.
  void Stop();

  /// The bound port (resolves Options::port == 0), 0 before Start.
  uint16_t port() const { return port_; }
  bool running() const;

  uint64_t requests_served() const;
  uint64_t connections_accepted() const;
  /// Connections answered 503 at the accept stage (queue full).
  uint64_t connections_shed() const;

  /// Marks quit as requested, releasing WaitForQuit. GET /quitquitquit
  /// (a built-in route) does the same from the wire.
  void RequestQuit();

  /// Blocks until quit is requested, Stop() runs, or `timeout_ms`
  /// elapses. Lets a process keep serving after its workload finishes
  /// with a remote, deterministic way to release it. Returns true if
  /// quit/stop arrived.
  bool WaitForQuit(uint32_t timeout_ms);

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);
  void ServeConnectionInner(int fd);
  /// Serves one request already framed in `*buf`; returns false when
  /// the connection must close afterwards.
  bool ServeOneRequest(int fd, std::string* buf, size_t head_end,
                       unsigned served_on_connection);
  HttpResponse Dispatch(const HttpRequest& request);

  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  // path -> (method -> handler)
  std::map<std::string, std::map<std::string, Handler>> routes_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable quit_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a handler
  std::vector<int> active_;  // fds currently inside ServeConnection
  bool started_ = false;
  bool stopping_ = false;
  bool quit_requested_ = false;
  uint64_t requests_served_ = 0;
  uint64_t connections_accepted_ = 0;
  uint64_t connections_shed_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;
};

}  // namespace rwdt::serve

#endif  // RWDT_SERVE_HTTP_SERVER_H_
