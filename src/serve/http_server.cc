#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#include "obs/log.h"

namespace rwdt::serve {
namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Content Too Large";
    case 422:
      return "Unprocessable Content";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void SetSocketTimeout(int fd, uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RenderResponse(const HttpResponse& response, bool close) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += close ? "Connection: close\r\n\r\n" : "Connection: keep-alive\r\n\r\n";
  out += response.body;
  return out;
}

/// Sends a complete minimal response and returns false (the caller's
/// "close this connection" convention).
bool SendErrorAndClose(int fd, int status, std::string_view body,
                       std::vector<std::pair<std::string, std::string>>
                           extra_headers = {}) {
  HttpResponse resp;
  resp.status = status;
  resp.body = body;
  resp.extra_headers = std::move(extra_headers);
  SendAll(fd, RenderResponse(resp, /*close=*/true));
  return false;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the request head in `head` (request line + header lines, no
/// trailing CRLFCRLF) into `*request`. Returns false on a malformed
/// request line or header.
bool ParseRequestHead(std::string_view head, HttpRequest* request) {
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  request->method = std::string(request_line.substr(0, sp1));
  std::string target(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    request->query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  request->path = std::move(target);

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    request->headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                                  std::string(Trim(line.substr(colon + 1))));
  }
  return true;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

std::string QueryParam(std::string_view query, std::string_view key,
                       std::string_view fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    pos = amp + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (pair == key) return "";
      continue;
    }
    if (pair.substr(0, eq) == key) return std::string(pair.substr(eq + 1));
  }
  return std::string(fallback);
}

HttpServer::HttpServer(Options options) : options_(std::move(options)) {
  if (options_.handler_threads == 0) options_.handler_threads = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
  if (options_.max_requests_per_connection == 0) {
    options_.max_requests_per_connection = 1;
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string method, std::string path,
                        Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[std::move(path)][std::move(method)] = std::move(handler);
}

Status HttpServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("http server already started");
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close(fd);
    return Status(Code::kResourceExhausted,
                  "cannot bind http server to " + options_.bind_address + ":" +
                      std::to_string(options_.port) + ": " +
                      std::strerror(err));
  }
  if (listen(fd, 64) != 0) {
    const int err = errno;
    close(fd);
    return Status::Internal(std::string("listen(): ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  std::lock_guard<std::mutex> lock(mu_);
  listen_fd_ = fd;
  started_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  handler_threads_.reserve(options_.handler_threads);
  for (unsigned i = 0; i < options_.handler_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  RWDT_LOG(INFO) << "http server listening on http://"
                 << options_.bind_address << ":" << port_ << " ("
                 << routes_.size() << " routes)";
  return Status::Ok();
}

void HttpServer::Stop() {
  std::thread accept_thread;
  std::vector<std::thread> handler_threads;
  int listen_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    listen_fd = listen_fd_;
    listen_fd_ = -1;
    accept_thread = std::move(accept_thread_);
    handler_threads = std::move(handler_threads_);
    handler_threads_.clear();
  }
  // Unblock accept(); handlers keep draining `pending_` until empty.
  if (listen_fd >= 0) {
    shutdown(listen_fd, SHUT_RDWR);
    close(listen_fd);
  }
  // Nudge idle keep-alive connections: shutting down the read side makes
  // their blocking recv return immediately instead of waiting out the
  // io timeout. A request mid-flight still completes — only the wait for
  // the *next* request on the connection is cut short.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : active_) shutdown(fd, SHUT_RD);
  }
  queue_cv_.notify_all();
  quit_cv_.notify_all();
  if (accept_thread.joinable()) accept_thread.join();
  for (std::thread& t : handler_threads) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
  RWDT_LOG(INFO) << "http server on port " << port_ << " stopped after "
                 << requests_served_ << " requests";
}

bool HttpServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_ && !stopping_;
}

uint64_t HttpServer::requests_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_served_;
}

uint64_t HttpServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_accepted_;
}

uint64_t HttpServer::connections_shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_shed_;
}

void HttpServer::RequestQuit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    quit_requested_ = true;
  }
  quit_cv_.notify_all();
}

bool HttpServer::WaitForQuit(uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  quit_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return quit_requested_ || stopping_; });
  return quit_requested_ || stopping_;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    int listen_fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed by Stop(), or a transient accept failure while stopping.
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      RWDT_LOG(WARN) << "http accept(): " << std::strerror(errno);
      continue;
    }
    SetSocketTimeout(fd, options_.io_timeout_ms);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!stopping_ && pending_.size() < options_.max_pending) {
        connections_accepted_++;
        pending_.push_back(fd);
        queue_cv_.notify_one();
        continue;
      }
      if (stopping_) {
        close(fd);
        return;
      }
      connections_shed_++;
    }
    // Queue full: shed loudly. The write is small and bounded by the
    // socket timeout, so a hostile peer cannot wedge the accept thread
    // for longer than io_timeout_ms.
    SendErrorAndClose(fd, 503, "connection queue full, retry\n",
                      {{"Retry-After", "1"}});
    close(fd);
  }
}

void HttpServer::HandlerLoop() {
  for (;;) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      // Graceful stop: drain every accepted connection before exiting.
      if (pending_.empty()) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(fd);
  }
  ServeConnectionInner(fd);
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i] == fd) {
      active_[i] = active_.back();
      active_.pop_back();
      break;
    }
  }
}

void HttpServer::ServeConnectionInner(int fd) {
  std::string buf;
  char chunk[4096];
  unsigned served = 0;
  for (;;) {
    // Frame the next request head out of `buf`.
    size_t head_end;
    while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
      if (buf.size() > options_.max_head_bytes) {
        SendErrorAndClose(fd, 431, "request head too large\n");
        close(fd);
        return;
      }
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {  // peer closed between requests, timeout, or error
        close(fd);
        return;
      }
      buf.append(chunk, static_cast<size_t>(n));
    }
    // The in-loop check bounds buffering; this one catches a head that
    // arrived whole in a single read.
    if (head_end > options_.max_head_bytes) {
      SendErrorAndClose(fd, 431, "request head too large\n");
      close(fd);
      return;
    }
    if (!ServeOneRequest(fd, &buf, head_end, served)) {
      close(fd);
      return;
    }
    served++;
    // Close promptly once Stop() begins rather than waiting for the
    // keep-alive peer to send another request.
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        close(fd);
        return;
      }
    }
  }
}

bool HttpServer::ServeOneRequest(int fd, std::string* buf, size_t head_end,
                                 unsigned served_on_connection) {
  HttpRequest request;
  if (!ParseRequestHead(std::string_view(*buf).substr(0, head_end),
                        &request)) {
    return SendErrorAndClose(fd, 400, "malformed request\n");
  }
  if (!request.Header("transfer-encoding").empty()) {
    return SendErrorAndClose(fd, 501, "chunked bodies not supported\n");
  }

  size_t content_length = 0;
  const std::string_view length_header = request.Header("content-length");
  if (!length_header.empty()) {
    char* end = nullptr;
    const std::string value(length_header);
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      return SendErrorAndClose(fd, 400, "bad Content-Length\n");
    }
    content_length = static_cast<size_t>(parsed);
  }
  if (content_length > options_.max_body_bytes) {
    // The body is not read — framing after an unread body is void, so
    // the connection must close.
    {
      std::lock_guard<std::mutex> lock(mu_);
      requests_served_++;
    }
    return SendErrorAndClose(
        fd, 413,
        "body exceeds " + std::to_string(options_.max_body_bytes) +
            " bytes\n");
  }

  const size_t frame_end = head_end + 4 + content_length;
  char chunk[4096];
  while (buf->size() < frame_end) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;  // truncated body: nothing to answer
    buf->append(chunk, static_cast<size_t>(n));
  }
  request.body = buf->substr(head_end + 4, content_length);
  buf->erase(0, frame_end);  // keep pipelined bytes for the next request

  const bool client_wants_close =
      ToLower(request.Header("connection")) == "close";
  const bool close_after =
      client_wants_close || !options_.keep_alive ||
      served_on_connection + 1 >= options_.max_requests_per_connection;

  const HttpResponse response = Dispatch(request);
  const bool sent = SendAll(fd, RenderResponse(response, close_after));
  {
    std::lock_guard<std::mutex> lock(mu_);
    requests_served_++;
  }
  return sent && !close_after;
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) {
  if (request.method == "GET" && request.path == "/quitquitquit") {
    RequestQuit();
    return {200, "text/plain; charset=utf-8", "bye\n", {}};
  }
  Handler handler;
  std::string allow;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = routes_.find(request.path);
    if (it != routes_.end()) {
      auto mit = it->second.find(request.method);
      if (mit != it->second.end()) {
        handler = mit->second;
      } else {
        for (const auto& [method, unused] : it->second) {
          if (!allow.empty()) allow += ", ";
          allow += method;
        }
      }
    }
  }
  if (handler != nullptr) return handler(request);
  if (!allow.empty()) {
    HttpResponse resp;
    resp.status = 405;
    resp.body = request.method + " not supported on " + request.path + "\n";
    resp.extra_headers.emplace_back("Allow", allow);
    return resp;
  }
  return {404,
          "text/plain; charset=utf-8",
          "no route " + request.path + " — see / for the index\n",
          {}};
}

}  // namespace rwdt::serve
