#ifndef RWDT_LOGGEN_LOG_TEXT_H_
#define RWDT_LOGGEN_LOG_TEXT_H_

#include <iosfwd>
#include <string_view>
#include <vector>

#include "loggen/sparql_gen.h"

namespace rwdt::loggen {

/// Serializes a log in the raw-text format ingest reads: one query per
/// line. Embedded newlines in query text are replaced with spaces so the
/// line framing survives round-trips (generated queries never contain
/// newlines; corrupted ones may).
void WriteLogText(const std::vector<LogEntry>& log, std::ostream& out);

/// Serializes in the TSV format: "source<TAB>query" per line. Tabs in
/// the query text are replaced with spaces for the same reason.
void WriteLogTsv(const std::vector<LogEntry>& log, std::string_view source,
                 std::ostream& out);

}  // namespace rwdt::loggen

#endif  // RWDT_LOGGEN_LOG_TEXT_H_
